"""BENCH-FULLSTACK — batched full-stack receiver vs the packet loop.

ROADMAP "Batched full-stack receiver": the ``backend="packet"`` path runs
the real receiver chain — coarse acquisition, channel estimation, RAKE
combining, MLSE/Viterbi — one packet at a time in Python, which made the
non-ideal-synchronization scenario class the most expensive thing in the
repository.  ``backend="fullstack"`` (:mod:`repro.sim.batch_rx`) runs the
*same* receiver over the whole Monte-Carlo batch, bit-decision-identical
by construction (guarded by ``tests/sim/test_fullstack_parity.py``).

This benchmark times both backends on one CM1 multipath sweep point at
three receiver configurations — the plain fast-test config, the same with
the gen-2 default MLSE demodulator enabled, and a paper-grade back end
(MLSE over a 5-symbol ISI window, 16-finger selective RAKE on a 64-tap
channel estimate, the gen-2 defaults that ``fast_test_config`` trims for
unit-test speed).  The headline acceptance rides on the paper-grade row:
the batched receiver must be at least 10x faster than the packet loop,
with identical error counts.

A second table covers gen 1, whose 4 GHz sim-rate front end (batched
pulse synthesis, real-waveform channel FFT, AGC and the 4-way
interleaved-flash conversion) was the ratio cap before it, too, went
batched.  Its headline row is the paper-grade front end — the 1 GHz
monocycle into the 2 GSPS 4-way interleaved flash, every converter
parameter the paper's — at the gen-1 chip's highest-rate operating
point (the paper's pulses-per-bit knob at 1) over the ``gen1_baseline``
scenario, asserted conservatively at >= 5x; the CM1 multipath row is
reported alongside (its ratio is bounded by the channel FFT pass, array
work both backends share sample for sample).

Timings are min-of-rounds on the batched side and single-shot on the
oracle (the conservative direction: a load spike during the oracle run
shrinks the asserted ratio's slack, never inflates the claim past what
the table prints).

The error-count **parity assertions are unconditional** — they hold on
any machine, loaded or not.  The **timing assertions are split from
them** and derated on hosts with fewer than two usable CPUs: a 1-CPU (or
affinity-restricted) box cannot reproduce the calibrated speedups — the
measured ratio drifts with whatever else the machine is doing, which is
exactly how these benchmarks went flaky inside full-suite runs — so
there the floor drops to "the batched path must still win"
(``DERATED_SPEEDUP``).  Set ``REPRO_BENCH_STRICT=1`` to enforce the full
calibrated floors regardless of CPU count (what a dedicated benchmark
host should do).

A third benchmark covers chunk-granular scheduling ("Chunk-granular
scheduling" on the ROADMAP): one hot CM1 fullstack point decomposed into
seeded packet chunks and fanned across four workers must beat the
serial pass over the same chunk layout by at least 3x, with a bitwise
identical merged measurement — the single-hot-point case the point-level
scheduler could never parallelize.
"""

import os
import time

import pytest

from repro.core.config import Gen1Config, Gen2Config
from repro.sim import SweepEngine, sweep_grid

from bench_utils import (append_bench_record, format_ber, print_header,
                         print_table, required_speedup as _required_speedup,
                         usable_cpus as _usable_cpus)

EBN0_DB = 6.0
SEED = 3
REQUIRED_SPEEDUP = 10.0
GEN1_EBN0_DB = 12.0
GEN1_REQUIRED_SPEEDUP = 5.0
HOT_POINT_WORKERS = 4
HOT_POINT_REQUIRED_SPEEDUP = 3.0

CONFIGS = (
    ("fast-test", Gen2Config.fast_test_config(), 24, 128),
    ("fast-test + MLSE",
     Gen2Config.fast_test_config().with_changes(use_mlse=True), 24, 128),
    ("paper-grade back end",
     Gen2Config.fast_test_config().with_changes(
         use_mlse=True, mlse_max_taps=5, rake_fingers=16,
         channel_estimate_taps=64, adc_comparator_noise_std=0.0),
     48, 256),
)
HEADLINE = "paper-grade back end"


GEN1_CONFIGS = (
    ("paper-grade front end, 1 pulse/bit", "gen1_baseline",
     Gen1Config.fast_test_config().with_changes(pulses_per_bit=1), 64, 256),
    ("same, CM1 multipath", "cm1",
     Gen1Config.fast_test_config().with_changes(pulses_per_bit=1), 48, 256),
)
GEN1_HEADLINE = "paper-grade front end, 1 pulse/bit"


def _measure(config, backend, num_packets, payload_bits, rounds=1,
             generation="gen2", scenario="cm1", ebn0_db=EBN0_DB):
    grid = sweep_grid([ebn0_db], scenarios=(scenario,))
    engine = SweepEngine(config=config, generation=generation, seed=SEED,
                         backend=backend)
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = engine.run(grid, num_packets=num_packets,
                            payload_bits_per_packet=payload_bits)
        best = min(best, time.perf_counter() - start)
    return result.entries[0][1], best


@pytest.mark.benchmark(group="bench-fullstack")
def test_bench_fullstack_vs_packet_loop(benchmark):
    def run_table():
        rows = []
        for name, config, num_packets, payload_bits in CONFIGS:
            # Warm caches (FFT plans, keystream memo) on a tiny batch so
            # neither backend pays first-call costs inside the timing.
            _measure(config, "fullstack", 2, payload_bits)
            full_rounds = 2 if name == HEADLINE else 1
            fullstack, fullstack_s = _measure(
                config, "fullstack", num_packets, payload_bits,
                rounds=full_rounds)
            packet, packet_s = _measure(config, "packet", num_packets,
                                        payload_bits)
            rows.append((name, num_packets, payload_bits, packet,
                         packet_s, fullstack, fullstack_s))
        return rows

    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)

    print_header("BENCH-FULLSTACK",
                 f"one CM1 sweep point at {EBN0_DB:.0f} dB: batched "
                 "full-stack receiver vs the per-packet loop")
    table = []
    for (name, num_packets, payload_bits, packet, packet_s,
         fullstack, fullstack_s) in rows:
        table.append([
            name, f"{num_packets}x{payload_bits}b",
            f"{packet_s * 1e3:9.1f} ms", f"{fullstack_s * 1e3:9.1f} ms",
            f"{packet_s / max(fullstack_s, 1e-9):5.1f}x",
            format_ber(fullstack.ber)])
    print_table(["receiver config", "point", "packet loop", "fullstack",
                 "speedup", "BER"], table)

    # Parity: unconditional — the speedup claim is only meaningful
    # because the measurements are the same measurements.
    for (name, _, _, packet, _, fullstack, _) in rows:
        assert packet.bit_errors == fullstack.bit_errors, name
        assert packet.packets_failed == fullstack.packets_failed, name

    # Timing: split from parity and derated on hosts that cannot
    # reproduce the calibrated ratio (see _required_speedup).
    headline = {row[0]: row for row in rows}[HEADLINE]
    speedup = headline[4] / max(headline[6], 1e-9)
    required, floor_note = _required_speedup(REQUIRED_SPEEDUP)
    print(f"timing floor: >= {required:.1f}x [{floor_note}]")
    append_bench_record("bench-fullstack/gen2-paper-grade", headline[6],
                        speedup=speedup, backend="fullstack",
                        required_speedup=required)
    assert speedup >= required, (
        f"batched full-stack receiver managed only {speedup:.1f}x over the "
        f"packet loop on the {HEADLINE!r} CM1 point (acceptance: "
        f">= {required:.1f}x, {floor_note})")


@pytest.mark.benchmark(group="bench-fullstack")
def test_bench_fullstack_gen1_vs_packet_loop(benchmark):
    """The gen-1 table: batched 4 GHz front end + batched back half vs
    the per-packet loop, asserted >= 5x on the paper-grade headline."""

    def run_table():
        rows = []
        for name, scenario, config, num_packets, payload_bits \
                in GEN1_CONFIGS:
            common = dict(generation="gen1", scenario=scenario,
                          ebn0_db=GEN1_EBN0_DB)
            # Warm caches (FFT plans, keystream memo) on a tiny batch so
            # neither backend pays first-call costs inside the timing.
            _measure(config, "fullstack", 2, payload_bits, **common)
            full_rounds = 2 if name == GEN1_HEADLINE else 1
            fullstack, fullstack_s = _measure(
                config, "fullstack", num_packets, payload_bits,
                rounds=full_rounds, **common)
            packet, packet_s = _measure(config, "packet", num_packets,
                                        payload_bits, **common)
            rows.append((name, num_packets, payload_bits, packet,
                         packet_s, fullstack, fullstack_s))
        return rows

    rows = benchmark.pedantic(run_table, rounds=1, iterations=1)

    print_header("BENCH-FULLSTACK-GEN1",
                 f"gen-1 sweep points at {GEN1_EBN0_DB:.0f} dB: batched "
                 "interleaved-flash front end vs the per-packet loop")
    table = []
    for (name, num_packets, payload_bits, packet, packet_s,
         fullstack, fullstack_s) in rows:
        table.append([
            name, f"{num_packets}x{payload_bits}b",
            f"{packet_s * 1e3:9.1f} ms", f"{fullstack_s * 1e3:9.1f} ms",
            f"{packet_s / max(fullstack_s, 1e-9):5.1f}x",
            format_ber(fullstack.ber)])
    print_table(["gen-1 config", "point", "packet loop", "fullstack",
                 "speedup", "BER"], table)

    # Parity: unconditional — the speedup claim is only meaningful
    # because the measurements are the same measurements.
    for (name, _, _, packet, _, fullstack, _) in rows:
        assert packet.bit_errors == fullstack.bit_errors, name
        assert packet.packets_failed == fullstack.packets_failed, name

    # Timing: split from parity and derated on hosts that cannot
    # reproduce the calibrated ratio (see _required_speedup).
    headline = {row[0]: row for row in rows}[GEN1_HEADLINE]
    speedup = headline[4] / max(headline[6], 1e-9)
    required, floor_note = _required_speedup(GEN1_REQUIRED_SPEEDUP)
    print(f"timing floor: >= {required:.1f}x [{floor_note}]")
    append_bench_record("bench-fullstack/gen1-paper-grade", headline[6],
                        speedup=speedup, backend="fullstack",
                        required_speedup=required)
    assert speedup >= required, (
        f"batched gen-1 front end managed only {speedup:.1f}x over the "
        f"packet loop on the {GEN1_HEADLINE!r} point (acceptance: "
        f">= {required:.1f}x, {floor_note})")


@pytest.mark.benchmark(group="bench-fullstack")
def test_bench_hot_point_chunk_scaling(benchmark):
    """One hot CM1 fullstack point, chunked and fanned over 4 workers.

    Before chunk-granular scheduling a single grid point was one task —
    extra workers sat idle.  With the point decomposed into seeded
    packet chunks, four workers must beat the serial pass over the same
    layout by >= 3x while merging to the bitwise-identical measurement
    (``REPRO_BENCH_HOT_PACKETS`` scales the point for slower or faster
    hosts; the layout itself never changes the result).
    """
    if len(os.sched_getaffinity(0)) < HOT_POINT_WORKERS:
        pytest.skip(f"needs >= {HOT_POINT_WORKERS} usable CPUs for a "
                    "meaningful scaling ratio")

    num_packets = int(os.environ.get("REPRO_BENCH_HOT_PACKETS", "96"))
    chunk_packets = max(1, num_packets // (HOT_POINT_WORKERS * 4))
    payload_bits = 256
    config = Gen2Config.fast_test_config().with_changes(
        use_mlse=True, mlse_max_taps=5, rake_fingers=16,
        channel_estimate_taps=64, adc_comparator_noise_std=0.0)
    grid = sweep_grid([EBN0_DB], scenarios=("cm1",))

    def run_pair():
        timings = {}
        results = {}
        for label, workers in (("serial", None),
                               ("parallel", HOT_POINT_WORKERS)):
            engine = SweepEngine(config=config, generation="gen2",
                                 seed=SEED, backend="fullstack",
                                 chunk_packets=chunk_packets)
            # Warm caches so neither pass pays first-call costs.
            engine.run(grid, num_packets=2,
                       payload_bits_per_packet=payload_bits)
            start = time.perf_counter()
            results[label] = engine.run(
                grid, num_packets=num_packets,
                payload_bits_per_packet=payload_bits,
                max_workers=workers, collect_errors_per_packet=True)
            timings[label] = time.perf_counter() - start
        return timings, results

    timings, results = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    speedup = timings["serial"] / max(timings["parallel"], 1e-9)
    print_header("BENCH-HOT-POINT",
                 f"one CM1 fullstack point at {EBN0_DB:.0f} dB, "
                 f"{num_packets} packets in {chunk_packets}-packet chunks")
    print_table(
        ["schedule", "point", "wall time", "speedup", "BER"],
        [["serial chunks", f"{num_packets}x{payload_bits}b",
          f"{timings['serial'] * 1e3:9.1f} ms", "  1.0x",
          format_ber(results["serial"].entries[0][1].ber)],
         [f"{HOT_POINT_WORKERS} workers", f"{num_packets}x{payload_bits}b",
          f"{timings['parallel'] * 1e3:9.1f} ms", f"{speedup:5.1f}x",
          format_ber(results["parallel"].entries[0][1].ber)]])

    # Scheduling must be bitwise invisible: identical merged counts AND
    # identical per-packet error vectors.
    assert results["parallel"].entries == results["serial"].entries
    assert (results["parallel"].errors_per_packet
            == results["serial"].errors_per_packet)
    append_bench_record("bench-hot-point/chunk-fanout", timings["parallel"],
                        speedup=speedup, backend="fullstack",
                        workers=HOT_POINT_WORKERS)
    assert speedup >= HOT_POINT_REQUIRED_SPEEDUP, (
        f"chunk fan-out managed only {speedup:.1f}x at "
        f"{HOT_POINT_WORKERS} workers on the hot CM1 point (acceptance: "
        f">= {HOT_POINT_REQUIRED_SPEEDUP:.0f}x)")
