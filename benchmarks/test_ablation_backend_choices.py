"""ABLATIONS — design choices of the digital back end.

The paper fixes several back-end design parameters without showing the
sensitivity behind them.  These ablations quantify the choices on the same
simulation substrate used by the main benchmarks:

* **Channel-estimate precision** — the paper stores the impulse-response
  estimate "with a precision of up to four bits".  Sweep 1-6 bits plus an
  unquantized estimate and measure the BER cost on a multipath link.
* **Preamble repetitions** — the preamble repeats its base sequence so the
  estimator can average; sweep the repetition count and measure the channel
  estimation error.
* **RAKE finger-selection policy** — selective (strongest taps) versus
  partial (first taps) RAKE at the same finger count.
"""

import numpy as np
import pytest

from repro.channel.awgn import awgn, noise_std_for_ebn0
from repro.channel.multipath import exponential_decay_channel
from repro.core.config import Gen2Config
from repro.core.transceiver import Gen2Transceiver
from repro.dsp.channel_estimation import ChannelEstimator
from repro.dsp.rake import RakeReceiver
from repro.phy.preamble import PreambleConfig, build_preamble_symbols
from repro.pulses.shapes import gaussian_pulse

from bench_utils import format_ber, print_header, print_table

EBN0_DB = 14.0
NUM_PACKETS = 3
PAYLOAD_BITS = 48


# ---------------------------------------------------------------------------
# Ablation 1: channel-estimate quantization bits
# ---------------------------------------------------------------------------
def _ber_for_estimate_bits(bits: int | None) -> float:
    config = Gen2Config.fast_test_config().with_changes(
        channel_estimate_bits=bits, rake_fingers=6, channel_estimate_taps=32)
    transceiver = Gen2Transceiver(config, rng=np.random.default_rng(91))
    channel_rng = np.random.default_rng(92)
    errors = 0
    total = 0
    for index in range(NUM_PACKETS):
        channel = exponential_decay_channel(8e-9, 1e-9, rng=channel_rng,
                                            complex_gains=True)
        simulation = transceiver.simulate_packet(
            num_payload_bits=PAYLOAD_BITS, ebn0_db=EBN0_DB, channel=channel,
            rng=np.random.default_rng(9000 + index))
        errors += simulation.result.payload_bit_errors
        total += simulation.result.num_payload_bits
    return errors / total


# ---------------------------------------------------------------------------
# Ablation 2: preamble repetitions vs channel-estimation error
# ---------------------------------------------------------------------------
def _estimation_error_vs_repetitions(rng: np.random.Generator):
    sample_rate = 1e9
    samples_per_chip = 8
    pulse = gaussian_pulse(500e6, sample_rate).waveform[:samples_per_chip]
    rows = {}
    for repetitions in (1, 2, 4, 8):
        preamble_config = PreambleConfig(sequence_degree=5,
                                         num_repetitions=repetitions)
        chips = build_preamble_symbols(preamble_config)
        waveform = np.zeros(chips.size * samples_per_chip)
        for index, chip in enumerate(chips):
            start = index * samples_per_chip
            waveform[start:start + pulse.size] += chip * pulse
        truth = np.zeros(24)
        truth[0] = 1.0
        estimator = ChannelEstimator(
            preamble_symbols=preamble_config.base_sequence_bipolar(),
            samples_per_symbol=samples_per_chip, pulse_template=pulse,
            num_taps=24, quantization_bits=None)
        errors = []
        for _ in range(5):
            noisy = np.concatenate((waveform, np.zeros(64))) \
                + 1.0 * rng.standard_normal(waveform.size + 64)
            estimate = estimator.estimate_averaged(noisy, 0, sample_rate,
                                                   num_repetitions=repetitions)
            errors.append(float(np.sum(np.abs(estimate.taps - truth) ** 2)))
        rows[repetitions] = float(np.mean(errors))
    return rows


# ---------------------------------------------------------------------------
# Ablation 3: S-RAKE vs P-RAKE finger selection
# ---------------------------------------------------------------------------
def _rake_policy_comparison(rng: np.random.Generator):
    captures = {"srake": [], "prake": []}
    for _ in range(10):
        channel = exponential_decay_channel(20e-9, 2e-9, rng=rng,
                                            complex_gains=True)
        # Keep the first 64 ns of the response (what the back end would hold).
        taps = channel.discrete_impulse_response(1e9)[:64]
        from repro.dsp.channel_estimation import ChannelEstimate
        estimate = ChannelEstimate(taps=taps, sample_rate_hz=1e9,
                                   quantization_bits=None)
        for policy in ("srake", "prake"):
            rake = RakeReceiver(estimate, num_fingers=4, policy=policy)
            captures[policy].append(rake.captured_energy_fraction())
    return {policy: float(np.mean(values))
            for policy, values in captures.items()}


def _run_ablations():
    quantization = {bits: _ber_for_estimate_bits(bits)
                    for bits in (1, 2, 4, 6, None)}
    repetition_rng = np.random.default_rng(93)
    repetitions = _estimation_error_vs_repetitions(repetition_rng)
    policy_rng = np.random.default_rng(94)
    policies = _rake_policy_comparison(policy_rng)
    return {"quantization": quantization, "repetitions": repetitions,
            "policies": policies}


@pytest.mark.benchmark(group="ablations")
def test_ablation_backend_choices(benchmark):
    results = benchmark.pedantic(_run_ablations, rounds=1, iterations=1)

    print_header("ABLATION", "Digital back-end design choices")
    print("Channel-estimate precision (multipath link, "
          f"Eb/N0 = {EBN0_DB:.0f} dB):")
    print_table(
        ["estimate bits", "BER"],
        [[("float" if bits is None else bits), format_ber(ber)]
         for bits, ber in results["quantization"].items()])
    print()
    print("Preamble repetitions vs channel-estimation error (noise-dominated):")
    print_table(
        ["repetitions", "mean squared estimation error"],
        [[reps, f"{err:.3f}"]
         for reps, err in sorted(results["repetitions"].items())])
    print()
    print("RAKE finger-selection policy (4 fingers, 20 ns RMS delay spread):")
    print_table(
        ["policy", "mean captured channel energy"],
        [[policy, f"{capture:.2f}"]
         for policy, capture in results["policies"].items()])

    quantization = results["quantization"]
    # The paper's 4-bit estimate costs little versus an unquantized estimate.
    assert quantization[4] <= quantization[1]
    assert quantization[4] <= quantization[None] + 0.05
    # More preamble repetitions give a better channel estimate.
    repetitions = results["repetitions"]
    assert repetitions[8] < repetitions[1]
    # Selecting the strongest taps captures at least as much energy as
    # taking the first taps.
    assert results["policies"]["srake"] >= results["policies"]["prake"]
