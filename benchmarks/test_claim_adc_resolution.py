"""CLAIM-ADC — "A 1-bit ADC in a noise limited regime, and a 4-bit ADC in a
narrowband interferer regime are sufficient."

The benchmark sweeps the receiver ADC resolution from 1 to 6 bits in two
regimes:

* **noise-limited**: AWGN only, at an Eb/N0 where the full-resolution
  receiver is essentially error-free;
* **interferer-limited**: the same link plus a strong in-band narrowband
  interferer, with the back end's spectral monitor + digital notch engaged.

Expected shape (the paper's claim): in the noise-limited regime even the
1-bit receiver works (small loss versus 5-bit); with the interferer the
1-bit receiver breaks down while >= 4 bits recovers the link.
"""

import numpy as np
import pytest

from repro.channel.interference import ToneInterferer
from repro.core.config import Gen2Config
from repro.core.transceiver import Gen2Transceiver

from bench_utils import format_ber, print_header, print_table

EBN0_DB = 14.0
NUM_PACKETS = 4
PAYLOAD_BITS = 64
INTERFERER_AMPLITUDE = 2.0     # strong in-band CW interferer
INTERFERER_FREQUENCY = 130e6   # offset from the sub-band centre


def _base_config(adc_bits: int, notch: bool) -> Gen2Config:
    return Gen2Config.fast_test_config().with_changes(
        adc_bits=adc_bits,
        enable_digital_notch=notch,
        adc_comparator_noise_std=0.0,
        adc_capacitor_mismatch_std=0.0)


def _measure_ber(adc_bits: int, with_interferer: bool) -> float:
    config = _base_config(adc_bits, notch=with_interferer)
    transceiver = Gen2Transceiver(config, rng=np.random.default_rng(41))
    errors = 0
    total = 0
    for index in range(NUM_PACKETS):
        interferer = None
        if with_interferer:
            interferer = ToneInterferer(frequency_hz=INTERFERER_FREQUENCY,
                                        amplitude=INTERFERER_AMPLITUDE)
        simulation = transceiver.simulate_packet(
            num_payload_bits=PAYLOAD_BITS, ebn0_db=EBN0_DB,
            interferer=interferer,
            rng=np.random.default_rng(1000 + index))
        errors += simulation.result.payload_bit_errors
        total += simulation.result.num_payload_bits
    return errors / total


def _run_adc_sweep():
    resolutions = [1, 2, 3, 4, 5, 6]
    noise_only = {bits: _measure_ber(bits, with_interferer=False)
                  for bits in resolutions}
    interferer = {bits: _measure_ber(bits, with_interferer=True)
                  for bits in resolutions}
    return {"resolutions": resolutions, "noise_only": noise_only,
            "interferer": interferer}


@pytest.mark.benchmark(group="claim-adc")
def test_claim_adc_resolution(benchmark):
    results = benchmark.pedantic(_run_adc_sweep, rounds=1, iterations=1)

    print_header("CLAIM-ADC",
                 "BER vs ADC resolution, noise-limited vs narrowband-interferer")
    print(f"Eb/N0 = {EBN0_DB} dB, interferer amplitude = "
          f"{INTERFERER_AMPLITUDE} (in-band CW), digital notch engaged "
          "in the interferer regime")
    print()
    print_table(
        ["ADC bits", "BER (noise only)", "BER (with interferer)"],
        [[bits, format_ber(results["noise_only"][bits]),
          format_ber(results["interferer"][bits])]
         for bits in results["resolutions"]])

    noise_only = results["noise_only"]
    interferer = results["interferer"]
    # Paper shape 1: in the noise-limited regime the 1-bit receiver works.
    assert noise_only[1] < 0.05
    # Paper shape 2: with a strong narrowband interferer the 1-bit receiver
    # breaks down...
    assert interferer[1] > 0.05
    # ... while a >= 4-bit converter (plus the notch) restores the link.
    assert interferer[4] < 0.05
    assert interferer[5] < 0.05
