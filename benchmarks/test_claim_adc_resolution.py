"""CLAIM-ADC — "A 1-bit ADC in a noise limited regime, and a 4-bit ADC in a
narrowband interferer regime are sufficient."

The benchmark sweeps the receiver ADC resolution from 1 to 6 bits in two
regimes, as one grid on the batched sweep engine:

* **noise-limited**: the ``awgn`` scenario at an Eb/N0 where the
  full-resolution receiver is essentially error-free;
* **interferer-limited**: the ``narrowband`` scenario (strong in-band CW
  interferer) with the digital notch engaged.

The batch backend places its notch at the scenario's known frequency (a
genie estimate), so the benchmark also cross-checks the extreme
resolutions through the full per-packet stack, where the spectral monitor
has to *find* the interferer and drive the notch control loop itself.

Expected shape (the paper's claim): in the noise-limited regime even the
1-bit receiver works (small loss versus 5-bit); with the interferer the
1-bit receiver breaks down while >= 4 bits recovers the link.
"""

import numpy as np
import pytest

from repro.channel.interference import ToneInterferer
from repro.core.config import Gen2Config
from repro.core.transceiver import Gen2Transceiver
from repro.runs import RunDriver
from repro.sim import SweepEngine, sweep_grid

from bench_utils import format_ber, print_header, print_table

EBN0_DB = 14.0
NUM_PACKETS = 16
PAYLOAD_BITS = 64
RESOLUTIONS = (1, 2, 3, 4, 5, 6)
FULL_STACK_PACKETS = 4
INTERFERER_AMPLITUDE = 2.0     # matches the 'narrowband' scenario
INTERFERER_FREQUENCY = 130e6


def _base_config(notch: bool) -> Gen2Config:
    return Gen2Config.fast_test_config().with_changes(
        enable_digital_notch=notch,
        adc_comparator_noise_std=0.0,
        adc_capacitor_mismatch_std=0.0)


def _cached_regime_result(run_dir, engine, grid):
    """One regime's sweep through a persistent ``repro.runs`` run.

    The two configs (notch on/off) digest differently, so each regime
    caches under its own key space; a re-run of either must be pure cache
    hits.
    """
    driver = RunDriver.create(run_dir, engine, grid,
                              num_packets=NUM_PACKETS,
                              payload_bits_per_packet=PAYLOAD_BITS)
    driver.run_shard(0)
    rerun = RunDriver.open(run_dir, engine=engine).run_shard(0)
    assert rerun.all_cached, "identical re-run hit the simulator"
    return driver.merge()


def _run_adc_sweep(runs_dir):
    noise_result = _cached_regime_result(
        runs_dir / "noise_limited",
        SweepEngine(config=_base_config(notch=False), seed=41),
        sweep_grid([EBN0_DB], scenarios=("awgn",), adc_bits=RESOLUTIONS))
    interferer_result = _cached_regime_result(
        runs_dir / "interferer_limited",
        SweepEngine(config=_base_config(notch=True), seed=41),
        sweep_grid([EBN0_DB], scenarios=("narrowband",),
                   adc_bits=RESOLUTIONS))
    noise_only = {
        bits: noise_result.curve(scenario="awgn", adc_bits=bits).points[0].ber
        for bits in RESOLUTIONS}
    interferer = {
        bits: interferer_result.curve(scenario="narrowband",
                                      adc_bits=bits).points[0].ber
        for bits in RESOLUTIONS}
    full_stack = {bits: _full_stack_interferer_ber(bits) for bits in (1, 5)}
    return {"resolutions": RESOLUTIONS, "noise_only": noise_only,
            "interferer": interferer, "full_stack": full_stack}


def _full_stack_interferer_ber(adc_bits: int) -> float:
    """Interferer-regime BER through the whole per-packet receive chain:
    spectral monitor estimates the frequency, the control loop engages the
    digital notch — no genie knowledge."""
    config = _base_config(notch=True).with_changes(adc_bits=adc_bits)
    transceiver = Gen2Transceiver(config, rng=np.random.default_rng(41))
    errors = 0
    total = 0
    for index in range(FULL_STACK_PACKETS):
        simulation = transceiver.simulate_packet(
            num_payload_bits=PAYLOAD_BITS, ebn0_db=EBN0_DB,
            interferer=ToneInterferer(frequency_hz=INTERFERER_FREQUENCY,
                                      amplitude=INTERFERER_AMPLITUDE),
            rng=np.random.default_rng(1000 + index))
        errors += simulation.result.payload_bit_errors
        total += simulation.result.num_payload_bits
    return errors / total


@pytest.mark.benchmark(group="claim-adc")
def test_claim_adc_resolution(benchmark, tmp_path):
    results = benchmark.pedantic(_run_adc_sweep, args=(tmp_path,),
                                 rounds=1, iterations=1)

    print_header("CLAIM-ADC",
                 "BER vs ADC resolution, noise-limited vs narrowband-interferer")
    print(f"Eb/N0 = {EBN0_DB} dB, 'narrowband' scenario (strong in-band CW), "
          "digital notch engaged in the interferer regime")
    print()
    print_table(
        ["ADC bits", "BER (noise only)", "BER (with interferer)"],
        [[bits, format_ber(results["noise_only"][bits]),
          format_ber(results["interferer"][bits])]
         for bits in results["resolutions"]])

    full_stack = results["full_stack"]
    print()
    print("full-stack cross-check (spectral monitor + notch control loop): "
          f"1-bit {format_ber(full_stack[1])}, "
          f"5-bit {format_ber(full_stack[5])}")

    noise_only = results["noise_only"]
    interferer = results["interferer"]
    # Paper shape 1: in the noise-limited regime the 1-bit receiver works.
    assert noise_only[1] < 0.05
    # Paper shape 2: with a strong narrowband interferer the 1-bit receiver
    # breaks down...
    assert interferer[1] > 0.05
    # ... while a >= 4-bit converter (plus the notch) restores the link.
    assert interferer[4] < 0.05
    assert interferer[5] < 0.05
    # The full stack — where the spectral monitor must find the interferer
    # itself — reproduces the same two endpoints.
    assert full_stack[1] > 0.05
    assert full_stack[5] < 0.05
