"""BENCH-SWEEP — Batched sweep engine vs the per-packet link simulator.

The ROADMAP north star asks for hardware-speed sweeps across many
scenarios.  This benchmark runs the same 20-point Eb/N0 BER sweep two ways:

* **legacy**: :class:`repro.core.link.LinkSimulator`, one packet at a time
  through the full transceiver stack;
* **batched**: :class:`repro.sim.SweepEngine` with the vectorized kernel.

and checks the batched path is at least 10x faster while producing a sane
BER curve (monotone trend, tracks the waterfall region).  The curve
assertions are unconditional; the timing floor goes through the shared
:func:`bench_utils.required_speedup` policy, which derates it on hosts
with fewer than two usable CPUs unless ``REPRO_BENCH_STRICT=1``.
"""

import time

import numpy as np
import pytest

from repro.core.config import Gen2Config
from repro.core.link import LinkSimulator
from repro.core.transceiver import Gen2Transceiver
from repro.sim import SweepEngine

from bench_utils import (format_ber, print_header, print_table,
                         required_speedup)

EBN0_GRID_DB = np.arange(0.0, 10.0, 0.5)          # 20 operating points
NUM_PACKETS = 6
PAYLOAD_BITS = 48
MIN_SPEEDUP = 10.0


def _legacy_sweep():
    config = Gen2Config.fast_test_config()
    transceiver = Gen2Transceiver(config, rng=np.random.default_rng(17))
    simulator = LinkSimulator(transceiver, rng=np.random.default_rng(18))
    return simulator.ber_sweep(EBN0_GRID_DB, label="legacy",
                               num_packets=NUM_PACKETS,
                               payload_bits_per_packet=PAYLOAD_BITS)


def _batched_sweep():
    engine = SweepEngine(generation="gen2", seed=17)
    return engine.ber_curve(EBN0_GRID_DB, scenario="awgn",
                            num_packets=NUM_PACKETS,
                            payload_bits_per_packet=PAYLOAD_BITS,
                            label="batched")


def _run_comparison():
    start = time.perf_counter()
    legacy = _legacy_sweep()
    legacy_s = time.perf_counter() - start

    # Warm once so one-time imports/pulse construction don't bill the sweep.
    _batched_sweep()
    start = time.perf_counter()
    batched = _batched_sweep()
    batched_s = time.perf_counter() - start
    return {"legacy": legacy, "batched": batched,
            "legacy_s": legacy_s, "batched_s": batched_s}


@pytest.mark.benchmark(group="bench-sweep")
def test_bench_sweep_engine(benchmark):
    results = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    legacy, batched = results["legacy"], results["batched"]
    speedup = results["legacy_s"] / max(results["batched_s"], 1e-9)

    print_header("BENCH-SWEEP",
                 "20-point BER sweep: per-packet stack vs batched engine")
    required, floor_note = required_speedup(MIN_SPEEDUP)
    print(f"legacy  : {results['legacy_s'] * 1e3:8.1f} ms")
    print(f"batched : {results['batched_s'] * 1e3:8.1f} ms")
    print(f"speedup : {speedup:8.1f}x (floor: {required:.0f}x [{floor_note}])")
    print()
    print_table(
        ["Eb/N0 [dB]", "BER (legacy)", "BER (batched)"],
        [[f"{point.ebn0_db:.1f}", format_ber(point.ber), format_ber(fast.ber)]
         for point, fast in zip(legacy.points, batched.points)])

    assert speedup >= required, (
        f"batched sweep managed only {speedup:.1f}x over the per-packet "
        f"loop (timing floor: >= {required:.1f}x, {floor_note})")

    # The batched curve must behave like a BER waterfall: high at 0 dB,
    # (near) error-free at the top of the sweep.
    bers = batched.ber_values()
    assert bers[0] > 1e-2
    assert bers[-1] <= 1e-2
    # And the two paths agree where the full stack is past its
    # synchronization cliff (top quarter of the sweep).
    tail = len(EBN0_GRID_DB) * 3 // 4
    assert float(np.max(legacy.ber_values()[tail:])) <= 5e-2
    assert float(np.max(bers[tail:])) <= 5e-2
