"""Formatting helpers shared by the benchmark files.

Each benchmark regenerates one figure or quantitative claim of the paper
(see DESIGN.md section 4); these helpers keep the printed output uniform so
EXPERIMENTS.md can quote it directly.

:func:`append_bench_record` additionally persists each benchmark headline
to a machine-readable ledger (``BENCH_7.json`` at the repo root, or the
path in ``REPRO_BENCH_JSON``), so speedup claims can be tracked across
code revisions instead of scraped from CI logs.

:func:`required_speedup` is the shared timing-floor policy: speedup
assertions are derated on hosts with fewer than two usable CPUs (where
measured ratios drift with scheduler contention — the way the fullstack
benchmarks went flaky inside full-suite runs on small boxes) unless
``REPRO_BENCH_STRICT=1`` enforces the calibrated floors.  Parity and
correctness assertions are never derated.
"""

import json
import os
import subprocess
from pathlib import Path

__all__ = ["print_header", "print_table", "format_ber",
           "append_bench_record", "required_speedup", "usable_cpus",
           "DERATED_SPEEDUP"]

#: Timing floor on hosts that cannot reproduce the calibrated speedups
#: (< 2 usable CPUs, REPRO_BENCH_STRICT unset): the fast path must still
#: beat the reference, just not by the calibrated margin.
DERATED_SPEEDUP = 1.0


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def required_speedup(nominal: float) -> tuple[float, str]:
    """The timing floor this host must meet, and why.

    With ``REPRO_BENCH_STRICT=1`` the nominal (calibrated) floor always
    applies; otherwise hosts with fewer than two usable CPUs fall back
    to :data:`DERATED_SPEEDUP` — a 1-CPU or affinity-restricted box
    cannot reproduce a calibrated ratio, its timings are at the mercy of
    whatever else the machine is doing.  Only timing assertions go
    through this; parity assertions are unconditional.
    """
    if os.environ.get("REPRO_BENCH_STRICT", "").strip() == "1":
        return nominal, "strict (REPRO_BENCH_STRICT=1)"
    cpus = usable_cpus()
    if cpus >= 2:
        return nominal, f"calibrated floor ({cpus} usable CPUs)"
    return DERATED_SPEEDUP, (
        f"derated: only {cpus} usable CPU(s) — the calibrated "
        f">= {nominal:.0f}x floor needs an uncontended timing host "
        "(set REPRO_BENCH_STRICT=1 to enforce it anyway)")


_REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_LEDGER = "BENCH_7.json"


def print_header(experiment_id: str, description: str) -> None:
    """Print a banner naming the experiment being regenerated."""
    print()
    print("=" * 72)
    print(f"[{experiment_id}] {description}")
    print("=" * 72)


def print_table(headers, rows) -> None:
    """Print a simple aligned table."""
    widths = [max(len(str(h)), *(len(str(row[i])) for row in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i])
                        for i, cell in enumerate(row)))


def format_ber(ber: float) -> str:
    """Format a BER for table output."""
    if ber <= 0:
        return "<1e-4"
    return f"{ber:.2e}"


def _git_rev() -> str:
    """The repo's short HEAD revision, or ``"unknown"`` outside git."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=_REPO_ROOT,
            capture_output=True, text=True, timeout=10,
            check=True).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def bench_ledger_path() -> Path:
    """Where benchmark records accumulate: ``REPRO_BENCH_JSON`` if set,
    else ``BENCH_7.json`` at the repository root."""
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    return _REPO_ROOT / _BENCH_LEDGER


def append_bench_record(name: str, wall_time_s: float,
                        speedup: float | None = None,
                        backend: str | None = None, **extra) -> dict:
    """Append one benchmark headline to the JSON bench ledger.

    The ledger is a JSON list; each record carries the benchmark name,
    its headline wall time in seconds, the asserted speedup (``None``
    for absolute-time benchmarks), the backend it exercised and the git
    revision it ran at.  Extra keyword arguments land in the record
    verbatim.  The file is read-modified-written atomically (write to a
    sibling temp file, then rename); a corrupt or missing ledger starts
    a fresh list rather than failing the benchmark.
    """
    record = {
        "name": str(name),
        "wall_time_s": float(wall_time_s),
        "speedup": None if speedup is None else float(speedup),
        "backend": backend,
        "git_rev": _git_rev(),
    }
    record.update(extra)
    path = bench_ledger_path()
    records = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(loaded, list):
                records = loaded
        except (json.JSONDecodeError, OSError):
            pass  # corrupt ledger: start over rather than fail the bench
    records.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    os.replace(temp, path)
    return record
