"""Formatting helpers shared by the benchmark files.

Each benchmark regenerates one figure or quantitative claim of the paper
(see DESIGN.md section 4); these helpers keep the printed output uniform so
EXPERIMENTS.md can quote it directly.
"""

__all__ = ["print_header", "print_table", "format_ber"]


def print_header(experiment_id: str, description: str) -> None:
    """Print a banner naming the experiment being regenerated."""
    print()
    print("=" * 72)
    print(f"[{experiment_id}] {description}")
    print("=" * 72)


def print_table(headers, rows) -> None:
    """Print a simple aligned table."""
    widths = [max(len(str(h)), *(len(str(row[i])) for row in rows))
              for i, h in enumerate(headers)]
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i])
                        for i, cell in enumerate(row)))


def format_ber(ber: float) -> str:
    """Format a BER for table output."""
    if ber <= 0:
        return "<1e-4"
    return f"{ber:.2e}"
