"""CLAIM-ACQ — Fast acquisition through back-end parallelization.

Paper claims regenerated here:

* "a fast signal acquisition algorithm must be implemented to reduce the
  duration of the preamble to a value comparable with current wireless
  systems (~20 us)";
* gen-1: "Through further parallelization, packet synchronization is
  obtained in less than 70 us";
* the back end "requires parallelization to reduce the packet
  synchronization time".

The benchmark sweeps the hypothesis-parallelism of the coarse search and
reports the resulting synchronization time for the gen-1 search space, plus
Monte-Carlo detection statistics of the actual acquisition block at several
Eb/N0 operating points.
"""

import numpy as np
import pytest

from repro.constants import GEN1_SYNC_TIME_LIMIT_S, TARGET_PREAMBLE_DURATION_S
from repro.core.config import Gen1Config, Gen2Config
from repro.core.link import LinkSimulator
from repro.core.transceiver import Gen2Transceiver
from repro.dsp.parallelizer import acquisition_time_s

from bench_utils import print_header, print_table


def _sync_time_for_parallelism(config: Gen1Config, parallelism: int) -> float:
    """Preamble air time plus the parallel timing search latency."""
    hypotheses = (config.samples_per_pri_adc
                  * config.packet.preamble.sequence_length)
    search = acquisition_time_s(num_hypotheses=hypotheses,
                                parallelism=parallelism,
                                backend_clock_hz=config.backend_clock_hz)
    return config.preamble_duration_s + search


def _run_acquisition_experiment():
    gen1 = Gen1Config()
    gen2 = Gen2Config()
    parallelism_sweep = [1, 2, 4, 8, 16, 32]
    sync_times = {p: _sync_time_for_parallelism(gen1, p)
                  for p in parallelism_sweep}

    # Monte-Carlo detection statistics of the real acquisition block.
    config = Gen2Config.fast_test_config()
    detection = {}
    for ebn0_db in (0.0, 6.0, 12.0):
        transceiver = Gen2Transceiver(config, rng=np.random.default_rng(51))
        simulator = LinkSimulator(transceiver, rng=np.random.default_rng(52))
        stats = simulator.acquisition_statistics(
            ebn0_db=ebn0_db, num_packets=8, payload_bits_per_packet=16)
        detection[ebn0_db] = stats
    return {
        "gen1": gen1,
        "gen2_preamble_s": gen2.preamble_duration_s,
        "sync_times": sync_times,
        "detection": detection,
    }


@pytest.mark.benchmark(group="claim-acq")
def test_claim_acquisition_time(benchmark):
    results = benchmark.pedantic(_run_acquisition_experiment, rounds=1,
                                 iterations=1)
    gen1 = results["gen1"]

    print_header("CLAIM-ACQ", "Acquisition latency vs back-end parallelism")
    print_table(
        ["quantity", "paper", "measured / configured"],
        [
            ["gen-1 preamble air time", "(part of < 70 us budget)",
             f"{gen1.preamble_duration_s * 1e6:.1f} us"],
            ["gen-2 preamble air time", "~20 us target",
             f"{results['gen2_preamble_s'] * 1e6:.1f} us"],
            ["gen-1 sync time at paper parallelism",
             "< 70 us",
             f"{results['sync_times'][gen1.acquisition_parallelism] * 1e6:.1f} us"],
        ])
    print()
    print_table(
        ["parallel search lanes", "gen-1 sync time [us]", "meets < 70 us"],
        [[p, f"{t * 1e6:.1f}", str(t < GEN1_SYNC_TIME_LIMIT_S)]
         for p, t in sorted(results["sync_times"].items())])
    print()
    print_table(
        ["Eb/N0 [dB]", "detection probability", "RMS timing error [samples]",
         "mean search latency [us]"],
        [[f"{ebn0:.0f}", f"{stats.detection_probability:.2f}",
          f"{stats.rms_timing_error_samples:.2f}",
          f"{stats.mean_search_time_s * 1e6:.1f}"]
         for ebn0, stats in sorted(results["detection"].items())])

    sync_times = results["sync_times"]
    # Serial search misses the 70 us budget; the paper's parallelized search
    # meets it — that is exactly why the architecture parallelizes.
    assert sync_times[1] > GEN1_SYNC_TIME_LIMIT_S
    assert sync_times[gen1.acquisition_parallelism] < GEN1_SYNC_TIME_LIMIT_S
    # Latency decreases monotonically with parallelism.
    ordered = [sync_times[p] for p in sorted(sync_times)]
    assert all(b <= a for a, b in zip(ordered, ordered[1:]))
    # The gen-2 preamble fits the ~20 us target.
    assert results["gen2_preamble_s"] <= TARGET_PREAMBLE_DURATION_S
    # Detection probability improves with Eb/N0 and is high at 12 dB.
    detection = results["detection"]
    assert detection[12.0].detection_probability >= 0.9
    assert (detection[12.0].detection_probability
            >= detection[0.0].detection_probability)
