"""CLAIM-IF — Interferer detection, frequency estimation, and notch mitigation.

Paper claim: "The digital back end detects the presence of an interferer and
estimates its frequency that may be used in the front end notch filter."

The benchmark measures, as a function of signal-to-interference ratio (SIR):

* the spectral monitor's detection probability,
* its frequency-estimation error, and
* the link BER with the mitigation loop disabled versus enabled
  (spectral monitor -> digital notch ahead of synchronization).
"""

import numpy as np
import pytest

from repro.channel.interference import ToneInterferer, interferer_amplitude_for_sir
from repro.core.config import Gen2Config
from repro.core.transceiver import Gen2Transceiver
from repro.dsp.spectral_monitor import SpectralMonitor
from repro.utils import dsp

from bench_utils import format_ber, print_header, print_table

EBN0_DB = 14.0
INTERFERER_FREQUENCY = 140e6
NUM_PACKETS = 3
PAYLOAD_BITS = 64
SIR_GRID_DB = (0.0, -10.0, -20.0)


def _detection_and_frequency(sir_db: float, rng: np.random.Generator):
    """Monitor statistics on a synthetic UWB-signal-plus-interferer capture."""
    monitor = SpectralMonitor(1e9)
    detections = 0
    frequency_errors = []
    for _ in range(10):
        signal = 0.1 * (rng.standard_normal(4096)
                        + 1j * rng.standard_normal(4096))
        amplitude = interferer_amplitude_for_sir(signal, sir_db)
        tone = ToneInterferer(frequency_hz=INTERFERER_FREQUENCY,
                              amplitude=amplitude)
        report = monitor.analyze(tone.add_to(signal, 1e9))
        if report.detected:
            detections += 1
            frequency_errors.append(
                report.frequency_error_hz(INTERFERER_FREQUENCY))
    probability = detections / 10
    mean_error = float(np.mean(frequency_errors)) if frequency_errors else float("nan")
    return probability, mean_error


def _link_ber(sir_db: float, notch: bool) -> float:
    config = Gen2Config.fast_test_config().with_changes(
        enable_digital_notch=notch)
    transceiver = Gen2Transceiver(config, rng=np.random.default_rng(71))
    errors = 0
    total = 0
    for index in range(NUM_PACKETS):
        # Size the interferer against the transmit waveform's average power.
        probe = transceiver.transmitter.transmit(
            np.zeros(PAYLOAD_BITS, dtype=np.int64)).waveform
        amplitude = interferer_amplitude_for_sir(probe, sir_db)
        interferer = ToneInterferer(frequency_hz=INTERFERER_FREQUENCY,
                                    amplitude=amplitude)
        simulation = transceiver.simulate_packet(
            num_payload_bits=PAYLOAD_BITS, ebn0_db=EBN0_DB,
            interferer=interferer, rng=np.random.default_rng(4000 + index))
        errors += simulation.result.payload_bit_errors
        total += simulation.result.num_payload_bits
    return errors / total


def _run_interferer_experiment():
    rng = np.random.default_rng(72)
    monitor_rows = []
    for sir_db in SIR_GRID_DB:
        probability, frequency_error = _detection_and_frequency(sir_db, rng)
        monitor_rows.append((sir_db, probability, frequency_error))

    ber_rows = []
    for sir_db in (-10.0, -16.0):
        without = _link_ber(sir_db, notch=False)
        with_notch = _link_ber(sir_db, notch=True)
        ber_rows.append((sir_db, without, with_notch))
    return {"monitor_rows": monitor_rows, "ber_rows": ber_rows}


@pytest.mark.benchmark(group="claim-if")
def test_claim_interferer_mitigation(benchmark):
    results = benchmark.pedantic(_run_interferer_experiment, rounds=1,
                                 iterations=1)

    print_header("CLAIM-IF",
                 "Interferer detection, frequency estimation, notch mitigation")
    print_table(
        ["SIR [dB]", "detection probability", "frequency error [MHz]"],
        [[f"{sir:.0f}", f"{prob:.2f}",
          "n/a" if np.isnan(err) else f"{err / 1e6:.2f}"]
         for sir, prob, err in results["monitor_rows"]])
    print()
    print_table(
        ["SIR [dB]", "BER without mitigation", "BER with monitor + notch"],
        [[f"{sir:.0f}", format_ber(without), format_ber(with_notch)]
         for sir, without, with_notch in results["ber_rows"]])

    monitor = {sir: (prob, err) for sir, prob, err in results["monitor_rows"]}
    # Strong interferers are detected reliably and located to within a
    # couple of FFT bins (the bin spacing is ~3.9 MHz at 1 GS/s / 256).
    assert monitor[-20.0][0] >= 0.9
    assert monitor[-20.0][1] < 8e6
    # Detection probability does not decrease as the interferer gets stronger.
    assert monitor[-20.0][0] >= monitor[0.0][0]
    # Mitigation helps: at strong interference the notch-enabled receiver has
    # a lower (or equal) BER than the unprotected one at every SIR measured,
    # and strictly better at the strongest interference level.
    for _, without, with_notch in results["ber_rows"]:
        assert with_notch <= without
    strongest = results["ber_rows"][-1]
    assert strongest[2] < strongest[1]
