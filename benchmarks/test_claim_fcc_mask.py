"""CLAIM-FCC — FCC mask compliance and the 14-channel band plan.

Paper claims regenerated here:

* UWB communication is approved from 3.1 to 10.6 GHz with a maximum EIRP
  spectral density of -41.3 dBm/MHz;
* the gen-2 signal is a sequence of 500 MHz pulses up-converted to one of
  14 channels in that band.

The benchmark generates the gen-2 pulse train for every sub-band, scales it
to the maximum power the mask allows, verifies compliance, and reports the
integrated transmit power (which should land near the classic -14.3 dBm
figure for a 500 MHz channel) together with the band-plan geometry.
"""

import numpy as np
import pytest

from repro.constants import (
    DEFAULT_BAND_PLAN,
    FCC_EIRP_LIMIT_DBM_PER_MHZ,
    FCC_UWB_HIGH_HZ,
    FCC_UWB_LOW_HZ,
)
from repro.channel.pathloss import max_transmit_power_dbm
from repro.pulses.fcc_mask import check_mask_compliance, max_compliant_scale
from repro.pulses.shapes import gaussian_pulse

from bench_utils import print_header, print_table

SAMPLE_RATE = 2e9
PRI_S = 10e-9
NUM_PULSES = 200


def _pulse_train() -> np.ndarray:
    """A representative 100 Mbps BPSK pulse train at complex baseband."""
    pulse = gaussian_pulse(500e6, SAMPLE_RATE).waveform.astype(complex)
    samples_per_pri = int(round(PRI_S * SAMPLE_RATE))
    rng = np.random.default_rng(61)
    train = np.zeros(NUM_PULSES * samples_per_pri, dtype=complex)
    for index in range(NUM_PULSES):
        polarity = 1.0 if rng.integers(0, 2) else -1.0
        start = index * samples_per_pri
        segment = pulse[:samples_per_pri]
        train[start:start + segment.size] += polarity * segment
    return train


def _run_fcc_experiment():
    train = _pulse_train()
    rows = []
    worst_margins = []
    compliant_flags = []
    for channel in range(DEFAULT_BAND_PLAN.num_channels):
        carrier = DEFAULT_BAND_PLAN.center_frequency(channel)
        scale = max_compliant_scale(train, SAMPLE_RATE, carrier_hz=carrier)
        report = check_mask_compliance(train * scale, SAMPLE_RATE,
                                       carrier_hz=carrier)
        low, high = DEFAULT_BAND_PLAN.channel_edges(channel)
        rows.append([channel, f"{carrier / 1e9:.2f}",
                     f"{low / 1e9:.2f}-{high / 1e9:.2f}",
                     str(report.compliant),
                     f"{report.worst_margin_db:.2f}"])
        worst_margins.append(report.worst_margin_db)
        compliant_flags.append(report.compliant)
    return {
        "rows": rows,
        "worst_margins": worst_margins,
        "compliant_flags": compliant_flags,
        "integrated_power_dbm": max_transmit_power_dbm(500e6),
    }


@pytest.mark.benchmark(group="claim-fcc")
def test_claim_fcc_mask(benchmark):
    results = benchmark.pedantic(_run_fcc_experiment, rounds=1, iterations=1)

    print_header("CLAIM-FCC",
                 "-41.3 dBm/MHz mask compliance across the 14-channel plan")
    print_table(
        ["quantity", "paper", "measured / configured"],
        [
            ["regulatory band", "3.1-10.6 GHz",
             f"{FCC_UWB_LOW_HZ / 1e9:.1f}-{FCC_UWB_HIGH_HZ / 1e9:.1f} GHz"],
            ["PSD limit", "-41.3 dBm/MHz",
             f"{FCC_EIRP_LIMIT_DBM_PER_MHZ} dBm/MHz"],
            ["number of sub-bands", "14",
             str(DEFAULT_BAND_PLAN.num_channels)],
            ["max integrated TX power in 500 MHz", "(-14.3 dBm)",
             f"{results['integrated_power_dbm']:.1f} dBm"],
        ])
    print()
    print_table(
        ["channel", "centre [GHz]", "band [GHz]", "mask compliant",
         "worst margin [dB]"],
        results["rows"])

    assert all(results["compliant_flags"])
    assert DEFAULT_BAND_PLAN.fits_in_fcc_band()
    assert results["integrated_power_dbm"] == pytest.approx(-14.3, abs=0.2)
    # The calibration leaves only a small margin (we scale up to the mask).
    assert max(results["worst_margins"]) < 3.0
