"""Shared fixtures for the benchmark harness."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Reproducible random generator for benchmark workloads."""
    return np.random.default_rng(2005)
