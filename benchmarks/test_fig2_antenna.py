"""FIG2 — Planar elliptical UWB antenna (Fig. 2).

The paper presents an electrically small (4.2 cm x 2.7 cm) planar antenna
covering 3.1-10.6 GHz.  The figure itself is a photograph; the reproducible
content is the antenna's behaviour over the band, which this benchmark
regenerates from the behavioural model: return loss across 3.1-10.6 GHz,
in-band gain flatness, lower cut-off implied by the element size, and the
pulse distortion (impulse-response spread) it adds to the composite channel.
"""

import numpy as np
import pytest

from repro.constants import (
    ANTENNA_LENGTH_M,
    ANTENNA_WIDTH_M,
    FCC_UWB_HIGH_HZ,
    FCC_UWB_LOW_HZ,
)
from repro.pulses.modulated import modulated_gaussian_pulse
from repro.rf.antenna import PlanarEllipticalAntenna

from bench_utils import print_header, print_table


def _run_antenna_experiment():
    antenna = PlanarEllipticalAntenna()
    frequencies = np.linspace(FCC_UWB_LOW_HZ, FCC_UWB_HIGH_HZ, 256)
    return_loss = antenna.return_loss_db(frequencies)
    gain = antenna.gain_db(frequencies)

    # Pulse-distortion measure: pass a 500 MHz pulse on a 4.5 GHz carrier
    # through the antenna and measure how much the energy spreads in time.
    pulse = modulated_gaussian_pulse(4.488e9, 500e6, sample_rate_hz=40e9)
    distorted = antenna.apply(pulse.passband, pulse.sample_rate_hz)
    energy = np.cumsum(np.abs(distorted) ** 2)
    energy /= energy[-1]
    t10 = np.searchsorted(energy, 0.10) / pulse.sample_rate_hz
    t90 = np.searchsorted(energy, 0.90) / pulse.sample_rate_hz

    sample_points = {
        3.5e9: None, 5.0e9: None, 7.0e9: None, 9.0e9: None, 10.5e9: None}
    rows = []
    for frequency in sample_points:
        rows.append([f"{frequency / 1e9:.1f}",
                     f"{float(antenna.return_loss_db(frequency)):.1f}",
                     f"{float(antenna.gain_db(frequency)):.1f}"])
    return {
        "antenna": antenna,
        "worst_return_loss_db": float(np.max(return_loss)),
        "gain_ripple_db": float(np.max(gain) - np.min(gain)),
        "lower_cutoff_hz": antenna.lower_cutoff_hz,
        "energy_spread_s": t90 - t10,
        "rows": rows,
    }


@pytest.mark.benchmark(group="fig2")
def test_fig2_antenna(benchmark):
    results = benchmark.pedantic(_run_antenna_experiment, rounds=1,
                                 iterations=1)

    print_header("FIG2", "Planar elliptical UWB antenna (Fig. 2)")
    print_table(
        ["quantity", "paper", "measured"],
        [
            ["element size", "4.2 cm x 2.7 cm",
             f"{ANTENNA_LENGTH_M * 100:.1f} cm x {ANTENNA_WIDTH_M * 100:.1f} cm"],
            ["operating band", "3.1-10.6 GHz",
             f"covers band: {results['antenna'].covers_band(FCC_UWB_LOW_HZ, FCC_UWB_HIGH_HZ)}"],
            ["worst in-band return loss", "< -10 dB (typ.)",
             f"{results['worst_return_loss_db']:.1f} dB"],
            ["in-band gain ripple", "(small)",
             f"{results['gain_ripple_db']:.1f} dB"],
            ["lower cut-off (quarter-wave)", "~3 GHz",
             f"{results['lower_cutoff_hz'] / 1e9:.2f} GHz"],
            ["10-90% energy spread of a 2 ns pulse", "(sub-ns)",
             f"{results['energy_spread_s'] * 1e9:.2f} ns"],
        ])
    print()
    print_table(["frequency [GHz]", "S11 [dB]", "gain [dBi]"], results["rows"])

    assert results["worst_return_loss_db"] < -8.0
    assert results["antenna"].covers_band(FCC_UWB_LOW_HZ, FCC_UWB_HIGH_HZ)
    assert results["lower_cutoff_hz"] < FCC_UWB_LOW_HZ
    assert results["gain_ripple_db"] < 6.0
    assert results["energy_spread_s"] < 3e-9
