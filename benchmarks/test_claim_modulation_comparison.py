"""CLAIM-PROTO — Modulation-scheme comparison on the discrete prototype.

Paper claim: the discrete prototype "is also flexible enough to generate all
kinds of signals within a bandwidth of 500 MHz, allowing the comparison
between different modulation schemes."

The benchmark runs that comparison: BPSK, OOK, binary PPM, and 4-PAM pulse
trains generated on the platform, demodulated with matched filters, over a
range of Eb/N0, next to the textbook AWGN expressions.

Expected shape: BPSK is the most efficient (antipodal), OOK/PPM trail it by
roughly 3 dB (orthogonal/unipolar signalling), and 4-PAM trades another few
dB for twice the bits per pulse.
"""

import numpy as np
import pytest

from repro.core.metrics import theoretical_bpsk_ber
from repro.prototype.comparison import ModulationComparison

from bench_utils import format_ber, print_header, print_table

EBN0_GRID_DB = [0.0, 4.0, 8.0, 12.0]
NUM_BITS = 4000
SCHEMES = ("bpsk", "ook", "ppm", "pam4")


def _run_comparison():
    comparison = ModulationComparison(rng=np.random.default_rng(81))
    results = comparison.run_all(SCHEMES, EBN0_GRID_DB, num_bits=NUM_BITS)
    return results


@pytest.mark.benchmark(group="claim-proto")
def test_claim_modulation_comparison(benchmark):
    results = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)

    print_header("CLAIM-PROTO",
                 "Modulation-scheme comparison on the discrete prototype")
    headers = ["Eb/N0 [dB]"] + [scheme.upper() for scheme in SCHEMES] \
        + ["BPSK theory"]
    rows = []
    for index, ebn0 in enumerate(EBN0_GRID_DB):
        row = [f"{ebn0:.0f}"]
        for scheme in SCHEMES:
            row.append(format_ber(float(results[scheme].measured_ber[index])))
        row.append(format_ber(float(theoretical_bpsk_ber(ebn0))))
        rows.append(row)
    print_table(headers, rows)

    bpsk = results["bpsk"].measured_ber
    ook = results["ook"].measured_ber
    ppm = results["ppm"].measured_ber
    pam4 = results["pam4"].measured_ber

    # Shape 1: every scheme improves with Eb/N0.
    for scheme in SCHEMES:
        ber = results[scheme].measured_ber
        assert ber[-1] <= ber[0]
    # Shape 2: BPSK is the most power-efficient binary scheme at mid Eb/N0.
    mid = EBN0_GRID_DB.index(8.0)
    assert bpsk[mid] <= ook[mid]
    assert bpsk[mid] <= ppm[mid]
    # Shape 3: 4-PAM needs more Eb/N0 than BPSK for the same BER.
    assert pam4[mid] >= bpsk[mid]
    # Shape 4: measured BPSK tracks the textbook curve to within a small
    # implementation loss at the top of the sweep.
    assert bpsk[-1] <= 10 * max(float(theoretical_bpsk_ber(EBN0_GRID_DB[-1])),
                                1.0 / NUM_BITS)
