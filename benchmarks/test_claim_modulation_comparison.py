"""CLAIM-PROTO — Modulation-scheme comparison on the discrete prototype.

Paper claim: the discrete prototype "is also flexible enough to generate all
kinds of signals within a bandwidth of 500 MHz, allowing the comparison
between different modulation schemes."

The benchmark runs that comparison through a cached ``repro.runs`` sweep —
one grid of (Eb/N0 x modulation) points over the gen-2 500 MHz waveform,
measured with ideal matched filters (no ADC quantization), persisted in a
content-addressed result store and consumed through the exported curve
artifact — next to the textbook AWGN expressions, and cross-checks the
discrete prototype platform itself
(:class:`repro.prototype.comparison.ModulationComparison`) at the top of
the sweep so a regression in the prototype signal path still moves this
claim.  A second pass over the same run directory must be pure cache hits
(the ``repro.runs`` contract), so the benchmark asserts that too.

Expected shape: BPSK is the most efficient (antipodal), OOK trails it by
roughly 3 dB (unipolar signalling), PPM trails further because the 2 ns
position offset leaves the wide pulses partially correlated, and 4-PAM
trades another few dB for twice the bits per pulse.
"""

import numpy as np
import pytest

from repro.core.metrics import theoretical_bpsk_ber
from repro.prototype.comparison import ModulationComparison
from repro.runs import RunDriver, export_curves, load_artifact
from repro.sim import SweepEngine, sweep_grid

from bench_utils import format_ber, print_header, print_table

EBN0_GRID_DB = [0.0, 4.0, 8.0, 12.0]
NUM_PACKETS = 40
PAYLOAD_BITS = 100                     # 4000 bits per grid point
SCHEMES = ("bpsk", "ook", "ppm", "pam4")
PROTOTYPE_BITS = 2000


def _run_comparison(run_dir):
    engine = SweepEngine(generation="gen2", seed=81, quantize=False)
    grid = sweep_grid(EBN0_GRID_DB, scenarios=("awgn",), modulations=SCHEMES)
    driver = RunDriver.create(run_dir, engine, grid,
                              num_packets=NUM_PACKETS,
                              payload_bits_per_packet=PAYLOAD_BITS)
    driver.run_shard(0)
    # The repro.runs contract: re-opening the same run and re-requesting
    # the grid must be pure cache hits.
    rerun = RunDriver.open(run_dir, engine=engine).run_shard(0)
    assert rerun.all_cached, "identical re-run hit the simulator"
    # Consume the measurements the way downstream plotting does: through
    # the exported curve artifact, not in-memory arrays.
    artifact = export_curves(driver.merge(), driver.artifacts_dir,
                             "modulation_comparison",
                             metadata={"seed": engine.seed,
                                       "num_packets": NUM_PACKETS})
    loaded = load_artifact(artifact.json_path)
    engine_bers = {scheme: loaded.curve(f"awgn/{scheme}").ber_values()
                   for scheme in SCHEMES}
    prototype = ModulationComparison(rng=np.random.default_rng(81))
    prototype_bers = prototype.run_all(SCHEMES, EBN0_GRID_DB,
                                       num_bits=PROTOTYPE_BITS)
    return engine_bers, prototype_bers


@pytest.mark.benchmark(group="claim-proto")
def test_claim_modulation_comparison(benchmark, tmp_path):
    results, prototype = benchmark.pedantic(
        _run_comparison, args=(tmp_path / "modulation_run",), rounds=1,
        iterations=1)

    print_header("CLAIM-PROTO",
                 "Modulation-scheme comparison on the batched sweep engine")
    headers = ["Eb/N0 [dB]"] + [scheme.upper() for scheme in SCHEMES] \
        + ["BPSK theory"]
    rows = []
    for index, ebn0 in enumerate(EBN0_GRID_DB):
        row = [f"{ebn0:.0f}"]
        for scheme in SCHEMES:
            row.append(format_ber(float(results[scheme][index])))
        row.append(format_ber(float(theoretical_bpsk_ber(ebn0))))
        rows.append(row)
    print_table(headers, rows)

    bpsk = results["bpsk"]
    ook = results["ook"]
    ppm = results["ppm"]
    pam4 = results["pam4"]

    # Shape 1: every scheme improves with Eb/N0.
    for scheme in SCHEMES:
        ber = results[scheme]
        assert ber[-1] <= ber[0]
    # Shape 2: BPSK is the most power-efficient binary scheme at mid Eb/N0.
    mid = EBN0_GRID_DB.index(8.0)
    assert bpsk[mid] <= ook[mid]
    assert bpsk[mid] <= ppm[mid]
    # Shape 3: 4-PAM needs more Eb/N0 than BPSK for the same BER.
    assert pam4[mid] >= bpsk[mid]
    # Shape 4: measured BPSK tracks the textbook curve to within a small
    # implementation loss at the top of the sweep.
    total_bits = NUM_PACKETS * PAYLOAD_BITS
    assert bpsk[-1] <= 10 * max(float(theoretical_bpsk_ber(EBN0_GRID_DB[-1])),
                                1.0 / total_bits)
    # Shape 5: the discrete prototype platform reproduces the same ordering
    # (this claim is about the prototype's flexibility, so its own signal
    # path must stay exercised).
    proto_mid = {scheme: float(prototype[scheme].measured_ber[mid])
                 for scheme in SCHEMES}
    assert proto_mid["bpsk"] <= proto_mid["ook"]
    assert proto_mid["bpsk"] <= proto_mid["ppm"]
    assert proto_mid["bpsk"] <= proto_mid["pam4"]
    assert float(prototype["bpsk"].measured_ber[-1]) <= 10 * max(
        float(theoretical_bpsk_ber(EBN0_GRID_DB[-1])), 1.0 / PROTOTYPE_BITS)
