"""BENCH-BACKENDS — Array backends and result-transport comparison.

Two questions from the ROADMAP's "Fast sweeps" section:

1. **Array backends**: the batch kernel now runs on a pluggable
   :class:`repro.sim.backends.ArrayBackend`.  This benchmark times the
   same grid on every backend available on this machine (NumPy always;
   CuPy/JAX when installed) and checks the accelerators stay within
   binomial tolerance of the NumPy reference.

2. **Result transport**: process fan-out can return results either by
   pickling them through the executor pipe (historical) or by writing
   them into ``multiprocessing.shared_memory`` blocks
   (:mod:`repro.sim.shm`).  For small scalar results the two are
   equivalent; the shared-memory path exists for *bulk* results — a
   million-packet point's per-packet error vector is an 8 MB ``int64``
   array per point.  The transport benchmark isolates exactly that
   round trip: a worker produces a 1M-packet result and hands it back
   both ways.  Shared memory must win (acceptance: the shm fan-out
   beats the pickling pool on a 1M-packet point).

Both sections print tables; the asserts are deliberately conservative
(min-of-N timing, generous statistical tolerance) because this file runs
inside the tier-1 suite on loaded single-core CI boxes.
"""

import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.core.metrics import BERPoint
from repro.sim import SweepEngine, available_backends, sweep_grid
from repro.sim.shm import ChunkResultBlock

from bench_utils import (append_bench_record, format_ber, print_header,
                         print_table)

EBN0_GRID_DB = (2.0, 6.0, 10.0)
NUM_PACKETS = 24
PAYLOAD_BITS = 48

TRANSPORT_PACKETS = 1_000_000   # "a 1M-packet point"
TRANSPORT_ROUNDS = 5


# ----------------------------------------------------------------------
# Array-backend comparison
# ----------------------------------------------------------------------
def _run_grid(array_backend: str):
    engine = SweepEngine(generation="gen2", seed=23,
                         array_backend=array_backend)
    grid = sweep_grid(EBN0_GRID_DB, scenarios=("awgn", "cm1"))
    start = time.perf_counter()
    result = engine.run(grid, num_packets=NUM_PACKETS,
                        payload_bits_per_packet=PAYLOAD_BITS)
    elapsed = time.perf_counter() - start
    return result, elapsed


@pytest.mark.benchmark(group="bench-backends")
def test_bench_array_backends(benchmark):
    backends = available_backends()
    results = benchmark.pedantic(
        lambda: {name: _run_grid(name) for name in backends},
        rounds=1, iterations=1)

    print_header("BENCH-BACKENDS",
                 "one grid, every array backend available on this machine")
    reference, reference_s = results["numpy"]
    rows = []
    for name in backends:
        result, elapsed = results[name]
        mid = result.entries[1]
        rows.append([name, f"{elapsed * 1e3:8.1f} ms",
                     f"{reference_s / max(elapsed, 1e-9):5.2f}x",
                     format_ber(mid[1].ber)])
    print_table(["backend", "grid time", "vs numpy",
                 f"BER @ {EBN0_GRID_DB[1]:.0f} dB (awgn)"], rows)
    for name in backends:
        _, elapsed = results[name]
        append_bench_record(f"bench-backends/{name}", elapsed,
                            speedup=reference_s / max(elapsed, 1e-9),
                            backend=name)

    assert "numpy" in backends
    for name in backends:
        if name == "numpy":
            continue
        result, _ = results[name]
        for (point, expected), (_, got) in zip(reference.entries,
                                               result.entries):
            pooled = (expected.bit_errors + got.bit_errors) / (
                expected.total_bits + got.total_bits)
            sigma = np.sqrt(max(pooled * (1 - pooled), 1e-9)
                            / expected.total_bits)
            tolerance = 4.0 * sigma + 2.0 / expected.total_bits
            assert abs(got.ber - expected.ber) <= tolerance, (
                f"{name} diverges from numpy at {point}")


# ----------------------------------------------------------------------
# Transport comparison: pickling pool vs shared-memory fan-out
# ----------------------------------------------------------------------
def _produce_point_result(seed: int,
                          num_packets: int = TRANSPORT_PACKETS):
    """A worker's view of one finished million-packet grid point: the
    scalar measurement plus the per-packet error vector (the bulk)."""
    rng = np.random.default_rng(seed)
    errors = (rng.random(num_packets) < 1e-3).astype(np.int64)
    measurement = BERPoint(ebn0_db=6.0, bit_errors=int(errors.sum()),
                           total_bits=num_packets * 64,
                           packets_sent=num_packets,
                           packets_failed=int(np.count_nonzero(errors)))
    return measurement, errors


def _produce_into_block(args) -> int:
    """Shared-memory return path: write the result in place, ship a slot."""
    block_name, seed = args
    measurement, errors = _produce_point_result(seed)
    block = ChunkResultBlock.attach(block_name)
    try:
        block.write_result(0, measurement, errors)
    finally:
        block.close()
    return 0


def _time_transports():
    # Allocate (and free) one block before forking so the workers inherit
    # the parent's shared-memory resource tracker — the same ordering
    # SweepEngine's shared-memory chunk scheduler guarantees.
    primer = ChunkResultBlock.allocate(1, 0)
    primer.close()
    primer.unlink()

    pickle_times = []
    shm_times = []
    with ProcessPoolExecutor(max_workers=1) as pool:
        pool.submit(_produce_point_result, 0).result()   # warm the worker
        for round_index in range(TRANSPORT_ROUNDS):
            start = time.perf_counter()
            measurement, errors = pool.submit(_produce_point_result,
                                              round_index).result()
            pickle_times.append(time.perf_counter() - start)
            assert errors.size == TRANSPORT_PACKETS
        for round_index in range(TRANSPORT_ROUNDS):
            block = ChunkResultBlock.allocate(1, TRANSPORT_PACKETS)
            try:
                start = time.perf_counter()
                pool.submit(_produce_into_block,
                            (block.name, round_index)).result()
                measurement, errors = block.read_result(0)
                shm_times.append(time.perf_counter() - start)
            finally:
                block.close()
                block.unlink()
            assert errors.size == TRANSPORT_PACKETS
    return min(pickle_times), min(shm_times)


@pytest.mark.benchmark(group="bench-backends")
def test_bench_shared_memory_beats_pickling_pool(benchmark):
    pickle_s, shm_s = benchmark.pedantic(_time_transports, rounds=1,
                                         iterations=1)
    speedup = pickle_s / max(shm_s, 1e-9)

    print_header("BENCH-TRANSPORT",
                 "1M-packet point result fan-out: pickling pool vs "
                 "shared memory")
    print(f"result payload : {TRANSPORT_PACKETS:,} packets "
          f"({TRANSPORT_PACKETS * 8 / 1e6:.0f} MB of per-packet error "
          "counts + the scalar record)")
    print(f"pickling pool  : {pickle_s * 1e3:8.1f} ms "
          f"(min of {TRANSPORT_ROUNDS})")
    print(f"shared memory  : {shm_s * 1e3:8.1f} ms "
          f"(min of {TRANSPORT_ROUNDS})")
    print(f"speedup        : {speedup:8.2f}x")
    append_bench_record("bench-transport/shared-memory", shm_s,
                        speedup=speedup, backend="shm")

    # Both paths pay the identical result-construction cost; the delta is
    # pure transport.  Shared memory must beat the pickling pool.
    assert shm_s < pickle_s, (
        f"shared-memory fan-out ({shm_s * 1e3:.1f} ms) did not beat the "
        f"pickling pool ({pickle_s * 1e3:.1f} ms) on a "
        f"{TRANSPORT_PACKETS:,}-packet point")
