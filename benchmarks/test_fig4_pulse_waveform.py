"""FIG4 — 500 MHz pulse with 5 GHz carrier (Fig. 4).

Fig. 4 is an oscilloscope capture of the discrete prototype's output: a
500 MHz-bandwidth pulse on a 5 GHz carrier, about 150 mV peak, shown on a
580 ps/div time base.  The benchmark regenerates the waveform from the
prototype-platform model and reports the measurable quantities of the
figure: peak amplitude, carrier frequency (from the spectral peak), -10 dB
bandwidth, envelope duration, and whether the same pulse train respects the
FCC mask once scaled to the regulatory limit.
"""

import numpy as np
import pytest

from repro.constants import (
    FIG4_AMPLITUDE_V,
    FIG4_BANDWIDTH_HZ,
    FIG4_CARRIER_HZ,
    FIG4_NUM_DIVS,
    FIG4_TIME_PER_DIV_S,
)
from repro.pulses.fcc_mask import check_mask_compliance, max_compliant_scale
from repro.pulses.modulated import fig4_prototype_pulse
from repro.pulses.spectrum import summarize_spectrum
from repro.prototype.platform import DiscretePrototypePlatform


from bench_utils import print_header, print_table


def _run_fig4_experiment():
    # The waveform as the oscilloscope would capture it.
    pulse = fig4_prototype_pulse()
    summary = summarize_spectrum(pulse.passband, pulse.sample_rate_hz)

    # Envelope duration (10% - 90% energy) of the pulse.
    energy = np.cumsum(np.abs(pulse.passband) ** 2)
    energy /= energy[-1]
    t10 = np.searchsorted(energy, 0.10) / pulse.sample_rate_hz
    t90 = np.searchsorted(energy, 0.90) / pulse.sample_rate_hz

    # The same pulse produced by the prototype platform (DAC + filters).
    platform = DiscretePrototypePlatform()
    platform_pulse = platform.generate_passband(platform.reference_pulse(),
                                                amplitude=FIG4_AMPLITUDE_V)

    # FCC compliance of a repetitive version of the pulse scaled to the mask.
    repetition = np.zeros(int(round(20e-9 * pulse.sample_rate_hz)))
    single = pulse.passband
    repetition[:single.size] += single[:repetition.size]
    train = np.tile(repetition, 50)
    scale = max_compliant_scale(train, pulse.sample_rate_hz)
    report = check_mask_compliance(train * scale, pulse.sample_rate_hz)

    return {
        "pulse": pulse,
        "summary": summary,
        "duration_s": t90 - t10,
        "platform_peak": platform_pulse.peak_amplitude,
        "compliant": report.compliant,
        "worst_margin_db": report.worst_margin_db,
    }


@pytest.mark.benchmark(group="fig4")
def test_fig4_pulse_waveform(benchmark):
    results = benchmark.pedantic(_run_fig4_experiment, rounds=1, iterations=1)
    pulse = results["pulse"]
    summary = results["summary"]
    window = FIG4_TIME_PER_DIV_S * FIG4_NUM_DIVS

    print_header("FIG4", "500 MHz pulse with 5 GHz carrier (Fig. 4)")
    print_table(
        ["quantity", "paper (figure)", "measured"],
        [
            ["carrier frequency", "5 GHz",
             f"{summary.peak_frequency_hz / 1e9:.2f} GHz (spectral peak)"],
            ["peak amplitude", "150 mV",
             f"{pulse.peak_amplitude * 1e3:.0f} mV"],
            ["platform output peak", "150 mV",
             f"{results['platform_peak'] * 1e3:.0f} mV"],
            ["-10 dB bandwidth", "500 MHz",
             f"{summary.bandwidth_10db_hz / 1e6:.0f} MHz"],
            ["10-90% energy duration", "(a few ns)",
             f"{results['duration_s'] * 1e9:.2f} ns"],
            ["display window", "5.8 ns (10 x 580 ps)",
             f"{pulse.duration_s * 1e9:.2f} ns"],
            ["qualifies as UWB (FCC definition)", "yes",
             str(summary.qualifies_as_uwb)],
            ["pulse train fits FCC mask after scaling", "required",
             f"{results['compliant']} (margin {results['worst_margin_db']:.1f} dB)"],
        ])

    assert abs(summary.peak_frequency_hz - FIG4_CARRIER_HZ) < 0.3e9
    assert pulse.peak_amplitude == pytest.approx(FIG4_AMPLITUDE_V, rel=1e-6)
    assert 0.3 * FIG4_BANDWIDTH_HZ < summary.bandwidth_10db_hz < 2.0 * FIG4_BANDWIDTH_HZ
    assert pulse.duration_s >= window * 0.98
    assert summary.qualifies_as_uwb
    assert results["compliant"]
