"""CLAIM-PWR — Power budget and the power/QoS/data-rate trade-off.

Paper claims regenerated here:

* "The large complexity required in the synchronization and demodulation of
  the UWB signal results in more than half of the system power being
  dissipated in the digital back end and the ADC."
* "The specification of the data converter resolution determines not only
  its power dissipation but also that of the digital back end."
* "This receiver allows us to trade off power dissipation with signal
  processing complexity, quality of service and data rate, adapting to
  channel conditions."

The benchmark builds the per-block power budgets of both generations, sweeps
the ADC resolution, and exercises the adaptation controller's rate/power
frontier.
"""

import pytest

from repro.core.adaptation import AdaptationController, ChannelConditions
from repro.core.config import Gen2Config
from repro.power.budget import gen1_power_budget, gen2_power_budget

from bench_utils import print_header, print_table


def _run_power_experiment():
    gen1 = gen1_power_budget()
    gen2 = gen2_power_budget()

    resolution_sweep = {}
    for bits in (1, 3, 5, 7):
        budget = gen2_power_budget(adc_bits=bits)
        resolution_sweep[bits] = {
            "total_w": budget.total_w(),
            "adc_w": budget.group_power_w("adc"),
            "digital_w": budget.group_power_w("digital"),
        }

    controller = AdaptationController(Gen2Config())
    frontier = controller.rate_power_frontier(ChannelConditions(snr_db=20.0))
    return {"gen1": gen1, "gen2": gen2,
            "resolution_sweep": resolution_sweep, "frontier": frontier}


@pytest.mark.benchmark(group="claim-pwr")
def test_claim_power_budget(benchmark):
    results = benchmark.pedantic(_run_power_experiment, rounds=1, iterations=1)
    gen1 = results["gen1"]
    gen2 = results["gen2"]

    print_header("CLAIM-PWR", "System power budgets and adaptation trade-off")
    for name, budget in (("gen-1", gen1), ("gen-2", gen2)):
        print(f"{name}: total {budget.total_w() * 1e3:.1f} mW, "
              f"ADC+digital share {budget.adc_plus_digital_fraction():.0%}")
        print_table(
            ["block", "group", "power [mW]", "share"],
            [[block, group, f"{power * 1e3:.2f}", f"{fraction:.1%}"]
             for block, group, power, fraction in budget.as_table()])
        print()

    print_table(
        ["ADC bits", "ADC power [mW]", "digital power [mW]", "total [mW]"],
        [[bits, f"{row['adc_w'] * 1e3:.1f}", f"{row['digital_w'] * 1e3:.1f}",
          f"{row['total_w'] * 1e3:.1f}"]
         for bits, row in sorted(results["resolution_sweep"].items())])
    print()
    print_table(
        ["data rate [Mbps]", "receiver power [mW]"],
        [[f"{rate / 1e6:.1f}", f"{power * 1e3:.1f}"]
         for rate, power in results["frontier"]])

    # Paper shape 1: ADC + digital back end take more than half the power.
    assert gen1.adc_plus_digital_fraction() > 0.5
    assert gen2.adc_plus_digital_fraction() > 0.5
    # Paper shape 2: ADC resolution drives both ADC and back-end power.
    sweep = results["resolution_sweep"]
    assert sweep[7]["adc_w"] > sweep[1]["adc_w"]
    assert sweep[7]["digital_w"] > sweep[1]["digital_w"]
    # Paper shape 3: the adaptation frontier trades data rate against power —
    # the highest-rate mode burns more power than the most robust mode.
    frontier = results["frontier"]
    assert len(frontier) >= 3
    assert frontier[-1][1] != frontier[0][1]
