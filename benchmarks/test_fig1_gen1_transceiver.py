"""FIG1 — First-generation single-chip transceiver (Fig. 1).

Paper claims regenerated here:

* a wireless link of 193 kbps was demonstrated;
* the 2 GSPS 4-way time-interleaved flash ADC parallelizes the signal;
* packet synchronization is obtained in less than 70 us;
* timing synchronization is performed fully in the digital back end.

The benchmark runs the gen-1 transceiver at its paper-rate configuration
(104 pulses per bit at a 20 MHz PRF -> 192.3 kbps) for the rate/sync
accounting, and a reduced-pulses-per-bit configuration for the Monte-Carlo
BER measurement so the benchmark stays fast.
"""

import numpy as np
import pytest

from repro.constants import GEN1_DEMONSTRATED_RATE_BPS, GEN1_SYNC_TIME_LIMIT_S
from repro.core.config import Gen1Config
from repro.core.link import LinkSimulator
from repro.core.transceiver import Gen1Transceiver
from repro.dsp.parallelizer import acquisition_time_s

from bench_utils import format_ber, print_header, print_table


def _paper_rate_config() -> Gen1Config:
    """The gen-1 configuration at the paper's demonstrated data rate."""
    return Gen1Config()


def _fast_link_config() -> Gen1Config:
    """Same architecture, fewer pulses per bit, for Monte-Carlo BER."""
    return Gen1Config.fast_test_config()


def _run_gen1_experiment():
    paper_config = _paper_rate_config()

    # --- data rate and ADC bookkeeping -------------------------------
    data_rate = paper_config.data_rate_bps
    adc_rate = paper_config.adc_rate_hz
    interleave = paper_config.adc_interleave_factor

    # --- packet synchronization latency -------------------------------
    # The coarse search sweeps one full PRI of timing hypotheses at the ADC
    # rate; with the back end's hypothesis parallelism the search time is:
    hypotheses = paper_config.samples_per_pri_adc * \
        paper_config.packet.preamble.sequence_length
    search_time = acquisition_time_s(
        num_hypotheses=hypotheses,
        parallelism=paper_config.acquisition_parallelism,
        backend_clock_hz=paper_config.backend_clock_hz)
    sync_time = paper_config.preamble_duration_s + search_time

    # --- Monte-Carlo link at reduced pulses-per-bit --------------------
    link_config = _fast_link_config()
    transceiver = Gen1Transceiver(link_config, rng=np.random.default_rng(11))
    simulator = LinkSimulator(transceiver, rng=np.random.default_rng(12))
    curve = simulator.ber_sweep([6.0, 10.0, 14.0], label="gen1_awgn",
                                num_packets=4, payload_bits_per_packet=48)
    stats = simulator.acquisition_statistics(ebn0_db=12.0, num_packets=6,
                                             payload_bits_per_packet=16)
    return {
        "data_rate_bps": data_rate,
        "adc_rate_hz": adc_rate,
        "interleave": interleave,
        "sync_time_s": sync_time,
        "curve": curve,
        "detection_probability": stats.detection_probability,
        "rms_timing_error": stats.rms_timing_error_samples,
    }


@pytest.mark.benchmark(group="fig1")
def test_fig1_gen1_transceiver(benchmark):
    results = benchmark.pedantic(_run_gen1_experiment, rounds=1, iterations=1)

    print_header("FIG1", "Gen-1 baseband pulsed transceiver (Fig. 1)")
    print_table(
        ["quantity", "paper", "measured"],
        [
            ["link data rate", "193 kbps",
             f"{results['data_rate_bps'] / 1e3:.1f} kbps"],
            ["ADC aggregate rate", "2 GSPS",
             f"{results['adc_rate_hz'] / 1e9:.1f} GSPS"],
            ["ADC interleave factor", "4", str(results["interleave"])],
            ["packet sync time", "< 70 us",
             f"{results['sync_time_s'] * 1e6:.1f} us"],
            ["preamble detection prob. (12 dB)", "(not reported)",
             f"{results['detection_probability']:.2f}"],
            ["RMS timing error", "(not reported)",
             f"{results['rms_timing_error']:.2f} samples"],
        ])
    print()
    print_table(
        ["Eb/N0 [dB]", "BER", "PER"],
        [[f"{p.ebn0_db:.1f}", format_ber(p.ber), f"{p.per:.2f}"]
         for p in results["curve"].points])

    # Shape checks against the paper's claims.
    assert results["data_rate_bps"] == pytest.approx(
        GEN1_DEMONSTRATED_RATE_BPS, rel=0.01)
    assert results["sync_time_s"] < GEN1_SYNC_TIME_LIMIT_S
    assert results["detection_probability"] >= 0.8
    # BER improves monotonically with Eb/N0 (allowing Monte-Carlo ties).
    bers = results["curve"].ber_values()
    assert bers[-1] <= bers[0]
