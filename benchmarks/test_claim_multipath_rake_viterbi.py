"""CLAIM-MP — Multipath robustness via RAKE combining and Viterbi (MLSE).

The paper's system considerations: the indoor channel has an RMS delay
spread on the order of 20 ns; "the energy spread caused by the multipath can
be compensated using a RAKE receiver" and "the inter-symbol interference due
to multipath can be addressed with a Viterbi demodulator".

The benchmark isolates the back-end blocks on a symbol-level link over a
heavy multipath channel (exponential power-delay profile with ~20 ns RMS
delay spread) and compares three receivers at the same Eb/N0:

* a single-finger (matched-filter-only) receiver,
* an S-RAKE with maximal-ratio combining,
* the same RAKE followed by the MLSE (Viterbi) equalizer.

Expected shape: the single-finger receiver loses most of the energy and
suffers ISI; the RAKE recovers the energy; adding the Viterbi removes the
residual ISI errors.  A RAKE-finger sweep shows the captured-energy /
complexity trade-off behind the "programmable RAKE" knob.
"""

import numpy as np
import pytest

from repro.channel.awgn import awgn, noise_std_for_ebn0
from repro.channel.multipath import exponential_decay_channel
from repro.constants import TYPICAL_RMS_DELAY_SPREAD_S
from repro.dsp.channel_estimation import ChannelEstimator
from repro.dsp.rake import RakeReceiver
from repro.dsp.viterbi import MLSEEqualizer
from repro.phy.preamble import PreambleConfig, build_preamble_symbols
from repro.pulses.shapes import gaussian_pulse
from repro.utils.bits import bit_errors, random_bits

from bench_utils import format_ber, print_header, print_table

SAMPLE_RATE = 1e9
SAMPLES_PER_CHIP = 16          # 16 ns symbol period at 1 GS/s
NUM_BITS = 400
EBN0_DB = 14.0
NUM_CHANNELS = 3


def _build_waveform(chips, pulse):
    waveform = np.zeros(chips.size * SAMPLES_PER_CHIP)
    for index, chip in enumerate(chips):
        start = index * SAMPLES_PER_CHIP
        segment = pulse[:min(pulse.size, SAMPLES_PER_CHIP)]
        waveform[start:start + segment.size] += chip * segment
    return waveform


def _run_single_channel(seed: int):
    rng = np.random.default_rng(seed)
    pulse = gaussian_pulse(500e6, SAMPLE_RATE).waveform

    preamble_config = PreambleConfig(sequence_degree=6, num_repetitions=4)
    preamble_chips = build_preamble_symbols(preamble_config)
    bits = random_bits(NUM_BITS, rng)
    data_chips = 2.0 * bits - 1.0

    chips = np.concatenate((preamble_chips, data_chips))
    clean = _build_waveform(chips, pulse)

    channel = exponential_decay_channel(
        TYPICAL_RMS_DELAY_SPREAD_S, 2e-9, rng=rng, complex_gains=False)
    faded = channel.apply(np.concatenate((clean, np.zeros(128))), SAMPLE_RATE)

    energy_per_bit = np.sum(np.abs(clean[preamble_chips.size
                                         * SAMPLES_PER_CHIP:]) ** 2) / NUM_BITS
    noise_std = noise_std_for_ebn0(energy_per_bit, EBN0_DB)
    received = awgn(faded, noise_std, rng=rng)

    # Channel estimation from the preamble (4-bit precision, as in the paper).
    estimator = ChannelEstimator(
        preamble_symbols=preamble_config.base_sequence_bipolar(),
        samples_per_symbol=SAMPLES_PER_CHIP,
        pulse_template=pulse[:SAMPLES_PER_CHIP],
        num_taps=64, quantization_bits=4)
    estimate = estimator.estimate_averaged(
        received, 0, SAMPLE_RATE,
        num_repetitions=preamble_config.num_repetitions)

    data_start = preamble_chips.size * SAMPLES_PER_CHIP
    template = pulse[:SAMPLES_PER_CHIP]

    def demodulate(rake: RakeReceiver, use_mlse: bool) -> np.ndarray:
        weights = rake.combining_weights()
        normalization = max(np.sum(np.abs(weights) ** 2)
                            * np.sum(np.abs(template) ** 2), 1e-30)
        statistics = rake.combine_stream(
            received, template, SAMPLES_PER_CHIP, data_start,
            NUM_BITS) / normalization
        if use_mlse:
            isi = rake.isi_taps(SAMPLES_PER_CHIP, max_symbol_taps=3)
            if isi.size > 1:
                return MLSEEqualizer(isi).equalize_to_bits(statistics)
        return (np.real(statistics) > 0).astype(np.int64)

    single = RakeReceiver(estimate, num_fingers=1, policy="srake")
    rake8 = RakeReceiver(estimate, num_fingers=8, policy="srake")

    results = {
        "single_finger": bit_errors(bits, demodulate(single, False)),
        "rake8": bit_errors(bits, demodulate(rake8, False)),
        "rake8_viterbi": bit_errors(bits, demodulate(rake8, True)),
    }
    finger_capture = {
        fingers: RakeReceiver(estimate, num_fingers=fingers,
                              policy="srake").captured_energy_fraction()
        for fingers in (1, 2, 4, 8, 16)
    }
    return results, finger_capture, channel.rms_delay_spread_s()


def _run_multipath_experiment():
    totals = {"single_finger": 0, "rake8": 0, "rake8_viterbi": 0}
    captures = {1: [], 2: [], 4: [], 8: [], 16: []}
    spreads = []
    for seed in range(NUM_CHANNELS):
        errors, finger_capture, spread = _run_single_channel(700 + seed)
        for key in totals:
            totals[key] += errors[key]
        for fingers, value in finger_capture.items():
            captures[fingers].append(value)
        spreads.append(spread)
    total_bits = NUM_BITS * NUM_CHANNELS
    ber = {key: value / total_bits for key, value in totals.items()}
    mean_capture = {fingers: float(np.mean(values))
                    for fingers, values in captures.items()}
    return {"ber": ber, "capture": mean_capture,
            "mean_delay_spread_s": float(np.mean(spreads)),
            "total_bits": total_bits}


@pytest.mark.benchmark(group="claim-mp")
def test_claim_multipath_rake_viterbi(benchmark):
    results = benchmark.pedantic(_run_multipath_experiment, rounds=1,
                                 iterations=1)
    ber = results["ber"]

    print_header("CLAIM-MP",
                 "RAKE + Viterbi on a ~20 ns RMS delay-spread channel")
    print(f"channel RMS delay spread (mean of realizations): "
          f"{results['mean_delay_spread_s'] * 1e9:.1f} ns, "
          f"Eb/N0 = {EBN0_DB} dB, {results['total_bits']} bits")
    print()
    print_table(
        ["receiver", "BER"],
        [
            ["single finger (no RAKE)", format_ber(ber["single_finger"])],
            ["S-RAKE, 8 fingers", format_ber(ber["rake8"])],
            ["S-RAKE + Viterbi (MLSE)", format_ber(ber["rake8_viterbi"])],
        ])
    print()
    print_table(
        ["RAKE fingers", "captured channel energy"],
        [[fingers, f"{fraction:.2f}"]
         for fingers, fraction in sorted(results["capture"].items())])

    # Paper shape: RAKE recovers the spread energy; Viterbi addresses ISI.
    assert ber["rake8"] < ber["single_finger"]
    assert ber["rake8_viterbi"] <= ber["rake8"]
    # Energy capture grows with the number of fingers.
    capture = results["capture"]
    assert capture[1] < capture[4] < capture[16]
    assert capture[16] > 0.6
    # The channel generator really does produce ~20 ns RMS delay spread.
    assert 8e-9 < results["mean_delay_spread_s"] < 40e-9
