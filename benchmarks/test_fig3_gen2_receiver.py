"""FIG3 — Second-generation direct-conversion receiver (Fig. 3).

Paper claims regenerated here:

* the system is designed to transmit 100 Mbps using 500 MHz pulses
  up-converted to one of 14 channels;
* the receiver is a direct-conversion front end with two 5-bit SAR ADCs;
* the channel estimate (4-bit precision), RAKE, and Viterbi demodulator in
  the digital back end close the link under multipath.

The benchmark closes an end-to-end gen-2 link over AWGN and over an
802.15.3a CM1 multipath channel and reports BER versus Eb/N0 plus the
back-end configuration actually exercised.
"""

import numpy as np
import pytest

from repro.channel.saleh_valenzuela import CM1, SalehValenzuelaChannelGenerator
from repro.constants import GEN2_TARGET_DATA_RATE_BPS
from repro.core.config import Gen2Config
from repro.core.link import LinkSimulator
from repro.core.transceiver import Gen2Transceiver

from bench_utils import format_ber, print_header, print_table


def _link_config() -> Gen2Config:
    """Paper-rate waveform (10 ns PRI -> 100 Mbps) with a compact preamble."""
    return Gen2Config.fast_test_config().with_changes(
        pulse_repetition_interval_s=10e-9,
        pulses_per_bit=1,
        rake_fingers=6,
        channel_estimate_taps=48,
        use_mlse=False)


def _run_gen2_experiment():
    config = _link_config()
    ebn0_grid = [6.0, 10.0, 14.0]

    # AWGN link.
    transceiver = Gen2Transceiver(config, rng=np.random.default_rng(31))
    simulator = LinkSimulator(transceiver, rng=np.random.default_rng(32))
    awgn_curve = simulator.ber_sweep(ebn0_grid, label="gen2_awgn",
                                     num_packets=4,
                                     payload_bits_per_packet=64)

    # CM1 multipath link (LOS 0-4 m), new channel realization per packet.
    channel_rng = np.random.default_rng(33)
    generator = SalehValenzuelaChannelGenerator(CM1, rng=channel_rng,
                                                complex_gains=True)
    mp_transceiver = Gen2Transceiver(config, rng=np.random.default_rng(34))
    mp_simulator = LinkSimulator(mp_transceiver, rng=np.random.default_rng(35))
    cm1_curve = mp_simulator.ber_sweep([10.0, 16.0], label="gen2_cm1",
                                       num_packets=6,
                                       payload_bits_per_packet=64,
                                       channel_factory=generator.realize)

    return {
        "config": config,
        "awgn_curve": awgn_curve,
        "cm1_curve": cm1_curve,
    }


@pytest.mark.benchmark(group="fig3")
def test_fig3_gen2_receiver(benchmark):
    results = benchmark.pedantic(_run_gen2_experiment, rounds=1, iterations=1)
    config = results["config"]

    print_header("FIG3", "Gen-2 direct-conversion receiver (Fig. 3)")
    print_table(
        ["quantity", "paper", "measured / configured"],
        [
            ["uncoded channel bit rate", "100 Mbps",
             f"{config.data_rate_bps / 1e6:.0f} Mbps"],
            ["number of sub-bands", "14", "14 (band plan)"],
            ["ADC", "two 5-bit SAR, > 500 MSps",
             f"two {config.adc_bits}-bit SAR, {config.adc_rate_hz / 1e6:.0f} MSps"],
            ["channel-estimate precision", "up to 4 bits",
             f"{config.channel_estimate_bits} bits"],
            ["RAKE fingers (programmable)", "(programmable)",
             str(config.rake_fingers)],
        ])
    print()
    print("AWGN link:")
    print_table(
        ["Eb/N0 [dB]", "BER", "PER"],
        [[f"{p.ebn0_db:.1f}", format_ber(p.ber), f"{p.per:.2f}"]
         for p in results["awgn_curve"].points])
    print()
    print("CM1 multipath link (fresh realization per packet):")
    print_table(
        ["Eb/N0 [dB]", "BER", "PER"],
        [[f"{p.ebn0_db:.1f}", format_ber(p.ber), f"{p.per:.2f}"]
         for p in results["cm1_curve"].points])

    # Shape checks.
    assert config.data_rate_bps == pytest.approx(GEN2_TARGET_DATA_RATE_BPS)
    awgn_bers = results["awgn_curve"].ber_values()
    assert awgn_bers[-1] <= awgn_bers[0]
    # The link closes (error-free packets) at the top of the sweep in AWGN.
    assert awgn_bers[-1] < 0.05
    # Multipath costs something relative to AWGN at the same Eb/N0 but the
    # RAKE still brings the link to a usable operating point at high Eb/N0
    # (an occasional deep CM1 realization can still drop a whole packet in
    # this small Monte-Carlo sample, so the bound is loose).
    assert results["cm1_curve"].ber_values()[-1] < 0.3
