"""Tests for channel estimation, RAKE combining, and the MLSE equalizer."""

import numpy as np
import pytest

from repro.channel.multipath import MultipathChannel
from repro.dsp.channel_estimation import ChannelEstimate, ChannelEstimator
from repro.dsp.rake import RakeReceiver
from repro.dsp.viterbi import MLSEEqualizer, symbol_spaced_channel
from repro.phy.preamble import PreambleConfig, build_preamble_symbols
from repro.pulses.shapes import gaussian_pulse

SAMPLE_RATE = 1e9
SAMPLES_PER_CHIP = 8


def _pulse_template():
    return gaussian_pulse(500e6, SAMPLE_RATE).waveform[:SAMPLES_PER_CHIP]


def _preamble_waveform(chips, pulse):
    waveform = np.zeros(chips.size * SAMPLES_PER_CHIP)
    for index, chip in enumerate(chips):
        start = index * SAMPLES_PER_CHIP
        waveform[start:start + pulse.size] += chip * pulse[:SAMPLES_PER_CHIP]
    return waveform


def _estimator(quantization_bits=None, num_taps=24):
    config = PreambleConfig(sequence_degree=5, num_repetitions=1)
    base = config.base_sequence_bipolar()
    return base, ChannelEstimator(
        preamble_symbols=base,
        samples_per_symbol=SAMPLES_PER_CHIP,
        pulse_template=_pulse_template(),
        num_taps=num_taps,
        quantization_bits=quantization_bits)


class TestChannelEstimator:
    def test_delta_channel_gives_dominant_first_tap(self):
        base, estimator = _estimator()
        waveform = _preamble_waveform(base, _pulse_template())
        padded = np.concatenate((waveform, np.zeros(64)))
        estimate = estimator.estimate(padded, 0, SAMPLE_RATE)
        assert np.argmax(np.abs(estimate.taps)) == 0
        assert abs(estimate.taps[0]) == pytest.approx(1.0, abs=0.1)
        # Off-path taps are small.
        assert np.max(np.abs(estimate.taps[3:])) < 0.3

    def test_echo_appears_at_correct_delay(self):
        base, estimator = _estimator()
        waveform = _preamble_waveform(base, _pulse_template())
        channel = MultipathChannel([0.0, 10e-9], [1.0, 0.6])
        received = channel.apply(np.concatenate((waveform, np.zeros(64))),
                                 SAMPLE_RATE)
        estimate = estimator.estimate(received, 0, SAMPLE_RATE)
        echo_tap = int(round(10e-9 * SAMPLE_RATE))
        assert abs(estimate.taps[echo_tap]) > 0.4
        assert abs(estimate.taps[0]) > abs(estimate.taps[echo_tap])

    def test_quantization_applied(self):
        base, estimator = _estimator(quantization_bits=4)
        waveform = _preamble_waveform(base, _pulse_template())
        estimate = estimator.estimate(np.concatenate((waveform, np.zeros(64))),
                                      0, SAMPLE_RATE)
        assert estimate.quantization_bits == 4
        # With 4 bits there are at most 16 distinct real levels.
        assert np.unique(np.round(estimate.taps.real, 9)).size <= 16

    def test_averaging_reduces_noise(self, rng):
        """Averaging across repetitions reduces the noise-dominated error.

        Run several noise realizations at a heavy noise level (so the error
        is noise-limited rather than limited by the sequence's correlation
        sidelobes) and compare the average estimation error.
        """
        config = PreambleConfig(sequence_degree=5, num_repetitions=4)
        base = config.base_sequence_bipolar()
        full = build_preamble_symbols(config)
        estimator = ChannelEstimator(
            preamble_symbols=base, samples_per_symbol=SAMPLES_PER_CHIP,
            pulse_template=_pulse_template(), num_taps=24,
            quantization_bits=None)
        waveform = _preamble_waveform(full, _pulse_template())
        truth = np.zeros(24)
        truth[0] = 1.0

        errors_single = []
        errors_averaged = []
        for _ in range(6):
            noisy = waveform + 2.0 * rng.standard_normal(waveform.size)
            padded = np.concatenate((noisy, np.zeros(64)))
            single = estimator.estimate(padded, 0, SAMPLE_RATE)
            averaged = estimator.estimate_averaged(padded, 0, SAMPLE_RATE,
                                                   num_repetitions=4)
            errors_single.append(np.sum(np.abs(single.taps - truth) ** 2))
            errors_averaged.append(np.sum(np.abs(averaged.taps - truth) ** 2))
        assert np.mean(errors_averaged) < np.mean(errors_single)

    def test_not_enough_samples_raises(self):
        base, estimator = _estimator()
        with pytest.raises(ValueError):
            estimator.estimate(np.zeros(16), 0, SAMPLE_RATE)


class TestChannelEstimate:
    def _estimate(self, taps):
        return ChannelEstimate(taps=np.asarray(taps, dtype=complex),
                               sample_rate_hz=1e9, quantization_bits=None)

    def test_strongest_taps(self):
        estimate = self._estimate([0.1, 0.9, 0.0, 0.5])
        indices, values = estimate.strongest_taps(2)
        assert list(indices) == [1, 3]
        assert abs(values[0]) == pytest.approx(0.9)

    def test_energy_capture_monotone(self):
        estimate = self._estimate([0.5, 0.4, 0.3, 0.2, 0.1])
        captures = [estimate.energy_capture(k) for k in range(1, 6)]
        assert all(b >= a for a, b in zip(captures, captures[1:]))
        assert captures[-1] == pytest.approx(1.0)

    def test_rms_delay_spread(self):
        estimate = self._estimate([1.0, 0.0, 0.0, 0.0, 1.0])
        # Two equal taps 4 ns apart -> 2 ns RMS spread at 1 GS/s.
        assert estimate.rms_delay_spread_s() == pytest.approx(2e-9)


class TestRakeReceiver:
    def _estimate(self, taps):
        return ChannelEstimate(taps=np.asarray(taps, dtype=complex),
                               sample_rate_hz=SAMPLE_RATE,
                               quantization_bits=None)

    def test_srake_selects_strongest(self):
        estimate = self._estimate([0.2, 0.0, 0.9, 0.0, 0.6, 0.1])
        rake = RakeReceiver(estimate, num_fingers=2, policy="srake")
        delays = sorted(f.delay_samples for f in rake.fingers)
        assert delays == [2, 4]

    def test_prake_selects_first(self):
        estimate = self._estimate([0.2, 0.0, 0.9, 0.0, 0.6, 0.1])
        rake = RakeReceiver(estimate, num_fingers=2, policy="prake")
        delays = sorted(f.delay_samples for f in rake.fingers)
        assert delays == [0, 2]

    def test_arake_uses_all_nonzero(self):
        estimate = self._estimate([0.2, 0.0, 0.9, 0.0, 0.6, 0.1])
        rake = RakeReceiver(estimate, policy="arake")
        assert rake.num_active_fingers == 4

    def test_captured_energy_increases_with_fingers(self):
        estimate = self._estimate([0.5, 0.4, 0.3, 0.2, 0.1])
        captures = [RakeReceiver(estimate, num_fingers=k, policy="srake")
                    .captured_energy_fraction() for k in (1, 2, 3, 5)]
        assert all(b >= a for a, b in zip(captures, captures[1:]))

    def test_snr_gain_positive_for_multipath(self):
        estimate = self._estimate([0.7, 0.0, 0.7])
        rake = RakeReceiver(estimate, num_fingers=2, policy="srake")
        assert rake.snr_gain_db_over_single_finger() == pytest.approx(3.0,
                                                                      abs=0.1)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            RakeReceiver(self._estimate([1.0]), policy="xrake")

    def test_combine_recovers_symbol_sign(self):
        pulse = _pulse_template()
        # Two-path channel: direct + echo at 2 samples.
        taps = np.zeros(8, dtype=complex)
        taps[0] = 1.0
        taps[2] = 0.5
        estimate = self._estimate(taps)
        rake = RakeReceiver(estimate, num_fingers=2, policy="srake")
        # Build one received symbol: -1 * (pulse + 0.5*pulse delayed by 2).
        received = np.zeros(64)
        received[:pulse.size] += -1.0 * pulse
        received[2:2 + pulse.size] += -0.5 * pulse
        statistic = rake.combine(received, pulse, 0)
        assert statistic.real < 0

    def test_combine_stream_length(self):
        estimate = self._estimate([1.0])
        rake = RakeReceiver(estimate, num_fingers=1)
        stats = rake.combine_stream(np.zeros(200), _pulse_template(),
                                    symbol_period_samples=16,
                                    first_symbol_sample=0, num_symbols=10)
        assert stats.size == 10

    def test_zero_estimate_falls_back_to_single_finger(self):
        estimate = self._estimate([0.0, 0.0, 0.0])
        rake = RakeReceiver(estimate, num_fingers=2)
        assert rake.num_active_fingers == 1


class TestSymbolSpacedChannel:
    def test_single_path_gives_single_tap(self):
        estimate = ChannelEstimate(taps=np.array([1.0, 0.1, 0.0, 0.0]),
                                   sample_rate_hz=1e9, quantization_bits=None)
        isi = symbol_spaced_channel(estimate, symbol_period_samples=4)
        assert isi.size == 1
        assert abs(isi[0]) == pytest.approx(1.0)

    def test_long_channel_gives_multiple_taps(self):
        taps = np.zeros(16)
        taps[0] = 1.0
        taps[9] = 0.8
        estimate = ChannelEstimate(taps=taps, sample_rate_hz=1e9,
                                   quantization_bits=None)
        isi = symbol_spaced_channel(estimate, symbol_period_samples=4,
                                    max_symbol_taps=4)
        assert isi.size >= 3
        assert abs(isi[2]) > 0.3

    def test_max_taps_respected(self):
        taps = np.ones(40)
        estimate = ChannelEstimate(taps=taps, sample_rate_hz=1e9,
                                   quantization_bits=None)
        isi = symbol_spaced_channel(estimate, symbol_period_samples=4,
                                    max_symbol_taps=3)
        assert isi.size == 3


class TestMLSEEqualizer:
    def test_no_isi_reduces_to_slicer(self):
        equalizer = MLSEEqualizer([1.0])
        symbols = np.array([1.0, -1.0, 1.0, 1.0, -1.0])
        decided = equalizer.equalize(symbols + 0.1)
        assert np.array_equal(np.sign(decided.real), np.sign(symbols))

    def test_corrects_isi(self, rng):
        # Channel with strong ISI: h = [1, 0.6].
        isi = np.array([1.0, 0.6])
        true_symbols = 2.0 * rng.integers(0, 2, size=200) - 1.0
        received = np.convolve(true_symbols, isi)[:true_symbols.size]
        received += 0.2 * rng.standard_normal(received.size)

        equalizer = MLSEEqualizer(isi)
        mlse_decisions = equalizer.equalize(received)
        mlse_errors = np.sum(np.sign(mlse_decisions.real) != true_symbols)

        slicer_errors = np.sum(np.sign(received) != true_symbols)
        assert mlse_errors < slicer_errors

    def test_equalize_to_bits(self):
        equalizer = MLSEEqualizer([1.0])
        bits = equalizer.equalize_to_bits(np.array([0.8, -0.9, 0.7]))
        assert np.array_equal(bits, [1, 0, 1])

    def test_trellis_size_guard(self):
        with pytest.raises(ValueError):
            MLSEEqualizer(np.ones(16), alphabet=(-1, 1, -3, 3))

    def test_empty_input(self):
        equalizer = MLSEEqualizer([1.0, 0.3])
        assert equalizer.equalize(np.zeros(0)).size == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MLSEEqualizer([])
        with pytest.raises(ValueError):
            MLSEEqualizer([1.0], alphabet=(1.0,))
