"""Tests for the RAKE-output ISI model used by the MLSE."""

import numpy as np
import pytest

from repro.dsp.channel_estimation import ChannelEstimate
from repro.dsp.rake import RakeReceiver
from repro.dsp.viterbi import rake_isi_taps


def _estimate(taps):
    return ChannelEstimate(taps=np.asarray(taps, dtype=complex),
                           sample_rate_hz=1e9, quantization_bits=None)


class TestRakeIsiTaps:
    def test_first_tap_is_unity(self):
        estimate = _estimate([1.0, 0.2, 0.0, 0.0, 0.5, 0.0])
        taps = rake_isi_taps(estimate, finger_delays=[0, 1],
                             finger_weights=[1.0, 0.2],
                             symbol_period_samples=4)
        assert taps[0] == pytest.approx(1.0)

    def test_no_isi_for_short_channel(self):
        estimate = _estimate([1.0, 0.3, 0.0, 0.0])
        taps = rake_isi_taps(estimate, finger_delays=[0, 1],
                             finger_weights=[1.0, 0.3],
                             symbol_period_samples=8, max_symbol_taps=3)
        # Channel shorter than one symbol period: only the main tap remains.
        assert taps.size == 1

    def test_postcursor_from_late_energy(self):
        # Energy one symbol period after the fingers produces a postcursor.
        h = np.zeros(12)
        h[0] = 1.0
        h[4] = 0.6     # one symbol period (4 samples) later
        estimate = _estimate(h)
        taps = rake_isi_taps(estimate, finger_delays=[0], finger_weights=[1.0],
                             symbol_period_samples=4, max_symbol_taps=3)
        assert taps.size >= 2
        assert abs(taps[1]) == pytest.approx(0.6, rel=1e-6)

    def test_postcursor_accumulates_over_fingers(self):
        h = np.zeros(16)
        h[0] = 1.0
        h[2] = 0.5
        h[8] = 0.4     # one symbol after finger 0
        h[10] = 0.3    # one symbol after finger 2
        estimate = _estimate(h)
        taps = rake_isi_taps(estimate, finger_delays=[0, 2],
                             finger_weights=[1.0, 0.5],
                             symbol_period_samples=8, max_symbol_taps=2)
        expected_g1 = (1.0 * 0.4 + 0.5 * 0.3) / (1.0 * 1.0 + 0.5 * 0.5)
        assert abs(taps[1]) == pytest.approx(expected_g1, rel=1e-6)

    def test_tiny_postcursors_dropped(self):
        h = np.zeros(12)
        h[0] = 1.0
        h[4] = 0.01
        estimate = _estimate(h)
        taps = rake_isi_taps(estimate, finger_delays=[0], finger_weights=[1.0],
                             symbol_period_samples=4, max_symbol_taps=3)
        assert taps.size == 1

    def test_mismatched_fingers_raise(self):
        estimate = _estimate([1.0])
        with pytest.raises(ValueError):
            rake_isi_taps(estimate, finger_delays=[0, 1], finger_weights=[1.0],
                          symbol_period_samples=4)

    def test_degenerate_estimate_returns_identity(self):
        estimate = _estimate([0.0, 0.0])
        taps = rake_isi_taps(estimate, finger_delays=[0], finger_weights=[0.0],
                             symbol_period_samples=4)
        assert taps.size == 1
        assert taps[0] == pytest.approx(1.0)


class TestRakeReceiverIsiTaps:
    def test_wrapper_matches_function(self):
        h = np.zeros(20, dtype=complex)
        h[0] = 1.0
        h[3] = 0.5
        h[8] = 0.4
        estimate = _estimate(h)
        rake = RakeReceiver(estimate, num_fingers=2, policy="srake")
        wrapper = rake.isi_taps(symbol_period_samples=8, max_symbol_taps=3)
        direct = rake_isi_taps(estimate,
                               [f.delay_samples for f in rake.fingers],
                               [f.weight for f in rake.fingers],
                               symbol_period_samples=8, max_symbol_taps=3)
        assert np.allclose(wrapper, direct)

    def test_long_channel_produces_isi_for_default_gen2_timing(self):
        # ~20 ns of channel at 1 GS/s with a 8-sample symbol period.
        rng = np.random.default_rng(0)
        h = np.exp(-np.arange(24) / 10.0) * rng.standard_normal(24)
        h[0] = 1.5
        estimate = _estimate(h)
        rake = RakeReceiver(estimate, num_fingers=4, policy="srake")
        taps = rake.isi_taps(symbol_period_samples=8, max_symbol_taps=3)
        assert taps.size >= 1
        assert abs(taps[0]) == pytest.approx(1.0)
