"""Tests for the correlator bank, the parallelizer, and the AGC."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.agc import AutomaticGainControl
from repro.dsp.correlator import (
    Correlator,
    CorrelatorBank,
    normalized_correlation,
    sliding_correlation,
)
from repro.dsp.parallelizer import (
    Parallelizer,
    acquisition_clock_cycles,
    acquisition_time_s,
)


class TestSlidingCorrelation:
    def test_peak_at_template_position(self):
        rng = np.random.default_rng(0)
        template = rng.standard_normal(32)
        samples = np.zeros(256)
        samples[100:132] = template
        correlation = sliding_correlation(samples, template)
        assert int(np.argmax(np.abs(correlation))) == 100

    def test_peak_value_is_template_energy(self):
        template = np.array([1.0, -2.0, 3.0])
        samples = np.concatenate((np.zeros(5), template, np.zeros(5)))
        correlation = sliding_correlation(samples, template)
        assert np.max(correlation) == pytest.approx(np.sum(template ** 2))

    def test_complex_correlation_conjugates_template(self):
        template = np.array([1.0 + 1.0j, 0.5 - 0.5j])
        samples = np.concatenate((np.zeros(3, dtype=complex), template,
                                  np.zeros(3, dtype=complex)))
        correlation = sliding_correlation(samples, template)
        peak = correlation[np.argmax(np.abs(correlation))]
        # At the aligned position the correlation is the template energy (real).
        assert peak.real == pytest.approx(np.sum(np.abs(template) ** 2), rel=1e-6)
        assert abs(peak.imag) < 1e-9

    def test_short_input_returns_empty(self):
        assert sliding_correlation(np.ones(3), np.ones(5)).size == 0

    def test_matches_numpy_correlate(self):
        rng = np.random.default_rng(1)
        samples = rng.standard_normal(200)
        template = rng.standard_normal(17)
        ours = sliding_correlation(samples, template)
        reference = np.correlate(samples, template, mode="valid")
        assert np.allclose(ours, reference, atol=1e-9)


class TestNormalizedCorrelation:
    def test_perfect_match_gives_one(self):
        rng = np.random.default_rng(2)
        template = rng.standard_normal(64)
        samples = np.concatenate((np.zeros(32), template, np.zeros(32)))
        metric = np.abs(normalized_correlation(samples, template))
        assert np.max(metric) == pytest.approx(1.0, abs=1e-6)

    def test_bounded_by_one(self):
        rng = np.random.default_rng(3)
        samples = rng.standard_normal(500)
        template = rng.standard_normal(32)
        metric = np.abs(normalized_correlation(samples, template))
        assert np.all(metric <= 1.0 + 1e-9)

    def test_scale_invariance(self):
        rng = np.random.default_rng(4)
        template = rng.standard_normal(32)
        samples = np.concatenate((rng.standard_normal(50) * 0.1, template,
                                  np.zeros(20)))
        metric1 = np.abs(normalized_correlation(samples, template))
        metric2 = np.abs(normalized_correlation(samples * 100.0, template))
        assert np.allclose(metric1, metric2, atol=1e-6)


class TestCorrelatorBank:
    def test_correlate_at_specific_offset(self):
        template = np.array([1.0, 1.0, -1.0])
        correlator = Correlator(template)
        samples = np.array([0.0, 1.0, 1.0, -1.0, 0.0])
        assert correlator.correlate_at(samples, 1) == pytest.approx(3.0)
        assert correlator.correlate_at(samples, 100) == 0.0

    def test_matched_filter_gain(self):
        correlator = Correlator(np.array([2.0, 2.0]))
        assert correlator.matched_filter_gain() == pytest.approx(8.0)

    def test_bank_best_match(self):
        rng = np.random.default_rng(5)
        templates = [rng.standard_normal(16) for _ in range(3)]
        samples = np.concatenate((np.zeros(20), templates[1], np.zeros(20)))
        bank = CorrelatorBank(templates)
        index, offset, peak = bank.best_match(samples)
        assert index == 1
        assert offset == 20

    def test_bank_requires_templates(self):
        with pytest.raises(ValueError):
            CorrelatorBank([])

    def test_bank_evaluate_at(self):
        bank = CorrelatorBank([np.ones(4), -np.ones(4)])
        values = bank.evaluate_at(np.ones(10), 0)
        assert values[0] == pytest.approx(4.0)
        assert values[1] == pytest.approx(-4.0)

    def test_empty_template_rejected(self):
        with pytest.raises(ValueError):
            Correlator(np.zeros(0))


class TestParallelizer:
    def test_split_and_merge_roundtrip(self):
        parallelizer = Parallelizer(num_lanes=4, input_rate_hz=2e9)
        samples = np.arange(32, dtype=float)
        lanes = parallelizer.split(samples)
        assert len(lanes) == 4
        merged = parallelizer.merge(lanes)
        assert np.array_equal(merged, samples)

    def test_split_drops_partial_frame(self):
        parallelizer = Parallelizer(num_lanes=4, input_rate_hz=2e9)
        lanes = parallelizer.split(np.arange(10))
        assert all(lane.size == 2 for lane in lanes)

    def test_lane_rate(self):
        parallelizer = Parallelizer(num_lanes=8, input_rate_hz=2e9)
        assert parallelizer.lane_rate_hz == pytest.approx(250e6)

    def test_lane_contents_are_polyphase(self):
        parallelizer = Parallelizer(num_lanes=2, input_rate_hz=1e9)
        lanes = parallelizer.split(np.array([0, 1, 2, 3, 4, 5]))
        assert np.array_equal(lanes[0], [0, 2, 4])
        assert np.array_equal(lanes[1], [1, 3, 5])

    def test_merge_wrong_lane_count(self):
        parallelizer = Parallelizer(num_lanes=3, input_rate_hz=1e9)
        with pytest.raises(ValueError):
            parallelizer.merge([np.ones(4), np.ones(4)])

    def test_acquisition_cycles(self):
        assert acquisition_clock_cycles(1000, 1) == 1000
        assert acquisition_clock_cycles(1000, 16) == 63
        assert acquisition_clock_cycles(1000, 16,
                                        integrations_per_hypothesis=4) == 252

    def test_acquisition_time_scales_inversely_with_parallelism(self):
        serial = acquisition_time_s(4096, 1, 100e6)
        parallel = acquisition_time_s(4096, 16, 100e6)
        assert serial / parallel == pytest.approx(16.0, rel=0.01)

    @given(st.integers(min_value=1, max_value=10000),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=40)
    def test_cycles_cover_all_hypotheses(self, hypotheses, parallelism):
        cycles = acquisition_clock_cycles(hypotheses, parallelism)
        assert cycles * parallelism >= hypotheses
        assert (cycles - 1) * parallelism < hypotheses


class TestAGC:
    def test_scales_to_target_rms(self):
        agc = AutomaticGainControl(target_rms=0.25)
        x = 3.0 * np.random.default_rng(0).standard_normal(10000)
        scaled, gain = agc.apply(x)
        assert np.std(scaled) == pytest.approx(0.25, rel=0.02)
        assert gain < 1.0

    def test_gain_limits(self):
        agc = AutomaticGainControl(target_rms=1.0, max_gain=10.0)
        x = 1e-9 * np.ones(100)
        _, gain = agc.apply(x)
        assert gain == pytest.approx(10.0)

    def test_zero_signal_uses_max_gain(self):
        agc = AutomaticGainControl()
        _, gain = agc.apply(np.zeros(100))
        assert gain == agc.max_gain

    def test_peak_mode_backoff(self):
        agc = AutomaticGainControl()
        x = np.concatenate((np.zeros(100), [2.0]))
        scaled, _ = agc.apply_from_peak(x, full_scale=1.0, peak_backoff_db=6.0)
        assert np.max(np.abs(scaled)) == pytest.approx(10 ** (-6 / 20), rel=1e-6)

    def test_complex_input(self):
        agc = AutomaticGainControl(target_rms=0.5)
        x = (np.random.default_rng(1).standard_normal(5000)
             + 1j * np.random.default_rng(2).standard_normal(5000))
        scaled, _ = agc.apply(x)
        assert np.sqrt(np.mean(np.abs(scaled) ** 2)) == pytest.approx(0.5,
                                                                      rel=0.02)

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            AutomaticGainControl(min_gain=10.0, max_gain=1.0)
