"""Tests for the spectral monitor and the digital notch / canceller."""

import numpy as np
import pytest

from repro.channel.interference import ToneInterferer
from repro.dsp.notch import AdaptiveNotchCanceller, DigitalNotchFilter
from repro.dsp.spectral_monitor import (
    SpectralMonitor,
    SpectralMonitorConfig,
)
from repro.utils import dsp

SAMPLE_RATE = 1e9


def _uwb_plus_interferer(rng, interferer_frequency=120e6, sir_db=-10.0,
                         num_samples=8192):
    """Wideband noise-like UWB signal plus a narrowband tone."""
    signal = (rng.standard_normal(num_samples)
              + 1j * rng.standard_normal(num_samples)) * 0.1
    signal_power = dsp.signal_power(signal)
    tone_power = signal_power / 10 ** (sir_db / 10.0)
    tone = ToneInterferer(frequency_hz=interferer_frequency,
                          amplitude=np.sqrt(tone_power))
    return tone.add_to(signal, SAMPLE_RATE)


class TestSpectralMonitor:
    def test_detects_strong_interferer(self, rng):
        samples = _uwb_plus_interferer(rng, sir_db=-15.0)
        monitor = SpectralMonitor(SAMPLE_RATE)
        report = monitor.analyze(samples)
        assert report.detected

    def test_no_detection_without_interferer(self, rng):
        signal = (rng.standard_normal(8192) + 1j * rng.standard_normal(8192))
        monitor = SpectralMonitor(SAMPLE_RATE)
        report = monitor.analyze(signal)
        assert not report.detected

    def test_frequency_estimate_accuracy(self, rng):
        true_frequency = 137e6
        samples = _uwb_plus_interferer(rng, interferer_frequency=true_frequency,
                                       sir_db=-15.0)
        monitor = SpectralMonitor(SAMPLE_RATE)
        report = monitor.analyze(samples)
        bin_spacing = SAMPLE_RATE / monitor.config.fft_size
        assert report.frequency_error_hz(true_frequency) < bin_spacing

    def test_negative_frequency_interferer(self, rng):
        samples = _uwb_plus_interferer(rng, interferer_frequency=-200e6,
                                       sir_db=-15.0)
        report = SpectralMonitor(SAMPLE_RATE).analyze(samples)
        assert report.detected
        assert report.frequency_hz < 0

    def test_detection_probability_high_at_low_sir(self, rng):
        monitor = SpectralMonitor(SAMPLE_RATE)
        probability = monitor.detection_probability(
            lambda: _uwb_plus_interferer(rng, sir_db=-20.0), num_trials=10)
        assert probability >= 0.9

    def test_detection_probability_low_without_interferer(self, rng):
        monitor = SpectralMonitor(SAMPLE_RATE)
        probability = monitor.detection_probability(
            lambda: (rng.standard_normal(8192)
                     + 1j * rng.standard_normal(8192)), num_trials=10)
        assert probability <= 0.2

    def test_too_few_samples_raises(self):
        monitor = SpectralMonitor(SAMPLE_RATE)
        with pytest.raises(ValueError):
            monitor.analyze(np.zeros(16))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SpectralMonitorConfig(fft_size=4)
        with pytest.raises(ValueError):
            SpectralMonitorConfig(detection_threshold_db=0.0)


class TestDigitalNotch:
    def test_removes_tone(self):
        n = np.arange(8192)
        tone = np.exp(1j * 2 * np.pi * 100e6 * n / SAMPLE_RATE)
        notch = DigitalNotchFilter(notch_frequency_hz=100e6,
                                   sample_rate_hz=SAMPLE_RATE)
        out = notch.apply(tone)
        # Ignore the transient at the start.
        assert dsp.signal_power(out[2000:]) < 0.02

    def test_preserves_distant_content(self):
        n = np.arange(8192)
        tone = np.exp(1j * 2 * np.pi * 300e6 * n / SAMPLE_RATE)
        notch = DigitalNotchFilter(notch_frequency_hz=100e6,
                                   sample_rate_hz=SAMPLE_RATE)
        out = notch.apply(tone)
        assert dsp.signal_power(out[2000:]) > 0.8

    def test_rejection_values(self):
        notch = DigitalNotchFilter(notch_frequency_hz=100e6,
                                   sample_rate_hz=SAMPLE_RATE)
        assert notch.rejection_at_db(100e6) > 30.0
        assert notch.rejection_at_db(400e6) < 1.0

    def test_negative_frequency_notch(self):
        n = np.arange(8192)
        tone = np.exp(-1j * 2 * np.pi * 150e6 * n / SAMPLE_RATE)
        notch = DigitalNotchFilter(notch_frequency_hz=-150e6,
                                   sample_rate_hz=SAMPLE_RATE)
        out = notch.apply(tone)
        assert dsp.signal_power(out[2000:]) < 0.02

    def test_invalid_pole_radius(self):
        with pytest.raises(ValueError):
            DigitalNotchFilter(100e6, SAMPLE_RATE, pole_radius=1.5)


class TestAdaptiveCanceller:
    def test_cancels_interferer(self, rng):
        n = np.arange(16384)
        interferer = 2.0 * np.exp(1j * (2 * np.pi * 80e6 * n / SAMPLE_RATE + 0.3))
        signal = 0.05 * (rng.standard_normal(n.size)
                         + 1j * rng.standard_normal(n.size))
        canceller = AdaptiveNotchCanceller(interferer_frequency_hz=80e6,
                                           sample_rate_hz=SAMPLE_RATE,
                                           step_size=0.005)
        rejection = canceller.steady_state_rejection_db(signal + interferer)
        assert rejection > 10.0

    def test_tolerates_small_frequency_error(self, rng):
        n = np.arange(16384)
        interferer = 2.0 * np.exp(1j * 2 * np.pi * 80.3e6 * n / SAMPLE_RATE)
        canceller = AdaptiveNotchCanceller(interferer_frequency_hz=80e6,
                                           sample_rate_hz=SAMPLE_RATE,
                                           step_size=0.02)
        rejection = canceller.steady_state_rejection_db(interferer)
        assert rejection > 5.0

    def test_leaves_clean_signal_mostly_alone(self, rng):
        signal = 0.1 * (rng.standard_normal(8192)
                        + 1j * rng.standard_normal(8192))
        canceller = AdaptiveNotchCanceller(interferer_frequency_hz=200e6,
                                           sample_rate_hz=SAMPLE_RATE,
                                           step_size=0.005)
        cleaned, _ = canceller.cancel(signal)
        assert dsp.signal_power(cleaned) > 0.8 * dsp.signal_power(signal)

    def test_weight_trajectory_returned(self, rng):
        canceller = AdaptiveNotchCanceller(80e6, SAMPLE_RATE)
        cleaned, weights = canceller.cancel(np.zeros(100, dtype=complex))
        assert weights.size == 100
        assert cleaned.size == 100
