"""Tests for coarse acquisition and fine tracking (DLL)."""

import numpy as np
import pytest

from repro.channel.awgn import awgn
from repro.dsp.acquisition import AcquisitionConfig, CoarseAcquisition
from repro.dsp.tracking import DelayLockedLoop
from repro.phy.preamble import PreambleConfig, build_preamble_symbols
from repro.pulses.shapes import gaussian_pulse


def _preamble_waveform(samples_per_chip=8, degree=5, repetitions=2,
                       sample_rate=1e9):
    """A sampled preamble waveform and its template."""
    pulse = gaussian_pulse(500e6, sample_rate)
    template_pulse = pulse.waveform[:samples_per_chip]
    chips = build_preamble_symbols(PreambleConfig(sequence_degree=degree,
                                                  num_repetitions=repetitions))
    waveform = np.zeros(chips.size * samples_per_chip)
    for index, chip in enumerate(chips):
        start = index * samples_per_chip
        waveform[start:start + template_pulse.size] += chip * template_pulse
    return waveform


class TestCoarseAcquisition:
    def test_finds_known_offset_noiseless(self):
        template = _preamble_waveform()
        offset = 173
        samples = np.concatenate((np.zeros(offset), template, np.zeros(200)))
        acquisition = CoarseAcquisition(template, AcquisitionConfig(threshold=0.5))
        result = acquisition.acquire(samples)
        assert result.detected
        assert result.timing_offset_samples == offset
        assert result.peak_metric == pytest.approx(1.0, abs=1e-6)

    def test_finds_offset_with_noise(self, rng):
        template = _preamble_waveform()
        offset = 250
        samples = np.concatenate((np.zeros(offset), template, np.zeros(100)))
        noisy = awgn(samples, 0.3, rng=rng)
        acquisition = CoarseAcquisition(template,
                                        AcquisitionConfig(threshold=0.3))
        result = acquisition.acquire(noisy)
        assert result.detected
        assert abs(result.timing_error_samples(offset)) <= 2

    def test_noise_only_not_detected(self, rng):
        template = _preamble_waveform()
        noise = rng.standard_normal(2000)
        acquisition = CoarseAcquisition(template,
                                        AcquisitionConfig(threshold=0.3))
        result = acquisition.acquire(noise)
        assert not result.detected

    def test_false_alarm_statistics_low(self, rng):
        template = _preamble_waveform()
        acquisition = CoarseAcquisition(template)
        mean_metric, max_metric = acquisition.detection_statistics(
            rng.standard_normal(3000))
        assert mean_metric < 0.1
        assert max_metric < 0.3

    def test_search_time_scales_with_parallelism(self):
        template = _preamble_waveform()
        samples = np.concatenate((np.zeros(100), template, np.zeros(100)))
        slow = CoarseAcquisition(template, AcquisitionConfig(
            parallelism=1, backend_clock_hz=100e6)).acquire(samples)
        fast = CoarseAcquisition(template, AcquisitionConfig(
            parallelism=16, backend_clock_hz=100e6)).acquire(samples)
        assert slow.search_time_s > 10 * fast.search_time_s

    def test_first_crossing_early_termination(self):
        template = _preamble_waveform()
        offset = 300
        samples = np.concatenate((np.zeros(offset), template, np.zeros(500)))
        acquisition = CoarseAcquisition(template,
                                        AcquisitionConfig(threshold=0.5))
        full = acquisition.acquire(samples)
        early = acquisition.first_crossing(samples)
        assert early.detected
        assert abs(early.timing_offset_samples - offset) <= 4
        assert early.num_hypotheses_searched <= full.num_hypotheses_searched

    def test_empty_input(self):
        template = _preamble_waveform()
        result = CoarseAcquisition(template).acquire(np.zeros(4))
        assert not result.detected

    def test_search_step_reduces_hypotheses(self):
        template = _preamble_waveform()
        samples = np.concatenate((np.zeros(64), template, np.zeros(64)))
        fine = CoarseAcquisition(template, AcquisitionConfig(
            search_step_samples=1)).acquire(samples)
        coarse = CoarseAcquisition(template, AcquisitionConfig(
            search_step_samples=4)).acquire(samples)
        assert coarse.num_hypotheses_searched < fine.num_hypotheses_searched

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            AcquisitionConfig(threshold=0.0)
        with pytest.raises(ValueError):
            AcquisitionConfig(threshold=1.5)


class TestDelayLockedLoop:
    def _symbol_waveform(self, num_symbols, samples_per_symbol, pulse,
                         timing_offset):
        waveform = np.zeros(num_symbols * samples_per_symbol + 100)
        for k in range(num_symbols):
            start = int(round(timing_offset + k * samples_per_symbol))
            waveform[start:start + pulse.size] += pulse
        return waveform

    def test_discriminator_sign(self):
        pulse = gaussian_pulse(500e6, 2e9).waveform
        samples = np.concatenate((np.zeros(50), pulse, np.zeros(50)))
        dll = DelayLockedLoop(early_late_spacing_samples=4.0)
        # Template placed too early -> peak is later -> positive output.
        early_error = dll.discriminator(samples, pulse, 47.0)
        late_error = dll.discriminator(samples, pulse, 53.0)
        assert early_error > 0
        assert late_error < 0

    def test_tracks_static_offset(self):
        pulse = gaussian_pulse(500e6, 2e9).waveform
        samples_per_symbol = 40
        true_offset = 3.0
        samples = self._symbol_waveform(50, samples_per_symbol, pulse,
                                        timing_offset=true_offset)
        dll = DelayLockedLoop(loop_gain=0.2)
        result = dll.track(samples, pulse, samples_per_symbol,
                           initial_offset=0.0, num_symbols=50)
        # The loop should converge toward the true +3-sample offset.
        assert result.final_offset_samples == pytest.approx(true_offset, abs=1.0)

    def test_rms_jitter_small_in_steady_state(self):
        pulse = gaussian_pulse(500e6, 2e9).waveform
        samples = self._symbol_waveform(60, 40, pulse, timing_offset=1.0)
        dll = DelayLockedLoop(loop_gain=0.2)
        result = dll.track(samples, pulse, 40, initial_offset=0.0,
                           num_symbols=60)
        assert result.rms_jitter_samples < 1.0

    def test_drift_estimate_zero_for_static_channel(self):
        pulse = gaussian_pulse(500e6, 2e9).waveform
        samples = self._symbol_waveform(60, 40, pulse, timing_offset=0.0)
        dll = DelayLockedLoop(loop_gain=0.1)
        result = dll.track(samples, pulse, 40, initial_offset=0.0,
                           num_symbols=60)
        assert abs(dll.estimate_drift_ppm(result, 40)) < 2000.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DelayLockedLoop(loop_gain=0.0)
        dll = DelayLockedLoop()
        with pytest.raises(ValueError):
            dll.track(np.zeros(100), np.ones(4), 0, 0.0, 10)
