"""Tests for the mixer, local oscillator, PLL, synthesizer, and RF notch."""

import numpy as np
import pytest

from repro.constants import DEFAULT_BAND_PLAN, FCC_UWB_HIGH_HZ, FCC_UWB_LOW_HZ
from repro.rf.mixer import DirectConversionMixer
from repro.rf.notch import AnalogNotchFilter
from repro.rf.oscillator import LocalOscillator, PhaseLockedLoop
from repro.rf.synthesizer import FrequencySynthesizer, HoppingSequence
from repro.utils import dsp


class TestLocalOscillator:
    def test_complex_carrier_unit_magnitude(self):
        lo = LocalOscillator(frequency_hz=5e9)
        carrier = lo.complex_carrier(1000, 20e9)
        assert np.allclose(np.abs(carrier), 1.0)

    def test_frequency_offset_advances_phase(self):
        lo = LocalOscillator(frequency_hz=1e9, frequency_offset_hz=1e6)
        phase = lo.phase_trajectory(1000, 10e9)
        expected_end = 2 * np.pi * (1e9 + 1e6) * (999 / 10e9)
        assert phase[-1] == pytest.approx(expected_end, rel=1e-9)

    def test_phase_noise_grows_with_time(self, rng):
        lo = LocalOscillator(frequency_hz=1e9, linewidth_hz=1e5)
        clean = LocalOscillator(frequency_hz=1e9)
        noisy_phase = lo.phase_trajectory(20000, 1e9, rng=rng)
        clean_phase = clean.phase_trajectory(20000, 1e9)
        deviation = noisy_phase - clean_phase
        assert np.var(deviation[10000:]) > np.var(deviation[:10000])

    def test_quadrature_outputs_orthogonal(self):
        lo = LocalOscillator(frequency_hz=100e6)
        lo_i, lo_q = lo.quadrature_outputs(100000, 2e9)
        # cos and -sin are orthogonal over many cycles.
        assert abs(np.mean(lo_i * lo_q)) < 1e-3

    def test_iq_gain_error_scales_q(self):
        lo = LocalOscillator(frequency_hz=100e6)
        _, q_ideal = lo.quadrature_outputs(10000, 2e9)
        _, q_error = lo.quadrature_outputs(10000, 2e9, iq_gain_error=0.1)
        assert np.max(np.abs(q_error)) == pytest.approx(1.1, rel=1e-3)


class TestPLL:
    def test_output_frequency(self):
        pll = PhaseLockedLoop(reference_frequency_hz=20e6,
                              multiplication_factor=100)
        assert pll.output_frequency_hz == pytest.approx(2e9)

    def test_settling_time_scales_with_bandwidth(self):
        fast = PhaseLockedLoop(20e6, 100, loop_bandwidth_hz=2e6)
        slow = PhaseLockedLoop(20e6, 100, loop_bandwidth_hz=0.2e6)
        assert slow.settling_time_s() > fast.settling_time_s()

    def test_settling_time_reasonable(self):
        pll = PhaseLockedLoop(20e6, 100, loop_bandwidth_hz=1e6)
        assert 0.1e-6 < pll.settling_time_s() < 10e-6

    def test_jittered_clock_near_nominal(self, rng):
        pll = PhaseLockedLoop(20e6, 100, rms_jitter_s=1e-12)
        times = pll.sample_clock_times(1000, rng=rng)
        nominal = np.arange(1000) / 2e9
        assert np.max(np.abs(times - nominal)) < 10e-12

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            PhaseLockedLoop(20e6, 10).settling_time_s(tolerance=2.0)


class TestMixer:
    def test_ideal_downconversion_recovers_envelope(self, rng):
        fs = 40e9
        fc = 4.0e9
        n = 8000
        t = np.arange(n) / fs
        envelope = np.exp(-((t - t[n // 2]) / 2e-9) ** 2)
        passband = envelope * np.cos(2 * np.pi * fc * t)
        mixer = DirectConversionMixer()
        lo = LocalOscillator(frequency_hz=fc)
        baseband = mixer.downconvert(passband, fs, lo,
                                     lowpass_bandwidth_hz=1e9, rng=rng)
        core = slice(n // 4, 3 * n // 4)
        assert np.allclose(np.real(baseband[core]), envelope[core], atol=0.08)
        assert np.max(np.abs(np.imag(baseband[core]))) < 0.1

    def test_dc_offset_appears_at_output(self, rng):
        mixer = DirectConversionMixer(dc_offset_i=0.05, dc_offset_q=-0.02)
        out = mixer.apply_baseband_impairments(np.zeros(1000, dtype=complex),
                                               1e9, rng=rng)
        assert np.mean(out.real) == pytest.approx(0.05, abs=1e-6)
        assert np.mean(out.imag) == pytest.approx(-0.02, abs=1e-6)

    def test_image_rejection_infinite_when_ideal(self):
        assert DirectConversionMixer().image_rejection_ratio_db() == np.inf

    def test_image_rejection_finite_with_imbalance(self):
        mixer = DirectConversionMixer(iq_gain_imbalance_db=0.5,
                                      iq_phase_imbalance_deg=3.0)
        irr = mixer.image_rejection_ratio_db()
        assert 15.0 < irr < 45.0

    def test_cfo_rotates_signal(self, rng):
        mixer = DirectConversionMixer()
        x = np.ones(1000, dtype=complex)
        out = mixer.apply_baseband_impairments(
            x, 1e9, carrier_frequency_offset_hz=1e6, rng=rng)
        # After 500 ns a 1 MHz offset has rotated by pi.
        assert np.real(out[500]) == pytest.approx(-1.0, abs=0.01)

    def test_conversion_gain(self, rng):
        mixer = DirectConversionMixer(conversion_gain_db=6.0)
        x = np.ones(100, dtype=complex)
        out = mixer.apply_baseband_impairments(x, 1e9, rng=rng)
        assert np.abs(out[50]) == pytest.approx(10 ** (6.0 / 20.0), rel=1e-3)

    def test_flicker_noise_power(self, rng):
        mixer = DirectConversionMixer(flicker_corner_hz=1e6,
                                      flicker_amplitude=0.01)
        out = mixer.apply_baseband_impairments(np.zeros(10000, dtype=complex),
                                               1e9, rng=rng)
        assert 0 < dsp.signal_power(out) < 1e-2


class TestNotch:
    def test_rejects_tone_at_notch(self):
        fs = 1e9
        notch = AnalogNotchFilter(notch_frequency_hz=100e6, quality_factor=30.0)
        t = np.arange(8192) / fs
        tone = np.cos(2 * np.pi * 100e6 * t)
        out = notch.apply(tone, fs)
        assert dsp.signal_power(out) < 0.05 * dsp.signal_power(tone)

    def test_passes_distant_frequency(self):
        fs = 1e9
        notch = AnalogNotchFilter(notch_frequency_hz=100e6, quality_factor=30.0)
        t = np.arange(8192) / fs
        tone = np.cos(2 * np.pi * 300e6 * t)
        out = notch.apply(tone, fs)
        assert dsp.signal_power(out) > 0.8 * dsp.signal_power(tone)

    def test_complex_baseband_negative_frequency_notch(self):
        fs = 1e9
        notch = AnalogNotchFilter(notch_frequency_hz=-80e6, quality_factor=30.0)
        n = np.arange(8192)
        tone = np.exp(-1j * 2 * np.pi * 80e6 * n / fs)
        out = notch.apply(tone, fs)
        assert dsp.signal_power(out) < 0.1 * dsp.signal_power(tone)

    def test_disabled_notch_is_passthrough(self):
        notch = AnalogNotchFilter(notch_frequency_hz=100e6, enabled=False)
        x = np.random.default_rng(0).standard_normal(512)
        assert np.array_equal(notch.apply(x, 1e9), x)

    def test_tune_changes_frequency(self):
        notch = AnalogNotchFilter(notch_frequency_hz=50e6)
        notch.tune(120e6)
        assert notch.notch_frequency_hz == pytest.approx(120e6)

    def test_rejection_at_notch_frequency_is_large(self):
        notch = AnalogNotchFilter(notch_frequency_hz=100e6, quality_factor=30.0)
        assert notch.rejection_at_db(100e6, 1e9) > 20.0

    def test_rejection_away_from_notch_is_small(self):
        notch = AnalogNotchFilter(notch_frequency_hz=100e6, quality_factor=30.0)
        assert notch.rejection_at_db(200e6, 1e9) < 3.0

    def test_invalid_frequency_raises(self):
        notch = AnalogNotchFilter(notch_frequency_hz=0.0)
        with pytest.raises(ValueError):
            notch.apply(np.ones(64), 1e9)


class TestSynthesizer:
    def test_channel_selection(self):
        synth = FrequencySynthesizer()
        synth.select_channel(5)
        assert synth.current_channel == 5
        assert synth.current_frequency_hz == pytest.approx(
            DEFAULT_BAND_PLAN.center_frequency(5))

    def test_hop_penalty(self):
        synth = FrequencySynthesizer(hop_time_s=10e-9)
        synth.select_channel(0)
        assert synth.select_channel(0) == 0.0
        assert synth.select_channel(1) == pytest.approx(10e-9)

    def test_invalid_channel(self):
        with pytest.raises(ValueError):
            FrequencySynthesizer().select_channel(14)

    def test_local_oscillator_frequency(self):
        synth = FrequencySynthesizer(initial_channel=3)
        lo = synth.local_oscillator()
        assert lo.frequency_hz == pytest.approx(
            DEFAULT_BAND_PLAN.center_frequency(3))
        assert lo.frequency_offset_hz == 0.0

    def test_local_oscillator_tolerance(self, rng):
        synth = FrequencySynthesizer(initial_channel=0,
                                     frequency_tolerance_ppm=40.0)
        lo = synth.local_oscillator(rng=rng)
        max_offset = synth.current_frequency_hz * 40e-6
        assert abs(lo.frequency_offset_hz) <= max_offset

    def test_hop_sequence_duration(self):
        synth = FrequencySynthesizer(hop_time_s=9e-9, initial_channel=0)
        duration = synth.hop_sequence_duration_s([1, 2, 2, 3])
        assert duration == pytest.approx(3 * 9e-9)


class TestHoppingSequence:
    def test_round_robin_covers_all_channels(self):
        seq = HoppingSequence.round_robin()
        channels = {seq.channel_for_symbol(i) for i in range(14)}
        assert channels == set(range(14))

    def test_cyclic_behaviour(self):
        seq = HoppingSequence(channels=(2, 5, 9))
        assert seq.channel_for_symbol(3) == 2
        assert seq.channel_for_symbol(4) == 5

    def test_frequencies_in_fcc_band(self):
        seq = HoppingSequence.round_robin()
        for i in range(14):
            freq = seq.frequency_for_symbol(i)
            assert FCC_UWB_LOW_HZ < freq < FCC_UWB_HIGH_HZ

    def test_random_sequence_valid(self, rng):
        seq = HoppingSequence.random(20, rng=rng)
        assert len(seq.channels) == 20
        assert all(0 <= c < 14 for c in seq.channels)

    def test_invalid_channel_rejected(self):
        with pytest.raises(ValueError):
            HoppingSequence(channels=(99,))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HoppingSequence(channels=())
