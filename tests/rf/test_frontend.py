"""Tests for the composed RF front ends."""

import numpy as np
import pytest

from repro.rf.antenna import PlanarEllipticalAntenna
from repro.rf.frontend import DirectConversionFrontEnd, Gen1FrontEnd
from repro.rf.lna import LNA
from repro.rf.mixer import DirectConversionMixer
from repro.rf.notch import AnalogNotchFilter
from repro.rf.oscillator import LocalOscillator
from repro.rf.synthesizer import FrequencySynthesizer
from repro.utils import dsp


class TestGen1FrontEnd:
    def test_amplifies_signal(self, rng):
        frontend = Gen1FrontEnd(antenna=None)
        x = 1e-3 * np.sin(2 * np.pi * 500e6 * np.arange(4096) / 4e9)
        out = frontend.process(x, 4e9, rng=rng)
        assert dsp.signal_power(out) > dsp.signal_power(x)

    def test_noise_figure_is_lna_nf(self):
        frontend = Gen1FrontEnd()
        assert frontend.noise_figure_db() == pytest.approx(
            frontend.lna.noise_figure_db)

    def test_with_antenna(self, rng):
        frontend = Gen1FrontEnd(antenna=PlanarEllipticalAntenna())
        x = np.zeros(2048)
        x[100] = 1e-3
        out = frontend.process(x, 4e9, rng=rng)
        assert out.size == x.size
        assert np.all(np.isfinite(out))


class TestDirectConversionFrontEnd:
    def _frontend(self, **kwargs):
        defaults = dict(
            synthesizer=FrequencySynthesizer(initial_channel=3),
            antenna=None,
            lna=LNA(gain_db=15.0, noise_figure_db=5.0, bandwidth_hz=None,
                    saturation_v=5.0),
            mixer=DirectConversionMixer(),
            baseband_bandwidth_hz=250e6,
        )
        defaults.update(kwargs)
        return DirectConversionFrontEnd(**defaults)

    def test_baseband_path_preserves_pulse(self, rng):
        frontend = self._frontend()
        fs = 2e9
        n = 2048
        t = np.arange(n) / fs
        envelope = np.exp(-((t - t[n // 2]) / 2e-9) ** 2).astype(complex)
        out = frontend.receive_baseband(envelope, fs, rng=rng)
        # Gain applied; pulse shape roughly preserved (correlation high).
        correlation = np.abs(np.vdot(out, envelope)) / (
            np.linalg.norm(out) * np.linalg.norm(envelope))
        assert correlation > 0.95

    def test_passband_path_produces_baseband(self, rng):
        frontend = self._frontend(
            lna=LNA(gain_db=0.0, noise_figure_db=5.0, bandwidth_hz=None,
                    saturation_v=10.0))
        fs = 40e9
        fc = frontend.synthesizer.current_frequency_hz
        n = 16000
        t = np.arange(n) / fs
        envelope = np.exp(-((t - t[n // 2]) / 2e-9) ** 2)
        passband = envelope * np.cos(2 * np.pi * fc * t)
        lo = LocalOscillator(frequency_hz=fc)
        baseband = frontend.receive_passband(passband, fs, rng=rng, lo=lo)
        core = slice(n // 4, 3 * n // 4)
        correlation = np.abs(np.vdot(baseband[core], envelope[core])) / (
            np.linalg.norm(baseband[core]) * np.linalg.norm(envelope[core]))
        assert correlation > 0.9

    def test_cfo_applied_in_baseband_path(self, rng):
        frontend = self._frontend()
        x = np.ones(1000, dtype=complex) * 0.01
        out = frontend.receive_baseband(x, 1e9,
                                        carrier_frequency_offset_hz=2e6,
                                        rng=rng)
        # Over 100 ns a 2 MHz offset rotates the constant input by ~1.26 rad.
        phase_drift = np.angle(out[110] * np.conj(out[10]))
        assert abs(phase_drift) > 0.5

    def test_notch_engaged(self, rng):
        notch = AnalogNotchFilter(notch_frequency_hz=100e6, quality_factor=25.0)
        frontend = self._frontend(notch=notch)
        fs = 1e9
        n = np.arange(8192)
        tone = 0.01 * np.exp(1j * 2 * np.pi * 100e6 * n / fs)
        out_with = frontend.receive_baseband(tone, fs, rng=rng)
        notch.enabled = False
        out_without = frontend.receive_baseband(tone, fs, rng=rng)
        assert dsp.signal_power(out_with) < 0.3 * dsp.signal_power(out_without)

    def test_noise_figure_cascade(self):
        frontend = self._frontend()
        nf = frontend.noise_figure_db()
        assert frontend.lna.noise_figure_db < nf < \
            frontend.lna.noise_figure_db + 3.0

    def test_composite_impulse_response_duration(self):
        frontend = self._frontend()
        duration = frontend.impulse_response_duration_s(2e9)
        # The paper requires the front-end IR to be bounded by design; our
        # default 250 MHz baseband filter settles within a few nanoseconds.
        assert 0 < duration < 8e-9

    def test_composite_impulse_response_with_antenna(self):
        frontend = self._frontend(antenna=PlanarEllipticalAntenna())
        h = frontend.composite_impulse_response(2e9)
        assert np.all(np.isfinite(h))
        assert h.size > 0
