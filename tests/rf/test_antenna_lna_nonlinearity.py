"""Tests for the antenna, LNA, noise cascade, and nonlinearity models."""

import numpy as np
import pytest

from repro.constants import FCC_UWB_HIGH_HZ, FCC_UWB_LOW_HZ
from repro.rf.antenna import PlanarEllipticalAntenna
from repro.rf.lna import LNA
from repro.rf.noise import (
    NoiseStage,
    cascade_gain_db,
    cascade_noise_figure_db,
    thermal_noise_voltage_std,
)
from repro.rf.nonlinearity import (
    RappNonlinearity,
    iip3_to_coefficient,
    polynomial_nonlinearity,
)
from repro.utils import dsp


class TestAntenna:
    def test_default_dimensions_match_paper(self):
        antenna = PlanarEllipticalAntenna()
        assert antenna.length_m == pytest.approx(0.042)
        assert antenna.width_m == pytest.approx(0.027)

    def test_lower_cutoff_below_fcc_band(self):
        antenna = PlanarEllipticalAntenna()
        assert antenna.lower_cutoff_hz < FCC_UWB_LOW_HZ

    def test_gain_rolls_off_at_low_frequency(self):
        antenna = PlanarEllipticalAntenna()
        assert antenna.gain_db(500e6) < antenna.gain_db(5e9) - 10.0

    def test_in_band_gain_near_nominal(self):
        antenna = PlanarEllipticalAntenna(nominal_gain_dbi=2.0)
        freqs = np.linspace(FCC_UWB_LOW_HZ, FCC_UWB_HIGH_HZ, 64)
        gains = antenna.gain_db(freqs)
        assert np.all(gains > -2.0)
        assert np.all(gains < 5.0)

    def test_return_loss_better_in_band(self):
        antenna = PlanarEllipticalAntenna()
        assert antenna.return_loss_db(5e9) < antenna.return_loss_db(500e6)

    def test_covers_fcc_band(self):
        antenna = PlanarEllipticalAntenna()
        assert antenna.covers_band(FCC_UWB_LOW_HZ, FCC_UWB_HIGH_HZ,
                                   max_return_loss_db=-8.0)

    def test_impulse_response_finite_and_short(self):
        antenna = PlanarEllipticalAntenna()
        h = antenna.impulse_response(40e9, duration_s=4e-9)
        assert np.all(np.isfinite(h))
        # Most energy within the first 2 ns.
        energy = np.cumsum(h ** 2)
        idx_90 = np.searchsorted(energy, 0.9 * energy[-1])
        assert idx_90 / 40e9 < 2.5e-9

    def test_apply_preserves_length(self):
        antenna = PlanarEllipticalAntenna()
        x = np.random.default_rng(0).standard_normal(2000)
        assert antenna.apply(x, 40e9).size == x.size

    def test_scalar_frequency_accessors(self):
        antenna = PlanarEllipticalAntenna()
        assert isinstance(antenna.gain_db(5e9), float)
        assert isinstance(antenna.return_loss_db(5e9), float)


class TestNoiseCascade:
    def test_thermal_noise_voltage(self):
        # kTB over 500 MHz is 2 pW; across 50 ohm that is 10 uV RMS.
        std = thermal_noise_voltage_std(500e6, noise_figure_db=0.0)
        assert std == pytest.approx(10e-6, rel=0.1)

    def test_nf_increases_noise(self):
        low = thermal_noise_voltage_std(500e6, 0.0)
        high = thermal_noise_voltage_std(500e6, 10.0)
        assert high == pytest.approx(low * np.sqrt(10), rel=1e-6)

    def test_friis_single_stage(self):
        stages = [NoiseStage("lna", 15.0, 3.0)]
        assert cascade_noise_figure_db(stages) == pytest.approx(3.0)

    def test_friis_front_stage_dominates(self):
        stages = [NoiseStage("lna", 20.0, 3.0), NoiseStage("mixer", 0.0, 15.0)]
        total = cascade_noise_figure_db(stages)
        assert 3.0 < total < 4.5

    def test_friis_order_matters(self):
        lna = NoiseStage("lna", 20.0, 3.0)
        mixer = NoiseStage("mixer", 0.0, 12.0)
        assert cascade_noise_figure_db([lna, mixer]) < \
            cascade_noise_figure_db([mixer, lna])

    def test_cascade_gain(self):
        stages = [NoiseStage("a", 10.0, 3.0), NoiseStage("b", 5.0, 3.0)]
        assert cascade_gain_db(stages) == pytest.approx(15.0)

    def test_empty_cascade_raises(self):
        with pytest.raises(ValueError):
            cascade_noise_figure_db([])


class TestNonlinearity:
    def test_polynomial_small_signal_linear(self):
        x = np.array([1e-4, 2e-4])
        y = polynomial_nonlinearity(x, gain_linear=10.0, iip3_vpeak=0.5)
        assert np.allclose(y, 10.0 * x, rtol=1e-3)

    def test_polynomial_compression_at_large_signal(self):
        y_small = polynomial_nonlinearity(0.01, 10.0, 0.5)
        y_large = polynomial_nonlinearity(0.3, 10.0, 0.5)
        assert y_large < 10.0 * 0.3
        assert y_small == pytest.approx(0.1, rel=0.01)

    def test_iip3_coefficient(self):
        assert iip3_to_coefficient(1.0, 1.0) == pytest.approx(4.0 / 3.0)
        with pytest.raises(ValueError):
            iip3_to_coefficient(1.0, 0.0)

    def test_rapp_small_signal_gain(self):
        limiter = RappNonlinearity(gain_db=20.0, saturation_v=1.0)
        x = 1e-4
        # 20 dB of voltage gain is a factor of 10.
        assert limiter.apply(np.array([x]))[0] == pytest.approx(10.0 * x, rel=1e-3)

    def test_rapp_saturates(self):
        limiter = RappNonlinearity(gain_db=20.0, saturation_v=0.5)
        out = limiter.apply(np.array([10.0]))
        assert abs(out[0]) <= 0.5 * 1.01

    def test_rapp_complex_preserves_phase(self):
        limiter = RappNonlinearity(gain_db=0.0, saturation_v=1.0)
        x = np.array([0.1 * np.exp(1j * 0.7)])
        out = limiter.apply(x)
        assert np.angle(out[0]) == pytest.approx(0.7, abs=1e-6)

    def test_rapp_compression_point(self):
        limiter = RappNonlinearity(gain_db=0.0, saturation_v=1.0, smoothness=2.0)
        p1db = limiter.output_1db_compression_v()
        assert 0.3 < p1db < 1.0


class TestLNA:
    def test_small_signal_gain(self):
        lna = LNA(gain_db=20.0, bandwidth_hz=None, saturation_v=10.0)
        x = 1e-3 * np.ones(256)
        out = lna.amplify(x, 2e9, add_noise=False)
        assert np.median(out) == pytest.approx(1e-2, rel=1e-2)

    def test_noise_added_when_bandwidth_set(self, rng):
        lna = LNA(gain_db=20.0, noise_figure_db=6.0, bandwidth_hz=500e6)
        out = lna.amplify(np.zeros(4096), 2e9, rng=rng)
        assert np.std(out) > 0

    def test_no_noise_flag(self, rng):
        lna = LNA(gain_db=20.0, noise_figure_db=6.0, bandwidth_hz=500e6)
        out = lna.amplify(np.zeros(1024), 2e9, rng=rng, add_noise=False)
        assert np.allclose(out, 0.0)

    def test_input_noise_std_zero_without_bandwidth(self):
        assert LNA(bandwidth_hz=None).input_noise_std() == 0.0

    def test_compression_limits_output(self):
        lna = LNA(gain_db=30.0, bandwidth_hz=None, saturation_v=0.5)
        out = lna.amplify(np.ones(128), 2e9, add_noise=False)
        assert np.max(np.abs(out)) <= 0.5 * 1.05

    def test_bandpass_mode(self, rng):
        lna = LNA(gain_db=10.0, bandwidth_hz=1e9, center_frequency_hz=5e9,
                  saturation_v=10.0)
        n = 8192
        fs = 20e9
        t = np.arange(n) / fs
        in_band = np.sin(2 * np.pi * 5e9 * t)
        out_band = np.sin(2 * np.pi * 1e9 * t)
        out = lna.amplify(in_band + out_band, fs, rng=rng, add_noise=False)
        # The 1 GHz tone should be strongly attenuated relative to 5 GHz.
        freqs, psd = dsp.estimate_psd(out, fs, nperseg=4096)
        idx_in = np.argmin(np.abs(freqs - 5e9))
        idx_out = np.argmin(np.abs(freqs - 1e9))
        assert psd[idx_in] > 100 * psd[idx_out]
