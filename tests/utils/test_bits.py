"""Tests for bit-handling helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_error_rate,
    bit_errors,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    gray_decode,
    gray_encode,
    hamming_distance,
    int_to_bits,
    pack_bits,
    random_bits,
    unpack_bits,
)


class TestRandomBits:
    def test_length(self):
        assert random_bits(100, np.random.default_rng(0)).size == 100

    def test_only_zeros_and_ones(self):
        bits = random_bits(500, np.random.default_rng(1))
        assert set(np.unique(bits)).issubset({0, 1})

    def test_roughly_balanced(self):
        bits = random_bits(10000, np.random.default_rng(2))
        assert 0.45 < bits.mean() < 0.55

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            random_bits(-1)


class TestByteConversions:
    def test_roundtrip(self):
        data = bytes([0x00, 0xFF, 0xA5, 0x3C])
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_known_pattern(self):
        assert np.array_equal(bytes_to_bits(b"\x80"),
                              [1, 0, 0, 0, 0, 0, 0, 0])

    def test_non_multiple_of_8_raises(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    def test_empty(self):
        assert bits_to_bytes([]) == b""
        assert bytes_to_bits(b"").size == 0


class TestIntConversions:
    def test_int_to_bits_msb_first(self):
        assert np.array_equal(int_to_bits(5, 4), [0, 1, 0, 1])

    def test_bits_to_int(self):
        assert bits_to_int([1, 0, 1, 1]) == 11

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 16)) == value


class TestErrors:
    def test_no_errors(self):
        assert bit_errors([1, 0, 1], [1, 0, 1]) == 0

    def test_all_errors(self):
        assert bit_errors([1, 1, 1], [0, 0, 0]) == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            bit_errors([1, 0], [1])

    def test_ber(self):
        assert bit_error_rate([1, 1, 1, 1], [1, 0, 1, 0]) == pytest.approx(0.5)

    def test_ber_empty(self):
        assert bit_error_rate([], []) == 0.0

    def test_hamming_distance(self):
        assert hamming_distance(0b1010, 0b0110) == 2
        assert hamming_distance(7, 7) == 0


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 1])
        words = pack_bits(bits, 4)
        assert np.array_equal(words, [0b1011, 0b0011])
        assert np.array_equal(unpack_bits(words, 4), bits)

    def test_pack_invalid_length(self):
        with pytest.raises(ValueError):
            pack_bits([1, 0, 1], 2)

    def test_unpack_out_of_range(self):
        with pytest.raises(ValueError):
            unpack_bits([4], 2)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=6,
                    max_size=60).filter(lambda bits: len(bits) % 3 == 0))
    def test_pack_unpack_property(self, bits):
        words = pack_bits(bits, 3)
        assert np.array_equal(unpack_bits(words, 3), bits)


class TestGray:
    def test_adjacent_codes_differ_by_one_bit(self):
        for value in range(63):
            assert hamming_distance(gray_encode(value),
                                    gray_encode(value + 1)) == 1

    @given(st.integers(min_value=0, max_value=2**20))
    def test_roundtrip(self, value):
        assert gray_decode(gray_encode(value)) == value

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            gray_encode(-1)
        with pytest.raises(ValueError):
            gray_decode(-1)
