"""Tests for fixed-point quantization and argument validation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.fixed_point import (
    FixedPointFormat,
    quantization_noise_power,
    quantize_fixed,
)
from repro.utils.validation import (
    as_1d_array,
    require_in_range,
    require_int,
    require_non_negative,
    require_positive,
    require_probability,
    require_same_length,
)


class TestFixedPointFormat:
    def test_num_levels_and_step(self):
        fmt = FixedPointFormat(total_bits=4, full_scale=1.0)
        assert fmt.num_levels == 16
        assert fmt.step == pytest.approx(0.125)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=0)

    def test_quantize_within_step(self):
        fmt = FixedPointFormat(total_bits=6, full_scale=1.0)
        x = np.linspace(-0.99, 0.99, 101)
        q = fmt.quantize(x)
        assert np.all(np.abs(q - x) <= fmt.step / 2 + 1e-12)

    def test_saturation(self):
        fmt = FixedPointFormat(total_bits=4, full_scale=1.0)
        q = fmt.quantize(np.array([10.0, -10.0]))
        assert q[0] <= 1.0
        assert q[1] >= -1.0

    def test_codes_roundtrip(self):
        fmt = FixedPointFormat(total_bits=5, full_scale=2.0)
        codes = fmt.quantize_to_codes(np.linspace(-1.9, 1.9, 40))
        values = fmt.codes_to_values(codes)
        assert np.all(values <= 2.0)
        assert np.all(values >= -2.0)

    def test_codes_out_of_range_raise(self):
        fmt = FixedPointFormat(total_bits=3)
        with pytest.raises(ValueError):
            fmt.codes_to_values(np.array([100]))

    def test_complex_quantization(self):
        fmt = FixedPointFormat(total_bits=8)
        x = np.array([0.3 + 0.4j, -0.2 - 0.9j])
        q = fmt.quantize(x)
        assert np.iscomplexobj(q)
        assert np.all(np.abs(q.real - x.real) <= fmt.step)
        assert np.all(np.abs(q.imag - x.imag) <= fmt.step)

    def test_quantization_noise_power_formula(self):
        assert quantization_noise_power(4, 1.0) == pytest.approx(0.125 ** 2 / 12)

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-0.9, 0.9, 1000)
        err4 = np.mean((quantize_fixed(x, 4) - x) ** 2)
        err8 = np.mean((quantize_fixed(x, 8) - x) ** 2)
        assert err8 < err4 / 10

    @given(st.integers(min_value=1, max_value=12),
           st.floats(min_value=-0.999, max_value=0.999))
    @settings(max_examples=50)
    def test_quantizer_monotonic_and_bounded(self, bits, value):
        fmt = FixedPointFormat(total_bits=bits, full_scale=1.0)
        q = float(fmt.quantize(value))
        assert -1.0 <= q <= 1.0
        assert abs(q - value) <= fmt.step


class TestValidation:
    def test_require_positive_accepts(self):
        assert require_positive(3.0, "x") == 3.0

    def test_require_positive_rejects(self):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                require_positive(bad, "x")

    def test_require_non_negative(self):
        assert require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")

    def test_require_in_range(self):
        assert require_in_range(5.0, 0.0, 10.0, "x") == 5.0
        with pytest.raises(ValueError):
            require_in_range(11.0, 0.0, 10.0, "x")
        with pytest.raises(ValueError):
            require_in_range(0.0, 0.0, 10.0, "x", inclusive=False)

    def test_require_probability(self):
        assert require_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            require_probability(1.5, "p")

    def test_require_int(self):
        assert require_int(4, "n") == 4
        with pytest.raises(TypeError):
            require_int(4.0, "n")
        with pytest.raises(TypeError):
            require_int(True, "n")
        with pytest.raises(ValueError):
            require_int(2, "n", minimum=3)

    def test_as_1d_array(self):
        assert as_1d_array(3.0, "x").shape == (1,)
        assert as_1d_array([1, 2, 3], "x").shape == (3,)
        with pytest.raises(ValueError):
            as_1d_array(np.zeros((2, 2)), "x")

    def test_require_same_length(self):
        require_same_length([1, 2], [3, 4], "a", "b")
        with pytest.raises(ValueError):
            require_same_length([1], [1, 2], "a", "b")
