"""Tests for decibel and power-unit conversions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.db import (
    amplitude_to_db,
    db_to_amplitude,
    db_to_linear,
    dbm_to_vrms,
    dbm_to_watts,
    linear_to_db,
    noise_figure_to_temperature,
    temperature_to_noise_figure,
    vrms_to_dbm,
    watts_to_dbm,
)


class TestBasicConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_amplitude(0.0) == pytest.approx(1.0)

    def test_ten_db_is_factor_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_twenty_db_amplitude_is_factor_ten(self):
        assert db_to_amplitude(20.0) == pytest.approx(10.0)

    def test_three_db_is_roughly_two(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_linear_to_db_of_zero_is_finite(self):
        assert np.isfinite(linear_to_db(0.0))
        assert linear_to_db(0.0) < -3000.0

    def test_array_input_preserves_shape(self):
        values = np.array([0.0, 10.0, 20.0])
        assert db_to_linear(values).shape == values.shape

    def test_negative_db_is_attenuation(self):
        assert db_to_linear(-10.0) == pytest.approx(0.1)


class TestPowerUnits:
    def test_zero_dbm_is_one_milliwatt(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)

    def test_thirty_dbm_is_one_watt(self):
        assert dbm_to_watts(30.0) == pytest.approx(1.0)

    def test_watts_to_dbm_roundtrip(self):
        assert watts_to_dbm(dbm_to_watts(-41.3)) == pytest.approx(-41.3)

    def test_dbm_to_vrms_at_50_ohm(self):
        # 0 dBm in 50 ohm is 223.6 mV RMS.
        assert dbm_to_vrms(0.0) == pytest.approx(0.2236, rel=1e-3)

    def test_vrms_roundtrip(self):
        assert vrms_to_dbm(dbm_to_vrms(-14.3)) == pytest.approx(-14.3)


class TestNoiseFigure:
    def test_zero_nf_is_zero_kelvin(self):
        assert noise_figure_to_temperature(0.0) == pytest.approx(0.0)

    def test_three_db_nf_is_about_290k(self):
        assert noise_figure_to_temperature(3.0103) == pytest.approx(290.0, rel=1e-3)

    def test_roundtrip(self):
        for nf in (0.5, 3.0, 6.0, 10.0):
            temp = noise_figure_to_temperature(nf)
            assert temperature_to_noise_figure(temp) == pytest.approx(nf, rel=1e-9)


class TestProperties:
    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_db_linear_roundtrip(self, value_db):
        assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db,
                                                                     abs=1e-9)

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_linear_db_roundtrip(self, value):
        assert db_to_linear(linear_to_db(value)) == pytest.approx(value, rel=1e-9)

    @given(st.floats(min_value=-60.0, max_value=60.0),
           st.floats(min_value=-60.0, max_value=60.0))
    def test_db_addition_is_linear_multiplication(self, a_db, b_db):
        product = db_to_linear(a_db) * db_to_linear(b_db)
        assert product == pytest.approx(db_to_linear(a_db + b_db), rel=1e-9)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_amplitude_db_roundtrip(self, value_db):
        assert amplitude_to_db(db_to_amplitude(value_db)) == pytest.approx(
            value_db, abs=1e-9)
