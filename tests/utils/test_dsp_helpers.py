"""Tests for the generic DSP helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.utils import dsp


class TestEnergyAndPower:
    def test_energy_of_unit_impulse(self):
        x = np.zeros(16)
        x[3] = 1.0
        assert dsp.signal_energy(x) == pytest.approx(1.0)

    def test_power_of_constant(self):
        assert dsp.signal_power(2.0 * np.ones(100)) == pytest.approx(4.0)

    def test_complex_energy_uses_magnitude(self):
        x = np.array([1.0 + 1.0j, 1.0 - 1.0j])
        assert dsp.signal_energy(x) == pytest.approx(4.0)

    def test_empty_signal_power_is_zero(self):
        assert dsp.signal_power(np.zeros(0)) == 0.0

    def test_rms_of_sine(self):
        t = np.linspace(0, 1, 10000, endpoint=False)
        x = np.sin(2 * np.pi * 5 * t)
        assert dsp.rms(x) == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-3)


class TestNormalization:
    def test_normalize_energy(self):
        x = np.random.default_rng(0).standard_normal(64)
        y = dsp.normalize_energy(x, target_energy=2.5)
        assert dsp.signal_energy(y) == pytest.approx(2.5)

    def test_normalize_peak(self):
        x = np.array([0.1, -0.7, 0.3])
        y = dsp.normalize_peak(x, target_peak=2.0)
        assert np.max(np.abs(y)) == pytest.approx(2.0)

    def test_normalize_zero_signal_is_noop(self):
        x = np.zeros(8)
        assert np.array_equal(dsp.normalize_energy(x), x)
        assert np.array_equal(dsp.normalize_peak(x), x)

    @given(st.integers(min_value=2, max_value=64),
           st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=30)
    def test_energy_normalization_property(self, n, target):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 0.1
        y = dsp.normalize_energy(x, target_energy=target)
        assert dsp.signal_energy(y) == pytest.approx(target, rel=1e-9)


class TestUpDownConversion:
    def test_roundtrip_recovers_baseband(self):
        fs = 20e9
        fc = 5e9
        n = 4000
        t = np.arange(n) / fs
        envelope = np.exp(-((t - t[n // 2]) / 1e-9) ** 2).astype(complex)
        passband = dsp.upconvert(envelope, fc, fs)
        recovered = dsp.downconvert(passband, fc, fs, lowpass_bandwidth_hz=2e9)
        # Ignore filter edge effects.
        core = slice(n // 4, 3 * n // 4)
        assert np.allclose(np.real(recovered[core]), np.real(envelope[core]),
                           atol=0.05)

    def test_upconvert_is_real(self):
        fs = 20e9
        envelope = np.ones(100, dtype=complex)
        passband = dsp.upconvert(envelope, 5e9, fs)
        assert np.isrealobj(passband)

    def test_downconvert_rejects_double_frequency(self):
        fs = 40e9
        fc = 5e9
        n = 8000
        t = np.arange(n) / fs
        passband = np.cos(2 * np.pi * fc * t)
        baseband = dsp.downconvert(passband, fc, fs, lowpass_bandwidth_hz=1e9)
        # A pure carrier downconverts to (approximately) a constant 1.0.
        core = slice(n // 4, 3 * n // 4)
        assert np.allclose(np.abs(baseband[core]), 1.0, atol=0.05)


class TestFilters:
    def test_lowpass_removes_high_frequency(self):
        fs = 1e9
        n = 4096
        t = np.arange(n) / fs
        low = np.sin(2 * np.pi * 10e6 * t)
        high = np.sin(2 * np.pi * 400e6 * t)
        filtered = dsp.lowpass_filter(low + high, 50e6, fs)
        # High tone attenuated strongly, low tone preserved.
        assert np.std(filtered - low) < 0.1

    def test_lowpass_invalid_cutoff_raises(self):
        with pytest.raises(ValueError):
            dsp.lowpass_filter(np.zeros(64), 600e6, 1e9)

    def test_bandpass_keeps_in_band_tone(self):
        fs = 10e9
        n = 8192
        t = np.arange(n) / fs
        tone = np.sin(2 * np.pi * 2e9 * t)
        filtered = dsp.bandpass_filter(tone, 1.5e9, 2.5e9, fs)
        assert np.std(filtered[1000:-1000] - tone[1000:-1000]) < 0.05

    def test_bandpass_invalid_band_raises(self):
        with pytest.raises(ValueError):
            dsp.bandpass_filter(np.zeros(64), 2e9, 1e9, 10e9)

    def test_complex_lowpass_preserves_dtype(self):
        x = np.ones(256, dtype=complex)
        out = dsp.lowpass_filter(x, 100e6, 1e9)
        assert np.iscomplexobj(out)


class TestDelays:
    def test_integer_delay_shifts(self):
        x = np.arange(10, dtype=float)
        y = dsp.integer_delay(x, 3)
        assert np.array_equal(y[3:], x[:-3])
        assert np.all(y[:3] == 0)

    def test_negative_delay_advances(self):
        x = np.arange(10, dtype=float)
        y = dsp.integer_delay(x, -2)
        assert np.array_equal(y[:-2], x[2:])

    def test_delay_larger_than_signal_gives_zeros(self):
        x = np.ones(5)
        assert np.all(dsp.integer_delay(x, 10) == 0)

    def test_fractional_delay_half_sample(self):
        n = 256
        t = np.arange(n)
        x = np.sin(2 * np.pi * 0.02 * t)
        y = dsp.fractional_delay(x, 0.5)
        expected = np.sin(2 * np.pi * 0.02 * (t - 0.5))
        core = slice(40, -40)
        assert np.allclose(y[core], expected[core], atol=1e-3)

    def test_fractional_delay_integer_part(self):
        x = np.zeros(64)
        x[10] = 1.0
        y = dsp.fractional_delay(x, 5.0)
        assert int(np.argmax(np.abs(y))) == 15


class TestSpectral:
    def test_psd_peak_at_tone_frequency(self):
        fs = 1e9
        n = 16384
        t = np.arange(n) / fs
        x = np.sin(2 * np.pi * 100e6 * t)
        freqs, psd = dsp.estimate_psd(x, fs)
        assert abs(freqs[np.argmax(psd)] - 100e6) < 5e6

    def test_complex_psd_is_two_sided(self):
        fs = 1e9
        n = 8192
        t = np.arange(n) / fs
        x = np.exp(-1j * 2 * np.pi * 100e6 * t)
        freqs, psd = dsp.estimate_psd(x, fs)
        assert freqs.min() < 0
        assert abs(freqs[np.argmax(psd)] + 100e6) < 5e6

    def test_occupied_bandwidth_of_narrowband_tone(self):
        fs = 1e9
        n = 16384
        t = np.arange(n) / fs
        x = np.sin(2 * np.pi * 100e6 * t)
        bw = dsp.occupied_bandwidth(x, fs, power_fraction=0.99)
        assert bw < 20e6

    def test_occupied_bandwidth_invalid_fraction(self):
        with pytest.raises(ValueError):
            dsp.occupied_bandwidth(np.ones(128), 1e9, power_fraction=1.5)

    def test_occupied_bandwidth_zero_signal(self):
        assert dsp.occupied_bandwidth(np.zeros(1024), 1e9) == 0.0


class TestMisc:
    def test_time_vector_length_and_step(self):
        t = dsp.time_vector(10, 2e9)
        assert t.size == 10
        assert t[1] - t[0] == pytest.approx(0.5e-9)

    def test_time_vector_invalid(self):
        with pytest.raises(ValueError):
            dsp.time_vector(-1, 1e9)
        with pytest.raises(ValueError):
            dsp.time_vector(10, 0.0)

    def test_next_pow2(self):
        assert dsp.next_pow2(1) == 1
        assert dsp.next_pow2(2) == 2
        assert dsp.next_pow2(3) == 4
        assert dsp.next_pow2(1000) == 1024

    def test_resample_doubles_length(self):
        x = np.sin(2 * np.pi * 0.01 * np.arange(100))
        y = dsp.resample_signal(x, 2, 1)
        assert y.size == 200

    def test_resample_invalid(self):
        with pytest.raises(ValueError):
            dsp.resample_signal(np.ones(8), 0, 1)

    def test_add_complex_exponential_power(self):
        x = np.zeros(1000, dtype=complex)
        y = dsp.add_complex_exponential(x, 10e6, 1e9, amplitude=2.0)
        assert dsp.signal_power(y) == pytest.approx(4.0)
