"""End-to-end integration tests for the gen-1 baseband pulsed link."""

import numpy as np
import pytest

from repro.channel.multipath import exponential_decay_channel, two_ray_channel
from repro.core.config import Gen1Config
from repro.core.link import LinkSimulator
from repro.core.transceiver import Gen1Transceiver


@pytest.fixture
def fast_config():
    return Gen1Config.fast_test_config()


class TestGen1PacketLevel:
    def test_clean_packet(self, fast_config):
        transceiver = Gen1Transceiver(fast_config, rng=np.random.default_rng(1))
        simulation = transceiver.simulate_packet(
            num_payload_bits=32, ebn0_db=14.0, rng=np.random.default_rng(2))
        assert simulation.result.detected
        assert simulation.result.crc_ok
        assert simulation.result.payload_bit_errors == 0

    def test_noiseless_packet(self, fast_config):
        transceiver = Gen1Transceiver(fast_config, rng=np.random.default_rng(3))
        simulation = transceiver.simulate_packet(
            num_payload_bits=48, ebn0_db=None, rng=np.random.default_rng(4))
        assert simulation.result.crc_ok

    def test_timing_recovered(self, fast_config):
        transceiver = Gen1Transceiver(fast_config, rng=np.random.default_rng(5))
        simulation = transceiver.simulate_packet(
            num_payload_bits=16, ebn0_db=14.0, rng=np.random.default_rng(6))
        assert abs(simulation.result.timing_error_samples) <= 2

    def test_pulses_per_bit_improves_low_snr(self, fast_config):
        """Spreading each bit over more pulses buys SNR (the paper's data
        rate / robustness knob): at a poor per-bit Eb/N0 the 8-pulse-per-bit
        configuration should make no more errors than 1-pulse-per-bit."""
        rng = np.random.default_rng(7)
        errors = {}
        for ppb in (1, 8):
            config = fast_config.with_changes(pulses_per_bit=ppb)
            transceiver = Gen1Transceiver(config, rng=np.random.default_rng(8))
            total = 0
            for trial in range(3):
                simulation = transceiver.simulate_packet(
                    num_payload_bits=32, ebn0_db=8.0,
                    rng=np.random.default_rng(100 + trial))
                total += simulation.result.payload_bit_errors
            errors[ppb] = total
        assert errors[8] <= errors[1]

    def test_two_ray_multipath(self, fast_config):
        config = fast_config.with_changes(rake_fingers=2)
        transceiver = Gen1Transceiver(config, rng=np.random.default_rng(9))
        channel = two_ray_channel(6e-9, relative_gain_db=-3.0)
        simulation = transceiver.simulate_packet(
            num_payload_bits=32, ebn0_db=18.0, channel=channel,
            rng=np.random.default_rng(10))
        assert simulation.result.detected
        assert simulation.result.bit_error_rate < 0.2

    def test_acquisition_time_accounted(self, fast_config):
        transceiver = Gen1Transceiver(fast_config, rng=np.random.default_rng(11))
        simulation = transceiver.simulate_packet(
            num_payload_bits=16, ebn0_db=14.0, rng=np.random.default_rng(12))
        assert simulation.result.acquisition_time_s > 0


class TestGen1LinkSimulator:
    def test_ber_point_runs(self, fast_config):
        transceiver = Gen1Transceiver(fast_config, rng=np.random.default_rng(13))
        simulator = LinkSimulator(transceiver, rng=np.random.default_rng(14))
        point = simulator.ber_point(12.0, num_packets=3,
                                    payload_bits_per_packet=24)
        assert point.total_bits == 72
        assert 0.0 <= point.ber <= 1.0

    def test_multipath_channel_factory(self, fast_config):
        transceiver = Gen1Transceiver(fast_config, rng=np.random.default_rng(15))
        simulator = LinkSimulator(transceiver, rng=np.random.default_rng(16))
        channel_rng = np.random.default_rng(17)
        point = simulator.ber_point(
            16.0, num_packets=2, payload_bits_per_packet=24,
            channel_factory=lambda: exponential_decay_channel(
                4e-9, 1e-9, rng=channel_rng, complex_gains=False))
        assert 0.0 <= point.ber <= 1.0
