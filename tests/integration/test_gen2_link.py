"""End-to-end integration tests for the gen-2 direct-conversion link."""

import numpy as np
import pytest

from repro.channel.interference import ToneInterferer
from repro.channel.multipath import exponential_decay_channel
from repro.core.config import Gen2Config
from repro.core.link import LinkSimulator
from repro.core.transceiver import Gen2Transceiver


@pytest.fixture
def fast_config():
    return Gen2Config.fast_test_config()


class TestGen2PacketLevel:
    def test_clean_packet_at_high_ebn0(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(1))
        simulation = transceiver.simulate_packet(
            num_payload_bits=64, ebn0_db=16.0, rng=np.random.default_rng(2))
        assert simulation.result.detected
        assert simulation.result.crc_ok
        assert simulation.result.payload_bit_errors == 0

    def test_timing_error_small(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(3))
        simulation = transceiver.simulate_packet(
            num_payload_bits=32, ebn0_db=16.0, rng=np.random.default_rng(4))
        assert abs(simulation.result.timing_error_samples) <= 2

    def test_known_payload_recovered(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(5))
        payload = np.array([1, 0, 1, 1, 0, 0, 1, 0] * 4)
        simulation = transceiver.simulate_packet(
            payload_bits=payload, ebn0_db=18.0, rng=np.random.default_rng(6))
        assert np.array_equal(simulation.receive.payload_bits, payload)

    def test_noiseless_packet_perfect(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(7))
        simulation = transceiver.simulate_packet(
            num_payload_bits=64, ebn0_db=None, rng=np.random.default_rng(8))
        assert simulation.result.crc_ok
        assert simulation.result.payload_bit_errors == 0

    def test_very_low_snr_fails(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(9))
        simulation = transceiver.simulate_packet(
            num_payload_bits=64, ebn0_db=-12.0, rng=np.random.default_rng(10))
        assert (not simulation.result.crc_ok
                or simulation.result.payload_bit_errors > 0
                or not simulation.result.detected)

    def test_multipath_packet_with_rake(self, fast_config):
        config = fast_config.with_changes(rake_fingers=6,
                                          channel_estimate_taps=32)
        transceiver = Gen2Transceiver(config, rng=np.random.default_rng(11))
        rng = np.random.default_rng(12)
        channel = exponential_decay_channel(6e-9, 1e-9, rng=rng,
                                            complex_gains=True)
        simulation = transceiver.simulate_packet(
            num_payload_bits=32, ebn0_db=20.0, channel=channel, rng=rng)
        assert simulation.result.detected
        assert simulation.result.bit_error_rate < 0.2

    def test_cfo_tolerated(self, fast_config):
        config = fast_config.with_changes(carrier_frequency_offset_hz=50e3)
        transceiver = Gen2Transceiver(config, rng=np.random.default_rng(13))
        simulation = transceiver.simulate_packet(
            num_payload_bits=32, ebn0_db=18.0, rng=np.random.default_rng(14))
        assert simulation.result.detected

    def test_interferer_detected_by_monitor(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(15))
        interferer = ToneInterferer(frequency_hz=120e6, amplitude=0.6)
        simulation = transceiver.simulate_packet(
            num_payload_bits=32, ebn0_db=18.0, interferer=interferer,
            rng=np.random.default_rng(16), monitor_spectrum=True)
        report = simulation.receive.interferer_report
        assert report is not None
        assert report.detected
        assert abs(report.frequency_hz - 120e6) < 25e6


class TestGen2LinkSimulator:
    def test_ber_improves_with_ebn0(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(20))
        simulator = LinkSimulator(transceiver, rng=np.random.default_rng(21))
        curve = simulator.ber_sweep([2.0, 14.0], num_packets=4,
                                    payload_bits_per_packet=48)
        assert curve.points[1].ber <= curve.points[0].ber

    def test_acquisition_statistics(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(22))
        simulator = LinkSimulator(transceiver, rng=np.random.default_rng(23))
        stats = simulator.acquisition_statistics(ebn0_db=14.0, num_packets=6,
                                                 payload_bits_per_packet=16)
        assert stats.detection_probability >= 0.8
        assert stats.mean_search_time_s > 0
        assert stats.rms_timing_error_samples < 4

    def test_throughput_positive_at_good_snr(self, fast_config):
        transceiver = Gen2Transceiver(fast_config, rng=np.random.default_rng(24))
        simulator = LinkSimulator(transceiver, rng=np.random.default_rng(25))
        throughput = simulator.effective_throughput_bps(
            ebn0_db=16.0, num_packets=3, payload_bits_per_packet=48)
        assert throughput > 1e6
