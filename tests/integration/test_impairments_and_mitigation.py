"""Integration tests: RF impairments and the interferer-mitigation loop."""

import numpy as np
import pytest

from repro.channel.interference import ModulatedInterferer, ToneInterferer
from repro.core.config import Gen2Config
from repro.core.transceiver import Gen2Transceiver


@pytest.fixture
def fast_config():
    return Gen2Config.fast_test_config()


def _run_packets(config, num_packets=3, ebn0_db=16.0, interferer_factory=None,
                 seed=0):
    transceiver = Gen2Transceiver(config, rng=np.random.default_rng(seed))
    errors = 0
    total = 0
    successes = 0
    for index in range(num_packets):
        interferer = interferer_factory() if interferer_factory else None
        simulation = transceiver.simulate_packet(
            num_payload_bits=48, ebn0_db=ebn0_db, interferer=interferer,
            rng=np.random.default_rng(500 + seed * 31 + index))
        errors += simulation.result.payload_bit_errors
        total += simulation.result.num_payload_bits
        successes += 1 if simulation.result.packet_success else 0
    return errors / total, successes / num_packets


class TestDirectConversionImpairments:
    def test_small_iq_imbalance_tolerated(self, fast_config):
        config = fast_config.with_changes(iq_gain_imbalance_db=0.5,
                                          iq_phase_imbalance_deg=3.0)
        ber, success = _run_packets(config, seed=1)
        assert ber < 0.05
        assert success >= 2 / 3

    def test_small_dc_offset_tolerated(self, fast_config):
        config = fast_config.with_changes(dc_offset=0.02)
        ber, _ = _run_packets(config, seed=2)
        assert ber < 0.05

    def test_moderate_cfo_tolerated(self, fast_config):
        # 100 kHz offset rotates the constellation by ~14 degrees over the
        # short fast-config packet; the RAKE's channel-matched weights absorb
        # the common rotation.
        config = fast_config.with_changes(carrier_frequency_offset_hz=100e3)
        ber, _ = _run_packets(config, seed=3)
        assert ber < 0.1

    def test_severe_iq_imbalance_degrades(self, fast_config):
        clean_ber, _ = _run_packets(fast_config, seed=4, ebn0_db=8.0)
        config = fast_config.with_changes(iq_gain_imbalance_db=5.0,
                                          iq_phase_imbalance_deg=35.0)
        impaired_ber, _ = _run_packets(config, seed=4, ebn0_db=8.0)
        assert impaired_ber >= clean_ber


class TestInterfererMitigationLoop:
    def test_notch_recovers_strong_tone_interferer(self, fast_config):
        tone = lambda: ToneInterferer(frequency_hz=140e6, amplitude=1.5)
        without_ber, _ = _run_packets(
            fast_config.with_changes(enable_digital_notch=False),
            interferer_factory=tone, seed=5)
        with_ber, _ = _run_packets(
            fast_config.with_changes(enable_digital_notch=True),
            interferer_factory=tone, seed=5)
        assert with_ber < without_ber
        assert with_ber < 0.05

    def test_notch_helps_against_modulated_interferer(self, fast_config):
        """A modulated (finite-bandwidth) interferer is harder than a pure
        tone — a single notch cannot remove all of it — but the mitigation
        loop must never make things worse and should still help."""
        interferer = lambda: ModulatedInterferer(frequency_hz=-120e6,
                                                 symbol_rate_hz=10e6,
                                                 amplitude=1.5)
        without_ber, _ = _run_packets(
            fast_config.with_changes(enable_digital_notch=False),
            interferer_factory=interferer, seed=6)
        with_ber, _ = _run_packets(
            fast_config.with_changes(enable_digital_notch=True),
            interferer_factory=interferer, seed=6)
        assert with_ber <= without_ber

    def test_notch_loop_harmless_without_interferer(self, fast_config):
        ber, success = _run_packets(
            fast_config.with_changes(enable_digital_notch=True), seed=7)
        assert ber < 0.05
        assert success >= 2 / 3

    def test_monitor_report_attached_when_requested(self, fast_config):
        transceiver = Gen2Transceiver(fast_config,
                                      rng=np.random.default_rng(8))
        simulation = transceiver.simulate_packet(
            num_payload_bits=32, ebn0_db=16.0,
            interferer=ToneInterferer(frequency_hz=100e6, amplitude=1.0),
            rng=np.random.default_rng(9), monitor_spectrum=True)
        report = simulation.receive.interferer_report
        assert report is not None
        assert report.detected
