"""Property-based tests for invariants that span multiple modules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adc.flash import FlashADC
from repro.adc.quantizer import UniformQuantizer
from repro.adc.sar import SARADC
from repro.channel.multipath import MultipathChannel
from repro.constants import DEFAULT_BAND_PLAN
from repro.core.metrics import theoretical_bpsk_ber, theoretical_ook_ber
from repro.phy.packet import PacketBuilder, PacketConfig, PacketParser
from repro.phy.preamble import PreambleConfig
from repro.pulses.modulation import make_modulator
from repro.pulses.shapes import gaussian_derivative_pulse
from repro.pulses.train import PulseTrainConfig, PulseTrainGenerator
from repro.utils import dsp
from repro.utils.bits import random_bits


class TestTransmitChainInvariants:
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_pulse_train_energy_scales_with_symbol_count(self, pulses_per_bit,
                                                         order, seed):
        """Doubling the number of symbols doubles the transmitted energy
        (each symbol carries the same energy regardless of its sign)."""
        rng = np.random.default_rng(seed)
        pulse = gaussian_derivative_pulse(order, 500e6, 2e9)
        config = PulseTrainConfig(pulse_repetition_interval_s=20e-9,
                                  pulses_per_symbol=pulses_per_bit)
        generator = PulseTrainGenerator(pulse, config, make_modulator("bpsk"))
        bits = random_bits(8, rng)
        single = generator.generate_from_bits(bits)
        double = generator.generate_from_bits(np.concatenate((bits, bits)))
        assert dsp.signal_energy(double.waveform) == pytest.approx(
            2.0 * dsp.signal_energy(single.waveform), rel=1e-9)

    @given(st.sampled_from(["bpsk", "ook", "ppm", "pam4"]),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_modulator_roundtrip_through_clean_statistics(self, scheme, seed):
        """Any modulator demodulates its own clean symbols without error
        (PPM's decision statistic is the late-minus-early difference)."""
        rng = np.random.default_rng(seed)
        modulator = make_modulator(scheme)
        bits = random_bits(4 * modulator.bits_per_symbol * 5, rng)
        symbols = modulator.modulate(bits)
        if scheme == "ppm":
            statistics = 2.0 * np.asarray(symbols, dtype=float) - 1.0
        else:
            statistics = symbols
        assert np.array_equal(modulator.demodulate(statistics), bits)


class TestPacketInvariants:
    @given(st.integers(min_value=0, max_value=120),
           st.booleans(),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_packet_roundtrip_any_length_and_coding(self, num_bits, use_coding,
                                                    seed):
        config = PacketConfig(
            preamble=PreambleConfig(sequence_degree=5, num_repetitions=2),
            use_coding=use_coding)
        payload = random_bits(num_bits, np.random.default_rng(seed))
        packet = PacketBuilder(config).build(payload)
        parsed = PacketParser(config).parse(packet.body_bits)
        assert parsed.crc_ok
        assert np.array_equal(parsed.payload_bits, payload)

    @given(st.integers(min_value=8, max_value=64),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_body_is_deterministic(self, num_bits, seed):
        """Building the same payload twice produces identical body bits."""
        config = PacketConfig(
            preamble=PreambleConfig(sequence_degree=5, num_repetitions=2))
        payload = random_bits(num_bits, np.random.default_rng(seed))
        first = PacketBuilder(config).build(payload)
        second = PacketBuilder(config).build(payload)
        assert np.array_equal(first.body_bits, second.body_bits)


class TestConverterInvariants:
    @given(st.integers(min_value=1, max_value=8),
           st.floats(min_value=-2.0, max_value=2.0),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_all_architectures_agree_when_ideal(self, bits, value, seed):
        """An ideal flash, an ideal SAR, and the reference uniform quantizer
        agree to within one LSB for the same input.

        (Exactly at a code threshold the architectures may legitimately
        round to adjacent codes because of floating-point comparison order,
        hence the one-LSB tolerance rather than exact equality.)
        """
        rng = np.random.default_rng(seed)
        uniform = UniformQuantizer(bits=bits)
        flash = FlashADC(bits=bits, rng=rng)
        sar = SARADC(bits=bits, rng=rng)
        x = np.array([value])
        reference = uniform.quantize(x)[0]
        assert abs(flash.convert(x)[0] - reference) <= uniform.step + 1e-12
        assert abs(sar.convert(x)[0] - reference) <= uniform.step + 1e-12

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=16)
    def test_quantizer_is_idempotent(self, bits):
        """Quantizing an already-quantized signal changes nothing."""
        quantizer = UniformQuantizer(bits=bits)
        x = np.linspace(-0.99, 0.99, 101)
        once = quantizer.quantize(x)
        twice = quantizer.quantize(once)
        assert np.allclose(once, twice)


class TestChannelInvariants:
    @given(st.lists(st.floats(min_value=0.0, max_value=80e-9), min_size=1,
                    max_size=12),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_normalized_channel_has_unit_power_and_bounded_spread(self, delays,
                                                                  seed):
        rng = np.random.default_rng(seed)
        gains = rng.standard_normal(len(delays)) + 1j * rng.standard_normal(
            len(delays))
        # Guard against an all-zero draw.
        gains[0] += 1.0
        channel = MultipathChannel(np.asarray(delays), gains).normalized()
        assert channel.total_power() == pytest.approx(1.0)
        span = float(np.max(channel.delays_s) - np.min(channel.delays_s))
        assert channel.rms_delay_spread_s() <= span / 2.0 + 1e-15

    @given(st.floats(min_value=0.0, max_value=14.0))
    @settings(max_examples=30)
    def test_bpsk_always_beats_ook_in_theory(self, ebn0_db):
        assert theoretical_bpsk_ber(ebn0_db) <= theoretical_ook_ber(ebn0_db)


class TestBandPlanInvariants:
    @given(st.integers(min_value=0, max_value=13))
    @settings(max_examples=14)
    def test_channel_frequency_roundtrip(self, channel):
        frequency = DEFAULT_BAND_PLAN.center_frequency(channel)
        assert DEFAULT_BAND_PLAN.channel_for_frequency(frequency) == channel

    @given(st.floats(min_value=3.1e9, max_value=10.0999e9))
    @settings(max_examples=30)
    def test_every_in_plan_frequency_maps_to_one_channel(self, frequency):
        channel = DEFAULT_BAND_PLAN.channel_for_frequency(frequency)
        low, high = DEFAULT_BAND_PLAN.channel_edges(channel)
        assert low <= frequency < high or frequency == high
