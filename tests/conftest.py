"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A reproducible random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory producing independently seeded generators."""
    def make(seed: int = 0):
        return np.random.default_rng(seed)
    return make


@pytest.fixture
def small_sweep_grid():
    """A four-point AWGN grid small enough for sub-second sim tests.

    ``repro.sim`` is imported lazily so a breakage there cannot take down
    collection of the unrelated suites sharing this conftest.
    """
    from repro.sim import sweep_grid
    return sweep_grid([2.0, 4.0, 6.0, 8.0], scenarios=("awgn",))


@pytest.fixture
def engine_factory():
    """Factory producing seeded sweep engines with test-sized defaults.

    Keyword arguments are forwarded to :class:`repro.sim.SweepEngine`, so
    tests can ask for a different backend, generation, or worker count
    while sharing one seeding convention.
    """
    from repro.sim import SweepEngine

    def make(seed: int = 0, **kwargs) -> SweepEngine:
        return SweepEngine(seed=seed, **kwargs)
    return make
