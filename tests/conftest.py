"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A reproducible random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory producing independently seeded generators."""
    def make(seed: int = 0):
        return np.random.default_rng(seed)
    return make
