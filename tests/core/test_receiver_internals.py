"""Unit tests for receiver internals shared by both generations."""

import numpy as np
import pytest

from repro.core.config import Gen1Config, Gen2Config
from repro.core.metrics import PacketResult
from repro.core.receiver import Gen1Receiver, Gen2Receiver, ReceiveResult
from repro.core.transmitter import Gen1Transmitter, Gen2Transmitter
from repro.dsp.acquisition import AcquisitionResult
from repro.phy.packet import HEADER_LENGTH_BITS
from repro.utils.bits import int_to_bits, random_bits


@pytest.fixture
def gen2_pair():
    config = Gen2Config.fast_test_config()
    return (Gen2Transmitter(config),
            Gen2Receiver(config, rng=np.random.default_rng(0)), config)


@pytest.fixture
def gen1_pair():
    config = Gen1Config.fast_test_config()
    return (Gen1Transmitter(config),
            Gen1Receiver(config, rng=np.random.default_rng(0)), config)


class TestTemplates:
    def test_preamble_template_matches_transmitted_preamble(self, gen2_pair):
        transmitter, receiver, config = gen2_pair
        out = transmitter.transmit(random_bits(8, np.random.default_rng(1)),
                                   lead_in_s=0.0)
        decimated = out.waveform[::config.decimation_factor]
        preamble_part = decimated[:receiver.preamble_template.size]
        # The receiver's stored template reproduces the transmitted preamble.
        correlation = np.abs(np.vdot(preamble_part, receiver.preamble_template))
        norm = (np.linalg.norm(preamble_part)
                * np.linalg.norm(receiver.preamble_template))
        assert correlation / norm > 0.99

    def test_symbol_template_length(self, gen2_pair):
        _, receiver, config = gen2_pair
        assert receiver.symbol_template.size == \
            config.pulses_per_bit * config.samples_per_pri_adc

    def test_gen1_templates_are_real(self, gen1_pair):
        _, receiver, _ = gen1_pair
        assert not np.iscomplexobj(receiver.preamble_template)
        assert not np.iscomplexobj(receiver.pulse_template)

    def test_gen2_templates_are_complex(self, gen2_pair):
        _, receiver, _ = gen2_pair
        assert np.iscomplexobj(receiver.pulse_template)

    def test_chips_to_waveform_scales_with_chip_value(self, gen2_pair):
        _, receiver, _ = gen2_pair
        plus = receiver._chips_to_waveform(np.array([1.0]))
        minus = receiver._chips_to_waveform(np.array([-1.0]))
        assert np.allclose(plus, -minus)


class TestHeaderDrivenLength:
    def test_coded_payload_bit_count(self, gen2_pair):
        _, receiver, config = gen2_pair
        header = np.concatenate((int_to_bits(40, 12), int_to_bits(0, 3),
                                 int_to_bits(1, 1)))
        count = receiver._coded_payload_bit_count(header)
        code = config.packet.code
        expected = (40 + config.packet.crc.width
                    + code.constraint_length - 1) * code.rate_inverse
        assert count == expected

    def test_uncoded_payload_bit_count(self, gen2_pair):
        _, receiver, config = gen2_pair
        header = np.concatenate((int_to_bits(40, 12), int_to_bits(0, 3),
                                 int_to_bits(0, 1)))
        assert receiver._coded_payload_bit_count(header) == \
            40 + config.packet.crc.width

    def test_header_length_constant(self):
        assert HEADER_LENGTH_BITS == 16


class TestDigitization:
    def test_gen2_digitize_is_quantized(self, gen2_pair):
        _, receiver, config = gen2_pair
        analog = 0.7 * np.exp(1j * np.linspace(0, 6.0, 64))
        digital = receiver._digitize(analog, np.random.default_rng(2))
        step = 2.0 / (1 << config.adc_bits)
        assert np.max(np.abs(digital.real - analog.real)) <= step
        assert np.iscomplexobj(digital)

    def test_gen1_digitize_uses_real_part(self, gen1_pair):
        _, receiver, _ = gen1_pair
        analog = 0.5 * np.sin(np.linspace(0, 20, 128))
        digital = receiver._digitize(analog, np.random.default_rng(3))
        assert not np.iscomplexobj(digital)
        assert np.max(np.abs(digital - analog)) <= 2.0 / (1 << 4)

    def test_demodulate_statistics_slicer(self, gen2_pair):
        _, receiver, _ = gen2_pair
        bits = receiver._demodulate_statistics(np.array([0.4, -0.1, 2.0,
                                                         -3.0 + 1.0j]))
        assert np.array_equal(bits, [1, 0, 1, 0])


class TestReceiveResultScoring:
    def _acquisition(self, detected=True):
        return AcquisitionResult(detected=detected, timing_offset_samples=105,
                                 peak_metric=0.7, num_hypotheses_searched=100,
                                 search_time_s=1e-6,
                                 correlation_profile=np.zeros(4))

    def test_packet_result_counts_missing_bits_as_errors(self):
        result = ReceiveResult(acquisition=self._acquisition(),
                               channel_estimate=None,
                               payload_bits=np.array([1, 0], dtype=np.int64),
                               crc_ok=False)
        packet = result.to_packet_result(np.array([1, 0, 1, 1]), 100)
        assert isinstance(packet, PacketResult)
        assert packet.payload_bit_errors == 2
        assert packet.timing_error_samples == 5
        assert not packet.packet_success

    def test_perfect_reception_scores_clean(self):
        payload = np.array([1, 0, 1, 1], dtype=np.int64)
        result = ReceiveResult(acquisition=self._acquisition(),
                               channel_estimate=None,
                               payload_bits=payload.copy(), crc_ok=True)
        packet = result.to_packet_result(payload, 105)
        assert packet.payload_bit_errors == 0
        assert packet.timing_error_samples == 0
        assert packet.packet_success

    def test_not_detected_property(self):
        result = ReceiveResult(acquisition=self._acquisition(detected=False),
                               channel_estimate=None,
                               payload_bits=np.zeros(0, dtype=np.int64),
                               crc_ok=False)
        assert not result.detected


class TestMissingPacket:
    def test_noise_only_capture_rejected(self, gen2_pair):
        _, receiver, config = gen2_pair
        rng = np.random.default_rng(5)
        noise = 0.05 * (rng.standard_normal(6000)
                        + 1j * rng.standard_normal(6000))
        result = receiver.receive(noise, rng=rng)
        assert not result.detected
        assert result.payload_bits.size == 0

    def test_gen1_noise_only_capture_rejected(self, gen1_pair):
        _, receiver, _ = gen1_pair
        rng = np.random.default_rng(6)
        noise = 0.05 * rng.standard_normal(12000)
        result = receiver.receive(noise, rng=rng)
        assert not result.detected
