"""Golden regression tests for the closed-form BER expressions.

The theoretical curves are what every benchmark compares measurements
against; a silent change to them would invalidate every claim table.  The
pinned values are the textbook AWGN results (e.g. BPSK at 0 dB is the
classic 7.86e-2).
"""

import numpy as np
import pytest

from repro.core.metrics import (
    qfunc,
    theoretical_bpsk_ber,
    theoretical_ook_ber,
    theoretical_ppm_ber,
)
from repro.sim import BatchedLinkModel
from repro.core.config import Gen2Config

# (Eb/N0 [dB], BPSK, OOK, PPM) — Q(sqrt(2 Eb/N0)) and Q(sqrt(Eb/N0)).
GOLDEN = [
    (0.0, 7.864960352514e-02, 1.586552539315e-01, 1.586552539315e-01),
    (4.0, 1.250081804074e-02, 5.649530174936e-02, 5.649530174936e-02),
    (8.0, 1.909077740760e-04, 6.004386400164e-03, 6.004386400164e-03),
    (10.0, 3.872108215522e-06, 7.827011290013e-04, 7.827011290013e-04),
]


class TestGoldenValues:
    @pytest.mark.parametrize("ebn0_db,bpsk,ook,ppm", GOLDEN)
    def test_pinned_points(self, ebn0_db, bpsk, ook, ppm):
        assert float(theoretical_bpsk_ber(ebn0_db)) == pytest.approx(
            bpsk, rel=1e-9)
        assert float(theoretical_ook_ber(ebn0_db)) == pytest.approx(
            ook, rel=1e-9)
        assert float(theoretical_ppm_ber(ebn0_db)) == pytest.approx(
            ppm, rel=1e-9)

    def test_qfunc_anchors(self):
        assert float(qfunc(0.0)) == pytest.approx(0.5, rel=1e-12)
        # Q(1) and Q(3): standard normal tail probabilities.
        assert float(qfunc(1.0)) == pytest.approx(1.586552539315e-01, rel=1e-9)
        assert float(qfunc(3.0)) == pytest.approx(1.349898031630e-03, rel=1e-9)

    def test_vectorized_evaluation(self):
        grid = np.array([row[0] for row in GOLDEN])
        expected = np.array([row[1] for row in GOLDEN])
        np.testing.assert_allclose(theoretical_bpsk_ber(grid), expected,
                                   rtol=1e-9)


class TestCurveRelationships:
    def test_curves_monotonically_decrease(self):
        grid = np.linspace(-2.0, 14.0, 30)
        for curve in (theoretical_bpsk_ber, theoretical_ook_ber,
                      theoretical_ppm_ber):
            values = curve(grid)
            assert np.all(np.diff(values) < 0)

    def test_bpsk_has_three_db_advantage(self):
        """Antipodal signalling needs exactly 3.01 dB less Eb/N0 than
        orthogonal/unipolar for the same error rate."""
        grid = np.linspace(0.0, 10.0, 11)
        shift_db = 10.0 * np.log10(2.0)
        np.testing.assert_allclose(theoretical_bpsk_ber(grid),
                                   theoretical_ook_ber(grid + shift_db),
                                   rtol=1e-12)
        np.testing.assert_allclose(theoretical_ook_ber(grid),
                                   theoretical_ppm_ber(grid), rtol=1e-12)


class TestMeasuredTracksTheory:
    @pytest.mark.parametrize("ebn0_db", [2.0, 4.0])
    def test_awgn_bpsk_within_three_sigma(self, ebn0_db, rng):
        """Measured matched-filter BPSK BER stays inside the 3-sigma
        binomial band around the closed form."""
        model = BatchedLinkModel(Gen2Config.fast_test_config(),
                                 modulation="bpsk", quantize=False)
        result = model.simulate(ebn0_db, num_packets=100,
                                payload_bits_per_packet=100, rng=rng)
        theory = float(theoretical_bpsk_ber(ebn0_db))
        sigma = np.sqrt(theory * (1.0 - theory) / result.total_bits)
        assert abs(result.ber - theory) <= 3.0 * sigma
