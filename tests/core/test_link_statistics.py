"""Unit tests for the link simulator's acquisition statistics container."""

import math

from repro.core.link import AcquisitionStatistics


class TestAcquisitionStatisticsEmpty:
    def test_no_packets_reports_nan_not_zero(self):
        """"No data" must be distinguishable from "never detects" /
        "perfect timing"."""
        stats = AcquisitionStatistics()
        assert math.isnan(stats.detection_probability)
        assert math.isnan(stats.mean_search_time_s)
        assert math.isnan(stats.rms_timing_error_samples)

    def test_all_misses_still_reports_nan_latencies(self):
        stats = AcquisitionStatistics()
        stats.record(detected=False, timing_error_samples=0,
                     search_time_s=0.0)
        stats.record(detected=False, timing_error_samples=0,
                     search_time_s=0.0)
        # Detection probability is now a real measurement (0 of 2) ...
        assert stats.detection_probability == 0.0
        # ... but there are still no detected packets to time.
        assert math.isnan(stats.mean_search_time_s)
        assert math.isnan(stats.rms_timing_error_samples)


class TestAcquisitionStatisticsRecording:
    def test_detections_populate_all_statistics(self):
        stats = AcquisitionStatistics()
        stats.record(detected=True, timing_error_samples=3,
                     search_time_s=2e-6)
        stats.record(detected=True, timing_error_samples=-4,
                     search_time_s=4e-6)
        stats.record(detected=False, timing_error_samples=0,
                     search_time_s=0.0)
        assert stats.attempts == 3
        assert stats.detections == 2
        assert stats.detection_probability == 2 / 3
        assert stats.mean_search_time_s == 3e-6
        expected_rms = math.sqrt((3 ** 2 + 4 ** 2) / 2)
        assert stats.rms_timing_error_samples == expected_rms

    def test_missed_packets_do_not_pollute_timing(self):
        stats = AcquisitionStatistics()
        stats.record(detected=False, timing_error_samples=999,
                     search_time_s=1.0)
        assert stats.timing_errors_samples == []
        assert stats.search_times_s == []
