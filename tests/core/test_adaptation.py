"""Tests for the power/QoS/data-rate adaptation controller."""

import pytest

from repro.core.adaptation import (
    AdaptationController,
    ChannelConditions,
    OperatingMode,
)
from repro.core.config import Gen2Config


class TestChannelConditions:
    def test_invalid_delay_spread(self):
        with pytest.raises(ValueError):
            ChannelConditions(snr_db=10.0, rms_delay_spread_s=-1.0)


class TestAdaptationController:
    def _controller(self):
        return AdaptationController(Gen2Config())

    def test_mode_table_rates_decrease_with_robustness(self):
        controller = self._controller()
        modes = controller.available_modes(ChannelConditions(snr_db=20.0))
        rates = [m.data_rate_bps for m in modes]
        assert rates == sorted(rates, reverse=True)

    def test_full_rate_at_high_snr(self):
        controller = self._controller()
        mode = controller.select_max_throughput(ChannelConditions(snr_db=20.0))
        assert mode.data_rate_bps == pytest.approx(100e6)

    def test_robust_mode_at_low_snr(self):
        controller = self._controller()
        mode = controller.select_max_throughput(ChannelConditions(snr_db=3.0))
        assert mode.pulses_per_bit >= 8
        assert mode.data_rate_bps < 20e6

    def test_infeasible_snr_falls_back_to_most_robust(self):
        controller = self._controller()
        mode = controller.select_max_throughput(ChannelConditions(snr_db=-10.0))
        assert mode.name == "robust"

    def test_interferer_raises_adc_bits_floor(self):
        # The paper: 1-bit suffices in noise, 4-bit needed with an interferer.
        controller = AdaptationController(Gen2Config(adc_bits=1))
        clean = controller.select_max_throughput(
            ChannelConditions(snr_db=20.0, interferer_detected=False))
        jammed = controller.select_max_throughput(
            ChannelConditions(snr_db=20.0, interferer_detected=True))
        assert clean.adc_bits == 1
        assert jammed.adc_bits >= 4
        assert jammed.notch_enabled

    def test_long_delay_spread_forces_mlse(self):
        controller = self._controller()
        mode = controller.select_max_throughput(
            ChannelConditions(snr_db=20.0, rms_delay_spread_s=30e-9))
        assert mode.use_mlse

    def test_min_power_meets_rate_requirement(self):
        controller = self._controller()
        conditions = ChannelConditions(snr_db=20.0)
        mode = controller.select_min_power(conditions, required_rate_bps=20e6)
        assert mode.data_rate_bps >= 20e6
        # It should not pick a faster (more power hungry) mode than needed.
        full = controller.select_max_throughput(conditions)
        assert mode.power_w <= full.power_w + 1e-9

    def test_min_energy_per_bit_prefers_high_rate_at_high_snr(self):
        controller = self._controller()
        mode = controller.select_min_energy_per_bit(
            ChannelConditions(snr_db=20.0))
        assert mode.data_rate_bps >= 50e6

    def test_power_increases_with_robustness_features(self):
        controller = self._controller()
        modes = controller.available_modes(ChannelConditions(snr_db=20.0))
        full = next(m for m in modes if m.name == "full_rate")
        robust = next(m for m in modes if m.name == "robust")
        assert robust.rake_fingers > full.rake_fingers
        assert robust.power_w > full.power_w

    def test_config_for_mode_roundtrip(self):
        controller = self._controller()
        mode = controller.select_max_throughput(ChannelConditions(snr_db=9.0))
        config = controller.config_for_mode(mode)
        assert config.pulses_per_bit == mode.pulses_per_bit
        assert config.rake_fingers == mode.rake_fingers
        assert config.data_rate_bps == pytest.approx(mode.data_rate_bps)

    def test_rate_power_frontier_sorted(self):
        controller = self._controller()
        frontier = controller.rate_power_frontier(ChannelConditions(snr_db=20.0))
        rates = [r for r, _ in frontier]
        assert rates == sorted(rates)
        assert len(frontier) == 5

    def test_energy_per_bit_infinite_for_zero_rate(self):
        mode = OperatingMode(name="x", pulses_per_bit=1, rake_fingers=1,
                             use_mlse=False, adc_bits=5, notch_enabled=False,
                             data_rate_bps=0.0, power_w=1.0, min_snr_db=0.0)
        assert mode.energy_per_bit_j() == float("inf")
