"""Tests for multi-channel selection and frequency hopping."""

import pytest

from repro.core.hopping import (
    ChannelQualityMap,
    ChannelSelector,
    HoppingLinkPlanner,
)
from repro.rf.synthesizer import FrequencySynthesizer, HoppingSequence


class TestChannelQualityMap:
    def test_defaults_are_clean(self):
        quality = ChannelQualityMap()
        assert len(quality.clean_channels()) == 14
        assert quality.sinr_db(0) == pytest.approx(20.0)

    def test_update_and_read_back(self):
        quality = ChannelQualityMap()
        quality.update(3, sinr_db=7.5, interferer_detected=True)
        assert quality.sinr_db(3) == pytest.approx(7.5)
        assert quality.interferer_detected(3)
        assert 3 not in quality.clean_channels()

    def test_record_interferer_frequency(self):
        quality = ChannelQualityMap()
        # 5.2 GHz WLAN lands in channel 3 (5.1-5.6 GHz).
        channel = quality.record_interferer_frequency(5.2e9)
        assert channel == quality.band_plan.channel_for_frequency(5.2e9)
        assert quality.interferer_detected(channel)
        assert quality.sinr_db(channel) < 20.0

    def test_invalid_channel(self):
        quality = ChannelQualityMap()
        with pytest.raises(ValueError):
            quality.update(14, sinr_db=10.0)

    def test_as_rows_length(self):
        assert len(ChannelQualityMap().as_rows()) == 14


class TestChannelSelector:
    def _jammed_map(self):
        quality = ChannelQualityMap()
        quality.update(0, sinr_db=25.0)
        quality.update(1, sinr_db=30.0, interferer_detected=True)
        quality.update(2, sinr_db=22.0)
        return quality

    def test_best_channel_avoids_interferer(self):
        selector = ChannelSelector(self._jammed_map())
        best = selector.best_channel()
        assert best != 1
        assert best == 0  # highest SINR among clean channels

    def test_best_channel_falls_back_when_all_jammed(self):
        quality = ChannelQualityMap()
        for channel in range(14):
            quality.update(channel, sinr_db=5.0 + channel,
                           interferer_detected=True)
        assert ChannelSelector(quality).best_channel() == 13

    def test_ranked_channels_put_clean_first(self):
        selector = ChannelSelector(self._jammed_map())
        ranking = selector.ranked_channels()
        assert ranking.index(1) > ranking.index(0)
        assert ranking.index(1) > ranking.index(2)

    def test_ranked_channels_count(self):
        selector = ChannelSelector(self._jammed_map())
        assert len(selector.ranked_channels(count=5)) == 5

    def test_hopping_sequence_avoids_jammed_channel(self):
        selector = ChannelSelector(self._jammed_map())
        sequence = selector.hopping_sequence(length=8, max_channels=4)
        assert len(sequence.channels) == 8
        assert 1 not in sequence.channels


class TestHoppingLinkPlanner:
    def test_no_overhead_for_static_channel(self):
        planner = HoppingLinkPlanner(dwell_time_s=10e-6)
        sequence = HoppingSequence(channels=(5,))
        assert planner.hop_overhead_fraction(sequence, num_dwells=10) == 0.0
        assert planner.effective_data_rate_bps(sequence, num_dwells=10) \
            == pytest.approx(planner.data_rate_bps)

    def test_overhead_grows_with_hop_rate(self):
        synthesizer = FrequencySynthesizer(hop_time_s=1e-6)
        planner = HoppingLinkPlanner(synthesizer, dwell_time_s=10e-6)
        slow = HoppingSequence(channels=(0, 0, 0, 0, 1, 1, 1, 1))
        fast = HoppingSequence(channels=(0, 1, 2, 3, 4, 5, 6, 7))
        assert planner.hop_overhead_fraction(fast, num_dwells=8) > \
            planner.hop_overhead_fraction(slow, num_dwells=8)

    def test_effective_rate_below_nominal_when_hopping(self):
        synthesizer = FrequencySynthesizer(hop_time_s=1e-6)
        planner = HoppingLinkPlanner(synthesizer, dwell_time_s=5e-6,
                                     data_rate_bps=100e6)
        sequence = HoppingSequence.round_robin()
        rate = planner.effective_data_rate_bps(sequence, num_dwells=14)
        assert 50e6 < rate < 100e6

    def test_overhead_bounded(self):
        synthesizer = FrequencySynthesizer(hop_time_s=9e-9)
        planner = HoppingLinkPlanner(synthesizer, dwell_time_s=10e-6)
        sequence = HoppingSequence.round_robin()
        overhead = planner.hop_overhead_fraction(sequence, num_dwells=28)
        assert 0.0 <= overhead < 0.01
