"""Tests for the gen-1 and gen-2 transmitters."""

import numpy as np
import pytest

from repro.constants import DEFAULT_BAND_PLAN
from repro.core.config import Gen1Config, Gen2Config
from repro.core.transmitter import Gen1Transmitter, Gen2Transmitter
from repro.pulses.spectrum import summarize_spectrum
from repro.utils import dsp
from repro.utils.bits import random_bits


class TestGen1Transmitter:
    def test_waveform_is_real(self, rng):
        tx = Gen1Transmitter(Gen1Config.fast_test_config())
        out = tx.transmit(random_bits(16, rng))
        assert not np.iscomplexobj(out.waveform)

    def test_structure_offsets(self, rng):
        config = Gen1Config.fast_test_config()
        tx = Gen1Transmitter(config)
        out = tx.transmit(random_bits(16, rng), lead_in_s=100e-9)
        expected_lead = int(round(100e-9 * config.simulation_rate_hz))
        assert out.preamble_start_sample == expected_lead
        preamble_samples = (config.packet.preamble.total_symbols
                            * tx.samples_per_chip)
        assert out.body_start_sample == expected_lead + preamble_samples

    def test_body_symbol_count_matches_packet(self, rng):
        tx = Gen1Transmitter(Gen1Config.fast_test_config())
        out = tx.transmit(random_bits(16, rng))
        assert out.num_body_symbols == out.packet.body_bits.size

    def test_energy_per_bit_scales_with_pulses_per_bit(self, rng):
        base = Gen1Config.fast_test_config()
        bits = random_bits(16, rng)
        e1 = Gen1Transmitter(base.with_changes(pulses_per_bit=1)) \
            .transmit(bits).energy_per_body_bit()
        e4 = Gen1Transmitter(base.with_changes(pulses_per_bit=4)) \
            .transmit(bits).energy_per_body_bit()
        assert e4 == pytest.approx(4 * e1, rel=0.05)

    def test_duration_matches_rate(self, rng):
        config = Gen1Config.fast_test_config()
        tx = Gen1Transmitter(config)
        payload = random_bits(16, rng)
        out = tx.transmit(payload, lead_in_s=0.0, lead_out_s=0.0)
        expected = (config.packet.preamble.total_symbols
                    + out.packet.body_bits.size * config.pulses_per_bit) \
            * config.pulse_repetition_interval_s
        assert out.duration_s == pytest.approx(expected, rel=1e-6)


class TestGen2Transmitter:
    def test_waveform_is_complex(self, rng):
        tx = Gen2Transmitter(Gen2Config.fast_test_config())
        out = tx.transmit(random_bits(16, rng))
        assert np.iscomplexobj(out.waveform)

    def test_default_rate_is_100mbps(self):
        tx = Gen2Transmitter(Gen2Config())
        assert tx.config.data_rate_bps == pytest.approx(100e6)

    def test_carrier_frequency_follows_channel_index(self):
        for channel in (0, 7, 13):
            tx = Gen2Transmitter(Gen2Config(channel_index=channel))
            assert tx.carrier_frequency_hz() == pytest.approx(
                DEFAULT_BAND_PLAN.center_frequency(channel))

    def test_occupied_bandwidth_near_500mhz(self, rng):
        tx = Gen2Transmitter(Gen2Config.fast_test_config())
        out = tx.transmit(random_bits(64, rng))
        bandwidth = dsp.occupied_bandwidth(out.waveform,
                                           out.sample_rate_hz,
                                           power_fraction=0.99)
        assert 200e6 < bandwidth < 900e6

    def test_amplitude_scaling(self, rng):
        tx = Gen2Transmitter(Gen2Config.fast_test_config())
        bits = random_bits(16, rng)
        small = tx.transmit(bits, amplitude=0.1)
        large = tx.transmit(bits, amplitude=1.0)
        assert dsp.signal_energy(large.waveform) == pytest.approx(
            100 * dsp.signal_energy(small.waveform), rel=1e-6)

    def test_passband_spectrum_centred_on_carrier(self, rng):
        config = Gen2Config.fast_test_config().with_changes(channel_index=3)
        tx = Gen2Transmitter(config)
        out = tx.transmit(random_bits(8, rng), lead_in_s=0.0, lead_out_s=0.0)
        passband = tx.passband_waveform(out)
        carrier = tx.carrier_frequency_hz()
        passband_rate = (out.sample_rate_hz
                         * int(np.ceil(4.0 * (carrier + 500e6)
                                       / out.sample_rate_hz)))
        summary = summarize_spectrum(passband, passband_rate)
        assert abs(summary.peak_frequency_hz - carrier) < 0.6e9

    def test_preamble_chips_are_bipolar(self, rng):
        tx = Gen2Transmitter(Gen2Config.fast_test_config())
        out = tx.transmit(random_bits(8, rng))
        assert set(np.unique(out.packet.preamble_symbols)) == {-1.0, 1.0}
