"""Tests for the transceiver configurations, metrics, and the band plan."""

import numpy as np
import pytest

from repro.constants import (
    BandPlan,
    DEFAULT_BAND_PLAN,
    FCC_UWB_HIGH_HZ,
    FCC_UWB_LOW_HZ,
    GEN2_NUM_CHANNELS,
)
from repro.core.config import Gen1Config, Gen2Config
from repro.core.metrics import (
    BERCurve,
    BERPoint,
    PacketResult,
    count_payload_errors,
    qfunc,
    theoretical_bpsk_ber,
    theoretical_ook_ber,
)


class TestBandPlan:
    def test_fourteen_channels(self):
        assert DEFAULT_BAND_PLAN.num_channels == GEN2_NUM_CHANNELS == 14

    def test_center_frequencies_inside_fcc_band(self):
        for channel in range(14):
            low, high = DEFAULT_BAND_PLAN.channel_edges(channel)
            assert low >= FCC_UWB_LOW_HZ - 1.0
            assert high <= FCC_UWB_HIGH_HZ + 1.0

    def test_first_channel_center(self):
        assert DEFAULT_BAND_PLAN.center_frequency(0) == pytest.approx(3.35e9)

    def test_channel_spacing(self):
        centers = DEFAULT_BAND_PLAN.all_center_frequencies()
        spacings = np.diff(centers)
        assert np.allclose(spacings, 500e6)

    def test_fits_in_fcc_band(self):
        assert DEFAULT_BAND_PLAN.fits_in_fcc_band()

    def test_channel_for_frequency(self):
        assert DEFAULT_BAND_PLAN.channel_for_frequency(3.4e9) == 0
        assert DEFAULT_BAND_PLAN.channel_for_frequency(5.0e9) == 3

    def test_frequency_outside_plan_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_BAND_PLAN.channel_for_frequency(2.0e9)

    def test_invalid_channel_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_BAND_PLAN.center_frequency(14)

    def test_custom_plan(self):
        plan = BandPlan(num_channels=3, channel_bandwidth_hz=1e9,
                        band_low_hz=3.1e9, band_high_hz=10.6e9)
        assert plan.center_frequency(2) == pytest.approx(3.1e9 + 2.5e9)


class TestGen1Config:
    def test_default_data_rate_matches_paper(self):
        config = Gen1Config()
        # 104 pulses per bit at 50 ns PRI -> 192.3 kbps, the paper's 193 kbps.
        assert config.data_rate_bps == pytest.approx(192.3e3, rel=0.01)

    def test_adc_matches_paper(self):
        config = Gen1Config()
        assert config.adc_rate_hz == pytest.approx(2e9)
        assert config.adc_interleave_factor == 4

    def test_decimation_factor(self):
        assert Gen1Config().decimation_factor == 2

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            Gen1Config(simulation_rate_hz=1e9, adc_rate_hz=2e9)
        with pytest.raises(ValueError):
            Gen1Config(simulation_rate_hz=3e9, adc_rate_hz=2e9)

    def test_pri_must_be_integer_samples(self):
        with pytest.raises(ValueError):
            Gen1Config(pulse_repetition_interval_s=50.3e-9)

    def test_with_changes(self):
        config = Gen1Config().with_changes(pulses_per_bit=52)
        assert config.pulses_per_bit == 52
        assert config.adc_bits == Gen1Config().adc_bits

    def test_fast_config_valid(self):
        config = Gen1Config.fast_test_config()
        assert config.data_rate_bps > 1e6

    def test_preamble_duration(self):
        config = Gen1Config()
        expected = config.packet.preamble.total_symbols * 50e-9
        assert config.preamble_duration_s == pytest.approx(expected)


class TestGen2Config:
    def test_default_data_rate_is_100mbps(self):
        assert Gen2Config().data_rate_bps == pytest.approx(100e6)

    def test_adc_matches_paper(self):
        config = Gen2Config()
        assert config.adc_bits == 5
        assert config.channel_estimate_bits == 4

    def test_channel_index_bounds(self):
        with pytest.raises(ValueError):
            Gen2Config(channel_index=14)

    def test_pulses_per_bit_lowers_rate(self):
        config = Gen2Config(pulses_per_bit=4)
        assert config.data_rate_bps == pytest.approx(25e6)

    def test_fast_config_valid(self):
        config = Gen2Config.fast_test_config()
        assert config.samples_per_pri_adc >= 4

    def test_preamble_duration_near_20us_for_default(self):
        # 127-chip sequence x 8 repetitions x 10 ns = 10.2 us, within the
        # paper's ~20 us preamble budget.
        config = Gen2Config()
        assert config.preamble_duration_s < 20e-6


class TestMetrics:
    def test_qfunc_values(self):
        assert qfunc(0.0) == pytest.approx(0.5)
        assert qfunc(3.0) == pytest.approx(0.00135, rel=0.01)

    def test_bpsk_ber_at_known_point(self):
        # BPSK at 9.6 dB Eb/N0 has BER ~1e-5.
        assert theoretical_bpsk_ber(9.6) == pytest.approx(1e-5, rel=0.3)

    def test_ook_worse_than_bpsk(self):
        assert theoretical_ook_ber(8.0) > theoretical_bpsk_ber(8.0)

    def test_packet_result_properties(self):
        result = PacketResult(detected=True, crc_ok=True, payload_bit_errors=2,
                              num_payload_bits=100, timing_error_samples=1,
                              acquisition_time_s=1e-6,
                              peak_acquisition_metric=0.8)
        assert result.bit_error_rate == pytest.approx(0.02)
        assert result.packet_success

    def test_packet_result_failure(self):
        result = PacketResult(detected=False, crc_ok=False,
                              payload_bit_errors=0, num_payload_bits=0,
                              timing_error_samples=0, acquisition_time_s=0.0,
                              peak_acquisition_metric=0.1)
        assert result.bit_error_rate == 1.0
        assert not result.packet_success

    def test_ber_point(self):
        point = BERPoint(ebn0_db=10.0, bit_errors=5, total_bits=1000,
                         packets_sent=10, packets_failed=2)
        assert point.ber == pytest.approx(0.005)
        assert point.per == pytest.approx(0.2)

    def test_ber_curve_required_ebn0(self):
        curve = BERCurve(label="test")
        for ebn0, errors in ((0.0, 100), (5.0, 10), (10.0, 1)):
            curve.add(BERPoint(ebn0_db=ebn0, bit_errors=int(errors),
                               total_bits=1000, packets_sent=10,
                               packets_failed=0))
        required = curve.required_ebn0_for_ber(0.005)
        assert 5.0 <= required <= 10.0

    def test_ber_curve_unreachable_target(self):
        curve = BERCurve(label="test")
        curve.add(BERPoint(ebn0_db=0.0, bit_errors=100, total_bits=1000,
                           packets_sent=1, packets_failed=1))
        assert curve.required_ebn0_for_ber(1e-6) == float("inf")

    def test_count_payload_errors_length_mismatch(self):
        assert count_payload_errors([1, 1, 1, 1], [1, 1]) == 2
        assert count_payload_errors([1, 0, 1], [1, 1, 1]) == 1
        assert count_payload_errors([], []) == 0
