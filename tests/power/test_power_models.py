"""Tests for the power models and system budgets."""

import pytest

from repro.power.budget import PowerBudget, gen1_power_budget, gen2_power_budget
from repro.power.models import (
    BlockPower,
    DigitalBackEndPowerModel,
    DigitalBlockPower,
    RFFrontEndPowerModel,
    adc_block_power,
)


class TestDigitalBlockPower:
    def test_power_scales_with_clock(self):
        block = DigitalBlockPower(name="x", gate_count=10_000)
        assert block.power_w(200e6) == pytest.approx(2 * block.power_w(100e6))

    def test_power_scales_with_gates(self):
        small = DigitalBlockPower(name="x", gate_count=1_000)
        large = DigitalBlockPower(name="x", gate_count=10_000)
        assert large.power_w(100e6) == pytest.approx(10 * small.power_w(100e6))

    def test_invalid_activity(self):
        with pytest.raises(ValueError):
            DigitalBlockPower(name="x", gate_count=100, activity=1.5)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            BlockPower(name="x", power_w=-1.0)


class TestDigitalBackEndModel:
    def test_breakdown_has_expected_blocks(self):
        model = DigitalBackEndPowerModel(adc_bits=5, backend_clock_hz=125e6)
        names = {b.name for b in model.breakdown()}
        assert {"correlators", "rake", "viterbi", "channel_estimator",
                "control", "spectral_monitor"} <= names

    def test_more_fingers_more_power(self):
        model = DigitalBackEndPowerModel(adc_bits=5, backend_clock_hz=125e6)
        low = model.total_power_w(num_rake_fingers=1)
        high = model.total_power_w(num_rake_fingers=8)
        assert high > low

    def test_adc_bits_scale_datapath_power(self):
        narrow = DigitalBackEndPowerModel(adc_bits=1, backend_clock_hz=125e6)
        wide = DigitalBackEndPowerModel(adc_bits=5, backend_clock_hz=125e6)
        assert wide.total_power_w() > narrow.total_power_w()

    def test_spectral_monitor_optional(self):
        model = DigitalBackEndPowerModel(adc_bits=5, backend_clock_hz=125e6)
        with_monitor = model.total_power_w(spectral_monitoring=True)
        without = model.total_power_w(spectral_monitoring=False)
        assert with_monitor > without


class TestRFFrontEndModel:
    def test_direct_conversion_has_mixer_and_synth(self):
        model = RFFrontEndPowerModel()
        names = {b.name for b in model.receive_blocks(direct_conversion=True)}
        assert "mixer" in names
        assert "synthesizer" in names

    def test_gen1_has_no_mixer(self):
        model = RFFrontEndPowerModel()
        names = {b.name for b in model.receive_blocks(direct_conversion=False)}
        assert "mixer" not in names
        assert "pll" in names

    def test_total_positive(self):
        model = RFFrontEndPowerModel()
        assert model.total_receive_power_w() > 0


class TestADCBlockPower:
    def test_flash_and_sar(self):
        flash = adc_block_power("flash", 4, 2e9, num_interleaved=4)
        sar = adc_block_power("sar", 5, 500e6, num_converters=2)
        assert flash.power_w > sar.power_w

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            adc_block_power("pipeline", 5, 1e9)


class TestPowerBudgets:
    def test_gen1_adc_plus_digital_majority(self):
        # The paper: "more than half of the system power [is] dissipated in
        # the digital back end and the ADC".
        budget = gen1_power_budget()
        assert budget.adc_plus_digital_fraction() > 0.5

    def test_gen2_adc_plus_digital_majority(self):
        budget = gen2_power_budget()
        assert budget.adc_plus_digital_fraction() > 0.5

    def test_group_fractions_sum_to_one(self):
        budget = gen2_power_budget()
        total = (budget.group_fraction("rf") + budget.group_fraction("adc")
                 + budget.group_fraction("digital"))
        assert total == pytest.approx(1.0)

    def test_table_sorted_by_power(self):
        rows = gen2_power_budget().as_table()
        powers = [row[2] for row in rows]
        assert powers == sorted(powers, reverse=True)

    def test_gen2_power_increases_with_fingers(self):
        low = gen2_power_budget(num_rake_fingers=1).total_w()
        high = gen2_power_budget(num_rake_fingers=8).total_w()
        assert high > low

    def test_gen1_total_in_plausible_range(self):
        # A 0.18 um transceiver of this class burns tens to hundreds of mW.
        total = gen1_power_budget().total_w()
        assert 0.02 < total < 2.0

    def test_empty_budget_fraction_zero(self):
        budget = PowerBudget(name="empty")
        assert budget.adc_plus_digital_fraction() == 0.0
        assert budget.total_w() == 0.0
