"""Golden regression for the batched full-stack receiver.

``golden_fullstack_fixture.json`` (gen 2) and
``golden_fullstack_gen1_fixture.json`` (gen 1) pin what the fullstack
backend produced when each generation's batched path was introduced, for
one canonical CM1 grid point per generation: the batched acquisition
record (detections, timings, search sizes, peak metrics), the quantized
channel-estimate taps, and the post-RAKE error counts.  The same-named
pattern guards the array backends (PR 3); these fixtures are the
contract that keeps ``repro.runs`` caches and published full-stack
curves stable across refactors of the batched receiver — the gen-1
fixture regression-pins the batched 4 GHz interleaved-flash front end
exactly as the gen-2 fixture pins the SAR front.

Integer decisions must match exactly.  Float observables (peak metrics,
taps) are compared at ``rtol=1e-9`` — they ride on FFT output whose last
ulp may differ across BLAS/FFT builds, while the decisions derived from
them are pinned exactly.

Regenerate (only when an intentional receiver change bumps
``repro.sim.engine._FULLSTACK_RX_VERSION``)::

    PYTHONPATH=src:tests/sim python -c "import test_fullstack_golden as m; m.write_fixtures()"
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import Gen1Config, Gen2Config
from repro.core.transceiver import Gen1Transceiver, Gen2Transceiver
from repro.sim.batch_rx import BatchedFullStackModel
from repro.sim.scenarios import SCENARIOS

CANONICAL = {
    "gen2": {
        "path": Path(__file__).with_name("golden_fullstack_fixture.json"),
        "point": {
            "generation": "gen2",
            "scenario": "cm1",
            "ebn0_db": 6.0,
            "num_packets": 12,
            "payload_bits_per_packet": 64,
            "hardware_seed": 2025,
            "noise_seed": 4005,
            "scenario_seed": 4006,
        },
    },
    "gen1": {
        "path": Path(__file__).with_name(
            "golden_fullstack_gen1_fixture.json"),
        # Above the gen-1 synchronization cliff (~12 dB) so the point
        # exercises detection, estimation and RAKE combining rather than
        # a wall of acquisition failures.
        "point": {
            "generation": "gen1",
            "scenario": "cm1",
            "ebn0_db": 12.0,
            "num_packets": 12,
            "payload_bits_per_packet": 64,
            "hardware_seed": 2026,
            "noise_seed": 5005,
            "scenario_seed": 5006,
        },
    },
}

GENERATIONS = tuple(CANONICAL)


def _build_transceiver(generation: str, hardware_seed: int):
    rng = np.random.default_rng(hardware_seed)
    if generation == "gen1":
        return Gen1Transceiver(Gen1Config.fast_test_config(), rng=rng)
    return Gen2Transceiver(Gen2Config.fast_test_config(), rng=rng)


def run_canonical_point(generation: str):
    """A generation's canonical CM1 point, exactly as its fixture was."""
    canonical = CANONICAL[generation]["point"]
    scenario = SCENARIOS.get(canonical["scenario"])
    scenario_rng = np.random.default_rng(canonical["scenario_seed"])
    transceiver = _build_transceiver(generation, canonical["hardware_seed"])
    model = BatchedFullStackModel(transceiver)
    return model.simulate(
        canonical["ebn0_db"], canonical["num_packets"],
        canonical["payload_bits_per_packet"],
        rng=np.random.default_rng(canonical["noise_seed"]),
        make_channel=lambda: scenario.make_channel(scenario_rng),
        make_interferer=lambda: scenario.make_interferer(scenario_rng))


def _complex_rows(taps: np.ndarray) -> list:
    return [[[float(value.real), float(value.imag)] for value in row]
            for row in np.asarray(taps, dtype=complex)]


def write_fixture(generation: str) -> None:
    """Regenerate one generation's golden fixture from the current code."""
    batch = run_canonical_point(generation)
    acquisition = batch.acquisition
    fixture = {
        "canonical": CANONICAL[generation]["point"],
        "measurement": {
            "bit_errors": batch.bit_errors,
            "total_bits": batch.total_bits,
            "packets_sent": batch.packets_sent,
            "packets_failed": batch.packets_failed,
            "errors_per_packet": [int(count) for count
                                  in batch.errors_per_packet],
        },
        "acquisition": {
            "detected": [bool(flag) for flag in acquisition.detected],
            "timing_offset_samples": [
                int(value) for value in acquisition.timing_offset_samples],
            "num_hypotheses_searched": [
                int(value) for value in acquisition.num_hypotheses_searched],
            "peak_metric": [float(value)
                            for value in acquisition.peak_metric],
        },
        "channel_estimate_taps": _complex_rows(
            batch.channel_estimates.taps),
    }
    CANONICAL[generation]["path"].write_text(
        json.dumps(fixture, indent=2) + "\n", encoding="utf-8")


def write_fixtures() -> None:
    """Regenerate every generation's golden fixture."""
    for generation in GENERATIONS:
        write_fixture(generation)


def _load_fixture(generation: str) -> dict:
    with CANONICAL[generation]["path"].open(encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("generation", GENERATIONS)
def test_canonical_cm1_point_matches_golden(generation):
    fixture = _load_fixture(generation)
    assert fixture["canonical"] == CANONICAL[generation]["point"], (
        "fixture was generated for different canonical-point parameters")
    batch = run_canonical_point(generation)

    expected = fixture["measurement"]
    assert batch.bit_errors == expected["bit_errors"]
    assert batch.total_bits == expected["total_bits"]
    assert batch.packets_sent == expected["packets_sent"]
    assert batch.packets_failed == expected["packets_failed"]
    assert [int(count) for count in batch.errors_per_packet] \
        == expected["errors_per_packet"]

    acquisition = fixture["acquisition"]
    assert [bool(flag) for flag in batch.acquisition.detected] \
        == acquisition["detected"]
    assert [int(value) for value
            in batch.acquisition.timing_offset_samples] \
        == acquisition["timing_offset_samples"]
    assert [int(value) for value
            in batch.acquisition.num_hypotheses_searched] \
        == acquisition["num_hypotheses_searched"]
    np.testing.assert_allclose(batch.acquisition.peak_metric,
                               acquisition["peak_metric"], rtol=1e-9)

    expected_taps = np.asarray(
        [[complex(real, imag) for real, imag in row]
         for row in fixture["channel_estimate_taps"]])
    np.testing.assert_allclose(batch.channel_estimates.taps, expected_taps,
                               rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("generation", GENERATIONS)
def test_fixture_exercises_the_full_chain(generation):
    """The pinned points must actually exercise multipath reception: every
    packet detected, a non-trivial channel estimate, and some (but not
    catastrophic) residual errors would all be plausible — at minimum each
    fixture must carry one detection and a multi-tap estimate."""
    fixture = _load_fixture(generation)
    canonical = CANONICAL[generation]["point"]
    assert any(fixture["acquisition"]["detected"])
    assert len(fixture["channel_estimate_taps"][0]) > 1
    assert fixture["measurement"]["total_bits"] == (
        canonical["num_packets"] * canonical["payload_bits_per_packet"])
