"""Golden regression for the batched full-stack receiver.

``golden_fullstack_fixture.json`` pins what the fullstack backend produced
when it was introduced, for one canonical CM1 grid point: the batched
acquisition record (detections, timings, search sizes, peak metrics), the
quantized channel-estimate taps, and the post-RAKE error counts.  The
same-named pattern guards the array backends (PR 3); this fixture is the
contract that keeps ``repro.runs`` caches and published full-stack curves
stable across refactors of the batched receiver.

Integer decisions must match exactly.  Float observables (peak metrics,
taps) are compared at ``rtol=1e-9`` — they ride on FFT output whose last
ulp may differ across BLAS/FFT builds, while the decisions derived from
them are pinned exactly.

Regenerate (only when an intentional receiver change bumps
``repro.sim.engine._FULLSTACK_RX_VERSION``)::

    PYTHONPATH=src:tests/sim python -c "import test_fullstack_golden as m; m.write_fixture()"
"""

import json
from pathlib import Path

import numpy as np

from repro.core.config import Gen2Config
from repro.core.transceiver import Gen2Transceiver
from repro.sim.batch_rx import BatchedFullStackModel
from repro.sim.scenarios import SCENARIOS

FIXTURE_PATH = Path(__file__).with_name("golden_fullstack_fixture.json")

CANONICAL = {
    "generation": "gen2",
    "scenario": "cm1",
    "ebn0_db": 6.0,
    "num_packets": 12,
    "payload_bits_per_packet": 64,
    "hardware_seed": 2025,
    "noise_seed": 4005,
    "scenario_seed": 4006,
}


def run_canonical_point():
    """The canonical CM1 point, reproduced exactly as the fixture was."""
    scenario = SCENARIOS.get(CANONICAL["scenario"])
    scenario_rng = np.random.default_rng(CANONICAL["scenario_seed"])
    transceiver = Gen2Transceiver(
        Gen2Config.fast_test_config(),
        rng=np.random.default_rng(CANONICAL["hardware_seed"]))
    model = BatchedFullStackModel(transceiver)
    return model.simulate(
        CANONICAL["ebn0_db"], CANONICAL["num_packets"],
        CANONICAL["payload_bits_per_packet"],
        rng=np.random.default_rng(CANONICAL["noise_seed"]),
        make_channel=lambda: scenario.make_channel(scenario_rng),
        make_interferer=lambda: scenario.make_interferer(scenario_rng))


def _complex_rows(taps: np.ndarray) -> list:
    return [[[float(value.real), float(value.imag)] for value in row]
            for row in np.asarray(taps, dtype=complex)]


def write_fixture() -> None:
    """Regenerate the golden fixture from the current implementation."""
    batch = run_canonical_point()
    acquisition = batch.acquisition
    fixture = {
        "canonical": CANONICAL,
        "measurement": {
            "bit_errors": batch.bit_errors,
            "total_bits": batch.total_bits,
            "packets_sent": batch.packets_sent,
            "packets_failed": batch.packets_failed,
            "errors_per_packet": [int(count) for count
                                  in batch.errors_per_packet],
        },
        "acquisition": {
            "detected": [bool(flag) for flag in acquisition.detected],
            "timing_offset_samples": [
                int(value) for value in acquisition.timing_offset_samples],
            "num_hypotheses_searched": [
                int(value) for value in acquisition.num_hypotheses_searched],
            "peak_metric": [float(value)
                            for value in acquisition.peak_metric],
        },
        "channel_estimate_taps": _complex_rows(
            batch.channel_estimates.taps),
    }
    FIXTURE_PATH.write_text(json.dumps(fixture, indent=2) + "\n",
                            encoding="utf-8")


def _load_fixture() -> dict:
    with FIXTURE_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)


def test_canonical_cm1_point_matches_golden():
    fixture = _load_fixture()
    assert fixture["canonical"] == CANONICAL, (
        "fixture was generated for different canonical-point parameters")
    batch = run_canonical_point()

    expected = fixture["measurement"]
    assert batch.bit_errors == expected["bit_errors"]
    assert batch.total_bits == expected["total_bits"]
    assert batch.packets_sent == expected["packets_sent"]
    assert batch.packets_failed == expected["packets_failed"]
    assert [int(count) for count in batch.errors_per_packet] \
        == expected["errors_per_packet"]

    acquisition = fixture["acquisition"]
    assert [bool(flag) for flag in batch.acquisition.detected] \
        == acquisition["detected"]
    assert [int(value) for value
            in batch.acquisition.timing_offset_samples] \
        == acquisition["timing_offset_samples"]
    assert [int(value) for value
            in batch.acquisition.num_hypotheses_searched] \
        == acquisition["num_hypotheses_searched"]
    np.testing.assert_allclose(batch.acquisition.peak_metric,
                               acquisition["peak_metric"], rtol=1e-9)

    expected_taps = np.asarray(
        [[complex(real, imag) for real, imag in row]
         for row in fixture["channel_estimate_taps"]])
    np.testing.assert_allclose(batch.channel_estimates.taps, expected_taps,
                               rtol=1e-9, atol=1e-12)


def test_fixture_exercises_the_full_chain():
    """The pinned point must actually exercise multipath reception: every
    packet detected, a non-trivial channel estimate, and some (but not
    catastrophic) residual errors would all be plausible — at minimum the
    fixture must carry one detection and a multi-tap estimate."""
    fixture = _load_fixture()
    assert any(fixture["acquisition"]["detected"])
    assert len(fixture["channel_estimate_taps"][0]) > 1
    assert fixture["measurement"]["total_bits"] == (
        CANONICAL["num_packets"] * CANONICAL["payload_bits_per_packet"])
