"""Chunk-granular scheduling: equivalence and fault-injection suite.

The contract pinned here (see ``docs/architecture.md``):

* the seeded packet chunk is the unit of scheduling, caching and
  merging — for a **fixed** chunk layout, results are bitwise identical
  however the chunks are scheduled (serially, over any worker count, in
  any completion order, through the run driver's cache);
* the default layout (``chunk_packets=None``) and any layout with
  ``chunk_packets >= num_packets`` are bit-exact with the historical
  unchunked engine, so existing point-level cache entries stay valid;
* a chunk fails *alone*: its siblings' results are harvested and
  persisted, its own record is ``None`` (never garbage), no shared-memory
  segment leaks, and a resume re-runs only the missing chunks.
"""

import glob
import os
import signal

import numpy as np
import pytest

import repro.sim.engine as engine_module
from repro.runs import RunDriver
from repro.sim import SweepEngine, SweepPoint, sweep_grid
from repro.sim.engine import _chunk_spans, _point_spawn_key


# ----------------------------------------------------------------------
# Chunk-span decomposition
# ----------------------------------------------------------------------
class TestChunkSpans:
    def test_none_layout_is_one_span(self):
        assert _chunk_spans(10, None) == ((0, 10),)
        assert _chunk_spans(10, None, packet_offset=7) == ((7, 10),)

    def test_exact_division(self):
        assert _chunk_spans(12, 4) == ((0, 4), (4, 4), (8, 4))

    def test_ragged_tail(self):
        assert _chunk_spans(10, 4) == ((0, 4), (4, 4), (8, 2))

    def test_chunk_size_one(self):
        assert _chunk_spans(3, 1) == ((0, 1), (1, 1), (2, 1))

    def test_chunk_larger_than_budget_degenerates_to_unchunked(self):
        assert _chunk_spans(5, 100) == _chunk_spans(5, None) == ((0, 5),)

    def test_offset_shifts_every_span(self):
        assert _chunk_spans(10, 4, packet_offset=6) == \
            ((6, 4), (10, 4), (14, 2))

    def test_spans_partition_the_budget(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            budget = int(rng.integers(1, 200))
            size = int(rng.integers(1, 40))
            offset = int(rng.integers(0, 1000))
            spans = _chunk_spans(budget, size, offset)
            assert sum(packets for _, packets in spans) == budget
            cursor = offset
            for start, packets in spans:
                assert start == cursor
                assert 1 <= packets <= size
                cursor += packets

    def test_validation(self):
        with pytest.raises(ValueError):
            _chunk_spans(0, 4)
        with pytest.raises(ValueError):
            _chunk_spans(8, 0)
        with pytest.raises(ValueError):
            _chunk_spans(8, 4, packet_offset=-1)

    def test_offset_keys_an_independent_stream(self):
        point = SweepPoint(ebn0_db=4.0)
        assert _point_spawn_key(point, 0) == _point_spawn_key(point)
        assert _point_spawn_key(point, 8) != _point_spawn_key(point, 4)


# ----------------------------------------------------------------------
# Chunk equivalence: scheduling must be bitwise invisible
# ----------------------------------------------------------------------
BACKEND_MATRIX = [
    ("batch", "gen2", "awgn"),
    ("packet", "gen2", "awgn"),
    ("packet", "gen1", "awgn"),
    ("fullstack", "gen2", "awgn"),
    ("fullstack", "gen1", "awgn"),
]
SLOW_BACKEND_MATRIX = [
    ("fullstack", "gen2", "cm1"),
    ("fullstack", "gen1", "two_ray"),
    ("packet", "gen2", "cm1"),
]


def _run_both(engine_factory, backend, generation, scenario, chunk_packets,
              num_packets=7, workers=3, seed=21):
    """The same chunked sweep, serial and fanned out, with error vectors."""
    grid = sweep_grid([3.0, 6.0], scenarios=(scenario,))
    kwargs = dict(num_packets=num_packets, payload_bits_per_packet=24,
                  collect_errors_per_packet=True,
                  chunk_packets=chunk_packets)
    serial = engine_factory(seed=seed, backend=backend,
                            generation=generation).run(grid, **kwargs)
    parallel = engine_factory(seed=seed, backend=backend,
                              generation=generation).run(
        grid, max_workers=workers, **kwargs)
    return grid, serial, parallel


@pytest.mark.parametrize("backend,generation,scenario", BACKEND_MATRIX)
@pytest.mark.parametrize("chunk_packets", [1, 3, 7])
class TestChunkEquivalence:
    """Serial == parallel for a fixed layout — counts *and* error vectors."""

    def test_serial_and_parallel_chunked_runs_are_bit_identical(
            self, engine_factory, backend, generation, scenario,
            chunk_packets):
        grid, serial, parallel = _run_both(engine_factory, backend,
                                           generation, scenario,
                                           chunk_packets)
        assert parallel.entries == serial.entries
        assert parallel.errors_per_packet == serial.errors_per_packet
        assert set(serial.errors_per_packet) == set(grid)


@pytest.mark.slow
@pytest.mark.parametrize("backend,generation,scenario", SLOW_BACKEND_MATRIX)
@pytest.mark.parametrize("chunk_packets", [1, 2, 5, 8])
class TestChunkEquivalenceMultipathMatrix:
    """The multipath legs of the matrix (slow CI leg)."""

    def test_serial_and_parallel_chunked_runs_are_bit_identical(
            self, engine_factory, backend, generation, scenario,
            chunk_packets):
        grid, serial, parallel = _run_both(engine_factory, backend,
                                           generation, scenario,
                                           chunk_packets, num_packets=8,
                                           workers=4)
        assert parallel.entries == serial.entries
        assert parallel.errors_per_packet == serial.errors_per_packet


class TestChunkLayoutContracts:
    def test_chunk_size_covering_budget_matches_unchunked_bitwise(
            self, engine_factory, small_sweep_grid):
        unchunked = engine_factory(seed=5).run(
            small_sweep_grid, num_packets=6, collect_errors_per_packet=True)
        for chunk_packets in (6, 50):
            chunked = engine_factory(seed=5, chunk_packets=chunk_packets).run(
                small_sweep_grid, num_packets=6,
                collect_errors_per_packet=True)
            assert chunked.entries == unchunked.entries
            assert chunked.errors_per_packet == unchunked.errors_per_packet

    def test_more_workers_than_chunks(self, engine_factory):
        grid = sweep_grid([4.0])
        serial = engine_factory(seed=8, chunk_packets=4).run(
            grid, num_packets=8, collect_errors_per_packet=True)
        flooded = engine_factory(seed=8, chunk_packets=4).run(
            grid, num_packets=8, max_workers=16,
            collect_errors_per_packet=True)
        assert flooded.entries == serial.entries
        assert flooded.errors_per_packet == serial.errors_per_packet

    def test_single_hot_point_fans_out(self, engine_factory):
        # One grid point, many chunks: the layout that motivates the
        # whole refactor.  Parallel must equal serial bit for bit.
        grid = sweep_grid([2.0])
        serial = engine_factory(seed=2, chunk_packets=3).run(
            grid, num_packets=20, collect_errors_per_packet=True)
        parallel = engine_factory(seed=2, chunk_packets=3).run(
            grid, num_packets=20, max_workers=4,
            collect_errors_per_packet=True)
        assert parallel.entries == serial.entries
        assert parallel.errors_per_packet == serial.errors_per_packet
        (_, measurement), = serial.entries
        assert measurement.packets_sent == 20

    def test_measure_points_chunked_matches_manual_span_merge(
            self, engine_factory):
        engine = engine_factory(seed=17)
        jobs = [(SweepPoint(ebn0_db=2.0), 9, 0),
                (SweepPoint(ebn0_db=5.0), 4, 6),
                (SweepPoint(ebn0_db=2.0), 5, 9)]
        chunked = engine.measure_points(jobs, payload_bits_per_packet=32,
                                        chunk_packets=4, max_workers=3)
        manual = []
        for point, num_packets, packet_offset in jobs:
            merged = None
            for offset, packets in _chunk_spans(num_packets, 4,
                                                packet_offset):
                chunk = engine.measure_point(point, num_packets=packets,
                                             payload_bits_per_packet=32,
                                             packet_offset=offset)
                merged = chunk if merged is None else merged.merge(chunk)
            manual.append(merged)
        assert chunked == manual

    def test_randomized_layout_scheduling_invariance(self, engine_factory):
        # Property sweep: random budgets, offsets and chunk sizes (1,
        # ragged tails, oversize) — the chunked bulk call must equal the
        # per-span reference composition every time.
        rng = np.random.default_rng(99)
        engine = engine_factory(seed=31)
        for round_index in range(6):
            chunk_packets = int(rng.integers(1, 7))
            jobs = [(SweepPoint(ebn0_db=float(rng.choice([2.0, 4.0, 6.0]))),
                     int(rng.integers(1, 12)), int(rng.integers(0, 9)))
                    for _ in range(int(rng.integers(1, 4)))]
            chunked = engine.measure_points(
                jobs, payload_bits_per_packet=16,
                chunk_packets=chunk_packets)
            manual = []
            for point, num_packets, packet_offset in jobs:
                merged = None
                for offset, packets in _chunk_spans(
                        num_packets, chunk_packets, packet_offset):
                    chunk = engine.measure_point(
                        point, num_packets=packets,
                        payload_bits_per_packet=16, packet_offset=offset)
                    merged = chunk if merged is None else merged.merge(chunk)
                manual.append(merged)
            assert chunked == manual, (round_index, chunk_packets, jobs)

    def test_on_chunk_delivery_order_is_deterministic(self, engine_factory):
        engine = engine_factory(seed=3)
        jobs = [(SweepPoint(ebn0_db=2.0), 5, 0),
                (SweepPoint(ebn0_db=4.0), 3, 2)]
        expected = []
        for point, num_packets, packet_offset in jobs:
            expected.extend((point, offset) for offset, _ in
                            _chunk_spans(num_packets, 2, packet_offset))
        for workers in (None, 3):
            seen = []
            engine.measure_points(
                jobs, payload_bits_per_packet=16, chunk_packets=2,
                max_workers=workers,
                on_chunk=lambda point, offset, m: seen.append((point,
                                                               offset)))
            assert seen == expected


# ----------------------------------------------------------------------
# Fault injection: one chunk dies, the rest of the run survives
# ----------------------------------------------------------------------
def _task_offset(task):
    """The packet offset a materialized chunk task was keyed with."""
    return task.spawn_key[4] if len(task.spawn_key) > 4 else 0


def _poison(ebn0_db, packet_offset):
    """A hook failing exactly one (point, chunk-offset) task."""
    def hook(task):
        if (task.point.ebn0_db == ebn0_db
                and _task_offset(task) == packet_offset):
            raise RuntimeError("injected chunk fault")
    return hook


@pytest.fixture
def chunk_hook(monkeypatch):
    """Install a test-only chunk fault hook (cleared on teardown)."""
    def install(hook):
        monkeypatch.setattr(engine_module, "_chunk_task_hook", hook)
    yield install
    monkeypatch.setattr(engine_module, "_chunk_task_hook", None)


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


class TestChunkFaultInjection:
    def test_failed_chunk_record_is_none_not_garbage(self, engine_factory,
                                                     chunk_hook):
        # Direct scheduler-level check: the poisoned row harvests as
        # None, every sibling harvests complete.
        chunk_hook(_poison(4.0, 2))
        engine = engine_factory(seed=6)
        prototypes, rows, _ = engine._chunk_plan(
            [(SweepPoint(ebn0_db=2.0), 4, 0), (SweepPoint(ebn0_db=4.0), 4, 0)],
            16, 2)
        records, failure = engine._execute_chunks(prototypes, rows, 0, 2)
        assert isinstance(failure, RuntimeError)
        assert len(records) == 4
        poisoned = [record is None for record in records]
        assert poisoned == [False, False, False, True]
        for record in records[:3]:
            measurement, errors = record
            assert measurement.packets_sent == 2

    def test_completed_chunks_delivered_before_failure(self, engine_factory,
                                                       chunk_hook):
        chunk_hook(_poison(6.0, 3))
        engine = engine_factory(seed=7)
        delivered = []
        with pytest.raises(RuntimeError, match="injected chunk fault"):
            engine.measure_points(
                [(SweepPoint(ebn0_db=2.0), 6, 0),
                 (SweepPoint(ebn0_db=6.0), 6, 0)],
                payload_bits_per_packet=16, chunk_packets=3, max_workers=2,
                on_chunk=lambda point, offset, m: delivered.append(
                    (point.ebn0_db, offset)))
        assert (2.0, 0) in delivered and (2.0, 3) in delivered
        assert (6.0, 0) in delivered
        assert (6.0, 3) not in delivered

    def test_surviving_points_reported_by_run(self, engine_factory,
                                              chunk_hook):
        chunk_hook(_poison(4.0, 2))
        grid = sweep_grid([2.0, 4.0, 6.0])
        seen = []
        with pytest.raises(RuntimeError, match="injected chunk fault"):
            engine_factory(seed=9).run(
                grid, num_packets=4, chunk_packets=2, max_workers=2,
                on_result=lambda point, m: seen.append(point))
        # The faulted point (4 dB) lost one chunk; both others completed
        # all chunks and were delivered, in grid order.
        assert seen == [grid[0], grid[2]]

    def test_no_segment_leak_after_fault(self, engine_factory, chunk_hook):
        chunk_hook(_poison(2.0, 0))
        before = _shm_segments()
        with pytest.raises(RuntimeError):
            engine_factory(seed=1).run(
                sweep_grid([2.0, 4.0]), num_packets=4, chunk_packets=2,
                max_workers=2)
        after = _shm_segments()
        assert after <= before, f"leaked segments: {after - before}"

    def test_driver_resume_reruns_only_missing_chunks(self, tmp_path,
                                                      chunk_hook):
        grid = sweep_grid([2.0, 4.0])
        reference_engine = SweepEngine(seed=11, chunk_packets=3)
        reference = RunDriver.create(tmp_path / "ref", reference_engine,
                                     grid, num_packets=9,
                                     payload_bits_per_packet=16)
        reference.run_shard(0)

        chunk_hook(_poison(4.0, 3))
        faulted = RunDriver.create(tmp_path / "run",
                                   SweepEngine(seed=11, chunk_packets=3),
                                   grid, num_packets=9,
                                   payload_bits_per_packet=16)
        with pytest.raises(RuntimeError, match="injected chunk fault"):
            faulted.run_shard(0, max_workers=2)
        assert faulted.pending_shards() == (0,)

        # Every completed chunk was persisted before the failure
        # propagated: 3 chunks of the clean point + 2 of the faulted one.
        store = faulted.store_for_shard(0)
        key_clean = faulted._key_for(grid[0])
        key_faulted = faulted._key_for(grid[1])
        assert store.chunks_for(key_clean) == {0: 3, 3: 3, 6: 3}
        assert store.chunks_for(key_faulted) == {0: 3, 6: 3}

        chunk_hook(None)
        resumed = RunDriver.open(tmp_path / "run")
        report = resumed.run_pending(max_workers=2)
        # Only the one missing chunk is simulated on resume.
        assert report.chunks_simulated == 1
        assert report.packets_simulated == 3
        assert resumed.is_complete
        assert resumed.merge() == reference.merge()

    @pytest.mark.slow
    def test_sigkilled_worker_chunk_is_isolated(self, engine_factory,
                                                chunk_hook):
        def kill_hook(task):
            if task.point.ebn0_db == 4.0 and _task_offset(task) == 2:
                os.kill(os.getpid(), signal.SIGKILL)
        chunk_hook(kill_hook)
        before = _shm_segments()
        engine = engine_factory(seed=13)
        # A killed worker breaks the pool: the exception type depends on
        # scheduling (BrokenProcessPool for siblings, the broken-pool
        # error for the victim), but the contract is race-free — some
        # exception propagates, no segment leaks, and the store-level
        # resume below completes from whatever chunks survived.
        with pytest.raises(Exception):
            engine.run(sweep_grid([2.0, 4.0]), num_packets=4,
                       chunk_packets=2, max_workers=2)
        assert _shm_segments() <= before

    @pytest.mark.slow
    def test_driver_resume_after_sigkill(self, tmp_path, chunk_hook):
        grid = sweep_grid([2.0, 4.0])
        reference = RunDriver.create(tmp_path / "ref",
                                     SweepEngine(seed=4, chunk_packets=2),
                                     grid, num_packets=6,
                                     payload_bits_per_packet=16)
        reference.run_shard(0)

        def kill_hook(task):
            if task.point.ebn0_db == 4.0 and _task_offset(task) == 2:
                os.kill(os.getpid(), signal.SIGKILL)
        chunk_hook(kill_hook)
        crashed = RunDriver.create(tmp_path / "run",
                                   SweepEngine(seed=4, chunk_packets=2),
                                   grid, num_packets=6,
                                   payload_bits_per_packet=16)
        with pytest.raises(Exception):
            crashed.run_shard(0, max_workers=2)
        assert crashed.pending_shards() == (0,)

        chunk_hook(None)
        resumed = RunDriver.open(tmp_path / "run")
        resumed.run_pending(max_workers=2)
        assert resumed.is_complete
        assert resumed.merge() == reference.merge()


# ----------------------------------------------------------------------
# Chunk-level cache reuse through the run driver
# ----------------------------------------------------------------------
class TestChunkedStoreReuse:
    def test_escalation_reuses_every_cached_chunk(self, tmp_path):
        grid = sweep_grid([2.0, 4.0, 6.0])
        engine = SweepEngine(seed=19, chunk_packets=4)
        small = RunDriver.create(tmp_path / "run", engine, grid,
                                 num_packets=8, payload_bits_per_packet=16)
        first = small.run_shard(0)
        assert first.chunks_simulated == 2 * len(grid)

        big = RunDriver.create(tmp_path / "run", engine, grid,
                               num_packets=14, payload_bits_per_packet=16)
        report = big.run_shard(0, max_workers=2)
        # Only each point's 6-packet tail (chunks of 4 + 2) is simulated;
        # all 8 cached packets per point are reused.
        assert report.packets_simulated == 6 * len(grid)
        assert report.packets_cached == 8 * len(grid)
        assert report.chunks_simulated == 2 * len(grid)
        for _, measurement in big.merge().entries:
            assert measurement.packets_sent == 14

    def test_point_level_cache_entries_compose_with_chunked_tails(
            self, tmp_path):
        # Entries written by the historical point-level driver (one chunk
        # at offset 0) must stay readable and merge with chunked tails.
        grid = sweep_grid([3.0, 5.0])
        unchunked = SweepEngine(seed=23)
        legacy = RunDriver.create(tmp_path / "run", unchunked, grid,
                                  num_packets=6, payload_bits_per_packet=16)
        legacy.run_shard(0)

        chunked_engine = SweepEngine(seed=23, chunk_packets=4)
        assert chunked_engine.config_digest() == unchunked.config_digest()
        escalated = RunDriver.create(tmp_path / "run", chunked_engine, grid,
                                     num_packets=14,
                                     payload_bits_per_packet=16)
        report = escalated.run_shard(0)
        assert report.packets_cached == 6 * len(grid)
        assert report.packets_simulated == 8 * len(grid)
        store = escalated.store_for_shard(0)
        for point in grid:
            chunks = store.chunks_for(escalated._key_for(point))
            assert chunks == {0: 6, 6: 4, 10: 4}

    def test_shard_merge_of_chunked_run_matches_unsharded(self, tmp_path):
        grid = sweep_grid([2.0, 4.0, 6.0, 8.0], adc_bits=(None, 3))
        engine = SweepEngine(seed=29, chunk_packets=3)
        unsharded = RunDriver.create(tmp_path / "one", engine, grid,
                                     num_packets=7,
                                     payload_bits_per_packet=16)
        unsharded.run_shard(0)
        sharded = RunDriver.create(tmp_path / "four", engine, grid,
                                   num_shards=4, num_packets=7,
                                   payload_bits_per_packet=16)
        for shard_index in (3, 1, 0, 2):    # deliberately out of order
            sharded.run_shard(shard_index, max_workers=2)
        assert sharded.is_complete
        assert sharded.merge() == unsharded.merge()

    def test_layout_change_on_existing_run_keeps_cache(self, tmp_path):
        grid = sweep_grid([2.0, 4.0])
        RunDriver.create(tmp_path / "run", SweepEngine(seed=1), grid,
                         num_packets=6, payload_bits_per_packet=16) \
            .run_shard(0)
        relaid = RunDriver.create(tmp_path / "run",
                                  SweepEngine(seed=1, chunk_packets=2),
                                  grid, num_packets=6,
                                  payload_bits_per_packet=16)
        assert relaid.manifest.chunk_packets == 2
        # The layout is coverage, not identity: markers survive and the
        # re-run is pure cache hits.
        assert relaid.run_shard(0).all_cached

    def test_manifest_round_trips_chunk_layout(self, tmp_path):
        from repro.runs import RunManifest
        grid = sweep_grid([2.0])
        RunDriver.create(tmp_path / "run", SweepEngine(seed=2,
                                                       chunk_packets=5),
                         grid, num_packets=10, payload_bits_per_packet=16)
        loaded = RunManifest.load(tmp_path / "run")
        assert loaded.chunk_packets == 5
        reopened = RunDriver.open(tmp_path / "run")
        assert reopened.engine.chunk_packets == 5
