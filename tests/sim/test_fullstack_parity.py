"""Parity suite: the batched full-stack receiver IS the packet-loop receiver.

The contract under test: ``backend="fullstack"``
(:class:`repro.sim.batch_rx.BatchedFullStackModel`) must reproduce the
per-packet oracle — ``backend="packet"`` /
:meth:`repro.core.receiver._PulsedReceiver.receive` — *bit decision for
bit decision* on shared seeded inputs, not merely statistically.  Three
layers of evidence:

* shared-waveform parity: seeded waveform sets (AWGN + multipath +
  narrowband interference, both hardware generations) pushed through
  both receive paths, comparing per-packet payload bits, body bits,
  detection, timing and CRC;
* gen-1 front-end bitwise parity: the batched 4 GHz front half
  (pulse-train synthesis, real-waveform channel FFT, AGC, 4-way
  interleaved flash) must emit bitwise the per-packet loop's ADC codes;
* engine-point parity: whole grid points measured by both backends from
  the engine's own seeding, comparing error counts per packet;
* a hypothesis-style randomized property: batched acquisition must return
  identical ``detected``/``offset`` to a per-packet ``acquire`` loop for
  random true timing offsets and SNRs (fixed seeds).

Two slow-marked grids guard the large-scale behavior: a 3-sigma
statistical check against the genie batch kernel above the gen-1
synchronization cliff, and a full gen-1 scenario x Eb/N0 grid with exact
per-packet equality between the backends.
"""

import numpy as np
import pytest

from repro.core.config import Gen1Config, Gen2Config
from repro.core.transceiver import Gen1Transceiver, Gen2Transceiver
from repro.dsp.acquisition import AcquisitionConfig, CoarseAcquisition
from repro.sim import SweepEngine, sweep_grid
from repro.sim.batch_rx import BatchedFullStackModel
from repro.sim.scenarios import SCENARIOS


def _build_transceiver(generation, config=None, hardware_seed=7):
    if generation == "gen1":
        config = config if config is not None else Gen1Config.fast_test_config()
        return Gen1Transceiver(config, rng=np.random.default_rng(hardware_seed))
    config = config if config is not None else Gen2Config.fast_test_config()
    return Gen2Transceiver(config, rng=np.random.default_rng(hardware_seed))


def _shared_waveform_set(transceiver, scenario_name, num_packets, seed,
                         payload_bits=64, ebn0_db=6.0):
    """One seeded set of received analog waveforms plus their payloads."""
    from repro.channel.awgn import awgn, noise_std_for_ebn0
    from repro.channel.interference import accepts_rng

    scenario = SCENARIOS.get(scenario_name)
    scenario_rng = np.random.default_rng(seed + 1)
    rng = np.random.default_rng(seed)
    waveforms, payloads, true_starts = [], [], []
    for _ in range(num_packets):
        channel = scenario.make_channel(scenario_rng)
        interferer = scenario.make_interferer(scenario_rng)
        payload = rng.integers(0, 2, payload_bits)
        lead_in_s = (float(rng.integers(4, 25))
                     * transceiver.config.pulse_repetition_interval_s)
        tx = transceiver.transmitter.transmit(payload, lead_in_s=lead_in_s,
                                              lead_out_s=2e-8)
        waveform = transceiver._apply_channel(tx.waveform, channel,
                                              tx.sample_rate_hz)
        waveform = transceiver._apply_impairments(waveform, rng)
        if interferer is not None:
            if accepts_rng(interferer, "add_to"):
                waveform = interferer.add_to(waveform, tx.sample_rate_hz,
                                             rng=rng)
            else:
                waveform = interferer.add_to(waveform, tx.sample_rate_hz)
        noise_std = noise_std_for_ebn0(tx.energy_per_body_bit(), ebn0_db)
        waveform = awgn(waveform, noise_std, rng=rng)
        waveforms.append(waveform)
        payloads.append(payload)
        true_starts.append(tx.preamble_start_sample
                           // transceiver.config.decimation_factor)
    return waveforms, payloads, true_starts


class TestSharedWaveformParity:
    """Same waveforms in, same bit decisions out — packet by packet."""

    @pytest.mark.parametrize("generation,scenario", [
        ("gen2", "awgn"),
        ("gen2", "cm1"),
        ("gen2", "narrowband"),
        ("gen1", "awgn"),
        ("gen1", "cm1"),
        ("gen1", "two_ray"),
        ("gen1", "narrowband"),
    ])
    def test_receive_batch_matches_per_packet_receive(self, generation,
                                                      scenario):
        transceiver = _build_transceiver(generation)
        waveforms, payloads, true_starts = _shared_waveform_set(
            transceiver, scenario, num_packets=12, seed=101,
            ebn0_db=6.0 if generation == "gen2" else 12.0)

        # The ADC draws from the rng per packet in order; identically
        # seeded streams line those draws up between the two paths.
        shared_rng = np.random.default_rng(55)
        per_packet = [transceiver.receiver.receive(waveform, rng=shared_rng)
                      for waveform in waveforms]
        batched = BatchedFullStackModel(transceiver).receive_batch(
            waveforms, rng=np.random.default_rng(55))
        assert len(batched) == len(per_packet)
        for index, (single, batch) in enumerate(zip(per_packet, batched)):
            assert single.detected == batch.detected, f"packet {index}"
            assert (single.acquisition.timing_offset_samples
                    == batch.acquisition.timing_offset_samples), \
                f"packet {index}"
            assert single.crc_ok == batch.crc_ok, f"packet {index}"
            assert np.array_equal(single.payload_bits, batch.payload_bits), \
                f"packet {index}"
            assert np.array_equal(single.body_bits, batch.body_bits), \
                f"packet {index}"

    @pytest.mark.parametrize("generation", ["gen2", "gen1"])
    def test_channel_estimates_bitwise_identical(self, generation):
        """The 4-bit-quantized taps must match *bitwise*: selective-RAKE
        finger selection breaks magnitude ties by array order, so even a
        one-ulp tap difference could pick different fingers."""
        transceiver = _build_transceiver(generation)
        waveforms, _, _ = _shared_waveform_set(
            transceiver, "cm1", num_packets=8, seed=303,
            ebn0_db=6.0 if generation == "gen2" else 12.0)
        shared_rng = np.random.default_rng(9)
        per_packet = [transceiver.receiver.receive(waveform, rng=shared_rng)
                      for waveform in waveforms]
        batched = BatchedFullStackModel(transceiver).receive_batch(
            waveforms, rng=np.random.default_rng(9))
        for index, (single, batch) in enumerate(zip(per_packet, batched)):
            if single.channel_estimate is None:
                assert batch.channel_estimate is None
                continue
            assert np.array_equal(single.channel_estimate.taps,
                                  batch.channel_estimate.taps), \
                f"packet {index}"


class TestGen1FrontEndBitwise:
    """The batched gen-1 front half reproduces the per-packet front half's
    ADC output *codes* bitwise — the acceptance bar for batching the
    4 GHz interleaved-flash chain.  The convolution/AGC floats may differ
    at rounding level (batch FFT widths), but the 4-bit flash collapses
    them: a code could only flip at an exact threshold crossing, which
    has probability ~0 under continuous noise."""

    @pytest.mark.parametrize("scenario,ebn0_db", [
        ("awgn", 12.0),
        ("cm1", 12.0),
        ("two_ray", 10.0),
        ("exp_decay", 12.0),
        ("narrowband", 12.0),
    ])
    def test_batched_front_streams_bitwise_equal(self, scenario, ebn0_db):
        scen = SCENARIOS.get(scenario)
        transceiver = _build_transceiver("gen1")
        model = BatchedFullStackModel(transceiver)
        assert model._gen1_batched_front

        streams = {}
        for frontend in (model._frontend_per_packet,
                         model._frontend_batched_gen1):
            scenario_rng = np.random.default_rng(77)
            rows, _, payloads, starts = frontend(
                ebn0_db, 8, 48, np.random.default_rng(13),
                lambda: scen.make_channel(scenario_rng),
                lambda: scen.make_interferer(scenario_rng), None)
            streams[frontend.__name__] = (rows, payloads, starts)

        loop_rows, loop_payloads, loop_starts = \
            streams["_frontend_per_packet"]
        batch_rows, batch_payloads, batch_starts = \
            streams["_frontend_batched_gen1"]
        assert loop_starts == batch_starts
        for index in range(len(loop_rows)):
            assert np.array_equal(loop_payloads[index],
                                  batch_payloads[index]), index
            # The streams are reconstruction values, a bijection of the
            # flash output codes — bitwise equality pins the codes.
            assert np.array_equal(loop_rows[index], batch_rows[index]), index


class TestEnginePointParity:
    """backend='fullstack' measures exactly what backend='packet' measures."""

    @pytest.mark.parametrize("generation,scenario,ebn0_db", [
        ("gen2", "awgn", 0.0),
        ("gen2", "awgn", 8.0),
        ("gen2", "cm1", 2.0),
        ("gen2", "cm1", 6.0),
        ("gen2", "narrowband", 4.0),
        ("gen1", "cm1", 6.0),
        ("gen1", "cm1", 12.0),
        ("gen1", "awgn", 2.0),
        ("gen1", "awgn", 13.0),
        ("gen1", "two_ray", 10.0),
        ("gen1", "exp_decay", 12.0),
        ("gen1", "narrowband", 12.0),
    ])
    def test_identical_error_counts_per_packet(self, generation, scenario,
                                               ebn0_db):
        grid = sweep_grid([ebn0_db], scenarios=(scenario,))
        results = {}
        for backend in ("packet", "fullstack"):
            engine = SweepEngine(generation=generation, seed=11,
                                 backend=backend)
            results[backend] = engine.run(grid, num_packets=12,
                                          payload_bits_per_packet=48,
                                          collect_errors_per_packet=True)
        (point, packet), (_, fullstack) = (results["packet"].entries[0],
                                           results["fullstack"].entries[0])
        assert packet.bit_errors == fullstack.bit_errors
        assert packet.total_bits == fullstack.total_bits
        assert packet.packets_sent == fullstack.packets_sent
        assert packet.packets_failed == fullstack.packets_failed
        assert (results["packet"].errors_per_packet[point]
                == results["fullstack"].errors_per_packet[point])

    def test_parity_with_mlse_and_deep_rake(self):
        """The gen-2 default back end (MLSE demodulation, deeper RAKE)
        routes through the batched MLSE trellis; decisions must still
        match the per-packet equalizer."""
        config = Gen2Config.fast_test_config().with_changes(
            use_mlse=True, rake_fingers=8, channel_estimate_taps=64)
        grid = sweep_grid([4.0], scenarios=("cm1",))
        results = {}
        for backend in ("packet", "fullstack"):
            engine = SweepEngine(config=config, generation="gen2", seed=5,
                                 backend=backend)
            results[backend] = engine.run(grid, num_packets=10,
                                          payload_bits_per_packet=96,
                                          collect_errors_per_packet=True)
        (point, packet), (_, fullstack) = (results["packet"].entries[0],
                                           results["fullstack"].entries[0])
        assert packet.bit_errors == fullstack.bit_errors
        assert (results["packet"].errors_per_packet[point]
                == results["fullstack"].errors_per_packet[point])

    def test_gen1_high_rate_point_parity(self):
        """The gen-1 highest-rate operating point (1 pulse/bit — the
        paper's pulses-per-bit knob turned all the way up, the bench
        headline) routes through the batched synthesis grid path and
        must still match the oracle error for error."""
        config = Gen1Config.fast_test_config().with_changes(
            pulses_per_bit=1)
        grid = sweep_grid([12.0], scenarios=("gen1_baseline",))
        results = {}
        for backend in ("packet", "fullstack"):
            engine = SweepEngine(config=config, generation="gen1", seed=17,
                                 backend=backend)
            results[backend] = engine.run(grid, num_packets=10,
                                          payload_bits_per_packet=96,
                                          collect_errors_per_packet=True)
        (point, packet), (_, fullstack) = (results["packet"].entries[0],
                                           results["fullstack"].entries[0])
        assert packet.bit_errors == fullstack.bit_errors
        assert packet.packets_failed == fullstack.packets_failed
        assert (results["packet"].errors_per_packet[point]
                == results["fullstack"].errors_per_packet[point])

    def test_fullstack_caches_under_distinct_digest(self):
        """Fullstack measurements must never collide with packet/batch
        cache entries: the engine digest carries a dedicated component."""
        digests = {backend: SweepEngine(seed=1,
                                        backend=backend).config_digest()
                   for backend in ("batch", "packet", "fullstack")}
        assert len(set(digests.values())) == 3


@pytest.mark.slow
class TestStatisticalAgreement:
    """Above the synchronization cliff the full stack converges to the
    genie kernel's BER (3-sigma, pooled binomial) on a small gen-1 grid."""

    def test_gen1_grid_tracks_genie_within_three_sigma(self):
        # Gen-1's synchronization cliff sits higher than gen-2's: below
        # ~12 dB whole packets are lost to header failures and the
        # genie-vs-full-stack gap is real (that gap is the point of the
        # fullstack backend); compare where acquisition is reliable.
        grid = sweep_grid([13.0, 14.0], scenarios=("awgn",))
        num_packets, payload = 160, 64
        fullstack = SweepEngine(generation="gen1", seed=21,
                                backend="fullstack").run(
            grid, num_packets=num_packets,
            payload_bits_per_packet=payload)
        genie = SweepEngine(generation="gen1", seed=21,
                            backend="batch").run(
            grid, num_packets=num_packets,
            payload_bits_per_packet=payload)
        for (point, full), (_, fast) in zip(fullstack.entries,
                                            genie.entries):
            total = full.total_bits + fast.total_bits
            pooled = (full.bit_errors + fast.bit_errors) / total
            sigma = np.sqrt(max(pooled * (1 - pooled), 1e-9)
                            / full.total_bits)
            # A lost packet moves the measured BER by payload/total_bits;
            # allow one on top of the binomial band.
            tolerance = 3.0 * sigma + payload / full.total_bits
            assert abs(full.ber - fast.ber) <= tolerance, point


@pytest.mark.slow
class TestGen1FullGridParity:
    """The full gen-1 grid — every gen-1-relevant scenario crossed with
    an Eb/N0 ladder spanning the synchronization cliff — measured by
    both backends with a real Monte-Carlo budget.  Exact equality per
    packet (a strictly stronger bar than the 3-sigma statistical band:
    zero sigma) on every grid point."""

    def test_every_grid_point_identical_per_packet(self):
        grid = sweep_grid(
            [6.0, 10.0, 14.0],
            scenarios=("awgn", "two_ray", "exp_decay", "cm1", "narrowband"))
        results = {}
        for backend in ("packet", "fullstack"):
            engine = SweepEngine(generation="gen1", seed=29,
                                 backend=backend)
            results[backend] = engine.run(grid, num_packets=48,
                                          payload_bits_per_packet=64,
                                          collect_errors_per_packet=True)
        for (point, packet), (_, fullstack) in zip(
                results["packet"].entries, results["fullstack"].entries):
            assert packet.bit_errors == fullstack.bit_errors, point
            assert packet.total_bits == fullstack.total_bits, point
            assert packet.packets_failed == fullstack.packets_failed, point
            assert (results["packet"].errors_per_packet[point]
                    == results["fullstack"].errors_per_packet[point]), point


class TestAcquisitionProperty:
    """Randomized (hypothesis-style, fixed seeds) acquisition property:
    for random true offsets and SNRs, the batched search returns exactly
    the per-packet decisions."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
    def test_batched_acquisition_matches_per_packet_loop(self, seed):
        rng = np.random.default_rng(seed)
        template = rng.standard_normal(96)
        acquisition = CoarseAcquisition(
            template,
            AcquisitionConfig(
                threshold=float(rng.uniform(0.2, 0.6)),
                search_step_samples=int(rng.integers(1, 4)),
                max_search_samples=(None if rng.random() < 0.5
                                    else int(rng.integers(100, 400)))))
        rows, lengths = [], []
        for _ in range(16):
            num_samples = int(rng.integers(150, 700))
            snr_scale = float(10.0 ** rng.uniform(-1.5, 0.5))
            row = rng.standard_normal(num_samples)
            if num_samples > template.size and rng.random() < 0.8:
                offset = int(rng.integers(0, num_samples - template.size))
                row[offset:offset + template.size] += template / snr_scale
            rows.append(row)
            lengths.append(num_samples)
        width = max(lengths)
        batch = np.zeros((len(rows), width))
        for index, row in enumerate(rows):
            batch[index, :row.size] = row
        batched = acquisition.acquire_batch(batch, valid_lengths=lengths)
        for index, row in enumerate(rows):
            single = acquisition.acquire(row)
            result = batched.result_for(index)
            assert single.detected == result.detected, (seed, index)
            assert (single.timing_offset_samples
                    == result.timing_offset_samples), (seed, index)
            assert (single.num_hypotheses_searched
                    == result.num_hypotheses_searched), (seed, index)
            assert single.search_time_s == pytest.approx(
                result.search_time_s, abs=0.0), (seed, index)
