"""Tests for the shared-memory result transport (repro.sim.shm)."""

import numpy as np
import pytest

from repro.core.metrics import BERPoint
from repro.sim import ChunkResultBlock, SweepEngine, SweepPoint, sweep_grid
from repro.sim.shm import RECORD_WORDS, chunk_slices


def _point(ebn0=6.0, errors=3):
    return BERPoint(ebn0_db=ebn0, bit_errors=errors, total_bits=64,
                    packets_sent=8, packets_failed=min(errors, 8))


class TestChunkSlices:
    def test_round_robin_partition(self):
        chunks = chunk_slices(10, 3)
        assert chunks == ((0, 3, 6, 9), (1, 4, 7), (2, 5, 8))
        flat = sorted(index for chunk in chunks for index in chunk)
        assert flat == list(range(10))

    def test_more_chunks_than_items_drops_empties(self):
        assert chunk_slices(2, 8) == ((0,), (1,))

    def test_single_chunk(self):
        assert chunk_slices(4, 1) == ((0, 1, 2, 3),)

    def test_zero_items_yields_no_chunks(self):
        assert chunk_slices(0, 2) == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_slices(-1, 2)
        with pytest.raises(ValueError):
            chunk_slices(4, 0)


class TestChunkResultBlock:
    def test_write_read_round_trip_is_lossless(self):
        errors = np.array([0, 2, 0, 5, 1], dtype=np.int64)
        with ChunkResultBlock.allocate(num_slots=3, max_packets=5) as block:
            block.write_result(1, _point(ebn0=7.25, errors=8), errors)
            measurement, read_errors = block.read_result(1)
            assert measurement == _point(ebn0=7.25, errors=8)
            np.testing.assert_array_equal(read_errors, errors)

    def test_float_bit_patterns_survive(self):
        # inf is what the kernel records for a noiseless point; negative
        # and fractional Eb/N0 must survive the int64 bit-pattern trip too.
        for ebn0 in (float("inf"), -3.125, 0.1):
            with ChunkResultBlock.allocate(1, 0) as block:
                block.write_result(0, _point(ebn0=ebn0), None)
                measurement, errors = block.read_result(0)
                assert measurement.ebn0_db == ebn0 or (
                    np.isnan(ebn0) and np.isnan(measurement.ebn0_db))
                assert errors.size == 0

    def test_attach_sees_writes_and_never_unlinks(self):
        owner = ChunkResultBlock.allocate(2, 4)
        try:
            # Dimensions travel in the block header: a reader needs only
            # the segment name.
            reader = ChunkResultBlock.attach(owner.name)
            assert (reader.num_slots, reader.max_packets) == (2, 4)
            owner.write_result(0, _point(), np.arange(4))
            measurement, errors = reader.read_result(0)
            assert measurement == _point()
            np.testing.assert_array_equal(errors, np.arange(4))
            with pytest.raises(RuntimeError, match="only the allocating"):
                reader.unlink()
            reader.close()
        finally:
            owner.close()
            owner.unlink()

    def test_slot_and_capacity_validation(self):
        with ChunkResultBlock.allocate(2, 3) as block:
            with pytest.raises(ValueError, match="out of range"):
                block.write_result(2, _point(), None)
            with pytest.raises(ValueError, match="out of range"):
                block.read_result(5)
            with pytest.raises(ValueError, match="sized for 3 packet"):
                block.write_result(0, _point(), np.zeros(4, dtype=np.int64))

    def test_closed_block_refuses_access(self):
        block = ChunkResultBlock.allocate(1, 1)
        block.write_result(0, _point(), [1])
        block.close()
        with pytest.raises(ValueError, match="closed"):
            block.read_result(0)
        block.close()  # idempotent
        block.unlink()

    def test_record_layout_constant(self):
        # The layout is an interprocess contract; changing RECORD_WORDS
        # silently would corrupt mixed-version reads.  7 = status word +
        # the six measurement fields.
        assert RECORD_WORDS == 7

    def test_unwritten_slot_reads_as_empty_not_garbage(self):
        with ChunkResultBlock.allocate(2, 2) as block:
            block.write_result(0, _point(), None)
            from repro.sim.shm import SLOT_EMPTY, SLOT_OK
            assert block.slot_status(0) == SLOT_OK
            assert block.slot_status(1) == SLOT_EMPTY
            with pytest.raises(ValueError, match="no completed record"):
                block.read_result(1)


class TestChunkTaskBlock:
    def test_pack_attach_round_trip(self):
        from repro.sim.shm import ChunkTaskBlock
        prototypes = ({"point": "a"}, {"point": "b"})
        rows = [(0, 100, 0), (0, 100, 100), (1, 37, 0)]
        with ChunkTaskBlock.pack(prototypes, rows) as owner:
            assert owner.num_rows == 3
            reader = ChunkTaskBlock.attach(owner.name)
            try:
                assert reader.prototypes() == prototypes
                assert [reader.row(index) for index in range(3)] == rows
                with pytest.raises(ValueError, match="out of range"):
                    reader.row(3)
                with pytest.raises(RuntimeError, match="only the allocating"):
                    reader.unlink()
            finally:
                reader.close()

    def test_pack_validates_rows(self):
        from repro.sim.shm import ChunkTaskBlock
        with pytest.raises(ValueError, match="zero tasks"):
            ChunkTaskBlock.pack(({},), [])
        with pytest.raises(ValueError, match="references prototype"):
            ChunkTaskBlock.pack(({},), [(1, 4, 0)])

    def test_closed_block_refuses_access(self):
        from repro.sim.shm import ChunkTaskBlock
        block = ChunkTaskBlock.pack(("proto",), [(0, 2, 0)])
        block.close()
        with pytest.raises(ValueError, match="closed"):
            block.prototypes()
        block.close()   # idempotent
        block.unlink()


class TestSharedMemoryFanOut:
    """Acceptance: shared-memory ``max_workers`` runs are bit-identical
    to serial ones, through both the engine and the run driver."""

    def test_run_max_workers_4_bit_identical_to_serial(self, engine_factory,
                                                       small_sweep_grid):
        serial = engine_factory(seed=13).run(
            small_sweep_grid, num_packets=8, collect_errors_per_packet=True)
        shared = engine_factory(seed=13).run(
            small_sweep_grid, num_packets=8, max_workers=4,
            collect_errors_per_packet=True)
        assert shared == serial
        assert set(shared.errors_per_packet) == set(small_sweep_grid)

    def test_shared_and_pickling_transports_agree(self, engine_factory,
                                                  small_sweep_grid):
        shared = engine_factory(seed=4, max_workers=2).run(
            small_sweep_grid, num_packets=6)
        pickled = engine_factory(seed=4, max_workers=2,
                                 shared_memory=False).run(
            small_sweep_grid, num_packets=6)
        assert shared == pickled

    def test_measure_points_parallel_matches_measure_point(self,
                                                           engine_factory):
        engine = engine_factory(seed=9)
        jobs = [(SweepPoint(ebn0_db=ebn0), packets, offset)
                for ebn0, packets, offset in
                ((2.0, 6, 0), (4.0, 4, 0), (2.0, 3, 6), (8.0, 5, 2))]
        parallel = engine.measure_points(jobs, payload_bits_per_packet=32,
                                         max_workers=3)
        serial = [engine.measure_point(point, num_packets=packets,
                                       payload_bits_per_packet=32,
                                       packet_offset=offset)
                  for point, packets, offset in jobs]
        assert parallel == serial

    def test_on_result_order_preserved_with_workers(self, engine_factory,
                                                    small_sweep_grid):
        seen = []
        result = engine_factory(seed=3).run(
            small_sweep_grid, num_packets=4, max_workers=4,
            on_result=lambda point, measurement: seen.append(point))
        assert seen == [point for point, _ in result.entries]
        assert seen == list(small_sweep_grid)

    def test_errors_per_packet_totals_match_measurement(self, engine_factory,
                                                        small_sweep_grid):
        result = engine_factory(seed=6).run(
            small_sweep_grid, num_packets=5, max_workers=2,
            collect_errors_per_packet=True)
        for point, measurement in result.entries:
            errors = result.errors_per_packet[point]
            assert len(errors) == measurement.packets_sent
            assert sum(errors) == measurement.bit_errors
            assert sum(1 for count in errors if count) \
                == measurement.packets_failed

    def test_no_leaked_segments_after_fan_out(self, engine_factory,
                                              small_sweep_grid):
        import glob
        before = set(glob.glob("/dev/shm/psm_*"))
        engine_factory(seed=1).run(small_sweep_grid, num_packets=2,
                                   max_workers=4)
        after = set(glob.glob("/dev/shm/psm_*"))
        assert after <= before, f"leaked segments: {after - before}"


def _chunk1_poison_channel(rng):
    """Module-level (picklable) channel factory that fails loudly — used
    to make exactly one worker chunk die in the salvage test."""
    raise RuntimeError("poisoned grid point")


class TestWorkerFailureSalvage:
    def test_completed_chunks_delivered_before_failure_raises(
            self, engine_factory):
        """A dying worker chunk must not discard the other chunks'
        finished measurements: on_result sees them, then the original
        exception propagates."""
        from repro.sim import Scenario, default_registry

        registry = default_registry()
        registry.register(Scenario(name="poison",
                                   channel=_chunk1_poison_channel))
        engine = engine_factory(seed=2, registry=registry)
        points = (SweepPoint(ebn0_db=2.0), SweepPoint(ebn0_db=4.0,
                                                      scenario="poison"),
                  SweepPoint(ebn0_db=6.0), SweepPoint(ebn0_db=8.0,
                                                      scenario="poison"))
        # Every point is its own chunk task; the poison scenario kills the
        # tasks of points 1 and 3 only, independently of worker layout.
        seen = []
        with pytest.raises(RuntimeError, match="poisoned grid point"):
            engine.run(points, num_packets=4, max_workers=2,
                       on_result=lambda point, measurement: seen.append(
                           point))
        assert seen == [points[0], points[2]]

    def test_measure_points_propagates_worker_failure(self, engine_factory):
        from repro.sim import Scenario, default_registry
        registry = default_registry()
        registry.register(Scenario(name="poison",
                                   channel=_chunk1_poison_channel))
        engine = engine_factory(seed=2, registry=registry)
        with pytest.raises(RuntimeError, match="poisoned grid point"):
            engine.measure_points(
                [(SweepPoint(ebn0_db=2.0), 2, 0),
                 (SweepPoint(ebn0_db=4.0, scenario="poison"), 2, 0)],
                max_workers=2)

    def test_measure_points_validates_like_measure_point(self,
                                                         engine_factory):
        engine = engine_factory(seed=1)
        with pytest.raises((TypeError, ValueError)):
            engine.measure_points([(SweepPoint(ebn0_db=2.0), 10.9, 0)])
        with pytest.raises((TypeError, ValueError)):
            engine.measure_point(SweepPoint(ebn0_db=2.0), num_packets=10.9)
