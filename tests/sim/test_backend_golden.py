"""Golden regression: the NumPy backend must stay bit-identical.

The fixture in ``golden_backend_fixture.json`` was generated *before* the
array-backend refactor (PR 3) from the then-current ``SweepEngine``.  The
backend abstraction is allowed to add accelerator paths, but the NumPy
reference path must keep producing byte-for-byte the same error counts —
these tests are the contract that makes cached ``repro.runs`` stores and
published curves stable across refactors.
"""

import json
from pathlib import Path

import pytest

from repro.sim import SweepEngine, sweep_grid

FIXTURE_PATH = Path(__file__).with_name("golden_backend_fixture.json")


def _load_grids():
    with FIXTURE_PATH.open(encoding="utf-8") as handle:
        return json.load(handle)["grids"]


GRIDS = _load_grids()


@pytest.mark.parametrize("name", sorted(GRIDS))
def test_numpy_backend_matches_pre_refactor_golden(name):
    spec = GRIDS[name]
    engine = SweepEngine(**spec["engine"])
    grid_spec = spec["grid"]
    points = sweep_grid(grid_spec["ebn0"],
                        scenarios=tuple(grid_spec["scenarios"]),
                        modulations=tuple(grid_spec["modulations"]),
                        adc_bits=tuple(grid_spec["adc_bits"]))
    result = engine.run(points, **spec["run"])
    assert len(result.entries) == len(spec["entries"])
    for (point, measurement), expected in zip(result.entries,
                                              spec["entries"]):
        (ebn0_db, scenario, modulation, adc_bits,
         bit_errors, total_bits, packets_sent, packets_failed) = expected
        assert point.ebn0_db == ebn0_db
        assert point.scenario == scenario
        assert point.modulation == modulation
        assert point.adc_bits == adc_bits
        assert measurement.bit_errors == bit_errors, (
            f"{name}: {point} moved from the pre-refactor golden "
            f"({measurement.bit_errors} != {bit_errors} bit errors) — the "
            "NumPy backend must stay bit-identical")
        assert measurement.total_bits == total_bits
        assert measurement.packets_sent == packets_sent
        assert measurement.packets_failed == packets_failed


def test_golden_covers_both_generations_and_quantize_modes():
    engines = [GRIDS[name]["engine"] for name in GRIDS]
    assert {spec["generation"] for spec in engines} == {"gen1", "gen2"}
    assert any(not spec.get("quantize", True) for spec in engines)
