"""Tests for the pluggable array-backend layer (repro.sim.backends)."""

import numpy as np
import pytest
from scipy import signal as sp_signal

from repro.adc.quantizer import UniformQuantizer
from repro.sim import (
    ArrayBackend,
    BatchedLinkModel,
    CupyBackend,
    JaxBackend,
    NumpyBackend,
    SweepEngine,
    available_backends,
    get_backend,
    register_backend,
    sweep_grid,
)
from repro.sim.backends import BACKEND_ENV_VAR, _INSTANCES, _REGISTRY


class GenericNumpyBackend(ArrayBackend):
    """NumPy with every *generic* base-class helper (the code paths CuPy
    and JAX inherit): FFT-based convolution instead of scipy, gather-based
    symbol windows instead of strided views, the xp quantizer mirror.
    Registered by the ``mirror_backend`` fixture as an accelerator
    stand-in that needs no accelerator."""

    name = "mirror"
    xp = np

    @classmethod
    def is_available(cls):
        return True

    def random_source(self, rng):
        return rng if rng is not None else np.random.default_rng()


@pytest.fixture
def mirror_backend():
    """Temporarily register the generic-path stand-in backend."""
    register_backend(GenericNumpyBackend)
    try:
        yield GenericNumpyBackend.name
    finally:
        _REGISTRY.pop(GenericNumpyBackend.name, None)
        _INSTANCES.pop(GenericNumpyBackend.name, None)


class TestResolution:
    def test_numpy_always_available_and_default(self):
        assert available_backends()[0] == "numpy"
        assert get_backend(None).name == "numpy"
        assert get_backend("numpy") is get_backend("NumPy")  # cached, cased
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_instance_passthrough(self):
        backend = NumpyBackend()
        assert get_backend(backend) is backend

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend("tensorflow")
        with pytest.raises(ValueError, match="numpy"):
            get_backend("tensorflow")

    def test_bad_spec_type_raises(self):
        with pytest.raises(TypeError, match="backend must be"):
            get_backend(42)

    def test_missing_accelerator_strict_raises_lenient_falls_back(self):
        for name, cls in (("cupy", CupyBackend), ("jax", JaxBackend)):
            if cls.is_available():
                continue
            with pytest.raises(ImportError, match=name):
                get_backend(name)
            with pytest.warns(UserWarning, match="falling back"):
                assert get_backend(name, strict=False).name == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert get_backend(None).name == "numpy"

    def test_env_var_unknown_name_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "quantum")
        with pytest.warns(UserWarning, match="names no registered"):
            assert get_backend(None).name == "numpy"

    def test_env_var_unavailable_backend_warns_not_raises(self, monkeypatch):
        if CupyBackend.is_available():
            pytest.skip("cupy present; fallback path not reachable")
        monkeypatch.setenv(BACKEND_ENV_VAR, "cupy")
        with pytest.warns(UserWarning, match="falling back"):
            assert get_backend(None).name == "numpy"

    def test_register_backend_rules(self, mirror_backend):
        assert get_backend(mirror_backend).name == "mirror"
        with pytest.raises(ValueError, match="already registered"):
            register_backend(GenericNumpyBackend)
        register_backend(GenericNumpyBackend, overwrite=True)
        with pytest.raises(TypeError):
            register_backend(object)


class TestBackendHelpers:
    """The generic helper implementations must agree with the tuned
    NumPy overrides — this is what keeps accelerator results honest."""

    def setup_method(self):
        self.reference = NumpyBackend()
        self.generic = GenericNumpyBackend()

    def test_fftconvolve_full_matches_scipy(self, rng):
        for dtype in (float, complex):
            signals = rng.standard_normal((4, 64)).astype(dtype)
            if dtype is complex:
                signals = signals + 1j * rng.standard_normal((4, 64))
            kernel = rng.standard_normal(9).astype(dtype).reshape(1, 9)
            expected = sp_signal.fftconvolve(signals, kernel, mode="full",
                                             axes=-1)
            np.testing.assert_allclose(
                self.generic.fftconvolve_full(signals, kernel), expected,
                atol=1e-12)
            np.testing.assert_array_equal(
                self.reference.fftconvolve_full(signals, kernel), expected)

    def test_symbol_windows_gather_matches_strided_view(self, rng):
        samples = rng.standard_normal((3, 50))
        positions = np.array([0, 7, 21])
        expected = self.reference.symbol_windows(samples, positions, 8)
        np.testing.assert_array_equal(
            self.generic.symbol_windows(samples, positions, 8), expected)
        assert expected.shape == (3, 3, 8)

    def test_quantize_uniform_matches_reference_quantizer(self, rng):
        samples = rng.uniform(-1.5, 1.5, size=(2, 128))
        quantizer = UniformQuantizer(bits=3, full_scale=1.0)
        np.testing.assert_array_equal(
            self.generic.quantize_uniform(samples, bits=3, full_scale=1.0),
            quantizer.quantize(samples))
        complex_samples = samples[0] + 1j * samples[1]
        np.testing.assert_array_equal(
            self.generic.quantize_uniform(complex_samples, bits=3,
                                          full_scale=1.0),
            quantizer.quantize(complex_samples))

    def test_lfilter_generic_round_trip_matches_scipy(self, rng):
        samples = rng.standard_normal((2, 40)).astype(complex)
        b, a = [1.0, -0.9], [1.0, -0.5]
        np.testing.assert_allclose(
            self.generic.lfilter(b, a, samples),
            sp_signal.lfilter(b, a, samples, axis=-1))

    def test_numpy_random_source_is_the_generator_itself(self):
        generator = np.random.default_rng(3)
        assert self.reference.random_source(generator) is generator

    def test_interleave_streams_generic_matches_numpy_override(self, rng):
        """The round-robin merge (batched interleaved-ADC reassembly):
        generic stack/reshape vs the NumPy strided scatter, including
        widths not divisible by the slice count and leading batch axes."""
        for num_slices in (1, 2, 3, 4, 5):
            for width in (1, 7, 12, 40, 41, 43):
                if width < num_slices:
                    continue
                parts = [rng.standard_normal(
                    (3, len(range(k, width, num_slices))))
                    for k in range(num_slices)]
                expected = np.empty((3, width))
                for k, part in enumerate(parts):
                    expected[:, k::num_slices] = part
                np.testing.assert_array_equal(
                    self.reference.interleave_streams(parts, width),
                    expected)
                np.testing.assert_array_equal(
                    self.generic.interleave_streams(parts, width), expected)

    def test_interleave_streams_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            self.reference.interleave_streams([], 4)
        with pytest.raises(ValueError, match="at least one"):
            self.generic.interleave_streams([], 4)


ACCELERATORS = [name for name in available_backends() if name != "numpy"]


class TestBackendParity:
    """NumPy vs accelerator agreement on measured BER.

    Accelerator random streams are device-native, so parity is
    statistical (binomial 3-sigma), not bit-exact.  The ``mirror``
    stand-in runs the same generic code paths with NumPy's RNG and is
    asserted exactly, so these tests bite even on CPU-only machines.
    """

    GRID_KWARGS = dict(scenarios=("awgn", "two_ray"),
                       modulations=("bpsk", "ook"))

    def _run(self, array_backend, quantize=True):
        engine = SweepEngine(seed=21, quantize=quantize,
                             array_backend=array_backend)
        grid = sweep_grid([4.0, 8.0], **self.GRID_KWARGS)
        return engine.run(grid, num_packets=40, payload_bits_per_packet=50)

    def test_mirror_backend_generic_paths_match_reference(self,
                                                          mirror_backend):
        reference = self._run("numpy")
        mirrored = self._run(mirror_backend)
        for (point, expected), (_, got) in zip(reference.entries,
                                               mirrored.entries):
            # Same host RNG, same math to within FFT rounding: the
            # decision statistics may differ by ~1e-15, the error counts
            # must not.
            assert got == expected, f"mirror backend diverged at {point}"

    @pytest.mark.skipif(not ACCELERATORS,
                        reason="no accelerator backend installed")
    @pytest.mark.parametrize("name", ACCELERATORS)
    def test_accelerator_ber_within_binomial_tolerance(self, name):
        reference = self._run("numpy")
        accelerated = self._run(name)
        for (point, expected), (_, got) in zip(reference.entries,
                                               accelerated.entries):
            assert got.total_bits == expected.total_bits
            pooled = (expected.bit_errors + got.bit_errors) / (
                expected.total_bits + got.total_bits)
            sigma = np.sqrt(max(pooled * (1.0 - pooled), 1e-9)
                            / expected.total_bits)
            tolerance = 4.0 * sigma + 2.0 / expected.total_bits
            assert abs(got.ber - expected.ber) <= tolerance, (
                f"{name} backend BER {got.ber} vs numpy {expected.ber} "
                f"at {point}")

    @pytest.mark.skipif(not ACCELERATORS,
                        reason="no accelerator backend installed")
    @pytest.mark.parametrize("name", ACCELERATORS)
    def test_accelerator_kernel_tracks_theory_unquantized(self, name):
        from repro.core.metrics import theoretical_bpsk_ber
        engine = SweepEngine(seed=5, quantize=False, array_backend=name)
        point = engine.ber_curve([4.0], num_packets=60,
                                 payload_bits_per_packet=100).points[0]
        theory = float(theoretical_bpsk_ber(4.0))
        sigma = np.sqrt(theory * (1.0 - theory) / point.total_bits)
        assert abs(point.ber - theory) <= 4.0 * sigma


class TestEngineIntegration:
    def test_engine_resolves_and_records_backend_name(self):
        assert SweepEngine().array_backend == "numpy"
        assert SweepEngine(array_backend=NumpyBackend()).array_backend \
            == "numpy"

    def test_engine_rejects_unknown_array_backend(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            SweepEngine(array_backend="metal")

    def test_config_digest_stable_for_numpy_but_not_others(self,
                                                           mirror_backend):
        # The NumPy digest must not move with the backend abstraction —
        # existing repro.runs caches stay valid.
        reference = SweepEngine(seed=1).config_digest()
        assert reference == SweepEngine(seed=1,
                                        array_backend="numpy").config_digest()
        assert reference != SweepEngine(
            seed=1, array_backend=mirror_backend).config_digest()

    def test_batch_model_accepts_backend_name_and_instance(self):
        from repro.core.config import Gen2Config
        config = Gen2Config.fast_test_config()
        by_name = BatchedLinkModel(config, backend="numpy")
        by_instance = BatchedLinkModel(config, backend=NumpyBackend())
        assert by_name.backend.name == by_instance.backend.name == "numpy"

    def test_transceiver_batch_model_forwards_backend(self):
        from repro.core.config import Gen2Config
        from repro.core.transceiver import Gen2Transceiver
        transceiver = Gen2Transceiver(Gen2Config.fast_test_config())
        model = transceiver.batch_model(array_backend="numpy")
        assert model.backend.name == "numpy"

    def test_env_var_engine_construction(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert SweepEngine().array_backend == "numpy"


class UnregisteredBackend(GenericNumpyBackend):
    """An ArrayBackend instance handed straight to the engine, never
    registered — get_backend must cache it so workers resolve it by name."""

    name = "unregistered-instance"


class TestInstanceBackends:
    @pytest.fixture
    def instance_backend(self):
        backend = UnregisteredBackend()
        try:
            yield backend
        finally:
            _INSTANCES.pop(backend.name, None)

    def test_engine_accepts_unregistered_instance(self, instance_backend,
                                                  small_sweep_grid):
        engine = SweepEngine(seed=3, array_backend=instance_backend)
        assert engine.array_backend == instance_backend.name
        result = engine.run(small_sweep_grid, num_packets=4)
        assert len(result.entries) == len(small_sweep_grid)

    def test_instance_resolves_by_name_after_use(self, instance_backend):
        assert get_backend(instance_backend) is instance_backend
        assert get_backend(instance_backend.name) is instance_backend

    def test_forked_workers_resolve_the_instance(self, instance_backend,
                                                 small_sweep_grid):
        engine = SweepEngine(seed=3, array_backend=instance_backend,
                             max_workers=2)
        parallel = engine.run(small_sweep_grid, num_packets=4)
        serial = SweepEngine(seed=3,
                             array_backend=instance_backend).run(
            small_sweep_grid, num_packets=4)
        assert parallel == serial
