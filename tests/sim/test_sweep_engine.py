"""Tests for the batched sweep engine and the scenario registry."""

import numpy as np
import pytest

from repro.core.metrics import BERCurve, theoretical_bpsk_ber
from repro.sim import (
    SCENARIOS,
    BatchedLinkModel,
    Scenario,
    ScenarioRegistry,
    SweepEngine,
    SweepPoint,
    default_registry,
    sweep_grid,
)


class TestSweepGrid:
    def test_rejects_empty_axes(self):
        with pytest.raises(ValueError, match="'ebn0_values_db' is empty"):
            sweep_grid([])
        with pytest.raises(ValueError, match="'scenarios' is empty"):
            sweep_grid([4.0], scenarios=())
        with pytest.raises(ValueError, match="'modulations' is empty"):
            sweep_grid([4.0], modulations=())
        with pytest.raises(ValueError, match="'adc_bits' is empty"):
            sweep_grid([4.0], adc_bits=())

    def test_rejects_non_finite_ebn0(self):
        with pytest.raises(ValueError, match="must be finite"):
            sweep_grid([0.0, float("nan")])
        with pytest.raises(ValueError, match="must be finite"):
            sweep_grid([float("inf")])
        with pytest.raises(ValueError, match="must be finite"):
            sweep_grid(np.array([2.0, -np.inf]))

    def test_cartesian_product_size_and_order(self):
        grid = sweep_grid([0.0, 4.0], scenarios=("awgn", "two_ray"),
                          modulations=("bpsk", "ook"), adc_bits=(1, 5))
        assert len(grid) == 2 * 2 * 2 * 2
        # Eb/N0 varies fastest: consecutive points belong to the same curve.
        assert grid[0].curve_key() == grid[1].curve_key()
        assert grid[0].ebn0_db == 0.0
        assert grid[1].ebn0_db == 4.0

    def test_points_are_hashable_records(self):
        point = SweepPoint(ebn0_db=4.0, scenario="awgn")
        assert point == SweepPoint(ebn0_db=4.0, scenario="awgn")
        assert {point: 1}[SweepPoint(ebn0_db=4.0, scenario="awgn")] == 1


class TestScenarioRegistry:
    def test_builtin_names_present(self):
        for name in ("awgn", "two_ray", "cm1", "cm3", "narrowband",
                     "gen1_baseline", "gen2_baseline"):
            assert name in SCENARIOS
            assert SCENARIOS.get(name).name == name

    def test_unknown_name_lists_known_scenarios(self):
        with pytest.raises(KeyError, match="unknown scenario 'nope'"):
            SCENARIOS.get("nope")
        with pytest.raises(KeyError, match="awgn"):
            SCENARIOS.get("nope")

    def test_register_and_overwrite_rules(self):
        registry = ScenarioRegistry()
        scenario = Scenario(name="custom", description="test")
        registry.register(scenario)
        assert registry.get("custom") is scenario
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Scenario(name="custom"))
        replacement = Scenario(name="custom", description="v2")
        registry.register(replacement, overwrite=True)
        assert registry.get("custom").description == "v2"

    def test_register_rejects_non_scenarios(self):
        with pytest.raises(TypeError):
            ScenarioRegistry().register("awgn")

    def test_default_registry_is_fresh_copy(self):
        registry = default_registry()
        registry.register(Scenario(name="only_here"))
        assert "only_here" not in SCENARIOS

    def test_channel_factories_draw_realizations(self, rng):
        channel = SCENARIOS.get("cm3").make_channel(rng)
        assert channel is not None
        assert channel.num_rays > 1
        assert SCENARIOS.get("awgn").make_channel(rng) is None

    def test_engine_raises_for_unknown_scenario(self, engine_factory):
        engine = engine_factory()
        with pytest.raises(KeyError, match="unknown scenario"):
            engine.run([SweepPoint(ebn0_db=4.0, scenario="missing")],
                       num_packets=1)


class TestSeededDeterminism:
    def test_same_seed_identical_curve(self, engine_factory):
        curves = [engine_factory(seed=5).ber_curve([2.0, 6.0], num_packets=8)
                  for _ in range(2)]
        assert isinstance(curves[0], BERCurve)
        assert curves[0] == curves[1]

    def test_different_seeds_differ(self, engine_factory):
        low = [engine_factory(seed=seed).ber_curve([2.0], num_packets=8)
               for seed in (1, 2)]
        # At 2 dB the BER is high enough that identical error counts from
        # independent streams would be a seeding bug, not a coincidence.
        assert low[0].points[0].bit_errors != low[1].points[0].bit_errors

    def test_parallel_matches_serial(self, engine_factory, small_sweep_grid):
        serial = engine_factory(seed=9).run(small_sweep_grid, num_packets=8)
        parallel = engine_factory(seed=9, max_workers=2).run(
            small_sweep_grid, num_packets=8)
        assert serial == parallel

    def test_reordered_grid_gives_identical_per_point_results(
            self, engine_factory, small_sweep_grid):
        """Streams are keyed on point content, so sharding or reordering a
        grid must not change any point's measurement."""
        forward = engine_factory(seed=5).run(small_sweep_grid, num_packets=8)
        reverse = engine_factory(seed=5).run(
            tuple(reversed(small_sweep_grid)), num_packets=8)
        assert dict(forward.entries) == dict(reverse.entries)


class TestBatchedVersusPerPacket:
    def test_agreement_past_synchronization_cliff(self, engine_factory):
        """Batched and per-packet BER agree within Monte-Carlo tolerance at
        equal seeds, at operating points where the full stack's
        acquisition/header overhead is reliable."""
        num_packets, payload = 48, 64
        batch = engine_factory(seed=11).ber_curve(
            [9.0, 10.0], num_packets=num_packets,
            payload_bits_per_packet=payload)
        packet = engine_factory(seed=11, backend="packet").ber_curve(
            [9.0, 10.0], num_packets=num_packets,
            payload_bits_per_packet=payload)
        for fast, full in zip(batch.points, packet.points):
            # Binomial 3-sigma around the pooled estimate, plus one packet's
            # worth of slack for the full stack's rare all-or-nothing
            # header failures (a batch of 48 is small enough that a single
            # such packet moves the BER by payload/total).
            total = fast.total_bits + full.total_bits
            pooled = (fast.bit_errors + full.bit_errors) / total
            sigma = np.sqrt(max(pooled * (1 - pooled), 1e-9) / full.total_bits)
            tolerance = 3.0 * sigma + payload / full.total_bits
            assert abs(fast.ber - full.ber) <= tolerance

    def test_packet_backend_rejects_non_bpsk(self, engine_factory):
        engine = engine_factory(backend="packet")
        with pytest.raises(ValueError, match="BPSK-only"):
            engine.run([SweepPoint(ebn0_db=8.0, modulation="ook")],
                       num_packets=1)

    @pytest.mark.parametrize("backend", ["packet", "fullstack"])
    def test_full_stack_backends_reject_non_bpsk_before_simulating(
            self, engine_factory, backend):
        """The BPSK-only error fires when the grid is submitted — before
        any point is measured — with an actionable message, from every
        grid entry point.  (Historically it surfaced deep inside
        measure_point, after the BPSK prefix of the grid had already been
        simulated.)"""
        engine = engine_factory(backend=backend)
        grid = [SweepPoint(ebn0_db=8.0, modulation="bpsk"),
                SweepPoint(ebn0_db=8.0, modulation="ook"),
                SweepPoint(ebn0_db=8.0, modulation="pam4")]
        seen = []
        with pytest.raises(ValueError) as excinfo:
            engine.run(grid, num_packets=1,
                       on_result=lambda point, measurement:
                       seen.append(point))
        message = str(excinfo.value)
        assert "BPSK-only" in message
        assert backend in message
        assert "ook" in message and "pam4" in message
        assert "backend='batch'" in message
        assert seen == [], "validation must precede any simulation"
        with pytest.raises(ValueError, match="BPSK-only"):
            engine.measure_point(grid[1], num_packets=1)
        with pytest.raises(ValueError, match="BPSK-only"):
            engine.measure_points([(grid[1], 1, 0)])

    def test_batch_backend_accepts_non_bpsk_grids(self, engine_factory):
        engine = engine_factory(backend="batch")
        result = engine.run([SweepPoint(ebn0_db=8.0, modulation="ook")],
                            num_packets=2, payload_bits_per_packet=8)
        assert result.entries[0][1].total_bits == 16


class TestBatchedKernel:
    def test_tracks_theory_without_quantization(self, engine_factory):
        engine = engine_factory(seed=3, quantize=False)
        point = engine.ber_curve([4.0], num_packets=50,
                                 payload_bits_per_packet=100).points[0]
        theory = float(theoretical_bpsk_ber(4.0))
        sigma = np.sqrt(theory * (1 - theory) / point.total_bits)
        assert abs(point.ber - theory) <= 3.0 * sigma

    def test_bpsk_beats_ook_on_the_grid(self, engine_factory):
        grid = sweep_grid([6.0], modulations=("bpsk", "ook"))
        result = engine_factory(seed=4, quantize=False).run(
            grid, num_packets=40, payload_bits_per_packet=100)
        bpsk = result.curve(modulation="bpsk").points[0].ber
        ook = result.curve(modulation="ook").points[0].ber
        assert bpsk < ook

    def test_adc_bits_axis_overrides_config(self, engine_factory):
        grid = sweep_grid([2.0], adc_bits=(1, 5))
        result = engine_factory(seed=6).run(grid, num_packets=24,
                                            payload_bits_per_packet=64)
        coarse = result.curve(adc_bits=1).points[0]
        fine = result.curve(adc_bits=5).points[0]
        assert coarse.total_bits == fine.total_bits == 24 * 64
        # 1-bit quantization costs BER at low Eb/N0.
        assert coarse.ber >= fine.ber

    def test_multipath_scenario_runs_and_degrades(self, engine_factory):
        grid = sweep_grid([6.0], scenarios=("awgn", "exp_decay"))
        result = engine_factory(seed=8).run(grid, num_packets=24,
                                            payload_bits_per_packet=64)
        awgn_ber = result.curve(scenario="awgn").points[0].ber
        multipath_ber = result.curve(scenario="exp_decay").points[0].ber
        assert multipath_ber >= awgn_ber

    def test_curve_labels(self, engine_factory):
        grid = sweep_grid([6.0], modulations=("bpsk",), adc_bits=(3,))
        result = engine_factory(seed=1).run(grid, num_packets=4)
        assert set(result.curves()) == {"awgn/bpsk/adc3"}

    def test_curve_raises_on_unmatched_key(self, engine_factory):
        result = engine_factory(seed=1).run(sweep_grid([6.0]), num_packets=4)
        with pytest.raises(KeyError, match="no swept points match"):
            result.curve(scenario="cm1")
        with pytest.raises(KeyError, match="awgn/bpsk"):
            result.curve(adc_bits=3)

    def test_transceiver_batch_model_wrapper(self):
        from repro.core.config import Gen2Config
        from repro.core.transceiver import Gen2Transceiver
        transceiver = Gen2Transceiver(Gen2Config.fast_test_config())
        model = transceiver.batch_model()
        assert isinstance(model, BatchedLinkModel)
        result = model.simulate(8.0, num_packets=4,
                                payload_bits_per_packet=32,
                                rng=np.random.default_rng(0))
        assert result.total_bits == 4 * 32

    def test_link_simulator_batched_wrapper(self):
        from repro.core.config import Gen2Config
        from repro.core.link import LinkSimulator
        from repro.core.transceiver import Gen2Transceiver
        simulator = LinkSimulator(Gen2Transceiver(Gen2Config.fast_test_config()))
        curve = simulator.ber_sweep_batched([4.0, 8.0], num_packets=8,
                                            payload_bits_per_packet=32,
                                            seed=12)
        assert len(curve.points) == 2
        assert curve == simulator.ber_sweep_batched(
            [4.0, 8.0], num_packets=8, payload_bits_per_packet=32, seed=12)

    def test_invalid_engine_arguments(self):
        with pytest.raises(ValueError, match="generation"):
            SweepEngine(generation="gen3")
        with pytest.raises(ValueError, match="backend"):
            SweepEngine(backend="gpu")


class TestRunStoreHooks:
    """The identity/callback hooks the repro.runs subsystem builds on."""

    def test_duplicate_points_warn(self, engine_factory):
        point = SweepPoint(ebn0_db=6.0)
        with pytest.warns(UserWarning, match="duplicated point"):
            result = engine_factory(seed=2).run([point, point],
                                                num_packets=2)
        # Duplicates share one stream: identical measurements, as warned.
        assert result.entries[0][1] == result.entries[1][1]

    def test_distinct_points_do_not_warn(self, engine_factory,
                                         small_sweep_grid):
        import warnings as warnings_module
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            engine_factory(seed=2).run(small_sweep_grid, num_packets=1)

    def test_on_result_callback_sees_every_point_in_order(
            self, engine_factory, small_sweep_grid):
        seen = []
        result = engine_factory(seed=3).run(
            small_sweep_grid, num_packets=4,
            on_result=lambda point, measurement: seen.append(
                (point, measurement)))
        assert seen == result.entries

    def test_measure_point_matches_run(self, engine_factory,
                                       small_sweep_grid):
        engine = engine_factory(seed=7)
        result = engine.run(small_sweep_grid, num_packets=6,
                            payload_bits_per_packet=32)
        for point, measurement in result.entries:
            assert engine.measure_point(
                point, num_packets=6,
                payload_bits_per_packet=32) == measurement

    def test_packet_offset_chunks_are_independent(self, engine_factory):
        engine = engine_factory(seed=7)
        point = SweepPoint(ebn0_db=2.0)
        base = engine.measure_point(point, num_packets=8,
                                    payload_bits_per_packet=64)
        tail = engine.measure_point(point, num_packets=8,
                                    payload_bits_per_packet=64,
                                    packet_offset=8)
        # Deterministic per offset, but a different stream from offset 0.
        assert tail == engine.measure_point(point, num_packets=8,
                                            payload_bits_per_packet=64,
                                            packet_offset=8)
        assert tail.bit_errors != base.bit_errors
        with pytest.raises(ValueError, match="packet_offset"):
            engine.measure_point(point, num_packets=1, packet_offset=-1)

    def test_point_digest_tracks_content_not_position(self):
        point = SweepPoint(ebn0_db=4.0, scenario="cm1", adc_bits=3)
        same = SweepPoint(ebn0_db=4.0, scenario="cm1", adc_bits=3)
        assert SweepEngine.point_digest(point) == \
            SweepEngine.point_digest(same)
        assert SweepEngine.point_digest(point) != SweepEngine.point_digest(
            SweepPoint(ebn0_db=4.0, scenario="cm1", adc_bits=4))

    def test_config_digest_covers_engine_identity(self):
        from repro.core.config import Gen2Config
        reference = SweepEngine(seed=1).config_digest()
        assert reference == SweepEngine(seed=1).config_digest()
        assert reference != SweepEngine(seed=2).config_digest()
        assert reference != SweepEngine(seed=1,
                                        generation="gen1").config_digest()
        assert reference != SweepEngine(seed=1,
                                        quantize=False).config_digest()
        assert reference != SweepEngine(
            seed=1, config=Gen2Config.fast_test_config()).config_digest()
