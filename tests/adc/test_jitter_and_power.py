"""Tests for sampling-clock jitter and ADC power models."""

import numpy as np
import pytest

from repro.adc.jitter import SamplingClock, jitter_limited_snr_db
from repro.adc.power import (
    ADCPowerModel,
    walden_fom_j_per_step,
    walden_power_w,
)


class TestJitter:
    def test_jitter_limited_snr_formula(self):
        # 1 ps RMS jitter at 5 GHz input: SNR = -20 log10(2 pi * 5e9 * 1e-12).
        expected = -20 * np.log10(2 * np.pi * 5e9 * 1e-12)
        assert jitter_limited_snr_db(5e9, 1e-12) == pytest.approx(expected)

    def test_more_jitter_less_snr(self):
        assert jitter_limited_snr_db(1e9, 10e-12) < jitter_limited_snr_db(1e9, 1e-12)

    def test_sample_times_nominal_without_jitter(self):
        clock = SamplingClock(sample_rate_hz=1e9)
        times = clock.sample_times(10)
        assert np.allclose(times, np.arange(10) * 1e-9)

    def test_skew_shifts_all_samples(self):
        clock = SamplingClock(sample_rate_hz=1e9, skew_s=5e-12)
        times = clock.sample_times(4)
        assert np.allclose(times - np.arange(4) * 1e-9, 5e-12)

    def test_jitter_statistics(self, rng):
        clock = SamplingClock(sample_rate_hz=1e9, rms_jitter_s=2e-12)
        times = clock.sample_times(20000, rng=rng)
        deviation = times - np.arange(20000) * 1e-9
        assert np.std(deviation) == pytest.approx(2e-12, rel=0.05)

    def test_sample_waveform_tracks_input(self, rng):
        clock = SamplingClock(sample_rate_hz=1e9, rms_jitter_s=0.0)
        dense_rate = 8e9
        t = np.arange(8000) / dense_rate
        waveform = np.sin(2 * np.pi * 50e6 * t)
        sampled = clock.sample_waveform(waveform, dense_rate, rng=rng)
        expected = np.sin(2 * np.pi * 50e6 * np.arange(sampled.size) / 1e9)
        assert np.allclose(sampled, expected, atol=1e-3)

    def test_jitter_degrades_high_frequency_more(self, rng):
        clock = SamplingClock(sample_rate_hz=2e9, rms_jitter_s=20e-12)
        dense_rate = 16e9

        def error_power(freq):
            t = np.arange(64000) / dense_rate
            waveform = np.sin(2 * np.pi * freq * t)
            sampled = clock.sample_waveform(waveform, dense_rate, rng=rng)
            ideal = np.sin(2 * np.pi * freq
                           * np.arange(sampled.size) / 2e9)
            return np.mean((sampled - ideal) ** 2)

        assert error_power(900e6) > 3 * error_power(100e6)

    def test_complex_waveform_sampling(self, rng):
        clock = SamplingClock(sample_rate_hz=1e9)
        dense = np.exp(1j * 2 * np.pi * 10e6 * np.arange(4000) / 4e9)
        sampled = clock.sample_waveform(dense, 4e9, rng=rng)
        assert np.iscomplexobj(sampled)


class TestWaldenPower:
    def test_power_scales_exponentially_with_bits(self):
        p4 = walden_power_w(4, 1e9)
        p5 = walden_power_w(5, 1e9)
        assert p5 / p4 == pytest.approx(2.0)

    def test_power_scales_linearly_with_rate(self):
        assert walden_power_w(5, 2e9) == pytest.approx(2 * walden_power_w(5, 1e9))

    def test_fom_roundtrip(self):
        power = walden_power_w(6, 500e6, fom_j_per_step=3e-12)
        assert walden_fom_j_per_step(power, 6, 500e6) == pytest.approx(3e-12)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            walden_power_w(0, 1e9)


class TestADCPowerModel:
    def test_flash_power_grows_exponentially(self):
        model = ADCPowerModel()
        p4 = model.flash_power_w(4, 2e9)
        p6 = model.flash_power_w(6, 2e9)
        assert p6 > 3 * p4

    def test_sar_cheaper_than_flash_at_same_point(self):
        model = ADCPowerModel()
        assert model.sar_power_w(5, 500e6) < model.flash_power_w(5, 500e6)

    def test_gen1_vs_gen2_adc_power(self):
        # The gen-1 2 GSPS 4-way flash should burn much more than the gen-2
        # pair of 5-bit SARs at 500 MSps.
        model = ADCPowerModel()
        gen1 = model.flash_power_w(4, 2e9, num_interleaved=4)
        gen2 = 2 * model.sar_power_w(5, 500e6)
        assert gen1 > 2 * gen2

    def test_power_vs_resolution_sweep(self):
        model = ADCPowerModel()
        sweep = model.power_vs_resolution("sar", 500e6, bit_range=range(1, 7))
        assert sorted(sweep) == list(range(1, 7))
        values = [sweep[b] for b in sorted(sweep)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            ADCPowerModel().power_vs_resolution("pipeline", 1e9)

    def test_interleaving_adds_overhead(self):
        model = ADCPowerModel(overhead_w=2e-3)
        single = model.flash_power_w(4, 2e9, num_interleaved=1)
        four_way = model.flash_power_w(4, 2e9, num_interleaved=4)
        assert four_way - single == pytest.approx(3 * 2e-3)
