"""Tests for the ADC models: uniform quantizer, flash, interleaved, SAR."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.adc.flash import FlashADC
from repro.adc.interleaved import TimeInterleavedADC
from repro.adc.quantizer import UniformQuantizer, ideal_sndr_db
from repro.adc.sar import QuadratureSARADC, SARADC


class TestUniformQuantizer:
    def test_levels_and_step(self):
        q = UniformQuantizer(bits=5, full_scale=1.0)
        assert q.num_levels == 32
        assert q.step == pytest.approx(2.0 / 32)

    def test_one_bit_is_sign_detector(self):
        q = UniformQuantizer(bits=1, full_scale=1.0)
        out = q.quantize(np.array([-0.7, -0.01, 0.01, 0.9]))
        assert np.array_equal(np.sign(out), [-1, -1, 1, 1])
        assert np.all(np.abs(out) == pytest.approx(0.5))

    def test_quantization_error_bounded(self):
        q = UniformQuantizer(bits=6)
        x = np.linspace(-0.99, 0.99, 777)
        err = q.quantize(x) - x
        assert np.max(np.abs(err)) <= q.step / 2 + 1e-12

    def test_saturation(self):
        q = UniformQuantizer(bits=4, full_scale=0.5)
        out = q.quantize(np.array([5.0, -5.0]))
        assert out[0] < 0.5
        assert out[1] > -0.5

    def test_measured_sndr_close_to_ideal(self):
        for bits in (4, 6, 8):
            q = UniformQuantizer(bits=bits)
            measured = q.measured_sndr_db()
            assert measured == pytest.approx(ideal_sndr_db(bits), abs=1.5)

    def test_ideal_sndr_formula(self):
        assert ideal_sndr_db(5) == pytest.approx(6.02 * 5 + 1.76)

    def test_complex_quantization(self):
        q = UniformQuantizer(bits=5)
        x = np.array([0.3 + 0.2j])
        out = q.quantize(x)
        assert np.iscomplexobj(out)

    def test_codes_range(self):
        q = UniformQuantizer(bits=3)
        codes = q.quantize_codes(np.linspace(-2, 2, 100))
        assert codes.min() == 0
        assert codes.max() == 7

    @given(st.integers(min_value=1, max_value=10),
           st.floats(min_value=-0.999, max_value=0.999))
    @settings(max_examples=40)
    def test_quantize_monotone(self, bits, x):
        q = UniformQuantizer(bits=bits)
        smaller = float(q.quantize(np.array([x * 0.5]))[0])
        larger = float(q.quantize(np.array([x]))[0])
        if x >= 0:
            assert larger >= smaller
        else:
            assert larger <= smaller


class TestFlashADC:
    def test_ideal_flash_matches_uniform(self):
        flash = FlashADC(bits=4, comparator_offset_std=0.0)
        uniform = UniformQuantizer(bits=4)
        x = np.linspace(-0.95, 0.95, 101)
        assert np.allclose(flash.convert(x), uniform.quantize(x))

    def test_codes_monotone_in_input(self):
        flash = FlashADC(bits=4, comparator_offset_std=0.01,
                         rng=np.random.default_rng(0))
        x = np.linspace(-1, 1, 500)
        codes = flash.convert_codes(x)
        assert np.all(np.diff(codes) >= 0)

    def test_dnl_zero_for_ideal(self):
        flash = FlashADC(bits=4)
        assert np.allclose(flash.differential_nonlinearity_lsb(), 0.0,
                           atol=1e-9)

    def test_offsets_create_dnl(self):
        flash = FlashADC(bits=4, comparator_offset_std=0.02,
                         rng=np.random.default_rng(1))
        assert np.max(np.abs(flash.differential_nonlinearity_lsb())) > 0.01

    def test_inl_matches_threshold_displacement(self):
        flash = FlashADC(bits=4, comparator_offset_std=0.02,
                         rng=np.random.default_rng(2))
        inl = flash.integral_nonlinearity_lsb()
        assert inl.size == 15
        assert np.all(np.isfinite(inl))

    def test_gain_error_shifts_codes(self):
        ideal = FlashADC(bits=4)
        with_gain = FlashADC(bits=4, gain_error=0.2)
        x = np.array([0.5])
        assert with_gain.convert_codes(x)[0] >= ideal.convert_codes(x)[0]

    def test_complex_input(self):
        flash = FlashADC(bits=4)
        out = flash.convert(np.array([0.2 + 0.4j]))
        assert np.iscomplexobj(out)


class TestTimeInterleavedADC:
    def test_uniform_factory(self):
        adc = TimeInterleavedADC.uniform(num_slices=4, bits=4,
                                         rng=np.random.default_rng(0))
        assert adc.num_slices == 4
        assert adc.bits == 4
        assert adc.per_slice_rate_hz == pytest.approx(500e6)

    def test_presampled_conversion_matches_single_adc_when_matched(self):
        adc = TimeInterleavedADC.uniform(num_slices=4, bits=4,
                                         rng=np.random.default_rng(1))
        x = np.linspace(-0.9, 0.9, 400)
        out = adc.convert_presampled(x)
        single = FlashADC(bits=4)
        assert np.allclose(out, single.convert(x))

    def test_mismatch_creates_slice_dependent_errors(self):
        adc = TimeInterleavedADC.uniform(
            num_slices=4, bits=6, offset_mismatch_std=0.05,
            rng=np.random.default_rng(2))
        x = np.zeros(400)
        out = adc.convert_presampled(x)
        per_slice_mean = [np.mean(out[i::4]) for i in range(4)]
        assert np.std(per_slice_mean) > 1e-3

    def test_sample_and_convert_rate(self):
        adc = TimeInterleavedADC.uniform(num_slices=4, bits=4,
                                         aggregate_rate_hz=2e9,
                                         rng=np.random.default_rng(3))
        waveform = np.sin(2 * np.pi * 100e6 * np.arange(4000) / 4e9)
        out = adc.sample_and_convert(waveform, 4e9,
                                     rng=np.random.default_rng(4))
        # 1 us of waveform at 2 GSPS -> about 2000 samples.
        assert abs(out.size - 2000) <= 4

    def test_sample_and_convert_tracks_input(self):
        adc = TimeInterleavedADC.uniform(num_slices=4, bits=6,
                                         aggregate_rate_hz=2e9,
                                         rng=np.random.default_rng(5))
        t = np.arange(8000) / 4e9
        waveform = 0.8 * np.sin(2 * np.pi * 50e6 * t)
        out = adc.sample_and_convert(waveform, 4e9,
                                     rng=np.random.default_rng(6))
        expected = 0.8 * np.sin(2 * np.pi * 50e6 * np.arange(out.size) / 2e9)
        assert np.corrcoef(out, expected)[0, 1] > 0.99

    def test_parallel_streams(self):
        adc = TimeInterleavedADC.uniform(num_slices=4, bits=4,
                                         rng=np.random.default_rng(7))
        x = np.linspace(-0.5, 0.5, 64)
        streams = adc.parallel_streams(x)
        assert len(streams) == 4
        assert all(s.size == 16 for s in streams)

    def test_requires_slices(self):
        with pytest.raises(ValueError):
            TimeInterleavedADC(slices=())


class TestSARADC:
    def test_ideal_sar_error_bounded(self):
        sar = SARADC(bits=5, capacitor_mismatch_std=0.0,
                     comparator_noise_std=0.0)
        x = np.linspace(-0.95, 0.95, 333)
        out = sar.convert(x)
        assert np.max(np.abs(out - x)) <= sar.step

    def test_codes_cover_full_range(self):
        sar = SARADC(bits=5)
        codes = sar.convert_codes(np.linspace(-1.2, 1.2, 1000))
        assert codes.min() == 0
        assert codes.max() == 31

    def test_codes_monotone(self):
        sar = SARADC(bits=5, rng=np.random.default_rng(0))
        x = np.linspace(-1, 1, 500)
        codes = sar.convert_codes(x)
        assert np.all(np.diff(codes) >= 0)

    def test_comparator_noise_creates_code_variation(self):
        sar = SARADC(bits=5, comparator_noise_std=0.05,
                     rng=np.random.default_rng(1))
        codes = sar.convert_codes(np.full(200, 0.1),
                                  rng=np.random.default_rng(2))
        assert np.unique(codes).size > 1

    def test_mismatch_changes_transfer_function(self):
        ideal = SARADC(bits=5)
        mismatched = SARADC(bits=5, capacitor_mismatch_std=0.05,
                            rng=np.random.default_rng(3))
        x = np.linspace(-0.9, 0.9, 200)
        assert not np.allclose(ideal.convert(x), mismatched.convert(x))

    def test_scalar_input(self):
        sar = SARADC(bits=5)
        assert isinstance(sar.convert(0.3), float)

    def test_conversion_timing(self):
        sar = SARADC(bits=5, sample_rate_hz=500e6)
        assert sar.conversion_time_s == pytest.approx(2e-9)
        assert sar.bit_clock_rate_hz == pytest.approx(2.5e9)


class TestQuadratureSAR:
    def test_matched_pair_properties(self):
        pair = QuadratureSARADC.matched_pair(bits=5,
                                             rng=np.random.default_rng(0))
        assert pair.bits == 5
        assert pair.sample_rate_hz == pytest.approx(500e6)

    def test_complex_conversion(self):
        pair = QuadratureSARADC.matched_pair(bits=6,
                                             rng=np.random.default_rng(1))
        x = np.array([0.3 + 0.4j, -0.2 - 0.7j])
        out = pair.convert(x)
        assert np.iscomplexobj(out)
        assert np.max(np.abs(out - x)) < 2 * pair.i_adc.step
