"""Property tests for the batched time-interleaved ADC.

Hypothesis-style seeded sweeps (randomized slice counts, per-slice
mismatches, waveform lengths — including lengths not divisible by the
interleave factor) pin the two contracts the batched gen-1 front end
stands on:

* ``parallel_streams`` reassembly is the identity with respect to
  ``convert_presampled``: interleaving the per-slice streams back in
  round-robin order reproduces the aggregate converted stream exactly;
* batch equals loop: ``convert_presampled_batch`` /
  ``sample_and_convert_batch`` are bitwise the per-row methods, row for
  row, with the jittered sampling consuming a shared generator in the
  same per-row order.
"""

import numpy as np
import pytest

from repro.adc.interleaved import TimeInterleavedADC
from repro.sim.backends import reference_backend


def _random_adc(rng, num_slices=None, with_jitter=False):
    if num_slices is None:
        num_slices = int(rng.integers(1, 6))
    return TimeInterleavedADC.uniform(
        num_slices=num_slices,
        bits=int(rng.integers(2, 7)),
        aggregate_rate_hz=2e9,
        comparator_offset_std=float(rng.uniform(0.0, 0.02)),
        gain_mismatch_std=float(rng.uniform(0.0, 0.05)),
        offset_mismatch_std=float(rng.uniform(0.0, 0.02)),
        timing_skew_std_s=(4e-12 if with_jitter else 0.0),
        rms_jitter_s=(2e-12 if with_jitter else 0.0),
        rng=rng)


class TestParallelStreamsIdentity:
    """Reassembling the slice streams is convert_presampled."""

    @pytest.mark.parametrize("seed", range(8))
    def test_round_robin_reassembly(self, seed):
        rng = np.random.default_rng(seed)
        adc = _random_adc(rng)
        # Deliberately include lengths not divisible by the slice count.
        num_samples = int(rng.integers(1, 400))
        samples = rng.uniform(-1.2, 1.2, size=num_samples)
        streams = adc.parallel_streams(samples)
        assert len(streams) == adc.num_slices
        reassembled = np.zeros(num_samples)
        for index, stream in enumerate(streams):
            assert stream.size == len(range(index, num_samples,
                                            adc.num_slices))
            reassembled[index::adc.num_slices] = stream
        assert np.array_equal(reassembled, adc.convert_presampled(samples))

    @pytest.mark.parametrize("seed", range(4))
    def test_backend_interleave_matches_manual_scatter(self, seed):
        """The backend primitive the batch path uses for the reassembly
        must agree with the manual strided scatter above."""
        rng = np.random.default_rng(100 + seed)
        adc = _random_adc(rng)
        num_samples = int(rng.integers(1, 300))
        samples = rng.uniform(-1.0, 1.0, size=num_samples)
        streams = adc.parallel_streams(samples)
        merged = reference_backend().interleave_streams(streams, num_samples)
        assert np.array_equal(merged, adc.convert_presampled(samples))


class TestBatchEqualsLoop:
    """The batched conversions are the per-row methods, bitwise."""

    @pytest.mark.parametrize("seed", range(10))
    def test_convert_presampled_batch(self, seed):
        rng = np.random.default_rng(1000 + seed)
        adc = _random_adc(rng)
        num_packets = int(rng.integers(1, 7))
        num_samples = int(rng.integers(1, 500))
        batch = rng.uniform(-1.5, 1.5, size=(num_packets, num_samples))
        # Random per-row DC offsets exercise different code regions.
        batch += rng.uniform(-0.3, 0.3, size=(num_packets, 1))
        converted = adc.convert_presampled_batch(batch)
        assert converted.shape == batch.shape
        for row in range(num_packets):
            assert np.array_equal(converted[row],
                                  adc.convert_presampled(batch[row])), row

    @pytest.mark.parametrize("seed", range(4))
    def test_convert_presampled_batch_leading_axes(self, seed):
        """Any leading batch shape broadcasts (the ADC only cares about
        the sample axis)."""
        rng = np.random.default_rng(2000 + seed)
        adc = _random_adc(rng)
        batch = rng.uniform(-1.0, 1.0, size=(2, 3, 61))
        converted = adc.convert_presampled_batch(batch)
        for i in range(2):
            for j in range(3):
                assert np.array_equal(converted[i, j],
                                      adc.convert_presampled(batch[i, j]))

    @pytest.mark.parametrize("seed", range(6))
    def test_sample_and_convert_batch_matches_loop(self, seed):
        """Jitter + skew: the batch consumes a seeded rng in exactly the
        per-waveform order, so results are bitwise the loop's."""
        rng = np.random.default_rng(3000 + seed)
        adc = _random_adc(rng, with_jitter=True)
        num_packets = int(rng.integers(1, 5))
        num_samples = int(rng.integers(50, 400))
        waveform_rate = 8e9
        waveforms = rng.uniform(-1.0, 1.0,
                                size=(num_packets, num_samples))
        loop_rng = np.random.default_rng(99 + seed)
        looped = [adc.sample_and_convert(row, waveform_rate, rng=loop_rng)
                  for row in waveforms]
        batch_rng = np.random.default_rng(99 + seed)
        batched = adc.sample_and_convert_batch(waveforms, waveform_rate,
                                               rng=batch_rng)
        assert batched.shape == (num_packets, looped[0].size)
        for row in range(num_packets):
            assert np.array_equal(batched[row], looped[row]), row

    def test_sample_and_convert_batch_rejects_1d(self):
        adc = _random_adc(np.random.default_rng(0))
        with pytest.raises(ValueError, match="2-D"):
            adc.sample_and_convert_batch(np.zeros(32), 8e9)
