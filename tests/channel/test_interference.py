"""Tests for narrowband-interferer generators."""

import numpy as np
import pytest

from repro.channel.interference import (
    ModulatedInterferer,
    MultiToneInterferer,
    ToneInterferer,
    interferer_amplitude_for_sir,
)
from repro.utils import dsp


class TestToneInterferer:
    def test_power_complex(self):
        tone = ToneInterferer(frequency_hz=100e6, amplitude=0.5)
        wave = tone.waveform(10000, 1e9, complex_baseband=True)
        assert dsp.signal_power(wave) == pytest.approx(0.25, rel=1e-6)
        assert tone.power(complex_baseband=True) == pytest.approx(0.25)

    def test_power_real(self):
        tone = ToneInterferer(frequency_hz=100e6, amplitude=1.0)
        wave = tone.waveform(100000, 1e9, complex_baseband=False)
        assert dsp.signal_power(wave) == pytest.approx(0.5, rel=1e-2)

    def test_frequency_content(self):
        tone = ToneInterferer(frequency_hz=123e6, amplitude=1.0)
        wave = tone.waveform(16384, 1e9)
        freqs, psd = dsp.estimate_psd(wave, 1e9)
        assert abs(freqs[np.argmax(psd)] - 123e6) < 2e6

    def test_negative_frequency_allowed(self):
        tone = ToneInterferer(frequency_hz=-50e6, amplitude=1.0)
        wave = tone.waveform(16384, 1e9)
        freqs, psd = dsp.estimate_psd(wave, 1e9)
        assert freqs[np.argmax(psd)] < 0

    def test_add_to_matches_input_type(self):
        tone = ToneInterferer(frequency_hz=10e6)
        real_out = tone.add_to(np.zeros(100), 1e9)
        complex_out = tone.add_to(np.zeros(100, dtype=complex), 1e9)
        assert not np.iscomplexobj(real_out)
        assert np.iscomplexobj(complex_out)


class TestSIRHelper:
    def test_sir_achieved(self):
        rng = np.random.default_rng(0)
        signal = rng.standard_normal(50000) + 1j * rng.standard_normal(50000)
        amplitude = interferer_amplitude_for_sir(signal, sir_db=-10.0)
        tone = ToneInterferer(frequency_hz=50e6, amplitude=amplitude)
        interference = tone.waveform(signal.size, 1e9)
        sir = 10 * np.log10(dsp.signal_power(signal)
                            / dsp.signal_power(interference))
        assert sir == pytest.approx(-10.0, abs=0.1)

    def test_zero_signal_raises(self):
        with pytest.raises(ValueError):
            interferer_amplitude_for_sir(np.zeros(10), 0.0)


class TestModulatedInterferer:
    def test_bandwidth_is_narrow(self):
        interferer = ModulatedInterferer(frequency_hz=100e6,
                                         symbol_rate_hz=20e6, amplitude=1.0)
        wave = interferer.waveform(65536, 1e9, rng=np.random.default_rng(1))
        bw = dsp.occupied_bandwidth(wave, 1e9, power_fraction=0.9)
        assert bw < 100e6

    def test_center_frequency(self):
        interferer = ModulatedInterferer(frequency_hz=200e6, amplitude=1.0)
        wave = interferer.waveform(65536, 1e9, rng=np.random.default_rng(2))
        freqs, psd = dsp.estimate_psd(wave, 1e9)
        assert abs(freqs[np.argmax(psd)] - 200e6) < 20e6

    def test_power_scales_with_amplitude(self):
        rng = np.random.default_rng(3)
        small = ModulatedInterferer(frequency_hz=100e6, amplitude=0.1)
        large = ModulatedInterferer(frequency_hz=100e6, amplitude=1.0)
        p_small = dsp.signal_power(small.waveform(20000, 1e9, rng=rng))
        p_large = dsp.signal_power(large.waveform(20000, 1e9, rng=rng))
        assert p_large / p_small == pytest.approx(100.0, rel=0.05)

    def test_add_to(self):
        interferer = ModulatedInterferer(frequency_hz=50e6, amplitude=0.5)
        out = interferer.add_to(np.zeros(1000, dtype=complex), 1e9,
                                rng=np.random.default_rng(4))
        assert dsp.signal_power(out) > 0


class TestMultiTone:
    def test_requires_tones(self):
        with pytest.raises(ValueError):
            MultiToneInterferer(tones=())

    def test_sum_of_powers(self):
        tones = (ToneInterferer(50e6, 1.0), ToneInterferer(150e6, 1.0))
        multi = MultiToneInterferer(tones=tones)
        wave = multi.waveform(100000, 1e9)
        assert dsp.signal_power(wave) == pytest.approx(2.0, rel=0.05)

    def test_frequencies(self):
        multi = MultiToneInterferer(tones=(ToneInterferer(1e6),
                                           ToneInterferer(2e6)))
        assert multi.frequencies() == (1e6, 2e6)
