"""Tests for the AWGN channel and the path-loss / link-budget models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.awgn import (
    AWGNChannel,
    awgn,
    noise_std_for_ebn0,
    noise_std_for_snr,
)
from repro.channel.pathloss import (
    LinkBudget,
    free_space_path_loss_db,
    log_distance_path_loss_db,
    max_transmit_power_dbm,
    thermal_noise_power_dbm,
)
from repro.utils import dsp


class TestAWGN:
    def test_zero_noise_returns_signal(self):
        x = np.ones(100)
        assert np.array_equal(awgn(x, 0.0), x)

    def test_noise_power_matches_request(self, rng):
        x = np.zeros(200_000)
        noisy = awgn(x, 0.5, rng=rng)
        assert np.std(noisy) == pytest.approx(0.5, rel=0.02)

    def test_complex_noise_split_between_quadratures(self, rng):
        x = np.zeros(200_000, dtype=complex)
        noisy = awgn(x, 1.0, rng=rng)
        assert np.std(noisy.real) == pytest.approx(1 / np.sqrt(2), rel=0.02)
        assert np.std(noisy.imag) == pytest.approx(1 / np.sqrt(2), rel=0.02)
        assert dsp.signal_power(noisy) == pytest.approx(1.0, rel=0.02)

    def test_negative_std_raises(self):
        with pytest.raises(ValueError):
            awgn(np.ones(4), -0.1)

    def test_noise_std_for_snr(self, rng):
        x = np.sin(2 * np.pi * 0.01 * np.arange(100_000))
        std = noise_std_for_snr(x, 10.0)
        noisy = awgn(x, std, rng=rng)
        measured_snr = 10 * np.log10(dsp.signal_power(x)
                                     / dsp.signal_power(noisy - x))
        assert measured_snr == pytest.approx(10.0, abs=0.2)

    def test_noise_std_for_snr_zero_signal_raises(self):
        with pytest.raises(ValueError):
            noise_std_for_snr(np.zeros(10), 10.0)

    def test_noise_std_for_ebn0_formula(self):
        # Eb/N0 = Eb / (2 sigma^2).
        sigma = noise_std_for_ebn0(energy_per_bit=4.0, ebn0_db=0.0)
        assert sigma == pytest.approx(np.sqrt(2.0))

    def test_channel_class_snr(self, rng):
        channel = AWGNChannel(rng)
        x = np.ones(100_000)
        noisy = channel.apply_snr(x, 20.0)
        snr = 10 * np.log10(1.0 / np.var(noisy - x))
        assert snr == pytest.approx(20.0, abs=0.3)

    @given(st.floats(min_value=0.1, max_value=100.0),
           st.floats(min_value=-5.0, max_value=20.0))
    @settings(max_examples=30)
    def test_noise_std_positive(self, energy, ebn0):
        assert noise_std_for_ebn0(energy, ebn0) > 0


class TestPathLoss:
    def test_free_space_known_value(self):
        # 1 m at 2.4 GHz is about 40 dB.
        assert free_space_path_loss_db(1.0, 2.4e9) == pytest.approx(40.0, abs=0.3)

    def test_free_space_distance_scaling(self):
        loss1 = free_space_path_loss_db(1.0, 5e9)
        loss10 = free_space_path_loss_db(10.0, 5e9)
        assert loss10 - loss1 == pytest.approx(20.0, abs=1e-6)

    def test_log_distance_matches_free_space_at_reference(self):
        assert log_distance_path_loss_db(1.0, 5e9) == pytest.approx(
            free_space_path_loss_db(1.0, 5e9))

    def test_log_distance_exponent(self):
        loss = log_distance_path_loss_db(10.0, 5e9, exponent=3.0)
        reference = free_space_path_loss_db(1.0, 5e9)
        assert loss - reference == pytest.approx(30.0, abs=1e-6)

    def test_thermal_noise_in_500mhz(self):
        # kTB for 500 MHz is about -87 dBm.
        assert thermal_noise_power_dbm(500e6) == pytest.approx(-87.0, abs=0.5)

    def test_max_transmit_power_500mhz(self):
        # -41.3 dBm/MHz over 500 MHz integrates to about -14.3 dBm.
        assert max_transmit_power_dbm(500e6) == pytest.approx(-14.3, abs=0.1)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 5e9)


class TestLinkBudget:
    def _budget(self):
        return LinkBudget(center_frequency_hz=4.5e9, bandwidth_hz=500e6,
                          noise_figure_db=7.0)

    def test_snr_decreases_with_distance(self):
        budget = self._budget()
        assert budget.received_snr_db(1.0) > budget.received_snr_db(5.0)

    def test_ebn0_exceeds_snr_for_low_rate(self):
        budget = self._budget()
        # Spreading 500 MHz over 100 Mbps gives ~7 dB of processing gain.
        assert budget.ebn0_db(3.0, 100e6) > budget.received_snr_db(3.0)

    def test_short_range_100mbps_feasible(self):
        # The paper's gen-2 operating point: 100 Mbps at a couple of metres
        # should close with reasonable Eb/N0.
        budget = self._budget()
        assert budget.ebn0_db(2.0, 100e6) > 8.0

    def test_max_range_monotone_in_required_snr(self):
        budget = self._budget()
        assert budget.max_range_m(0.0) >= budget.max_range_m(10.0)

    def test_max_range_zero_when_infeasible(self):
        budget = self._budget()
        assert budget.max_range_m(200.0) == 0.0

    def test_transmit_power_is_fcc_limited(self):
        budget = self._budget()
        assert budget.transmit_power_dbm() == pytest.approx(-14.3, abs=0.1)
