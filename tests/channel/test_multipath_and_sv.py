"""Tests for the multipath channel models (tapped delay line and 802.15.3a S-V)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel.multipath import (
    MultipathChannel,
    apply_channels_batch,
    channel_fft_workers,
    exponential_decay_channel,
    set_channel_fft_workers,
    two_ray_channel,
)
from repro.channel.saleh_valenzuela import (
    CHANNEL_MODELS,
    CM1,
    CM3,
    CM4,
    SalehValenzuelaChannelGenerator,
    generate_channel,
)


class TestChannelFFTWorkers:
    @pytest.fixture(autouse=True)
    def _restore_setting(self):
        previous = set_channel_fft_workers(None)
        yield
        set_channel_fft_workers(previous)

    def test_default_is_single_threaded(self, monkeypatch):
        monkeypatch.delenv("REPRO_FFT_WORKERS", raising=False)
        assert channel_fft_workers() == 1

    def test_setting_and_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_WORKERS", "3")
        assert channel_fft_workers() == 3
        assert set_channel_fft_workers(2) is None   # explicit beats env
        assert channel_fft_workers() == 2
        with pytest.raises((TypeError, ValueError)):
            set_channel_fft_workers(0)

    def test_invalid_environment_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_WORKERS", "lots")
        with pytest.warns(UserWarning, match="REPRO_FFT_WORKERS"):
            assert channel_fft_workers() == 1

    def test_threaded_channel_pass_is_bitwise_identical(self):
        # pocketfft threads split the batch over rows; every row's
        # transform is computed exactly as in the serial pass, so the
        # convolution output must not move by a single ulp.
        rng = np.random.default_rng(11)
        signals = rng.normal(size=(16, 512))
        channels = [
            exponential_decay_channel(20e-9, 2e-9, complex_gains=False,
                                      rng=np.random.default_rng(index))
            if index % 3 else None
            for index in range(16)]
        lengths = rng.integers(400, 512, size=16)
        set_channel_fft_workers(1)
        serial = apply_channels_batch(channels, signals, 4e9,
                                      valid_lengths=lengths)
        set_channel_fft_workers(2)
        threaded = apply_channels_batch(channels, signals, 4e9,
                                        valid_lengths=lengths)
        np.testing.assert_array_equal(serial, threaded)


class TestMultipathChannel:
    def test_single_ray_passthrough(self):
        channel = MultipathChannel([0.0], [1.0])
        x = np.arange(10, dtype=float)
        assert np.allclose(channel.apply(x, 1e9), x)

    def test_rays_sorted_by_delay(self):
        channel = MultipathChannel([5e-9, 1e-9], [0.5, 1.0])
        assert channel.delays_s[0] == pytest.approx(1e-9)
        assert channel.gains[0] == pytest.approx(1.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            MultipathChannel([0.0, 1e-9], [1.0])

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            MultipathChannel([-1e-9], [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MultipathChannel([], [])

    def test_total_power(self):
        channel = MultipathChannel([0.0, 1e-9], [1.0, 0.5])
        assert channel.total_power() == pytest.approx(1.25)

    def test_normalized_unit_power(self):
        channel = MultipathChannel([0.0, 2e-9], [2.0, 1.0]).normalized()
        assert channel.total_power() == pytest.approx(1.0)

    def test_rms_delay_spread_two_equal_rays(self):
        # Two equal-power rays separated by tau have RMS spread tau/2.
        tau = 10e-9
        channel = MultipathChannel([0.0, tau], [1.0, 1.0])
        assert channel.rms_delay_spread_s() == pytest.approx(tau / 2)

    def test_single_ray_zero_spread(self):
        assert MultipathChannel([3e-9], [1.0]).rms_delay_spread_s() == 0.0

    def test_mean_excess_delay(self):
        channel = MultipathChannel([0.0, 10e-9], [1.0, 1.0])
        assert channel.mean_excess_delay_s() == pytest.approx(5e-9)

    def test_discrete_impulse_response_positions(self):
        channel = MultipathChannel([0.0, 4e-9], [1.0, -0.5])
        h = channel.discrete_impulse_response(1e9)
        assert h[0] == pytest.approx(1.0)
        assert h[4] == pytest.approx(-0.5)

    def test_impulse_response_num_taps_too_small(self):
        channel = MultipathChannel([0.0, 10e-9], [1.0, 0.5])
        with pytest.raises(ValueError):
            channel.discrete_impulse_response(1e9, num_taps=5)

    def test_apply_keeps_length(self):
        channel = two_ray_channel(5e-9)
        x = np.random.default_rng(0).standard_normal(100)
        assert channel.apply(x, 1e9).size == x.size

    def test_apply_full_convolution(self):
        channel = two_ray_channel(5e-9)
        x = np.ones(10)
        out = channel.apply(x, 1e9, keep_length=False)
        assert out.size == 10 + 5

    def test_energy_conservation_normalized_channel(self):
        # A unit-power channel approximately preserves average signal energy
        # for a long white input.
        rng = np.random.default_rng(1)
        channel = exponential_decay_channel(10e-9, 1e-9, rng=rng).normalized()
        x = rng.standard_normal(20000)
        y = channel.apply(x, 1e9, keep_length=False)
        assert np.sum(np.abs(y) ** 2) == pytest.approx(np.sum(x ** 2), rel=0.1)

    def test_combined_with_cascades_delays(self):
        a = MultipathChannel([0.0, 1e-9], [1.0, 0.5])
        b = MultipathChannel([2e-9], [2.0])
        combined = a.combined_with(b)
        assert combined.num_rays == 2
        assert np.max(combined.delays_s) == pytest.approx(3e-9)

    @given(st.floats(min_value=1e-9, max_value=50e-9),
           st.floats(min_value=-20.0, max_value=0.0))
    @settings(max_examples=30)
    def test_two_ray_spread_bounded_by_delay(self, delay, gain_db):
        channel = two_ray_channel(delay, gain_db)
        assert 0 <= channel.rms_delay_spread_s() <= delay / 2 + 1e-15


class TestExponentialChannel:
    def test_rms_delay_spread_close_to_target(self):
        rng = np.random.default_rng(42)
        spreads = [exponential_decay_channel(20e-9, 2e-9, rng=rng)
                   .rms_delay_spread_s() for _ in range(30)]
        assert np.mean(spreads) == pytest.approx(20e-9, rel=0.4)

    def test_unit_power(self):
        channel = exponential_decay_channel(20e-9, 2e-9,
                                            rng=np.random.default_rng(0))
        assert channel.total_power() == pytest.approx(1.0)

    def test_real_gains_option(self):
        channel = exponential_decay_channel(20e-9, 2e-9, complex_gains=False,
                                            rng=np.random.default_rng(0))
        assert not np.iscomplexobj(channel.gains)


class TestSalehValenzuela:
    def test_all_models_defined(self):
        assert set(CHANNEL_MODELS) == {"CM1", "CM2", "CM3", "CM4"}

    def test_realization_unit_power(self):
        generator = SalehValenzuelaChannelGenerator(
            CM1, rng=np.random.default_rng(0))
        channel = generator.realize()
        assert channel.total_power() == pytest.approx(1.0)

    def test_realization_has_many_rays(self):
        channel = generate_channel("CM3", rng=np.random.default_rng(1))
        assert channel.num_rays > 20

    def test_cm4_spread_larger_than_cm1(self):
        rng = np.random.default_rng(7)
        gen1 = SalehValenzuelaChannelGenerator(CM1, rng=rng)
        gen4 = SalehValenzuelaChannelGenerator(CM4, rng=rng)
        spread1 = gen1.average_rms_delay_spread_s(num_realizations=15)
        spread4 = gen4.average_rms_delay_spread_s(num_realizations=15)
        assert spread4 > spread1

    def test_cm3_spread_order_of_20ns(self):
        # The paper's "rms delay spread of the channel on the order of 20 ns"
        # is bracketed by CM3/CM4.
        rng = np.random.default_rng(3)
        gen = SalehValenzuelaChannelGenerator(CM3, rng=rng)
        spread = gen.average_rms_delay_spread_s(num_realizations=20)
        assert 5e-9 < spread < 40e-9

    def test_complex_gains_flag(self):
        channel = generate_channel("CM1", rng=np.random.default_rng(2),
                                   complex_gains=True)
        assert np.iscomplexobj(channel.gains)

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError):
            generate_channel("CM9")

    def test_realize_many(self):
        generator = SalehValenzuelaChannelGenerator(
            CM1, rng=np.random.default_rng(5))
        channels = generator.realize_many(3)
        assert len(channels) == 3
        assert channels[0].name != channels[1].name

    def test_delays_within_horizon(self):
        generator = SalehValenzuelaChannelGenerator(
            CM1, rng=np.random.default_rng(6), max_excess_delay_ns=60.0)
        channel = generator.realize()
        assert np.max(channel.delays_s) <= 60e-9 + 1e-12
