"""Tests for convolutional coding, Viterbi decoding, and packet framing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.coding import (
    ConvolutionalCode,
    K3_RATE_HALF,
    K7_RATE_HALF,
    ViterbiDecoder,
)
from repro.phy.packet import (
    HEADER_LENGTH_BITS,
    PacketBuilder,
    PacketConfig,
    PacketParser,
)
from repro.phy.preamble import PreambleConfig
from repro.utils.bits import bit_errors, random_bits


class TestConvolutionalCode:
    def test_rate_and_states(self):
        assert K3_RATE_HALF.rate_inverse == 2
        assert K3_RATE_HALF.num_states == 4
        assert K7_RATE_HALF.num_states == 64

    def test_encode_length(self):
        bits = random_bits(50, np.random.default_rng(0))
        coded = K3_RATE_HALF.encode(bits, terminate=True)
        assert coded.size == (50 + 2) * 2

    def test_encode_unterminated_length(self):
        coded = K3_RATE_HALF.encode(np.zeros(10, dtype=np.int64),
                                    terminate=False)
        assert coded.size == 20

    def test_zero_input_gives_zero_output(self):
        coded = K3_RATE_HALF.encode(np.zeros(16, dtype=np.int64))
        assert np.all(coded == 0)

    def test_known_k3_sequence(self):
        # Encoding a single 1 with the (7,5) code gives the impulse response
        # 11 10 11 followed by zeros.
        coded = K3_RATE_HALF.encode(np.array([1]), terminate=True)
        assert np.array_equal(coded, [1, 1, 1, 0, 1, 1])

    def test_invalid_generators(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=3, generators=(0b1111,
                                                               0b101))
        with pytest.raises(ValueError):
            ConvolutionalCode(constraint_length=3, generators=(0b111,))


class TestViterbiDecoder:
    def test_decode_clean(self):
        decoder = ViterbiDecoder(K3_RATE_HALF)
        bits = random_bits(100, np.random.default_rng(1))
        coded = K3_RATE_HALF.encode(bits)
        assert np.array_equal(decoder.decode(coded), bits)

    def test_corrects_isolated_errors(self):
        decoder = ViterbiDecoder(K3_RATE_HALF)
        bits = random_bits(100, np.random.default_rng(2))
        coded = K3_RATE_HALF.encode(bits)
        corrupted = coded.copy()
        corrupted[10] ^= 1
        corrupted[60] ^= 1
        corrupted[150] ^= 1
        assert np.array_equal(decoder.decode(corrupted), bits)

    def test_soft_decoding_beats_hard_at_low_snr(self):
        rng = np.random.default_rng(3)
        decoder = ViterbiDecoder(K3_RATE_HALF)
        hard_total = 0
        soft_total = 0
        for trial in range(8):
            bits = random_bits(200, rng)
            coded = K3_RATE_HALF.encode(bits)
            bipolar = 2.0 * coded - 1.0
            noisy = bipolar + rng.normal(0, 0.9, size=bipolar.size)
            hard = (noisy > 0).astype(np.int64)
            hard_total += bit_errors(bits, decoder.decode(hard, soft=False))
            soft_total += bit_errors(bits, decoder.decode(noisy, soft=True))
        assert soft_total <= hard_total

    def test_k7_code_roundtrip(self):
        decoder = ViterbiDecoder(K7_RATE_HALF)
        bits = random_bits(60, np.random.default_rng(4))
        coded = K7_RATE_HALF.encode(bits)
        assert np.array_equal(decoder.decode(coded), bits)

    def test_invalid_length_raises(self):
        decoder = ViterbiDecoder(K3_RATE_HALF)
        with pytest.raises(ValueError):
            decoder.decode(np.zeros(7))

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4,
                    max_size=80))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, bits):
        decoder = ViterbiDecoder(K3_RATE_HALF)
        coded = K3_RATE_HALF.encode(np.asarray(bits, dtype=np.int64))
        assert np.array_equal(decoder.decode(coded),
                              np.asarray(bits, dtype=np.int64))

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=20,
                    max_size=60),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_viterbi_never_worse_than_channel_errors(self, bits, seed):
        """Decoding a corrupted stream should fix at least as much as it breaks
        when the corruption is a single channel bit."""
        bits = np.asarray(bits, dtype=np.int64)
        rng = np.random.default_rng(seed)
        decoder = ViterbiDecoder(K3_RATE_HALF)
        coded = K3_RATE_HALF.encode(bits)
        corrupted = coded.copy()
        corrupted[int(rng.integers(0, coded.size))] ^= 1
        decoded = decoder.decode(corrupted)
        assert bit_errors(bits, decoded) == 0


class TestPacketFraming:
    def _config(self, use_coding=True):
        return PacketConfig(
            preamble=PreambleConfig(sequence_degree=5, num_repetitions=2),
            use_coding=use_coding)

    def test_build_and_parse_roundtrip(self):
        config = self._config()
        builder = PacketBuilder(config)
        parser = PacketParser(config)
        payload = random_bits(64, np.random.default_rng(0))
        packet = builder.build(payload)
        result = parser.parse(packet.body_bits)
        assert result.crc_ok
        assert np.array_equal(result.payload_bits, payload)

    def test_roundtrip_without_coding(self):
        config = self._config(use_coding=False)
        builder = PacketBuilder(config)
        parser = PacketParser(config)
        payload = random_bits(40, np.random.default_rng(1))
        packet = builder.build(payload)
        result = parser.parse(packet.body_bits)
        assert result.crc_ok
        assert np.array_equal(result.payload_bits, payload)

    def test_header_contents(self):
        config = self._config()
        builder = PacketBuilder(config)
        packet = builder.build(random_bits(32, np.random.default_rng(2)),
                               modulation_id=3)
        parser = PacketParser(config)
        result = parser.parse(packet.body_bits)
        assert result.header_payload_length == 32
        assert result.header_modulation_id == 3
        assert result.header_coding_flag == 1

    def test_preamble_length(self):
        config = self._config()
        packet = PacketBuilder(config).build(random_bits(8,
                                                         np.random.default_rng(3)))
        assert packet.preamble_symbols.size == 31 * 2

    def test_body_starts_with_header(self):
        config = self._config()
        packet = PacketBuilder(config).build(np.zeros(16, dtype=np.int64))
        assert packet.body_bits.size >= HEADER_LENGTH_BITS

    def test_corrupted_payload_fails_crc(self):
        config = self._config(use_coding=False)
        builder = PacketBuilder(config)
        parser = PacketParser(config)
        packet = builder.build(random_bits(64, np.random.default_rng(4)))
        corrupted = packet.body_bits.copy()
        corrupted[HEADER_LENGTH_BITS + 5] ^= 1
        result = parser.parse(corrupted)
        assert not result.crc_ok

    def test_coded_packet_survives_sparse_errors(self):
        config = self._config(use_coding=True)
        builder = PacketBuilder(config)
        parser = PacketParser(config)
        payload = random_bits(64, np.random.default_rng(5))
        packet = builder.build(payload)
        corrupted = packet.body_bits.copy()
        corrupted[HEADER_LENGTH_BITS + 3] ^= 1
        corrupted[HEADER_LENGTH_BITS + 40] ^= 1
        result = parser.parse(corrupted)
        assert result.crc_ok
        assert np.array_equal(result.payload_bits, payload)

    def test_payload_too_long_raises(self):
        builder = PacketBuilder(self._config())
        with pytest.raises(ValueError):
            builder.build(np.zeros(5000, dtype=np.int64))

    def test_truncated_body_handled(self):
        config = self._config()
        parser = PacketParser(config)
        result = parser.parse(np.zeros(4, dtype=np.int64))
        assert not result.crc_ok
        assert result.payload_bits.size == 0

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, num_bits, seed):
        config = self._config()
        payload = random_bits(num_bits, np.random.default_rng(seed))
        packet = PacketBuilder(config).build(payload)
        result = PacketParser(config).parse(packet.body_bits)
        assert result.crc_ok
        assert np.array_equal(result.payload_bits, payload)
