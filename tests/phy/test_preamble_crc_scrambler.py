"""Tests for preamble sequences, CRC, and the scrambler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.crc import CRC16_CCITT, CRC32, append_crc, check_crc
from repro.phy.preamble import (
    PreambleConfig,
    barker_sequence,
    bits_to_bipolar,
    build_preamble_symbols,
    gold_code,
    lfsr_sequence,
    m_sequence,
)
from repro.phy.scrambler import Scrambler
from repro.utils.bits import random_bits


class TestMSequence:
    def test_length(self):
        for degree in (5, 7, 9):
            assert m_sequence(degree).size == (1 << degree) - 1

    def test_balance_property(self):
        # An m-sequence of length 2^n - 1 has exactly 2^(n-1) ones.
        for degree in (5, 6, 7, 8):
            seq = m_sequence(degree)
            assert seq.sum() == 1 << (degree - 1)

    def test_maximal_period(self):
        degree = 6
        period = (1 << degree) - 1
        seq = lfsr_sequence((6, 5), 2 * period)
        assert np.array_equal(seq[:period], seq[period:])
        # No shorter period divides it.
        for p in range(1, period):
            if period % p == 0:
                assert not np.array_equal(seq[:p], seq[p:2 * p])

    def test_periodic_autocorrelation_is_minus_one(self):
        seq = bits_to_bipolar(m_sequence(7))
        for shift in (1, 5, 31, 100):
            rolled = np.roll(seq, shift)
            assert np.dot(seq, rolled) == pytest.approx(-1.0)

    def test_aperiodic_lag1_autocorrelation_small(self):
        seq = bits_to_bipolar(m_sequence(7))
        assert abs(np.dot(seq[:-1], seq[1:])) < 20

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            m_sequence(2)

    def test_different_seeds_are_shifts(self):
        a = m_sequence(5, initial_state=1)
        b = m_sequence(5, initial_state=3)
        assert not np.array_equal(a, b)
        # b must be a cyclic shift of a.
        found = any(np.array_equal(np.roll(a, k), b) for k in range(a.size))
        assert found


class TestGoldAndBarker:
    def test_gold_code_length(self):
        assert gold_code(7, 0).size == 127

    def test_gold_codes_differ(self):
        assert not np.array_equal(gold_code(7, 0), gold_code(7, 1))

    def test_gold_invalid_index(self):
        with pytest.raises(ValueError):
            gold_code(7, 200)

    def test_barker_13_autocorrelation(self):
        seq = bits_to_bipolar(barker_sequence(13))
        sidelobes = [abs(np.dot(seq[:-k], seq[k:])) for k in range(1, 13)]
        assert max(sidelobes) <= 1.0

    def test_barker_invalid_length(self):
        with pytest.raises(ValueError):
            barker_sequence(6)


class TestPreambleConfig:
    def test_total_symbols(self):
        config = PreambleConfig(sequence_degree=5, num_repetitions=4)
        assert config.sequence_length == 31
        assert config.total_symbols == 124

    def test_build_preamble_is_tiled(self):
        config = PreambleConfig(sequence_degree=5, num_repetitions=3)
        symbols = build_preamble_symbols(config)
        base = config.base_sequence_bipolar()
        assert np.array_equal(symbols[:31], base)
        assert np.array_equal(symbols[31:62], base)

    def test_bipolar_values(self):
        config = PreambleConfig(sequence_degree=5, num_repetitions=1)
        symbols = build_preamble_symbols(config)
        assert set(np.unique(symbols)) == {-1.0, 1.0}

    def test_gold_option(self):
        config = PreambleConfig(sequence_degree=7, num_repetitions=1,
                                use_gold=True, code_index=2)
        assert config.base_sequence_bits().size == 127


class TestCRC:
    def test_crc16_known_vector(self):
        # CRC-16-CCITT (init 0xFFFF) of ASCII "123456789" is 0x29B1.
        bits = np.unpackbits(np.frombuffer(b"123456789", dtype=np.uint8))
        assert CRC16_CCITT.compute(bits.astype(np.int64)) == 0x29B1

    def test_append_and_check(self):
        payload = random_bits(120, np.random.default_rng(0))
        protected = append_crc(payload)
        assert check_crc(protected)

    def test_single_bit_error_detected(self):
        payload = random_bits(64, np.random.default_rng(1))
        protected = append_crc(payload)
        for position in (0, 10, protected.size - 1):
            corrupted = protected.copy()
            corrupted[position] ^= 1
            assert not check_crc(corrupted)

    def test_crc32_roundtrip(self):
        payload = random_bits(96, np.random.default_rng(2))
        protected = append_crc(payload, CRC32)
        assert check_crc(protected, CRC32)

    def test_too_short_fails(self):
        assert not check_crc(np.array([1, 0, 1]))

    def test_invalid_bits_raise(self):
        with pytest.raises(ValueError):
            CRC16_CCITT.compute([0, 2, 1])

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1,
                    max_size=200))
    @settings(max_examples=40)
    def test_crc_roundtrip_property(self, payload):
        protected = append_crc(np.asarray(payload))
        assert check_crc(protected)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=8,
                    max_size=100),
           st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=40)
    def test_crc_detects_burst_errors(self, payload, seed):
        rng = np.random.default_rng(seed)
        protected = append_crc(np.asarray(payload))
        corrupted = protected.copy()
        burst_start = int(rng.integers(0, protected.size - 3))
        corrupted[burst_start:burst_start + 3] ^= 1
        assert not check_crc(corrupted)


class TestScrambler:
    def test_scramble_changes_bits(self):
        scrambler = Scrambler()
        bits = np.zeros(128, dtype=np.int64)
        scrambled = scrambler.scramble(bits)
        assert scrambled.sum() > 20

    def test_self_inverse(self):
        scrambler = Scrambler()
        bits = random_bits(256, np.random.default_rng(0))
        assert np.array_equal(scrambler.descramble(scrambler.scramble(bits)),
                              bits)

    def test_keystream_is_balanced(self):
        scrambler = Scrambler()
        stream = scrambler.keystream(127 * 8)
        assert 0.4 < stream.mean() < 0.6

    def test_keystream_periodicity(self):
        scrambler = Scrambler()
        stream = scrambler.keystream(127 * 2)
        assert np.array_equal(stream[:127], stream[127:])

    def test_different_seeds_differ(self):
        a = Scrambler(seed=0x5B).keystream(64)
        b = Scrambler(seed=0x11).keystream(64)
        assert not np.array_equal(a, b)

    def test_invalid_seed(self):
        with pytest.raises(ValueError):
            Scrambler(seed=0)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            Scrambler().scramble([0, 1, 2])

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=0,
                    max_size=300))
    @settings(max_examples=30)
    def test_roundtrip_property(self, bits):
        scrambler = Scrambler()
        assert np.array_equal(
            scrambler.descramble(scrambler.scramble(np.asarray(bits, dtype=np.int64))),
            np.asarray(bits, dtype=np.int64))
