"""Run-directory telemetry artifacts: flushing, crash safety, counters."""

import json
import logging

import pytest

import repro.sim.engine as engine_module
from repro.obs.ledger import (LEDGER_NAME, SUMMARY_NAME, EventLedger,
                              validate_event)
from repro.obs.recorder import Recorder
from repro.runs import RunDriver
from repro.sim import SweepEngine, sweep_grid


@pytest.fixture
def chunk_hook(monkeypatch):
    """Install a test-only chunk fault hook (cleared on teardown)."""
    def install(hook):
        monkeypatch.setattr(engine_module, "_chunk_task_hook", hook)
    yield install
    monkeypatch.setattr(engine_module, "_chunk_task_hook", None)


def _poison(ebn0_db, packet_offset):
    def hook(task):
        offset = task.spawn_key[4] if len(task.spawn_key) > 4 else 0
        if task.point.ebn0_db == ebn0_db and offset == packet_offset:
            raise RuntimeError("injected chunk fault")
    return hook


def make_driver(tmp_path, name="run", telemetry=True, chunk_packets=2,
                num_packets=4, seed=13):
    recorder = Recorder() if telemetry else None
    engine = SweepEngine(seed=seed, chunk_packets=chunk_packets,
                         recorder=recorder)
    return RunDriver.create(tmp_path / name, engine,
                            sweep_grid([2.0, 4.0]), num_packets=num_packets,
                            payload_bits_per_packet=16)


class TestTelemetryFlush:
    def test_run_shard_writes_ledger_and_summary(self, tmp_path):
        driver = make_driver(tmp_path)
        driver.run_shard(0, max_workers=2)
        events, corrupt = EventLedger(driver.run_dir / LEDGER_NAME).read()
        assert corrupt == 0
        for event in events:
            validate_event(event)
        names = {event["name"] for event in events}
        assert {"driver.run_shard", "engine.chunk_plan", "chunk.run",
                "cache.points_missed", "store.chunks_added"} <= names
        chunk_spans = [e for e in events if e["name"] == "chunk.run"]
        assert len(chunk_spans) == 4  # 2 points x 2 chunks
        for span in chunk_spans:
            assert span["attrs"]["packets"] == 2
            assert span["attrs"]["scenario"] == "awgn"
        summary = json.loads(
            (driver.run_dir / SUMMARY_NAME).read_text(encoding="utf-8"))
        assert summary["events"] == len(events)
        assert summary["spans"]["chunk.run"]["count"] == 4
        # Flushed means drained: the recorder starts the next shard empty.
        assert driver.engine.recorder.events() == ()

    def test_parallel_workers_ship_queue_wait(self, tmp_path):
        driver = make_driver(tmp_path)
        driver.run_shard(0, max_workers=2)
        events, _ = EventLedger(driver.run_dir / LEDGER_NAME).read()
        waits = [event["attrs"]["queue_wait_s"] for event in events
                 if event["name"] == "chunk.run"]
        assert len(waits) == 4
        assert all(wait >= 0.0 for wait in waits)

    def test_telemetry_off_leaves_no_artifacts(self, tmp_path):
        driver = make_driver(tmp_path, telemetry=False)
        driver.run_shard(0, max_workers=2)
        assert not (driver.run_dir / LEDGER_NAME).exists()
        assert not (driver.run_dir / SUMMARY_NAME).exists()

    def test_cached_rerun_appends_hit_counters(self, tmp_path):
        driver = make_driver(tmp_path)
        driver.run_shard(0)
        first_events, _ = EventLedger(driver.run_dir / LEDGER_NAME).read()

        rerun = RunDriver.open(driver.run_dir)
        rerun.engine.recorder = Recorder()
        report = rerun.run_shard(0)
        assert report.all_cached
        events, _ = EventLedger(driver.run_dir / LEDGER_NAME).read()
        assert len(events) > len(first_events)  # append-only, both flushes
        hits = sum(event["value"] for event in events
                   if event["name"] == "cache.points_hit")
        assert hits == 2
        summary = json.loads(
            (driver.run_dir / SUMMARY_NAME).read_text(encoding="utf-8"))
        assert summary["counters"]["cache.points_hit"] == 2

    def test_resumed_chunks_counter(self, tmp_path, chunk_hook):
        # Poison the *first* chunk of the 4 dB point: its offset-2 sibling
        # still completes, leaving a gap the resume must skip over.
        chunk_hook(_poison(4.0, 0))
        driver = make_driver(tmp_path)
        with pytest.raises(RuntimeError):
            driver.run_shard(0, max_workers=2)
        chunk_hook(None)
        resumed = RunDriver.open(driver.run_dir)
        resumed.engine.recorder = Recorder()
        report = resumed.run_pending()
        assert report.chunks_simulated == 1  # only the poisoned chunk
        events, _ = EventLedger(driver.run_dir / LEDGER_NAME).read()
        resumed_chunks = sum(event["value"] for event in events
                             if event["name"] == "cache.chunks_resumed")
        assert resumed_chunks == 1  # the beyond-the-gap chunk was reused


class TestCrashLedger:
    def test_faulted_shard_still_flushes_a_valid_partial_ledger(
            self, tmp_path, chunk_hook):
        chunk_hook(_poison(4.0, 2))
        driver = make_driver(tmp_path)
        with pytest.raises(RuntimeError, match="injected chunk fault"):
            driver.run_shard(0, max_workers=2)
        events, corrupt = EventLedger(driver.run_dir / LEDGER_NAME).read()
        assert corrupt == 0
        for event in events:
            validate_event(event)
        names = [event["name"] for event in events]
        assert "chunk.run" in names              # harvested sibling spans
        assert "chunks.failed" in names          # the failure was counted
        # The envelope span records the failure instead of vanishing.
        (envelope,) = [event for event in events
                       if event["name"] == "driver.run_shard"]
        assert envelope["attrs"].get("failed") is True
        assert (driver.run_dir / SUMMARY_NAME).exists()

    def test_recovery_after_crash_completes_and_appends(self, tmp_path,
                                                        chunk_hook):
        reference = make_driver(tmp_path, name="ref", telemetry=False)
        reference.run_shard(0)

        chunk_hook(_poison(4.0, 2))
        crashed = make_driver(tmp_path)
        with pytest.raises(RuntimeError):
            crashed.run_shard(0, max_workers=2)
        crash_events, _ = EventLedger(crashed.run_dir / LEDGER_NAME).read()

        chunk_hook(None)
        resumed = RunDriver.open(crashed.run_dir)
        resumed.engine.recorder = Recorder()
        resumed.run_pending()
        assert resumed.is_complete
        assert resumed.merge() == reference.merge()
        events, corrupt = EventLedger(crashed.run_dir / LEDGER_NAME).read()
        assert corrupt == 0
        assert len(events) > len(crash_events)


class TestFailureLogging:
    def test_failed_chunk_identity_is_logged(self, engine_factory,
                                             chunk_hook, caplog):
        from repro.sim import SweepPoint
        chunk_hook(_poison(4.0, 2))
        engine = engine_factory(seed=6)
        prototypes, rows, _ = engine._chunk_plan(
            [(SweepPoint(ebn0_db=2.0), 4, 0),
             (SweepPoint(ebn0_db=4.0), 4, 0)], 16, 2)
        with caplog.at_level(logging.ERROR, logger="repro.sim.engine"):
            records, failure = engine._execute_chunks(prototypes, rows, 0, 2)
        assert isinstance(failure, RuntimeError)
        (message,) = [record.getMessage() for record in caplog.records
                      if "chunk failed" in record.getMessage()]
        digest = engine.point_digest(SweepPoint(ebn0_db=4.0))[:12]
        assert digest in message
        assert "offset 2" in message
        assert "awgn" in message
        assert "4 dB" in message

    def test_serial_failure_is_logged_too(self, engine_factory, chunk_hook,
                                          caplog):
        from repro.sim import SweepPoint
        chunk_hook(_poison(2.0, 0))
        engine = engine_factory(seed=6)
        prototypes, rows, _ = engine._chunk_plan(
            [(SweepPoint(ebn0_db=2.0), 4, 0)], 16, 2)
        with caplog.at_level(logging.ERROR, logger="repro.sim.engine"):
            records, failure = engine._execute_chunks(prototypes, rows,
                                                      0, None)
        assert isinstance(failure, RuntimeError)
        assert any("chunk failed" in record.getMessage()
                   and "offset 0" in record.getMessage()
                   for record in caplog.records)

    def test_failure_note_names_the_chunk(self, engine_factory, chunk_hook):
        import sys
        if sys.version_info < (3, 11):
            pytest.skip("exception notes need Python 3.11+")
        from repro.sim import SweepPoint
        chunk_hook(_poison(4.0, 2))
        engine = engine_factory(seed=6)
        prototypes, rows, _ = engine._chunk_plan(
            [(SweepPoint(ebn0_db=4.0), 4, 0)], 16, 2)
        _, failure = engine._execute_chunks(prototypes, rows, 0, 2)
        (note,) = failure.__notes__
        assert "failed chunk(s)" in note
        assert "offset 2" in note


class TestShardProgress:
    def test_progress_reflects_store_state(self, tmp_path, chunk_hook):
        chunk_hook(_poison(4.0, 2))
        driver = make_driver(tmp_path, telemetry=False)
        with pytest.raises(RuntimeError):
            driver.run_shard(0, max_workers=2)
        chunk_hook(None)
        progress = RunDriver.open(driver.run_dir).shard_progress()
        entry = progress[0]
        assert entry["status"] == "partial"
        assert entry["points_total"] == 2
        assert entry["points_measured"] == 1   # the 2 dB point completed
        assert entry["chunks_stored"] == 3     # 2 clean + 1 of the faulted
        assert entry["packets_stored"] == 6

    def test_progress_when_done(self, tmp_path):
        driver = make_driver(tmp_path, telemetry=False)
        driver.run_shard(0)
        entry = driver.shard_progress()[0]
        assert entry == {"status": "done", "points_measured": 2,
                         "points_total": 2, "chunks_stored": 4,
                         "packets_stored": 8}
