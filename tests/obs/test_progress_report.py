"""The live progress line and the ledger report renderer."""

import io

import pytest

from repro.core.metrics import BERPoint
from repro.obs.ledger import EventLedger, LEDGER_NAME
from repro.obs.progress import ProgressLine
from repro.obs.recorder import Recorder
from repro.obs.report import load_run_events, render_report


def measurement(packets=4):
    return BERPoint(ebn0_db=4.0, bit_errors=1, total_bits=packets * 16,
                    packets_sent=packets, packets_failed=1)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestProgressLine:
    def make(self, points_total=3, min_interval_s=0.0):
        stream = io.StringIO()
        clock = FakeClock()
        line = ProgressLine(points_total=points_total, stream=stream,
                            clock=clock, min_interval_s=min_interval_s)
        return line, stream, clock

    def test_full_run_rendering(self):
        line, stream, clock = self.make(points_total=2)
        line.plan(4, packets_cached=0)
        clock.advance(1.0)
        for offset in (0, 2, 4, 6):
            line.chunk(None, offset, measurement(2))
        line.point(None, measurement(8), source="simulated")
        line.point(None, measurement(8), source="simulated")
        line.close()
        rendered = line.render()
        assert "4/4 chunks" in rendered
        assert "2/2 points" in rendered
        assert "8 pkt/s" in rendered
        assert stream.getvalue().endswith(rendered + "\n")
        assert "\r" in stream.getvalue()

    def test_cache_share(self):
        line, _, clock = self.make(points_total=2)
        line.plan(1, packets_cached=6)
        clock.advance(1.0)
        line.chunk(None, 0, measurement(2))
        line.point(None, measurement(6), source="cached")
        line.point(None, measurement(8), source="simulated")
        assert "cache 75%" in line.render()  # 6 of 8 packets from cache

    def test_all_cached_run_has_no_throughput(self):
        line, _, _ = self.make(points_total=1)
        line.plan(0, packets_cached=4)
        line.point(None, measurement(4), source="cached")
        rendered = line.render()
        assert "0/0 chunks" in rendered
        assert "pkt/s" not in rendered
        assert "cache 100%" in rendered

    def test_rate_limiting(self):
        stream = io.StringIO()
        clock = FakeClock()
        line = ProgressLine(points_total=1, stream=stream, clock=clock,
                            min_interval_s=10.0)
        line.plan(8)
        first = stream.getvalue()
        for offset in range(4):
            line.chunk(None, offset, measurement(1))  # all inside 10 s
        assert stream.getvalue() == first  # suppressed
        line.close()  # forced final render
        assert "4/8 chunks" in stream.getvalue()

    def test_close_is_idempotent(self):
        line, stream, _ = self.make()
        line.close()
        once = stream.getvalue()
        line.close()
        assert stream.getvalue() == once


def ledger_events():
    """A deterministic synthetic ledger via a fake-clocked recorder."""
    ticks = iter(float(i) for i in range(1000))
    recorder = Recorder(clock=lambda: next(ticks) * 0.01,
                        time_source=lambda: 7.0)
    for index, (scenario, offset) in enumerate(
            [("awgn", 0), ("awgn", 4), ("cm1", 0), ("cm1", 4)]):
        with recorder.span("chunk.run", point=f"digest{index:02d}",
                           scenario=scenario, ebn0_db=6.0,
                           packet_offset=offset, packets=4,
                           backend="fullstack"):
            pass
    with recorder.span("engine.chunk_plan", jobs=2):
        pass
    recorder.counter("store.chunks_added", 4)
    recorder.gauge("pool.workers", 2)
    return recorder.drain()


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(ledger_events())
        assert "spans" in text
        assert "chunk.run" in text
        assert "chunk latency (4 chunk(s))" in text
        assert "throughput by scenario" in text
        assert "awgn" in text and "cm1" in text
        assert "slowest 4 chunk(s)" in text
        assert "digest00" in text
        assert "counters" in text
        assert "store.chunks_added" in text
        assert "gauges" in text
        assert "pool.workers" in text
        assert text.endswith("\n")

    def test_top_k_limits_slowest_table(self):
        text = render_report(ledger_events(), top_k=2)
        assert "slowest 2 chunk(s)" in text

    def test_no_chunk_spans_degrades_gracefully(self):
        recorder = Recorder(clock=iter(range(100)).__next__,
                            time_source=lambda: 1.0)
        recorder.counter("cache.points_hit", 3)
        text = render_report(recorder.drain())
        assert "counters" in text
        assert "chunk latency" not in text
        assert "throughput" not in text

    def test_empty_ledger(self):
        assert "no events" in render_report([])

    def test_identical_durations_collapse_to_one_bucket(self):
        recorder = Recorder(clock=iter(
            [0.0, 1.0, 2.0, 3.0]).__next__, time_source=lambda: 1.0)
        for _ in range(2):
            with recorder.span("chunk.run", scenario="awgn", packets=1):
                pass
        text = render_report(recorder.drain())
        assert "chunk latency (2 chunk(s))" in text


class TestLoadRunEvents:
    def test_round_trip(self, tmp_path):
        events = ledger_events()
        EventLedger(tmp_path / LEDGER_NAME).append(events)
        loaded, corrupt = load_run_events(tmp_path)
        assert corrupt == 0
        assert len(loaded) == len(events)

    def test_missing_ledger_mentions_telemetry_flag(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--telemetry"):
            load_run_events(tmp_path)
