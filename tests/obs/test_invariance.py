"""Telemetry must be bitwise invisible: on/off runs are identical.

The hard contract of :mod:`repro.obs` (see ``docs/architecture.md``):
attaching a :class:`~repro.obs.recorder.Recorder` to an engine changes
*nothing* about the results — not the per-point counts, not the
per-packet error vectors, not the config digest (hence not the store
keys) — across backends and scheduling modes.
"""

import pytest

from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.runs import RunDriver
from repro.sim import SweepEngine, sweep_grid

INVARIANCE_MATRIX = [
    ("packet", None),
    ("packet", 2),
    ("fullstack", None),
    ("fullstack", 2),
    ("batch", None),
    ("batch", 2),
]


@pytest.mark.parametrize("backend,workers", INVARIANCE_MATRIX)
def test_results_identical_with_and_without_telemetry(
        engine_factory, backend, workers):
    grid = sweep_grid([3.0, 6.0])
    kwargs = dict(num_packets=6, payload_bits_per_packet=24,
                  max_workers=workers, collect_errors_per_packet=True,
                  chunk_packets=3)
    plain = engine_factory(seed=37, backend=backend).run(grid, **kwargs)
    recorder = Recorder()
    traced = engine_factory(seed=37, backend=backend,
                            recorder=recorder).run(grid, **kwargs)
    assert traced.entries == plain.entries
    assert traced.errors_per_packet == plain.errors_per_packet
    # And the recorder actually saw the run (it is invisible, not inert).
    assert recorder.counter_totals()["chunks.scheduled"] == 4
    assert recorder.span_stats()["chunk.run"]["count"] == 4


def test_config_digest_excludes_the_recorder(engine_factory):
    plain = engine_factory(seed=5)
    traced = engine_factory(seed=5, recorder=Recorder())
    assert traced.config_digest() == plain.config_digest()
    for point in sweep_grid([2.0, 4.0]):
        assert traced.point_digest(point) == plain.point_digest(point)


def test_engine_defaults_to_the_null_recorder(engine_factory):
    assert engine_factory().recorder is NULL_RECORDER


def test_disabled_engine_run_records_nothing(engine_factory):
    engine = engine_factory(seed=2)
    engine.run(sweep_grid([4.0]), num_packets=2,
               payload_bits_per_packet=16)
    assert engine.recorder.events() == ()


def test_store_contents_identical_with_and_without_telemetry(tmp_path):
    grid = sweep_grid([2.0, 4.0])

    def run(name, recorder):
        engine = SweepEngine(seed=13, chunk_packets=2, recorder=recorder)
        driver = RunDriver.create(tmp_path / name, engine, grid,
                                  num_packets=4,
                                  payload_bits_per_packet=16)
        driver.run_shard(0, max_workers=2)
        return driver

    plain = run("plain", None)
    traced = run("traced", Recorder())
    assert traced.merge() == plain.merge()
    # Identical store keys AND identical chunk records on disk.
    plain_store = plain.store_for_shard(0)
    traced_store = traced.store_for_shard(0)
    assert traced_store.keys() == plain_store.keys()
    for key in plain_store.keys():
        assert traced_store.chunks_for(key) == plain_store.chunks_for(key)
    plain_lines = sorted(
        (plain.store_dir / plain_store.writer_name).read_text().splitlines())
    traced_lines = sorted(
        (traced.store_dir
         / traced_store.writer_name).read_text().splitlines())
    assert traced_lines == plain_lines
