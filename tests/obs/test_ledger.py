"""Event schema validation, the JSONL ledger, and the summary artifact."""

import json
import os

import pytest

from repro.obs.ledger import (
    LEDGER_NAME,
    SUMMARY_NAME,
    EventLedger,
    summarize,
    validate_event,
    write_summary,
)
from repro.obs.recorder import Recorder


def make_events():
    recorder = Recorder(clock=iter(range(100)).__next__,
                        time_source=lambda: 42.0)
    with recorder.span("chunk.run", scenario="awgn", packets=4):
        pass
    recorder.counter("store.chunks_added", 3)
    recorder.gauge("pool.workers", 2)
    return recorder.drain()


def valid_event(**overrides):
    event = {"schema": 1, "kind": "counter", "name": "x", "ts": 1.0,
             "pid": 1, "attrs": {}, "value": 1}
    event.update(overrides)
    return event


class TestValidateEvent:
    def test_recorder_events_validate(self):
        for event in make_events():
            validate_event(event)

    def test_accepts_span_with_duration(self):
        validate_event(valid_event(kind="span", duration_s=0.5, value=None))

    @pytest.mark.parametrize("broken", [
        "not a dict",
        valid_event(schema=2),
        valid_event(kind="timer"),
        valid_event(name=""),
        valid_event(name=7),
        valid_event(ts="late"),
        valid_event(pid="p"),
        valid_event(attrs=None),
        valid_event(value="many"),
        {"schema": 1, "kind": "span", "name": "s", "ts": 1.0, "pid": 1,
         "attrs": {}},                                  # span, no duration
        valid_event(attrs={"bad": object()}),           # not JSON-safe
    ])
    def test_rejects_malformed(self, broken):
        with pytest.raises(ValueError):
            validate_event(broken)


class TestEventLedger:
    def test_round_trip(self, tmp_path):
        ledger = EventLedger(tmp_path / LEDGER_NAME)
        events = make_events()
        assert ledger.append(events) == len(events)
        loaded, corrupt = ledger.read()
        assert corrupt == 0
        assert loaded == json.loads(json.dumps(events))

    def test_appends_accumulate(self, tmp_path):
        ledger = EventLedger(tmp_path / LEDGER_NAME)
        ledger.append(make_events())
        ledger.append(make_events())
        loaded, _ = ledger.read()
        assert len(loaded) == 2 * len(make_events())

    def test_empty_batch_writes_nothing(self, tmp_path):
        ledger = EventLedger(tmp_path / LEDGER_NAME)
        assert ledger.append([]) == 0
        assert not ledger.path.exists()
        assert ledger.read() == ([], 0)

    def test_rejects_invalid_batch_without_partial_write(self, tmp_path):
        ledger = EventLedger(tmp_path / LEDGER_NAME)
        with pytest.raises(ValueError):
            ledger.append(make_events() + [{"schema": 99}])
        assert not ledger.path.exists()

    def test_tolerates_corrupt_and_truncated_tail(self, tmp_path):
        ledger = EventLedger(tmp_path / LEDGER_NAME)
        events = make_events()
        ledger.append(events)
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 1, "kind": "counter", "na')  # torn tail
        loaded, corrupt = ledger.read()
        assert corrupt == 1
        assert len(loaded) == len(events)

    def test_skips_schema_violations_on_read(self, tmp_path):
        ledger = EventLedger(tmp_path / LEDGER_NAME)
        ledger.append(make_events())
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(valid_event(kind="timer")) + "\n")
        loaded, corrupt = ledger.read()
        assert corrupt == 1
        assert all(event["kind"] in ("span", "counter", "gauge")
                   for event in loaded)


class TestSummarize:
    def test_aggregates_all_kinds(self):
        events = [
            valid_event(kind="span", name="s", duration_s=1.0),
            valid_event(kind="span", name="s", duration_s=3.0),
            valid_event(kind="counter", name="c", value=2),
            valid_event(kind="counter", name="c", value=5),
            valid_event(kind="gauge", name="g", value=9),
            valid_event(kind="gauge", name="g", value=4),
        ]
        summary = summarize(events)
        assert summary["events"] == 6
        span = summary["spans"]["s"]
        assert span["count"] == 2
        assert span["total_s"] == pytest.approx(4.0)
        assert span["min_s"] == pytest.approx(1.0)
        assert span["max_s"] == pytest.approx(3.0)
        assert span["mean_s"] == pytest.approx(2.0)
        assert summary["counters"] == {"c": 7}
        assert summary["gauges"]["g"] == {"last": 4.0, "max": 9.0}

    def test_empty(self):
        summary = summarize([])
        assert summary["events"] == 0
        assert summary["spans"] == {}
        assert summary["counters"] == {}
        assert summary["gauges"] == {}

    def test_write_summary_is_valid_json(self, tmp_path):
        path = tmp_path / SUMMARY_NAME
        returned = write_summary(path, make_events())
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == json.loads(json.dumps(returned))
        assert on_disk["events"] == len(make_events())
        assert not [name for name in os.listdir(tmp_path)
                    if name != SUMMARY_NAME], "temp file left behind"
