"""Recorder, NullRecorder and the active-recorder pattern."""

import time

import pytest

import repro.obs.recorder as recorder_module
from repro.obs.recorder import (
    EVENT_SCHEMA_VERSION,
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    activate,
    active,
)


class FakeClock:
    """A deterministic, call-counting stand-in for ``time.perf_counter``."""

    def __init__(self, step: float = 1.0):
        self.step = step
        self.calls = 0
        self.now = 0.0

    def __call__(self) -> float:
        self.calls += 1
        self.now += self.step
        return self.now


def make_recorder(step: float = 1.0) -> tuple[Recorder, FakeClock]:
    clock = FakeClock(step)
    return Recorder(clock=clock, time_source=lambda: 123.0), clock


class TestRecorder:
    def test_span_records_duration_and_attrs(self):
        recorder, clock = make_recorder(step=0.5)
        with recorder.span("work", scenario="awgn", packets=4):
            pass
        (event,) = recorder.events()
        assert event["schema"] == EVENT_SCHEMA_VERSION
        assert event["kind"] == "span"
        assert event["name"] == "work"
        assert event["ts"] == 123.0
        assert event["duration_s"] == pytest.approx(0.5)
        assert event["attrs"] == {"scenario": "awgn", "packets": 4}
        assert clock.calls == 2  # enter + exit, nothing else

    def test_span_marks_failure_and_propagates(self):
        recorder, _ = make_recorder()
        with pytest.raises(RuntimeError, match="boom"):
            with recorder.span("work"):
                raise RuntimeError("boom")
        (event,) = recorder.events()
        assert event["attrs"] == {"failed": True}

    def test_counters_and_gauges(self):
        recorder, _ = make_recorder()
        recorder.counter("hits")
        recorder.counter("hits", 4)
        recorder.counter("bytes", 100)
        recorder.gauge("workers", 2)
        recorder.gauge("workers", 5)
        assert recorder.counter_totals() == {"hits": 5, "bytes": 100}
        assert recorder.gauge_values() == {"workers": 5}

    def test_span_stats(self):
        recorder, _ = make_recorder(step=1.0)
        for _ in range(3):
            with recorder.span("work"):
                pass
        stats = recorder.span_stats()["work"]
        assert stats["count"] == 3
        assert stats["total_s"] == pytest.approx(3.0)
        assert stats["min_s"] == stats["max_s"] == pytest.approx(1.0)
        assert stats["mean_s"] == pytest.approx(1.0)

    def test_drain_and_absorb_round_trip(self):
        worker, _ = make_recorder()
        worker.counter("done", 2)
        with worker.span("task"):
            pass
        shipped = worker.drain()
        assert worker.events() == ()
        parent, _ = make_recorder()
        parent.absorb(shipped)
        parent.absorb([])  # a no-op batch
        assert parent.counter_totals() == {"done": 2}
        assert parent.span_stats()["task"]["count"] == 1

    def test_clear(self):
        recorder, _ = make_recorder()
        recorder.counter("x")
        recorder.clear()
        assert recorder.events() == ()

    def test_render_prom(self):
        recorder, _ = make_recorder(step=0.25)
        recorder.counter("store.chunks_added", 3)
        recorder.gauge("pool.workers", 4)
        with recorder.span("chunk.run"):
            pass
        text = recorder.render_prom()
        assert "# TYPE repro_store_chunks_added_total counter" in text
        assert "repro_store_chunks_added_total 3" in text
        assert "# TYPE repro_pool_workers gauge" in text
        assert "repro_pool_workers 4" in text
        assert "# TYPE repro_chunk_run_seconds summary" in text
        assert "repro_chunk_run_seconds_count 1" in text
        assert "repro_chunk_run_seconds_sum 0.25" in text
        assert text.endswith("\n")

    def test_render_prom_empty(self):
        recorder, _ = make_recorder()
        assert recorder.render_prom() == ""

    def test_events_are_json_safe(self):
        import json
        recorder, _ = make_recorder()
        recorder.counter("c", 1, label="x")
        recorder.gauge("g", 2.5)
        with recorder.span("s", packets=3):
            pass
        json.dumps(recorder.drain())  # must not raise


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False
        assert Recorder().enabled is True

    def test_every_method_is_inert(self):
        null = NullRecorder()
        with null.span("work", attr=1):
            null.counter("c")
            null.gauge("g", 2)
        null.absorb([{"kind": "counter"}])
        null.clear()
        assert null.events() == ()
        assert null.drain() == []
        assert null.counter_totals() == {}
        assert null.gauge_values() == {}
        assert null.span_stats() == {}
        assert null.render_prom() == ""

    def test_span_reuses_one_shared_context_manager(self):
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b", x=1)

    def test_null_recorder_never_reads_a_clock(self, monkeypatch):
        # The bitwise-invisibility contract: the disabled path performs
        # zero clock reads.  Poison both clocks — any read would raise.
        def poisoned(*args, **kwargs):
            raise AssertionError("NullRecorder read a clock")
        monkeypatch.setattr(time, "perf_counter", poisoned)
        monkeypatch.setattr(time, "time", poisoned)
        null = NullRecorder()
        with null.span("work"):
            null.counter("c")
            null.gauge("g", 1)
        assert null.drain() == []


class TestActiveRecorder:
    def test_defaults_to_null(self):
        assert active() is NULL_RECORDER

    def test_activate_installs_and_restores(self):
        recorder = Recorder()
        with activate(recorder) as installed:
            assert installed is recorder
            assert active() is recorder
        assert active() is NULL_RECORDER

    def test_activate_is_reentrant(self):
        outer, inner = Recorder(), Recorder()
        with activate(outer):
            with activate(inner):
                assert active() is inner
            assert active() is outer
        assert active() is NULL_RECORDER

    def test_activate_none_is_null(self):
        with activate(None):
            assert active() is NULL_RECORDER

    def test_activate_restores_on_exception(self):
        recorder = Recorder()
        with pytest.raises(RuntimeError):
            with activate(recorder):
                raise RuntimeError
        assert active() is NULL_RECORDER

    def test_leaf_code_records_into_the_active_recorder(self):
        recorder = Recorder()
        with activate(recorder):
            recorder_module.active().counter("leaf.hit", 2)
        assert recorder.counter_totals() == {"leaf.hit": 2}
