"""Tests for baseband pulse shapes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pulses.shapes import (
    Pulse,
    gaussian_derivative_pulse,
    gaussian_doublet,
    gaussian_monocycle,
    gaussian_pulse,
    rectangular_pulse,
    root_raised_cosine_pulse,
    sigma_for_bandwidth,
    sinc_pulse,
)
from repro.pulses.spectrum import bandwidth_at_level
from repro.utils import dsp

SAMPLE_RATE = 4e9


class TestPulseContainer:
    def test_basic_properties(self):
        pulse = Pulse(np.ones(8), 2e9, name="test")
        assert pulse.num_samples == 8
        assert pulse.duration_s == pytest.approx(4e-9)
        assert pulse.energy == pytest.approx(8.0)
        assert pulse.peak_amplitude == pytest.approx(1.0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Pulse(np.ones((2, 2)), 1e9)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Pulse(np.ones(4), 0.0)

    def test_normalized_energy(self):
        pulse = Pulse(np.array([1.0, 2.0, 3.0]), 1e9)
        assert pulse.normalized_energy(5.0).energy == pytest.approx(5.0)

    def test_normalized_peak(self):
        pulse = Pulse(np.array([1.0, -4.0]), 1e9)
        assert pulse.normalized_peak(1.0).peak_amplitude == pytest.approx(1.0)

    def test_scaled(self):
        pulse = Pulse(np.ones(4), 1e9)
        assert pulse.scaled(3.0).peak_amplitude == pytest.approx(3.0)

    def test_time_axis(self):
        pulse = Pulse(np.ones(4), 2e9)
        assert pulse.time_axis()[1] == pytest.approx(0.5e-9)


class TestGaussianPulse:
    def test_peak_amplitude(self):
        pulse = gaussian_pulse(500e6, SAMPLE_RATE, amplitude=0.15)
        assert pulse.peak_amplitude == pytest.approx(0.15, rel=1e-6)

    def test_bandwidth_close_to_requested(self):
        # The "500 MHz bandwidth" refers to the two-sided (passband) width;
        # the one-sided -10 dB bandwidth of the real baseband pulse is half.
        pulse = gaussian_pulse(500e6, SAMPLE_RATE)
        _, _, bw = bandwidth_at_level(
            np.pad(pulse.waveform, 2048), SAMPLE_RATE, level_db=-10.0,
            nperseg=4096)
        assert 150e6 < bw < 400e6

    def test_symmetry(self):
        pulse = gaussian_pulse(500e6, SAMPLE_RATE)
        wave = pulse.waveform
        assert np.allclose(wave, wave[::-1], atol=1e-12)

    def test_sigma_for_bandwidth_monotone(self):
        assert sigma_for_bandwidth(1e9) < sigma_for_bandwidth(500e6)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            gaussian_pulse(0.0, SAMPLE_RATE)

    def test_duration_scales_with_truncation(self):
        short = gaussian_pulse(500e6, SAMPLE_RATE, truncation_sigmas=3.0)
        long = gaussian_pulse(500e6, SAMPLE_RATE, truncation_sigmas=6.0)
        assert long.duration_s > short.duration_s


class TestDerivativePulses:
    def test_monocycle_has_zero_mean(self):
        pulse = gaussian_monocycle(500e6, SAMPLE_RATE)
        assert abs(np.sum(pulse.waveform)) < 1e-6 * np.sum(np.abs(pulse.waveform))

    def test_doublet_is_even_symmetric(self):
        pulse = gaussian_doublet(500e6, SAMPLE_RATE)
        wave = pulse.waveform
        assert np.allclose(wave, wave[::-1], atol=1e-9)

    def test_monocycle_is_odd_symmetric(self):
        pulse = gaussian_monocycle(500e6, SAMPLE_RATE)
        wave = pulse.waveform
        assert np.allclose(wave, -wave[::-1], atol=1e-9)

    def test_order_zero_is_gaussian(self):
        d0 = gaussian_derivative_pulse(0, 500e6, SAMPLE_RATE)
        g = gaussian_pulse(500e6, SAMPLE_RATE)
        assert np.allclose(d0.waveform, g.waveform / g.peak_amplitude, atol=1e-9)

    def test_higher_order_moves_spectral_peak_up(self):
        def peak_frequency(pulse):
            padded = np.pad(pulse.waveform, 4096)
            freqs, psd = dsp.estimate_psd(padded, SAMPLE_RATE, nperseg=4096)
            return freqs[np.argmax(psd)]
        f1 = peak_frequency(gaussian_derivative_pulse(1, 500e6, SAMPLE_RATE))
        f3 = peak_frequency(gaussian_derivative_pulse(3, 500e6, SAMPLE_RATE))
        assert f3 > f1

    def test_negative_order_raises(self):
        with pytest.raises(ValueError):
            gaussian_derivative_pulse(-1, 500e6, SAMPLE_RATE)


class TestOtherShapes:
    def test_rectangular_duration(self):
        pulse = rectangular_pulse(10e-9, 1e9)
        assert pulse.num_samples == 10

    def test_rrc_peak_at_center(self):
        pulse = root_raised_cosine_pulse(500e6, SAMPLE_RATE)
        assert np.argmax(np.abs(pulse.waveform)) == pulse.num_samples // 2

    def test_rrc_invalid_rolloff(self):
        with pytest.raises(ValueError):
            root_raised_cosine_pulse(500e6, SAMPLE_RATE, rolloff=1.5)

    def test_sinc_bandwidth(self):
        # One-sided width of the real baseband sinc is about half the
        # requested two-sided bandwidth.
        pulse = sinc_pulse(500e6, SAMPLE_RATE)
        _, _, bw = bandwidth_at_level(np.pad(pulse.waveform, 2048),
                                      SAMPLE_RATE, level_db=-10.0,
                                      nperseg=4096)
        assert 150e6 < bw < 500e6

    def test_sinc_invalid_span(self):
        with pytest.raises(ValueError):
            sinc_pulse(500e6, SAMPLE_RATE, span_lobes=0)


class TestProperties:
    @given(st.floats(min_value=2e8, max_value=2e9))
    @settings(max_examples=20)
    def test_gaussian_energy_positive_and_finite(self, bandwidth):
        pulse = gaussian_pulse(bandwidth, 8e9)
        assert 0 < pulse.energy < np.inf

    @given(st.integers(min_value=0, max_value=5))
    @settings(max_examples=12)
    def test_derivative_peak_normalized(self, order):
        pulse = gaussian_derivative_pulse(order, 500e6, SAMPLE_RATE,
                                          amplitude=1.0)
        assert pulse.peak_amplitude == pytest.approx(1.0, rel=1e-9)
