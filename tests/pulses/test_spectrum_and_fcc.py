"""Tests for spectral analysis, the FCC mask, and modulated pulses."""

import numpy as np
import pytest

from repro.constants import (
    FCC_EIRP_LIMIT_DBM_PER_MHZ,
    FIG4_AMPLITUDE_V,
    FIG4_CARRIER_HZ,
)
from repro.pulses.fcc_mask import (
    check_mask_compliance,
    fcc_indoor_mask_dbm_per_mhz,
    in_band_average_psd_dbm_per_mhz,
    max_compliant_scale,
    psd_dbm_per_mhz,
)
from repro.pulses.modulated import fig4_prototype_pulse, modulated_gaussian_pulse
from repro.pulses.shapes import gaussian_pulse
from repro.pulses.spectrum import (
    bandwidth_at_level,
    fractional_bandwidth,
    is_uwb_signal,
    summarize_spectrum,
)


class TestFCCMask:
    def test_in_band_limit(self):
        assert fcc_indoor_mask_dbm_per_mhz(5e9) == pytest.approx(
            FCC_EIRP_LIMIT_DBM_PER_MHZ)

    def test_gps_band_is_most_protected(self):
        assert fcc_indoor_mask_dbm_per_mhz(1.2e9) == pytest.approx(-75.3)

    def test_below_960mhz(self):
        assert fcc_indoor_mask_dbm_per_mhz(500e6) == pytest.approx(-41.3)

    def test_above_band(self):
        assert fcc_indoor_mask_dbm_per_mhz(11e9) == pytest.approx(-51.3)

    def test_array_input(self):
        freqs = np.array([1.2e9, 5e9, 11e9])
        mask = fcc_indoor_mask_dbm_per_mhz(freqs)
        assert mask.shape == freqs.shape
        assert mask[1] == pytest.approx(-41.3)

    def test_mask_monotone_segments(self):
        # Inside 3.1-10.6 GHz the mask is flat at the in-band limit.
        freqs = np.linspace(3.2e9, 10.5e9, 50)
        assert np.all(fcc_indoor_mask_dbm_per_mhz(freqs) == -41.3)


class TestCompliance:
    def _pulse_train_waveform(self, amplitude):
        # A repetitive pulse waveform at complex baseband, 2 GS/s.
        pulse = gaussian_pulse(500e6, 2e9, amplitude=amplitude)
        single = pulse.waveform.astype(complex)
        period = np.zeros(40, dtype=complex)
        period[:single.size] += single[:40]
        return np.tile(period, 100)

    def test_small_signal_compliant(self):
        waveform = self._pulse_train_waveform(1e-4)
        report = check_mask_compliance(waveform, 2e9, carrier_hz=5e9)
        assert report.compliant
        assert report.worst_margin_db > 0

    def test_large_signal_not_compliant(self):
        waveform = self._pulse_train_waveform(10.0)
        report = check_mask_compliance(waveform, 2e9, carrier_hz=5e9)
        assert not report.compliant

    def test_max_compliant_scale_produces_compliance(self):
        waveform = self._pulse_train_waveform(1.0)
        scale = max_compliant_scale(waveform, 2e9, carrier_hz=5e9)
        report = check_mask_compliance(waveform * scale, 2e9, carrier_hz=5e9)
        assert report.compliant

    def test_psd_units_scale_with_power(self):
        waveform = self._pulse_train_waveform(1.0)
        _, psd1 = psd_dbm_per_mhz(waveform, 2e9)
        _, psd2 = psd_dbm_per_mhz(waveform * 10.0, 2e9)
        # 20 dB more amplitude -> 20 dB more PSD.
        assert np.median(psd2 - psd1) == pytest.approx(20.0, abs=0.5)

    def test_in_band_average(self):
        waveform = self._pulse_train_waveform(1e-3)
        value = in_band_average_psd_dbm_per_mhz(waveform, 2e9, carrier_hz=5e9)
        assert np.isfinite(value)

    def test_margin_at_lookup(self):
        waveform = self._pulse_train_waveform(1e-4)
        report = check_mask_compliance(waveform, 2e9, carrier_hz=5e9)
        assert np.isfinite(report.margin_at(5e9))


class TestSpectrumSummary:
    def test_gaussian_pulse_is_uwb(self):
        pulse = gaussian_pulse(600e6, 4e9)
        padded = np.pad(pulse.waveform, 4096)
        assert is_uwb_signal(padded, 4e9)

    def test_narrowband_tone_is_not_uwb(self):
        t = np.arange(16384) / 4e9
        tone = np.sin(2 * np.pi * 1e9 * t)
        assert not is_uwb_signal(tone, 4e9, carrier_hz=0.0)

    def test_bandwidth_at_level_requires_negative_level(self):
        with pytest.raises(ValueError):
            bandwidth_at_level(np.ones(1024), 1e9, level_db=3.0)

    def test_summary_center_frequency_with_carrier(self):
        pulse = gaussian_pulse(500e6, 2e9)
        padded = np.pad(pulse.waveform.astype(complex), 4096)
        summary = summarize_spectrum(padded, 2e9, carrier_hz=5e9)
        assert abs(summary.center_frequency_hz - 5e9) < 0.3e9

    def test_fractional_bandwidth_decreases_with_carrier(self):
        pulse = gaussian_pulse(500e6, 2e9)
        padded = np.pad(pulse.waveform.astype(complex), 4096)
        low = fractional_bandwidth(padded, 2e9, carrier_hz=3.35e9)
        high = fractional_bandwidth(padded, 2e9, carrier_hz=10.35e9)
        assert low > high


class TestModulatedPulses:
    def test_fig4_pulse_parameters(self):
        pulse = fig4_prototype_pulse()
        assert pulse.carrier_hz == pytest.approx(FIG4_CARRIER_HZ)
        assert pulse.peak_amplitude == pytest.approx(FIG4_AMPLITUDE_V, rel=1e-6)
        # Spans the full 5.8 ns oscilloscope window.
        assert pulse.duration_s >= 5.7e-9

    def test_fig4_occupied_bandwidth(self):
        pulse = fig4_prototype_pulse()
        bw = pulse.occupied_bandwidth_hz(power_fraction=0.99)
        assert 200e6 < bw < 1.2e9

    def test_modulated_pulse_nyquist_check(self):
        with pytest.raises(ValueError):
            modulated_gaussian_pulse(5e9, 500e6, sample_rate_hz=6e9)

    def test_envelope_and_passband_lengths_match(self):
        pulse = modulated_gaussian_pulse(5e9, 500e6)
        assert pulse.passband.size == pulse.envelope.size

    def test_default_sample_rate_satisfies_nyquist(self):
        pulse = modulated_gaussian_pulse(10.35e9, 500e6)
        assert pulse.sample_rate_hz > 2 * (10.35e9 + 250e6)

    def test_spectral_peak_near_carrier(self):
        pulse = modulated_gaussian_pulse(5e9, 500e6)
        summary = summarize_spectrum(pulse.passband, pulse.sample_rate_hz)
        assert abs(summary.peak_frequency_hz - 5e9) < 0.5e9

    def test_as_pulse_wrapper(self):
        pulse = modulated_gaussian_pulse(5e9, 500e6)
        wrapped = pulse.as_pulse()
        assert wrapped.num_samples == pulse.num_samples
