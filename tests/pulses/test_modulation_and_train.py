"""Tests for modulation schemes and pulse-train generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pulses.modulation import (
    BPSKModulator,
    BinaryPPMModulator,
    OOKModulator,
    PAMModulator,
    make_modulator,
)
from repro.pulses.shapes import gaussian_pulse
from repro.pulses.train import PulseTrainConfig, PulseTrainGenerator
from repro.utils.bits import random_bits


class TestBPSK:
    def test_mapping(self):
        mod = BPSKModulator()
        assert np.array_equal(mod.modulate([0, 1, 0]), [-1.0, 1.0, -1.0])

    def test_demodulation(self):
        mod = BPSKModulator()
        assert np.array_equal(mod.demodulate([-0.3, 0.8, -2.0]), [0, 1, 0])

    def test_roundtrip(self):
        mod = BPSKModulator()
        bits = random_bits(64, np.random.default_rng(0))
        assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)

    def test_average_energy(self):
        assert BPSKModulator().average_symbol_energy() == pytest.approx(1.0)

    def test_rejects_invalid_bits(self):
        with pytest.raises(ValueError):
            BPSKModulator().modulate([0, 2])


class TestOOK:
    def test_mapping(self):
        mod = OOKModulator()
        assert np.array_equal(mod.modulate([0, 1]), [0.0, 1.0])

    def test_demodulation_threshold(self):
        mod = OOKModulator()
        assert np.array_equal(mod.demodulate([0.2, 0.8]), [0, 1])

    def test_roundtrip(self):
        mod = OOKModulator()
        bits = random_bits(64, np.random.default_rng(1))
        assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)


class TestPPM:
    def test_position_offsets(self):
        mod = BinaryPPMModulator(delta_s=2e-9)
        assert mod.position_offsets == (0.0, 2e-9)

    def test_amplitudes_are_unit(self):
        mod = BinaryPPMModulator()
        amps = mod.symbols_to_amplitudes(mod.modulate([0, 1, 1]))
        assert np.array_equal(amps, [1.0, 1.0, 1.0])

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            BinaryPPMModulator(delta_s=0.0)

    def test_demodulation_sign(self):
        mod = BinaryPPMModulator()
        assert np.array_equal(mod.demodulate([-1.0, 1.0]), [0, 1])


class TestPAM:
    def test_unit_average_energy(self):
        for order in (2, 4, 8):
            mod = PAMModulator(order=order)
            assert mod.average_symbol_energy() == pytest.approx(1.0)

    def test_bits_per_symbol(self):
        assert PAMModulator(order=4).bits_per_symbol == 2
        assert PAMModulator(order=8).bits_per_symbol == 3

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            PAMModulator(order=3)

    def test_roundtrip(self):
        mod = PAMModulator(order=4)
        bits = random_bits(200, np.random.default_rng(2))
        assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)

    def test_gray_mapping_adjacent_levels(self):
        # Adjacent amplitude levels should differ in exactly one bit.
        mod = PAMModulator(order=8)
        levels = mod.levels
        decoded = [mod.demodulate(np.array([level])) for level in levels]
        for a, b in zip(decoded[:-1], decoded[1:]):
            assert int(np.sum(np.asarray(a) != np.asarray(b))) == 1

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=4,
                    max_size=64).filter(lambda b: len(b) % 2 == 0))
    @settings(max_examples=30)
    def test_pam4_roundtrip_property(self, bits):
        mod = PAMModulator(order=4)
        assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)


class TestFactory:
    def test_known_schemes(self):
        assert make_modulator("bpsk").name == "bpsk"
        assert make_modulator("ook").name == "ook"
        assert make_modulator("ppm").name == "ppm"
        assert make_modulator("pam4").name == "pam4"
        assert make_modulator("pam", order=8).name == "pam8"

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_modulator("qam64")


class TestPulseTrainConfig:
    def test_prf_and_symbol_rate(self):
        config = PulseTrainConfig(pulse_repetition_interval_s=10e-9,
                                  pulses_per_symbol=4)
        assert config.pulse_repetition_frequency_hz == pytest.approx(100e6)
        assert config.symbol_rate_hz() == pytest.approx(25e6)

    def test_invalid_hopping_offset(self):
        with pytest.raises(ValueError):
            PulseTrainConfig(pulse_repetition_interval_s=10e-9,
                             time_hopping_codes=(15e-9,))


class TestPulseTrainGenerator:
    def _generator(self, pulses_per_symbol=1, pri=10e-9):
        pulse = gaussian_pulse(500e6, 2e9)
        config = PulseTrainConfig(pulse_repetition_interval_s=pri,
                                  pulses_per_symbol=pulses_per_symbol)
        return PulseTrainGenerator(pulse, config, BPSKModulator())

    def test_output_length(self):
        gen = self._generator(pulses_per_symbol=2)
        train = gen.generate_from_bits([1, 0, 1])
        assert train.waveform.size == 3 * gen.samples_per_symbol

    def test_polarity_follows_bits(self):
        gen = self._generator()
        train = gen.generate_from_bits([1, 0])
        spc = gen.samples_per_pulse_interval
        first = train.waveform[:spc]
        second = train.waveform[spc:2 * spc]
        assert np.max(first) > abs(np.min(first))      # positive pulse
        assert abs(np.min(second)) > np.max(second)    # negative pulse

    def test_energy_scales_with_pulses_per_symbol(self):
        bits = [1, 1, 0, 1]
        e1 = np.sum(self._generator(1).generate_from_bits(bits).waveform ** 2)
        e4 = np.sum(self._generator(4).generate_from_bits(bits).waveform ** 2)
        assert e4 == pytest.approx(4 * e1, rel=1e-6)

    def test_pulse_longer_than_pri_raises(self):
        pulse = gaussian_pulse(100e6, 2e9)   # ~39 ns long
        config = PulseTrainConfig(pulse_repetition_interval_s=10e-9)
        with pytest.raises(ValueError):
            PulseTrainGenerator(pulse, config, BPSKModulator())

    def test_template_unit_energy(self):
        gen = self._generator()
        template = gen.template()
        assert np.sum(np.abs(template) ** 2) == pytest.approx(1.0)

    def test_data_rate(self):
        gen = self._generator(pulses_per_symbol=1, pri=10e-9)
        assert gen.data_rate_bps() == pytest.approx(100e6)

    def test_time_hopping_moves_pulses(self):
        pulse = gaussian_pulse(500e6, 2e9)
        config = PulseTrainConfig(pulse_repetition_interval_s=20e-9,
                                  pulses_per_symbol=1,
                                  time_hopping_codes=(0.0, 5e-9))
        gen = PulseTrainGenerator(pulse, config, BPSKModulator())
        train = gen.generate_from_bits([1, 1])
        spc = gen.samples_per_pulse_interval
        peak0 = np.argmax(train.waveform[:spc])
        peak1 = np.argmax(train.waveform[spc:2 * spc])
        shift_samples = int(round(5e-9 * 2e9))
        assert peak1 - peak0 == pytest.approx(shift_samples, abs=1)

    def test_ppm_train_shifts_pulse(self):
        pulse = gaussian_pulse(500e6, 2e9)
        config = PulseTrainConfig(pulse_repetition_interval_s=20e-9)
        mod = BinaryPPMModulator(delta_s=4e-9)
        gen = PulseTrainGenerator(pulse, config, mod)
        train = gen.generate_from_bits([0, 1])
        spc = gen.samples_per_pulse_interval
        peak0 = np.argmax(np.abs(train.waveform[:spc]))
        peak1 = np.argmax(np.abs(train.waveform[spc:2 * spc]))
        assert peak1 - peak0 == pytest.approx(int(4e-9 * 2e9), abs=1)
