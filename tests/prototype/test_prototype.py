"""Tests for the discrete prototype platform and the modulation comparison."""

import numpy as np
import pytest

from repro.channel.multipath import two_ray_channel
from repro.prototype.comparison import ModulationComparison
from repro.prototype.platform import DiscretePrototypePlatform
from repro.pulses.spectrum import bandwidth_at_level
from repro.utils import dsp


class TestPlatform:
    def test_bandlimits_arbitrary_waveform(self, rng):
        platform = DiscretePrototypePlatform(dac_bits=None)
        wideband = rng.standard_normal(8192) + 1j * rng.standard_normal(8192)
        shaped = platform.shape_baseband(wideband)
        _, _, bw = bandwidth_at_level(shaped, platform.baseband_rate_hz,
                                      level_db=-10.0, nperseg=2048)
        assert bw <= 700e6

    def test_dac_quantization_changes_waveform(self, rng):
        fine = DiscretePrototypePlatform(dac_bits=None)
        coarse = DiscretePrototypePlatform(dac_bits=4)
        x = rng.standard_normal(2048) + 1j * rng.standard_normal(2048)
        assert not np.allclose(fine.shape_baseband(x), coarse.shape_baseband(x))

    def test_reference_pulse_bandwidth(self):
        platform = DiscretePrototypePlatform()
        pulse = platform.reference_pulse()
        padded = np.pad(pulse, 2048)
        _, _, bw = bandwidth_at_level(padded, platform.baseband_rate_hz,
                                      level_db=-10.0, nperseg=4096)
        assert 250e6 < bw < 800e6

    def test_passband_output_matches_fig4(self):
        platform = DiscretePrototypePlatform()
        output = platform.generate_passband(platform.reference_pulse(),
                                            amplitude=0.15)
        assert output.peak_amplitude == pytest.approx(0.15, rel=1e-6)
        assert output.carrier_hz == pytest.approx(5e9)

    def test_loopback_noise_level(self, rng):
        platform = DiscretePrototypePlatform(dac_bits=None)
        pulse = platform.reference_pulse()
        received = platform.loopback(pulse, snr_db=20.0, rng=rng)
        noise = received - platform.shape_baseband(pulse)
        snr = 10 * np.log10(dsp.signal_power(platform.shape_baseband(pulse))
                            / dsp.signal_power(noise))
        assert snr == pytest.approx(20.0, abs=2.0)

    def test_loopback_with_channel(self, rng):
        platform = DiscretePrototypePlatform(dac_bits=None)
        pulse = platform.reference_pulse()
        channel = two_ray_channel(4e-9, relative_gain_db=-3.0)
        received = platform.loopback(pulse, snr_db=None, channel=channel)
        assert received.size == platform.shape_baseband(pulse).size

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            DiscretePrototypePlatform(bandwidth_hz=3e9, baseband_rate_hz=2e9)


class TestModulationComparison:
    def test_bpsk_close_to_theory(self, rng):
        comparison = ModulationComparison(rng=rng)
        result = comparison.run_scheme("bpsk", [8.0], num_bits=3000)
        assert result.measured_ber[0] <= 5 * max(result.theoretical_ber[0],
                                                 1e-4)

    def test_bpsk_better_than_ook(self, rng):
        comparison = ModulationComparison(rng=rng)
        results = comparison.run_all(["bpsk", "ook"], [6.0], num_bits=3000)
        assert results["bpsk"].measured_ber[0] <= results["ook"].measured_ber[0]

    def test_ber_decreases_with_ebn0(self, rng):
        comparison = ModulationComparison(rng=rng)
        result = comparison.run_scheme("bpsk", [0.0, 9.0], num_bits=3000)
        assert result.measured_ber[1] <= result.measured_ber[0]

    def test_pam4_runs(self, rng):
        comparison = ModulationComparison(rng=rng)
        result = comparison.run_scheme("pam4", [14.0], num_bits=2000)
        assert result.measured_ber[0] < 0.3

    def test_ppm_runs(self, rng):
        comparison = ModulationComparison(rng=rng)
        result = comparison.run_scheme("ppm", [10.0], num_bits=2000)
        assert result.measured_ber[0] < 0.1
