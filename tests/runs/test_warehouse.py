"""Warehouse suite: ETL migration, compaction/GC, queries, validation.

The two acceptance criteria from the warehouse PR are pinned here:

* migrating a populated JSONL store to SQLite yields a **bit-identical
  lookup for every key** (multi-run, multi-escalation), and
* ``store gc`` never removes a chunk that any live ``(key,
  num_packets)`` lookup depends on.

Plus the fault-injection end-to-end: a :class:`repro.runs.RunDriver`
run on the SQLite backend that loses a chunk mid-shard resumes by
re-running exactly the missing chunk and merges bit-identical to an
unfaulted run on the JSONL backend.
"""

import pytest

from store_contract import make_point

import repro.sim.engine as engine_module
from repro.core.metrics import BERPoint
from repro.runs import (ResultStore, RunDriver, RunManifest, gc_store,
                        measurement_key, migrate_run, migrate_store,
                        query_store, validate_store)
from repro.runs.store import SQLITE_FILENAME, detect_store_format
from repro.sim import SweepEngine, sweep_grid


def _all_lookups(store, keys, max_packets=64):
    """Every (key, num_packets) -> lookup answer, the equivalence probe."""
    return {(key, requested): store.lookup(key, requested)
            for key in keys for requested in range(1, max_packets + 1)}


# ----------------------------------------------------------------------
# ETL: JSONL -> SQLite migration
# ----------------------------------------------------------------------
class TestMigration:
    def _populated_run(self, run_dir):
        """A run with escalated (multi-chunk) keys plus a second run's
        shard file in the same store (a foreign config digest)."""
        grid = sweep_grid([2.0, 4.0])
        engine = SweepEngine(seed=11, chunk_packets=3)
        RunDriver.create(run_dir, engine, grid, num_packets=6,
                         payload_bits_per_packet=16).run_shard(0)
        driver = RunDriver.create(run_dir, engine, grid, num_packets=9,
                                  payload_bits_per_packet=16)
        driver.run_shard(0)  # escalation: every key now holds 3 chunks
        other = ResultStore(run_dir / "store", writer_name="other.jsonl")
        foreign = measurement_key("f" * 64, "d" * 64, 16)
        other.add_chunks([
            (foreign, 0, make_point(ebn0_db=3.0, packets_sent=4,
                                    total_bits=64, bit_errors=1)),
            (foreign, 4, make_point(ebn0_db=3.0, packets_sent=4,
                                    total_bits=64, bit_errors=2,
                                    packets_failed=2))])
        return grid, driver, foreign

    def test_migrated_lookups_bit_identical_for_every_key(self, tmp_path):
        run_dir = tmp_path / "run"
        grid, driver, foreign = self._populated_run(run_dir)
        source = ResultStore(run_dir / "store")
        keys = source.keys()
        assert len(keys) == len(grid) + 1
        assert all(len(source.chunks_for(key)) >= 2 for key in keys)
        before_lookups = _all_lookups(source, keys)
        before_chunks = {key: source.chunks_for(key) for key in keys}
        before_merge = driver.merge()

        report = migrate_run(run_dir)
        assert report.chunks_copied == report.chunks > 0
        assert "manifest store_format set to sqlite" in report.summary()

        assert RunManifest.load(run_dir).store_format == "sqlite"
        migrated = ResultStore.open(run_dir / "store")
        assert migrated.format == "sqlite"
        assert migrated.keys() == keys
        assert _all_lookups(migrated, keys) == before_lookups
        assert {key: migrated.chunks_for(key)
                for key in keys} == before_chunks
        migrated.close()

        # The migrated run re-opens on the sqlite backend and a re-run
        # is pure cache hits with a bit-identical merge.
        rerun = RunDriver.create(run_dir,
                                 SweepEngine(seed=11, chunk_packets=3),
                                 grid, num_packets=9,
                                 payload_bits_per_packet=16)
        assert rerun.manifest.store_format == "sqlite"
        assert rerun.run_shard(0).all_cached
        assert rerun.merge() == before_merge

    def test_migrate_run_populates_query_metadata(self, tmp_path):
        run_dir = tmp_path / "run"
        grid, driver, _ = self._populated_run(run_dir)
        migrate_run(run_dir)
        store = ResultStore.open(run_dir / "store")
        try:
            assert [run["name"] for run in store.registered_runs()] \
                == [driver.manifest.name]
            result = query_store(
                store, config_digest=driver.manifest.config_digest)
            assert len(result.entries) == len(grid)
            assert result.curves() == driver.merge().curves()
        finally:
            store.close()

    def test_dry_run_writes_nothing(self, tmp_path):
        run_dir = tmp_path / "run"
        self._populated_run(run_dir)
        report = migrate_run(run_dir, dry_run=True)
        assert report.dry_run
        assert report.chunks_copied == report.chunks > 0
        assert "would copy" in report.summary()
        assert not (run_dir / "store" / SQLITE_FILENAME).exists()
        assert RunManifest.load(run_dir).store_format == "jsonl"

    def test_migration_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        key = measurement_key("a" * 64, "c" * 64, 64)
        store.add_chunk(key, 0, make_point())
        first = migrate_store(tmp_path)
        assert (first.chunks_copied, first.chunks_already) == (1, 0)
        again = migrate_store(tmp_path)
        assert (again.chunks_copied, again.chunks_already) == (0, 1)
        rediff = migrate_store(tmp_path, dry_run=True)
        assert (rediff.chunks_copied, rediff.chunks_already) == (0, 1)

    def test_remove_jsonl_after_verification(self, tmp_path):
        store = ResultStore(tmp_path)
        key = measurement_key("a" * 64, "c" * 64, 64)
        store.add_chunk(key, 0, make_point())
        report = migrate_store(tmp_path, remove_jsonl=True)
        assert report.removed_files == 1
        assert not list(tmp_path.glob("*.jsonl"))
        assert detect_store_format(tmp_path) == "sqlite"
        assert ResultStore.open(tmp_path).lookup(key, 10) == make_point()


# ----------------------------------------------------------------------
# Compaction / garbage collection
# ----------------------------------------------------------------------
class TestGarbageCollection:
    def _store_with_runs(self, directory):
        """Four keys across two registered runs (plus one orphan key)."""
        store = ResultStore.open(directory, format="sqlite")
        keys = {name: measurement_key(name * 32, "c" * 64, 64)
                for name in ("aa", "bb", "cc", "dd")}
        for index, key in enumerate(sorted(keys.values())):
            store.add_chunks([
                (key, 0, make_point(bit_errors=index + 1)),
                (key, 10, make_point(bit_errors=index + 2,
                                     packets_failed=2)),
                (key, 20, make_point(bit_errors=index, packets_failed=0))])
        store.register_run("old", "g1" * 32, 30,
                           [keys["aa"], keys["bb"]])
        store.register_run("new", "g2" * 32, 30,
                           [keys["bb"], keys["cc"]])
        return store, keys

    def test_gc_requires_sqlite(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="store migrate"):
            gc_store(store)

    def test_compaction_never_changes_a_live_lookup(self, tmp_path):
        store, keys = self._store_with_runs(tmp_path)
        before = _all_lookups(store, store.keys())
        report = gc_store(store)  # no retention policy: everything live
        assert report.keys_dropped == 0
        assert report.chunks_compacted == 4 * 3
        assert _all_lookups(store, store.keys()) == before
        # The prefix is now one pooled row per key.
        for key in keys.values():
            assert store.chunks_for(key) == {0: 30}

    def test_keep_runs_drops_only_dead_keys(self, tmp_path):
        store, keys = self._store_with_runs(tmp_path)
        live_keys = (keys["bb"], keys["cc"])
        before = _all_lookups(store, live_keys)
        report = gc_store(store, keep_runs=1)
        # "aa" (only the old run) and "dd" (no run at all) are gone;
        # every lookup a retained run depends on is untouched.
        assert report.keys_dropped == 2
        assert report.runs_dropped == 1
        assert store.keys() == tuple(sorted(live_keys))
        assert _all_lookups(store, live_keys) == before
        assert store.lookup(keys["aa"], 1) is None
        assert [run["name"] for run in store.registered_runs()] == ["new"]

    def test_protected_keys_survive_retention(self, tmp_path):
        store, keys = self._store_with_runs(tmp_path)
        report = gc_store(store, keep_runs=1,
                          protected_keys=[keys["dd"]])
        assert report.keys_dropped == 1  # only "aa"
        assert keys["dd"] in store.keys()

    def test_dry_run_reports_without_writing(self, tmp_path):
        store, keys = self._store_with_runs(tmp_path)
        before = _all_lookups(store, store.keys())
        report = gc_store(store, keep_runs=1, dry_run=True)
        assert report.dry_run
        assert report.keys_dropped == 2
        assert "would drop" in report.summary()
        store.reload()
        assert len(store.keys()) == 4
        assert _all_lookups(store, store.keys()) == before

    def test_stranded_chunks_kept_by_default(self, tmp_path):
        store = ResultStore.open(tmp_path, format="sqlite")
        key = measurement_key("a" * 64, "c" * 64, 64)
        store.add_chunk(key, 0, make_point())
        store.add_chunk(key, 20, make_point())  # beyond the gap
        gc_store(store)
        assert store.chunks_for(key) == {0: 10, 20: 10}
        report = gc_store(store, drop_stranded=True)
        assert report.stranded_dropped == 1
        assert store.chunks_for(key) == {0: 10}
        assert store.lookup(key, 10) == make_point()

    def test_gc_reclaims_disk_space(self, tmp_path):
        store, _ = self._store_with_runs(tmp_path)
        report = gc_store(store, keep_runs=1)
        assert report.bytes_before > 0
        assert report.bytes_after < report.bytes_before

    def test_empty_registry_keeps_every_key(self, tmp_path):
        store = ResultStore.open(tmp_path, format="sqlite")
        key = measurement_key("a" * 64, "c" * 64, 64)
        store.add_chunk(key, 0, make_point())
        report = gc_store(store, keep_runs=1)
        assert report.keys_dropped == 0
        assert store.lookup(key, 10) == make_point()


# ----------------------------------------------------------------------
# Cross-run queries
# ----------------------------------------------------------------------
class TestQuery:
    def _queryable_run(self, tmp_path):
        grid = sweep_grid([2.0, 4.0, 6.0])
        driver = RunDriver.create(tmp_path / "run", SweepEngine(seed=7),
                                  grid, num_packets=6,
                                  payload_bits_per_packet=16,
                                  store_format="sqlite")
        driver.run_shard(0)
        return grid, driver, driver.open_store()

    def test_query_requires_sqlite(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="store migrate"):
            query_store(store)

    def test_unfiltered_query_matches_driver_merge(self, tmp_path):
        grid, driver, store = self._queryable_run(tmp_path)
        try:
            result = query_store(store)
            assert len(result.entries) == len(grid)
            assert result.curves() == driver.merge().curves()
            assert "3 point(s)" in result.summary()
        finally:
            store.close()

    def test_filters_narrow_the_result(self, tmp_path):
        grid, driver, store = self._queryable_run(tmp_path)
        try:
            banded = query_store(store, ebn0_min=3.0, ebn0_max=5.0)
            assert [entry["ebn0_db"] for entry in banded.entries] == [4.0]
            scenario = query_store(store, scenarios=["awgn"],
                                   modulations=["bpsk"])
            assert len(scenario.entries) == len(grid)
            assert query_store(store, scenarios=["cm1"]).entries == ()
            prefix = query_store(
                store, config_digest=driver.manifest.config_digest[:12])
            assert len(prefix.entries) == len(grid)
            assert query_store(store, config_digest="0123abc").entries == ()
            assert query_store(store, min_packets=7).entries == ()
        finally:
            store.close()

    def test_query_pools_escalations_across_reruns(self, tmp_path):
        grid, driver, store = self._queryable_run(tmp_path)
        store.close()
        escalated = RunDriver.create(tmp_path / "run", SweepEngine(seed=7),
                                     grid, num_packets=10,
                                     payload_bits_per_packet=16)
        escalated.run_shard(0)
        store = escalated.open_store()
        try:
            result = query_store(store)
            assert all(entry["measurement"].packets_sent == 10
                       for entry in result.entries)
            assert result.curves() == escalated.merge().curves()
        finally:
            store.close()


# ----------------------------------------------------------------------
# Escalation-consistency validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_consistent_store_is_clean(self, tmp_path):
        store = ResultStore.open(tmp_path, format="sqlite")
        key = measurement_key("a" * 64, "c" * 64, 64)
        store.add_chunks([
            (key, 0, make_point(bit_errors=5, total_bits=6400,
                                packets_sent=100)),
            (key, 100, make_point(bit_errors=6, total_bits=6400,
                                  packets_sent=100))])
        assert validate_store(store) == ()

    def test_inconsistent_chunk_is_flagged(self, tmp_path):
        store = ResultStore.open(tmp_path, format="sqlite")
        key = measurement_key("a" * 64, "c" * 64, 64)
        clean = measurement_key("b" * 64, "c" * 64, 64)
        store.add_chunks([
            (key, 0, make_point(bit_errors=5, total_bits=64000,
                                packets_sent=1000)),
            (key, 1000, make_point(bit_errors=4800, total_bits=64000,
                                   packets_sent=1000,
                                   packets_failed=900)),
            (clean, 0, make_point(bit_errors=3, total_bits=64000,
                                  packets_sent=1000)),
            (clean, 1000, make_point(bit_errors=4, total_bits=64000,
                                     packets_sent=1000))])
        findings = validate_store(store)
        # The test is symmetric: both of the impossible pair flag, the
        # consistent key stays silent.
        assert {finding.key for finding in findings} == {key}
        assert {finding.packet_offset
                for finding in findings} == {0, 1000}
        worst = findings[0]
        assert worst.p_value < 1e-6
        assert key[:12] in worst.describe()

    def test_single_chunk_keys_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)  # works on either backend
        key = measurement_key("a" * 64, "c" * 64, 64)
        store.add_chunk(key, 0, make_point(bit_errors=640,
                                           total_bits=640,
                                           packets_failed=10))
        assert validate_store(store) == ()


# ----------------------------------------------------------------------
# Fault injection end-to-end on the SQLite backend
# ----------------------------------------------------------------------
def _task_offset(task):
    """The packet offset a materialized chunk task was keyed with."""
    return task.spawn_key[4] if len(task.spawn_key) > 4 else 0


def _poison(ebn0_db, packet_offset):
    """A hook failing exactly one (point, chunk-offset) task."""
    def hook(task):
        if (task.point.ebn0_db == ebn0_db
                and _task_offset(task) == packet_offset):
            raise RuntimeError("injected chunk fault")
    return hook


@pytest.fixture
def chunk_hook(monkeypatch):
    """Install a test-only chunk fault hook (cleared on teardown)."""
    def install(hook):
        monkeypatch.setattr(engine_module, "_chunk_task_hook", hook)
    yield install
    monkeypatch.setattr(engine_module, "_chunk_task_hook", None)


class TestSQLiteFaultResume:
    def test_resume_reruns_only_missing_chunks_and_matches_jsonl(
            self, tmp_path, chunk_hook):
        grid = sweep_grid([2.0, 4.0])
        reference = RunDriver.create(tmp_path / "ref",
                                     SweepEngine(seed=11, chunk_packets=3),
                                     grid, num_packets=9,
                                     payload_bits_per_packet=16,
                                     store_format="jsonl")
        reference.run_shard(0)

        chunk_hook(_poison(4.0, 3))
        faulted = RunDriver.create(tmp_path / "run",
                                   SweepEngine(seed=11, chunk_packets=3),
                                   grid, num_packets=9,
                                   payload_bits_per_packet=16,
                                   store_format="sqlite")
        with pytest.raises(RuntimeError, match="injected chunk fault"):
            faulted.run_shard(0, max_workers=2)
        assert faulted.pending_shards() == (0,)

        # Every completed chunk was committed before the failure
        # propagated: the whole clean point plus the faulted point's
        # survivors are durable rows in the warehouse.
        store = faulted.open_store()
        key_clean = faulted._key_for(grid[0])
        key_faulted = faulted._key_for(grid[1])
        assert store.chunks_for(key_clean) == {0: 3, 3: 3, 6: 3}
        assert store.chunks_for(key_faulted) == {0: 3, 6: 3}
        store.close()

        chunk_hook(None)
        resumed = RunDriver.open(tmp_path / "run")
        assert resumed.manifest.store_format == "sqlite"
        report = resumed.run_pending(max_workers=2)
        # Exactly the one missing chunk is simulated on resume, and the
        # merged sweep is bit-identical to the unfaulted JSONL run.
        assert report.chunks_simulated == 1
        assert report.packets_simulated == 3
        assert resumed.is_complete
        assert resumed.merge() == reference.merge()


# ----------------------------------------------------------------------
# Single-writer enforcement: a locked warehouse fails loudly and
# actionably, not with sqlite3's bare "database is locked"
# ----------------------------------------------------------------------
class TestStoreLocked:
    def test_concurrent_writer_gets_actionable_error(self, tmp_path):
        import sqlite3

        from repro.runs.warehouse import SQLiteResultStore, StoreLockedError

        store = SQLiteResultStore(tmp_path, busy_timeout_s=0.2)
        point = make_point()  # a 10-packet chunk
        key = measurement_key("d" * 64, "c" * 64, 64)
        store.add_chunk(key, 0, point)

        # A competing writer holds the write lock outside our control.
        intruder = sqlite3.connect(store.database_path)
        intruder.execute("BEGIN IMMEDIATE")
        try:
            with pytest.raises(StoreLockedError) as excinfo:
                store.add_chunk(key, 10, point)
            message = str(excinfo.value)
            assert str(tmp_path) in message
            assert "single-writer" in message
            assert "repro serve" in message
        finally:
            intruder.rollback()
            intruder.close()

        # Once the intruder releases the lock, writes flow again.
        store.add_chunk(key, 10, point)
        assert store.coverage(key) == 20
        store.close()
