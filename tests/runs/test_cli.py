"""Tests for the ``python -m repro`` command line."""

import io

import pytest

from repro.runs import load_artifact
from repro.runs.cli import (
    main,
    parse_adc_bits_axis,
    parse_ebn0_axis,
    parse_shard_spec,
)
from repro.sim import SweepEngine, sweep_grid


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


SWEEP_ARGS = ("sweep", "--ebn0", "4:8:2", "--packets", "4",
              "--payload-bits", "32")


class TestParsers:
    def test_ebn0_range_is_inclusive(self):
        assert parse_ebn0_axis("0:12:1") == tuple(float(v)
                                                  for v in range(13))
        assert parse_ebn0_axis("4:8:2") == (4.0, 6.0, 8.0)
        assert parse_ebn0_axis("0:10") == tuple(float(v) for v in range(11))
        assert parse_ebn0_axis("1.5,3") == (1.5, 3.0)

    def test_ebn0_rejects_bad_specs(self):
        import argparse
        for bad in ("5:1:1", "0:10:0", "0:10:-1", "a:b:c", "nan", "1:2:3:4"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_ebn0_axis(bad)

    def test_adc_bits_axis(self):
        assert parse_adc_bits_axis("none") == (None,)
        assert parse_adc_bits_axis("1,4,none") == (1, 4, None)

    def test_shard_spec(self):
        import argparse
        assert parse_shard_spec("0/4") == (0, 4)
        assert parse_shard_spec("3/4") == (3, 4)
        for bad in ("4/4", "-1/4", "0/0", "1", "a/b"):
            with pytest.raises(argparse.ArgumentTypeError):
                parse_shard_spec(bad)


class TestSweepCommand:
    def test_sweep_then_cached_rerun(self, tmp_path):
        code, first = run_cli(*SWEEP_ARGS, "--out", str(tmp_path),
                              "--name", "demo")
        assert code == 0
        assert "3 simulated, 0 cached" in first
        assert "run complete" in first

        code, second = run_cli(*SWEEP_ARGS, "--out", str(tmp_path),
                               "--name", "demo")
        assert code == 0
        assert "0 simulated, 3 cached" in second
        assert "all points served from cache" in second

    def test_auto_name_is_digest_stable(self, tmp_path):
        code, first = run_cli(*SWEEP_ARGS, "--out", str(tmp_path))
        code, second = run_cli(*SWEEP_ARGS, "--out", str(tmp_path))
        assert "0 simulated, 3 cached" in second
        runs = [path.name for path in tmp_path.iterdir()]
        assert len(runs) == 1 and runs[0].startswith("sweep-")

    def test_packet_escalation_tops_up_cache(self, tmp_path):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        # Same grid, higher --packets: only the missing tails simulate.
        code, out = run_cli("sweep", "--ebn0", "4:8:2", "--packets", "10",
                            "--payload-bits", "32", "--out", str(tmp_path),
                            "--name", "demo")
        assert code == 0
        assert "10 packets/point" in out
        assert "3 simulated, 0 cached" in out
        assert "18 packets simulated in 3 chunk(s), " \
               "12 served from cache" in out
        code, out = run_cli("merge", "--run", str(tmp_path / "demo"))
        assert "merged 3 of 3 point(s)" in out

    def test_conflicting_reuse_fails_cleanly(self, tmp_path, capsys):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        code, _ = run_cli("sweep", "--ebn0", "0:2:2", "--packets", "4",
                          "--out", str(tmp_path), "--name", "demo")
        assert code == 2
        assert "different run" in capsys.readouterr().err


class TestShardedFlow:
    def test_shard_resume_merge_show(self, tmp_path):
        base = SWEEP_ARGS + ("--out", str(tmp_path), "--name", "sharded",
                             "--seed", "7")
        code, out = run_cli(*base, "--shard", "1/3")
        assert code == 0
        assert "shard 1/3" in out
        assert "pending shard(s): 0, 2" in out

        code, out = run_cli("resume", "--run", str(tmp_path / "sharded"))
        assert code == 0
        assert "shard 0/3" in out and "shard 2/3" in out
        assert "run complete: all 3 shard(s) done" in out

        code, out = run_cli("merge", "--run", str(tmp_path / "sharded"))
        assert code == 0
        assert "merged 3 of 3 point(s)" in out
        artifact = load_artifact(
            tmp_path / "sharded" / "artifacts" / "sharded.json")
        assert artifact.metadata["seed"] == 7
        assert artifact.metadata["num_shards"] == 3

        # The CLI-merged artifact is bit-identical to an in-process
        # unsharded engine run of the same grid.
        engine = SweepEngine(generation="gen2", seed=7)
        direct = engine.run(sweep_grid((4.0, 6.0, 8.0)), num_packets=4,
                            payload_bits_per_packet=32)
        assert artifact.curves["awgn/bpsk"].points == \
            direct.curve().points

        code, out = run_cli("show", "--run", str(tmp_path / "sharded"))
        assert code == 0
        assert "coverage  : 3/3 point(s) measured" in out
        assert out.count(": done") == 3

    def test_resume_when_complete_is_noop(self, tmp_path):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        code, out = run_cli("resume", "--run", str(tmp_path / "demo"))
        assert code == 0
        assert "nothing to resume" in out


class TestMergeCommand:
    def test_partial_merge_needs_flag(self, tmp_path, capsys):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "partial",
                "--shard", "0/2")
        code, _ = run_cli("merge", "--run", str(tmp_path / "partial"))
        assert code == 2
        assert "not fully measured" in capsys.readouterr().err
        code, out = run_cli("merge", "--run", str(tmp_path / "partial"),
                            "--allow-partial")
        assert code == 0
        assert "merged 2 of 3 point(s)" in out


class TestErrors:
    def test_missing_run_directory(self, tmp_path, capsys):
        code, _ = run_cli("show", "--run", str(tmp_path / "nope"))
        assert code == 2
        assert "no run manifest" in capsys.readouterr().err


class TestObservability:
    CHUNKED = SWEEP_ARGS + ("--chunk-packets", "2")

    def test_telemetry_sweep_report_and_show(self, tmp_path):
        run_dir = tmp_path / "demo"
        code, out = run_cli(*self.CHUNKED, "--out", str(tmp_path),
                            "--name", "demo", "--telemetry")
        assert code == 0
        assert "3 simulated, 0 cached" in out
        assert f"python -m repro report {run_dir}" in out
        assert (run_dir / "events.jsonl").is_file()
        assert (run_dir / "telemetry.json").is_file()

        code, out = run_cli("report", str(run_dir))
        assert code == 0
        assert "chunk.run" in out
        assert "chunk latency (6 chunk(s))" in out
        assert "throughput by scenario" in out
        assert "store.chunks_added" in out

        code, out = run_cli("report", str(run_dir), "--top", "2")
        assert code == 0
        assert "slowest 2 chunk(s)" in out

        code, out = run_cli("show", "--run", str(run_dir))
        assert code == 0
        assert "store     : 6 chunk(s) holding 12 packet(s)" in out
        assert "shard   0 : done (3/3 point(s), 6 chunk(s), " \
               "12 packet(s))" in out
        assert "telemetry : events.jsonl present" in out

    def test_telemetry_results_match_plain_run(self, tmp_path):
        run_cli(*self.CHUNKED, "--out", str(tmp_path), "--name", "plain")
        run_cli(*self.CHUNKED, "--out", str(tmp_path), "--name", "traced",
                "--telemetry", "--workers", "2")
        _, plain = run_cli("merge", "--run", str(tmp_path / "plain"))
        _, traced = run_cli("merge", "--run", str(tmp_path / "traced"))
        # Same curves line for line; only the artifact paths differ.
        assert plain.splitlines()[1:] == traced.splitlines()[1:]

    def test_telemetry_off_writes_no_ledger(self, tmp_path):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        assert not (tmp_path / "demo" / "events.jsonl").exists()
        code, out = run_cli("show", "--run", str(tmp_path / "demo"))
        assert code == 0
        assert "telemetry" not in out

    def test_progress_draws_on_stderr(self, tmp_path, capsys):
        code, out = run_cli(*self.CHUNKED, "--out", str(tmp_path),
                            "--name", "demo", "--progress")
        assert code == 0
        err = capsys.readouterr().err
        assert "6/6 chunks" in err
        assert "3/3 points" in err
        assert "\r" in err and err.endswith("\n")
        assert "chunks" not in out  # progress never pollutes stdout

    def test_resume_accepts_telemetry_and_progress(self, tmp_path, capsys):
        run_cli(*self.CHUNKED, "--out", str(tmp_path), "--name", "demo",
                "--shard", "0/2")
        code, out = run_cli("resume", "--run", str(tmp_path / "demo"),
                            "--telemetry", "--progress")
        assert code == 0
        assert "run complete" in out
        assert "python -m repro report" in out
        assert (tmp_path / "demo" / "events.jsonl").is_file()
        assert "points" in capsys.readouterr().err

    def test_report_without_ledger_fails_cleanly(self, tmp_path, capsys):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        code, _ = run_cli("report", str(tmp_path / "demo"))
        assert code == 2
        assert "--telemetry" in capsys.readouterr().err


class TestWarehouseCLI:
    def test_sqlite_sweep_caches_and_matches_jsonl(self, tmp_path):
        code, out = run_cli(*SWEEP_ARGS, "--out", str(tmp_path),
                            "--name", "wh", "--store-format", "sqlite")
        assert code == 0
        assert "3 simulated, 0 cached" in out
        assert (tmp_path / "wh" / "store" / "warehouse.sqlite").is_file()

        code, out = run_cli(*SWEEP_ARGS, "--out", str(tmp_path),
                            "--name", "wh", "--store-format", "sqlite")
        assert code == 0
        assert "0 simulated, 3 cached" in out

        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "plain")
        _, sqlite_merge = run_cli("merge", "--run", str(tmp_path / "wh"))
        _, jsonl_merge = run_cli("merge", "--run", str(tmp_path / "plain"))
        # Same curves line for line; only the artifact paths differ.
        assert sqlite_merge.splitlines()[1:] == jsonl_merge.splitlines()[1:]

        code, out = run_cli("show", "--run", str(tmp_path / "wh"))
        assert code == 0
        assert "packet(s) [sqlite]" in out

    def test_existing_format_conflict_fails_cleanly(self, tmp_path, capsys):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        code, _ = run_cli(*SWEEP_ARGS, "--out", str(tmp_path),
                          "--name", "demo", "--store-format", "sqlite")
        assert code == 2
        assert "store migrate" in capsys.readouterr().err

    def test_store_migrate_run_then_cached_rerun(self, tmp_path):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        run_dir = tmp_path / "demo"

        code, out = run_cli("store", "migrate", str(run_dir), "--dry-run")
        assert code == 0
        assert "would copy 3 of 3 chunk(s)" in out
        assert not (run_dir / "store" / "warehouse.sqlite").exists()

        code, out = run_cli("store", "migrate", str(run_dir))
        assert code == 0
        assert "copied 3 of 3 chunk(s)" in out
        assert "manifest store_format set to sqlite" in out
        assert (run_dir / "store" / "warehouse.sqlite").is_file()

        # The migrated run serves the next sweep entirely from sqlite.
        code, out = run_cli(*SWEEP_ARGS, "--out", str(tmp_path),
                            "--name", "demo")
        assert code == 0
        assert "0 simulated, 3 cached" in out
        code, out = run_cli("show", "--run", str(run_dir))
        assert "packet(s) [sqlite]" in out

    def test_store_gc_compacts_migrated_run(self, tmp_path):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo",
                "--chunk-packets", "2")
        run_dir = tmp_path / "demo"
        run_cli("store", "migrate", str(run_dir))
        code, out = run_cli("store", "gc", str(run_dir),
                            "--keep-runs", "1")
        assert code == 0
        assert "dropped 0 of 3 key(s)" in out
        assert "compacted 6 chunk(s)" in out
        # Lookups survive the compaction: the re-run is still all cached.
        code, out = run_cli("sweep", "--ebn0", "4:8:2", "--packets", "4",
                            "--payload-bits", "32", "--chunk-packets", "2",
                            "--out", str(tmp_path), "--name", "demo")
        assert "0 simulated, 3 cached" in out

    def test_store_gc_requires_sqlite(self, tmp_path, capsys):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        code, _ = run_cli("store", "gc", str(tmp_path / "demo"))
        assert code == 2
        assert "store migrate" in capsys.readouterr().err

    def test_query_run_directory(self, tmp_path):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo",
                "--store-format", "sqlite")
        run_dir = tmp_path / "demo"
        code, out = run_cli("query", str(run_dir))
        assert code == 0
        assert "query matched 3 point(s) across 1 curve(s)" in out
        assert "awgn/bpsk" in out

        code, out = run_cli("query", str(run_dir), "--ebn0-min", "5",
                            "--ebn0-max", "7")
        assert "query matched 1 point(s)" in out

        code, out = run_cli("query", str(run_dir), "--scenario", "cm1")
        assert "query matched 0 point(s)" in out

        code, out = run_cli("query", str(run_dir), "--validate")
        assert "validation: all escalations consistent" in out

    def test_query_export_writes_artifact(self, tmp_path):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo",
                "--store-format", "sqlite")
        run_dir = tmp_path / "demo"
        code, out = run_cli("query", str(run_dir), "--export", "assembled")
        assert code == 0
        assert "exported" in out
        artifact = load_artifact(run_dir / "artifacts" / "assembled.json")
        assert artifact.metadata["source"] == "query"
        assert artifact.metadata["points"] == 3
        # The exported curve equals the run's own merged artifact.
        run_cli("merge", "--run", str(run_dir))
        merged = load_artifact(run_dir / "artifacts" / "demo.json")
        assert artifact.curves["awgn/bpsk"].points == \
            merged.curves["awgn/bpsk"].points

    def test_query_requires_sqlite(self, tmp_path, capsys):
        run_cli(*SWEEP_ARGS, "--out", str(tmp_path), "--name", "demo")
        code, _ = run_cli("query", str(tmp_path / "demo"))
        assert code == 2
        assert "store migrate" in capsys.readouterr().err
