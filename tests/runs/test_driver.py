"""Tests for the sharded run driver: caching, sharding, resume, merge."""

import json

import pytest

from repro.runs import ResultStore, RunDriver, RunManifest
from repro.sim import SweepEngine, sweep_grid

GRID_KWARGS = dict(num_packets=6, payload_bits_per_packet=32)


@pytest.fixture
def grid():
    return sweep_grid([2.0, 4.0, 6.0, 8.0], scenarios=("awgn",),
                      adc_bits=(None, 3))


@pytest.fixture
def engine():
    return SweepEngine(generation="gen2", seed=5)


class TestCaching:
    def test_rerun_is_pure_cache_hits(self, tmp_path, grid, engine):
        """Acceptance: an identical re-run performs zero simulation work."""
        driver = RunDriver.create(tmp_path / "run", engine, grid,
                                  **GRID_KWARGS)
        first = driver.run_shard(0)
        assert first.points_simulated == len(grid)
        assert first.points_cached == 0

        simulated = []
        again = RunDriver.create(tmp_path / "run", engine, grid,
                                 **GRID_KWARGS)
        second = again.run_shard(0, on_point=lambda point, m, source:
                                 simulated.append(source))
        assert second.all_cached
        assert second.points_cached == len(grid)
        assert second.packets_simulated == 0
        assert set(simulated) == {"cached"}
        assert again.merge() == driver.merge()

    def test_cached_results_match_plain_engine_run(self, tmp_path, grid,
                                                   engine):
        """The store must be invisible: driver results == SweepEngine.run."""
        driver = RunDriver.create(tmp_path / "run", engine, grid,
                                  **GRID_KWARGS)
        driver.run_shard(0)
        direct = engine.run(grid, **GRID_KWARGS)
        assert driver.merge() == direct

    def test_different_seed_is_a_different_cache(self, tmp_path, grid):
        RunDriver.create(tmp_path / "a", SweepEngine(seed=1), grid,
                         **GRID_KWARGS).run_shard(0)
        other = RunDriver.create(tmp_path / "a2", SweepEngine(seed=2), grid,
                                 **GRID_KWARGS)
        report = other.run_shard(0)
        assert report.points_cached == 0
        assert other.manifest.config_digest != \
            RunManifest.load(tmp_path / "a").config_digest

    def test_escalation_reuses_partial_counts(self, tmp_path, grid, engine):
        small = RunDriver.create(tmp_path / "run", engine, grid,
                                 num_packets=6, payload_bits_per_packet=32)
        small.run_shard(0)
        assert small.is_complete
        # Re-creating the same run with a bigger packet budget is
        # escalation: completion markers are invalidated, and re-running
        # simulates only each point's missing tail chunk on top of the
        # cached counts.
        big = RunDriver.create(tmp_path / "run", engine, grid,
                               num_packets=10, payload_bits_per_packet=32)
        assert big.manifest.num_packets == 10
        assert not big.is_complete
        report = big.run_shard(0)
        assert report.points_simulated == len(grid)
        assert report.packets_simulated == 4 * len(grid)
        assert report.packets_cached == 6 * len(grid)
        for _, measurement in big.merge().entries:
            assert measurement.packets_sent == 10
            assert measurement.total_bits == 10 * 32
        # Dropping back to the small budget is served by the pooled
        # cache — zero simulation work, measurements keep all 10 packets.
        again = RunDriver.create(tmp_path / "run", engine, grid,
                                 num_packets=6, payload_bits_per_packet=32)
        assert again.run_shard(0).all_cached

    def test_workers_match_serial(self, tmp_path, grid, engine):
        serial = RunDriver.create(tmp_path / "s", engine, grid,
                                  **GRID_KWARGS)
        serial.run_shard(0)
        threaded = RunDriver.create(tmp_path / "t", engine, grid,
                                    **GRID_KWARGS)
        threaded.run_shard(0, max_workers=4)
        assert serial.merge() == threaded.merge()


class TestSharding:
    def test_shard_merge_is_bit_identical_to_unsharded(self, tmp_path, grid,
                                                       engine):
        """Acceptance: a 4-shard run merges bit-for-bit with an unsharded
        one, whatever order the shards execute in."""
        unsharded = RunDriver.create(tmp_path / "one", engine, grid,
                                     **GRID_KWARGS)
        unsharded.run_shard(0)

        sharded = RunDriver.create(tmp_path / "four", engine, grid,
                                   num_shards=4, **GRID_KWARGS)
        for shard_index in (2, 0, 3, 1):   # deliberately out of order
            sharded.run_shard(shard_index)
        assert sharded.is_complete
        assert sharded.merge() == unsharded.merge()

    def test_shards_partition_the_grid(self, grid, engine, tmp_path):
        driver = RunDriver.create(tmp_path / "run", engine, grid,
                                  num_shards=3, **GRID_KWARGS)
        owned = [driver.manifest.points_for_shard(index)
                 for index in range(3)]
        flattened = [point for shard in owned for point in shard]
        assert sorted(map(repr, flattened)) == sorted(map(repr, grid))
        assert abs(len(owned[0]) - len(owned[-1])) <= 1

    def test_merge_strict_requires_all_shards(self, tmp_path, grid, engine):
        driver = RunDriver.create(tmp_path / "run", engine, grid,
                                  num_shards=4, **GRID_KWARGS)
        driver.run_shard(1)
        with pytest.raises(ValueError, match="not fully measured"):
            driver.merge()
        partial = driver.merge(strict=False)
        assert len(partial.entries) == len(
            driver.manifest.points_for_shard(1))

    def test_shard_index_out_of_range(self, tmp_path, grid, engine):
        driver = RunDriver.create(tmp_path / "run", engine, grid,
                                  num_shards=2, **GRID_KWARGS)
        with pytest.raises(ValueError, match="out of range"):
            driver.run_shard(2)


class TestResume:
    def test_crash_resume_from_partial_manifest(self, tmp_path, grid,
                                                engine):
        """Acceptance: a run that died mid-shard resumes from the manifest
        plus whatever reached the store, without redoing finished work."""
        reference = RunDriver.create(tmp_path / "ref", engine, grid,
                                     **GRID_KWARGS)
        reference.run_shard(0)

        crashed = RunDriver.create(tmp_path / "crashed", engine, grid,
                                   num_shards=2, **GRID_KWARGS)
        crashed.run_shard(0)
        # Simulate a crash in shard 1: some points reached the store, but
        # no completion marker was written.
        store = crashed.store_for_shard(1)
        for point in crashed.manifest.points_for_shard(1)[:2]:
            key = crashed._key_for(point)
            chunk = engine.measure_point(point, **GRID_KWARGS)
            store.add_chunk(key, 0, chunk)
        assert crashed.pending_shards() == (1,)
        assert crashed.shard_status() == {0: "done", 1: "partial"}

        resumed = RunDriver.open(tmp_path / "crashed")
        report = resumed.run_pending()
        assert resumed.is_complete
        assert report.points_cached == 2         # pre-crash work reused
        assert report.points_simulated == len(
            crashed.manifest.points_for_shard(1)) - 2
        assert resumed.merge() == reference.merge()

    def test_open_rebuilds_engine_from_manifest(self, tmp_path, grid):
        creator = SweepEngine(generation="gen1", seed=9, quantize=False)
        RunDriver.create(tmp_path / "run", creator, grid, **GRID_KWARGS)
        reopened = RunDriver.open(tmp_path / "run")
        assert reopened.engine.config_digest() == creator.config_digest()

    def test_open_with_custom_config_requires_engine(self, tmp_path, grid):
        from repro.core.config import Gen2Config
        engine = SweepEngine(config=Gen2Config.fast_test_config(), seed=1)
        RunDriver.create(tmp_path / "run", engine, grid, **GRID_KWARGS)
        with pytest.raises(ValueError, match="custom base config"):
            RunDriver.open(tmp_path / "run")
        reopened = RunDriver.open(tmp_path / "run", engine=engine)
        assert reopened.manifest.custom_config

    def test_mismatched_engine_refused(self, tmp_path, grid, engine):
        RunDriver.create(tmp_path / "run", engine, grid, **GRID_KWARGS)
        with pytest.raises(ValueError, match="does not match"):
            RunDriver.open(tmp_path / "run", engine=SweepEngine(seed=99))


class TestManifest:
    def test_roundtrip(self, tmp_path, grid, engine):
        driver = RunDriver.create(tmp_path / "run", engine, grid,
                                  num_shards=2, **GRID_KWARGS)
        loaded = RunManifest.load(tmp_path / "run")
        assert loaded == driver.manifest
        assert loaded.grid_digest() == driver.manifest.grid_digest()
        import repro
        assert loaded.code_version == repro.__version__

    def test_create_refuses_mismatched_existing_run(self, tmp_path, grid,
                                                    engine):
        RunDriver.create(tmp_path / "run", engine, grid, **GRID_KWARGS)
        with pytest.raises(ValueError, match="different run"):
            RunDriver.create(tmp_path / "run", engine, grid[:-1],
                             **GRID_KWARGS)
        with pytest.raises(ValueError, match="shard plan"):
            RunDriver.create(tmp_path / "run", engine, grid, num_shards=2,
                             **GRID_KWARGS)

    def test_tampered_manifest_detected(self, tmp_path, grid, engine):
        RunDriver.create(tmp_path / "run", engine, grid, **GRID_KWARGS)
        path = tmp_path / "run" / "manifest.json"
        data = json.loads(path.read_text())
        data["payload_bits_per_packet"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="digest mismatch"):
            RunManifest.load(tmp_path / "run")

    def test_corrupted_store_entry_triggers_resimulation(self, tmp_path,
                                                         grid, engine):
        driver = RunDriver.create(tmp_path / "run", engine, grid,
                                  **GRID_KWARGS)
        driver.run_shard(0)
        store_file = next((tmp_path / "run" / "store").glob("*.jsonl"))
        lines = store_file.read_text().strip().split("\n")
        store_file.write_text("\n".join(["corrupt{"] + lines[1:]) + "\n")

        again = RunDriver.create(tmp_path / "run", engine, grid,
                                 **GRID_KWARGS)
        with pytest.warns(UserWarning, match="corrupt result-store record"):
            report = again.run_shard(0)
        assert report.points_simulated == 1     # only the damaged point
        assert report.points_cached == len(grid) - 1
        with pytest.warns(UserWarning, match="corrupt result-store record"):
            merged = again.merge()              # the bad line is still there
        assert merged == engine.run(grid, **GRID_KWARGS)


class TestStoreLayout:
    def test_shards_write_disjoint_files(self, tmp_path, grid, engine):
        driver = RunDriver.create(tmp_path / "run", engine, grid,
                                  num_shards=2, **GRID_KWARGS)
        driver.run_shard(0)
        driver.run_shard(1)
        files = sorted(path.name
                       for path in (tmp_path / "run" / "store").iterdir())
        assert files == ["shard-000-of-002.jsonl", "shard-001-of-002.jsonl"]
        merged = ResultStore(tmp_path / "run" / "store")
        assert len(merged) == len(grid)
