"""The store-conformance harness, applied to every backend.

One contract (``store_contract.StoreConformanceContract``), two
backends: the append-only JSONL format and the SQLite warehouse.  Both
subclasses run the identical matrix — lookup/coverage/escalation,
atomic batch ingest, corrupt-input recovery, crash-mid-write,
concurrent readers — and the cross-format class pins the equivalence
property the migration path relies on: any interleaving of writes
produces stores that answer every query identically.
"""

import numpy as np
import pytest

from store_contract import StoreConformanceContract, make_point

from repro.runs import ResultStore, measurement_key


class TestJSONLStoreConformance(StoreConformanceContract):
    """The historical append-only JSONL backend."""

    format = "jsonl"


class TestSQLiteStoreConformance(StoreConformanceContract):
    """The WAL-mode SQLite warehouse backend."""

    format = "sqlite"


class TestCrossFormatEquivalence:
    """Random write interleavings must be observationally identical."""

    def _random_operations(self, rng, num_keys=4, num_ops=40,
                           unique_slots=False):
        keys = [measurement_key(f"{index:02d}" * 32, "c" * 64, 64)
                for index in range(num_keys)]
        # Chunks of one key all measure one operating point, so the
        # Eb/N0 is a function of the key (as it is in real stores).
        ebn0_by_key = {key: float(2.0 + 2.0 * (index % 3))
                       for index, key in enumerate(keys)}
        operations = []
        used = set()
        while len(operations) < num_ops:
            key = keys[int(rng.integers(num_keys))]
            offset = int(rng.choice([0, 5, 10, 15, 20, 40]))
            if unique_slots:
                if (key, offset) in used:
                    if len(used) == num_keys * 6:
                        break  # every slot taken
                    continue
                used.add((key, offset))
            packets = int(rng.integers(1, 8))
            errors = int(rng.integers(0, 3))
            operations.append((key, offset, make_point(
                ebn0_db=ebn0_by_key[key],
                bit_errors=errors, total_bits=packets * 64,
                packets_sent=packets, packets_failed=min(errors, packets))))
        return keys, operations

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_random_interleavings_yield_identical_stores(self, tmp_path,
                                                         seed):
        # Conflict-free operations (unique (key, offset) slots) applied
        # in a *different* random order per backend: the stores must
        # still answer every query identically — ingest order is not
        # part of the contract.
        rng = np.random.default_rng(seed)
        keys, operations = self._random_operations(rng, unique_slots=True)
        jsonl = ResultStore.open(tmp_path / "jsonl", format="jsonl")
        sqlite = ResultStore.open(tmp_path / "sqlite", format="sqlite")
        for store in (jsonl, sqlite):
            for index in rng.permutation(len(operations)):
                key, offset, measurement = operations[index]
                store.add_chunk(key, offset, measurement)
        assert jsonl.keys() == sqlite.keys()
        for key in keys:
            assert jsonl.chunks_for(key) == sqlite.chunks_for(key)
            assert jsonl.coverage(key) == sqlite.coverage(key)
            assert jsonl.pooled(key) == sqlite.pooled(key)
            for requested in (1, 5, 10, 25, 60):
                assert jsonl.lookup(key, requested) == \
                    sqlite.lookup(key, requested), (key[:8], requested)
        jsonl.close()
        sqlite.close()

    @pytest.mark.parametrize("seed", [3, 99])
    def test_same_order_interleaving_is_bit_identical(self, tmp_path, seed):
        rng = np.random.default_rng(seed)
        keys, operations = self._random_operations(rng)
        stores = {fmt: ResultStore.open(tmp_path / fmt, format=fmt)
                  for fmt in ("jsonl", "sqlite")}
        for key, offset, measurement in operations:
            outcomes = {}
            for fmt, store in stores.items():
                try:
                    store.add_chunk(key, offset, measurement)
                    outcomes[fmt] = "ok"
                except ValueError:
                    outcomes[fmt] = "conflict"
            assert outcomes["jsonl"] == outcomes["sqlite"], \
                (key[:8], offset)
        jsonl, sqlite = stores["jsonl"], stores["sqlite"]
        assert jsonl.keys() == sqlite.keys()
        for key in keys:
            assert jsonl.chunks_for(key) == sqlite.chunks_for(key)
            assert jsonl.coverage(key) == sqlite.coverage(key)
            assert jsonl.pooled(key) == sqlite.pooled(key)
            for requested in (1, 5, 10, 25, 60):
                assert jsonl.lookup(key, requested) == \
                    sqlite.lookup(key, requested), (key[:8], requested)
        # And both survive a reload with identical answers.
        for store in stores.values():
            store.reload()
        for key in keys:
            assert jsonl.chunks_for(key) == sqlite.chunks_for(key)
            assert jsonl.pooled(key) == sqlite.pooled(key)
        for store in stores.values():
            store.close()
