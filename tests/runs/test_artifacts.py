"""Tests for curve-set artifact export/load."""

import csv

import pytest

from repro.runs import RunDriver, export_curves, load_artifact
from repro.sim import SweepEngine, sweep_grid


@pytest.fixture
def result(tmp_path):
    engine = SweepEngine(seed=3)
    grid = sweep_grid([4.0, 8.0], scenarios=("awgn",), adc_bits=(None, 2))
    driver = RunDriver.create(tmp_path / "run", engine, grid, num_packets=5,
                              payload_bits_per_packet=32)
    driver.run_shard(0)
    return driver.merge()


class TestExport:
    def test_writes_csv_and_json(self, tmp_path, result):
        artifact = export_curves(result, tmp_path / "artifacts", "curves",
                                 metadata={"seed": 3})
        assert artifact.csv_path.is_file()
        assert artifact.json_path.is_file()
        with open(artifact.csv_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4           # 2 curves x 2 Eb/N0 points
        assert {row["curve"] for row in rows} == {"awgn/bpsk",
                                                  "awgn/bpsk/adc2"}
        first = rows[0]
        assert float(first["ber"]) == \
            int(first["bit_errors"]) / int(first["total_bits"])

    def test_roundtrip_preserves_curves(self, tmp_path, result):
        artifact = export_curves(result, tmp_path, "curves",
                                 metadata={"run": "demo"})
        loaded = load_artifact(artifact.json_path)
        assert loaded.metadata == {"run": "demo"}
        assert set(loaded.curves) == set(result.curves())
        for label, curve in result.curves().items():
            assert loaded.curve(label).points == curve.points

    def test_unknown_curve_label_lists_known(self, tmp_path, result):
        artifact = export_curves(result, tmp_path, "curves")
        with pytest.raises(KeyError, match="awgn/bpsk"):
            artifact.curve("nope")

    def test_rejects_path_like_names(self, tmp_path, result):
        with pytest.raises(ValueError, match="plain filename"):
            export_curves(result, tmp_path, "../escape")
        with pytest.raises(ValueError, match="plain filename"):
            export_curves(result, tmp_path, "")

    def test_load_rejects_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"artifact_version": 1, "name": "x"}')
        with pytest.raises(ValueError, match="malformed artifact"):
            load_artifact(path)
        path.write_text('{"artifact_version": 7}')
        with pytest.raises(ValueError, match="unsupported artifact"):
            load_artifact(path)
