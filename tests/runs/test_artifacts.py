"""Tests for curve-set artifact export/load."""

import csv

import pytest

from repro.runs import RunDriver, export_curves, load_artifact
from repro.sim import SweepEngine, sweep_grid


@pytest.fixture
def result(tmp_path):
    engine = SweepEngine(seed=3)
    grid = sweep_grid([4.0, 8.0], scenarios=("awgn",), adc_bits=(None, 2))
    driver = RunDriver.create(tmp_path / "run", engine, grid, num_packets=5,
                              payload_bits_per_packet=32)
    driver.run_shard(0)
    return driver.merge()


class TestExport:
    def test_writes_csv_and_json(self, tmp_path, result):
        artifact = export_curves(result, tmp_path / "artifacts", "curves",
                                 metadata={"seed": 3})
        assert artifact.csv_path.is_file()
        assert artifact.json_path.is_file()
        with open(artifact.csv_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4           # 2 curves x 2 Eb/N0 points
        assert {row["curve"] for row in rows} == {"awgn/bpsk",
                                                  "awgn/bpsk/adc2"}
        first = rows[0]
        assert float(first["ber"]) == \
            int(first["bit_errors"]) / int(first["total_bits"])

    def test_roundtrip_preserves_curves(self, tmp_path, result):
        artifact = export_curves(result, tmp_path, "curves",
                                 metadata={"run": "demo"})
        loaded = load_artifact(artifact.json_path)
        assert loaded.metadata == {"run": "demo"}
        assert set(loaded.curves) == set(result.curves())
        for label, curve in result.curves().items():
            assert loaded.curve(label).points == curve.points

    def test_unknown_curve_label_lists_known(self, tmp_path, result):
        artifact = export_curves(result, tmp_path, "curves")
        with pytest.raises(KeyError, match="awgn/bpsk"):
            artifact.curve("nope")

    def test_rejects_path_like_names(self, tmp_path, result):
        with pytest.raises(ValueError, match="plain filename"):
            export_curves(result, tmp_path, "../escape")
        with pytest.raises(ValueError, match="plain filename"):
            export_curves(result, tmp_path, "")

    def test_load_rejects_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"artifact_version": 1, "name": "x"}')
        with pytest.raises(ValueError, match="malformed artifact"):
            load_artifact(path)
        path.write_text('{"artifact_version": 7}')
        with pytest.raises(ValueError, match="unsupported artifact"):
            load_artifact(path)


class TestQuerySourcedExport:
    """Artifacts assembled from warehouse queries round-trip losslessly."""

    @pytest.fixture
    def warehouse(self, tmp_path):
        from repro.runs import query_store
        grid = sweep_grid([2.0, 4.0, 6.0], adc_bits=(None, 2))
        driver = RunDriver.create(tmp_path / "run", SweepEngine(seed=9),
                                  grid, num_packets=4,
                                  payload_bits_per_packet=16,
                                  store_format="sqlite")
        driver.run_shard(0)
        # A second, escalated run over the same warehouse: the query
        # sees the pooled multi-run coverage, not one run's slice.
        escalated = RunDriver.create(tmp_path / "run", SweepEngine(seed=9),
                                     grid, num_packets=7,
                                     payload_bits_per_packet=16)
        escalated.run_shard(0)
        store = escalated.open_store()
        yield query_store(store), escalated
        store.close()

    def test_query_result_exports_and_loads_bit_identical(self, tmp_path,
                                                          warehouse):
        result, driver = warehouse
        artifact = export_curves(result, tmp_path / "artifacts", "query",
                                 metadata={"source": "query"})
        loaded = load_artifact(artifact.json_path)
        assert loaded.metadata == {"source": "query"}
        assert set(loaded.curves) == {"awgn/bpsk", "awgn/bpsk/adc2"}
        # JSON round-trip is bit-identical to the queried measurements
        # — which are themselves the driver's merged curves.
        for label, curve in driver.merge().curves().items():
            assert loaded.curve(label).points == curve.points
            assert all(point.packets_sent == 7
                       for point in loaded.curve(label).points)

    def test_csv_rows_match_queried_points(self, tmp_path, warehouse):
        result, _ = warehouse
        artifact = export_curves(result, tmp_path, "query")
        with open(artifact.csv_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.entries) == 6
        by_key = {(row["curve"], float(row["ebn0_db"])): row
                  for row in rows}
        for entry in result.entries:
            row = by_key[(entry["label"], entry["ebn0_db"])]
            measurement = entry["measurement"]
            assert int(row["bit_errors"]) == measurement.bit_errors
            assert int(row["total_bits"]) == measurement.total_bits
            assert float(row["ber"]) == measurement.ber
