"""Cross-backend store-conformance contract (a library, not a test file).

``StoreConformanceContract`` is the executable specification of the
result-store contract — lookup/coverage/escalation semantics, atomic
multi-chunk ingest, corrupt-input recovery, crash-mid-write behaviour,
concurrent readers.  ``tests/runs/test_store_conformance.py`` subclasses
it once per backend (``format = "jsonl"`` / ``"sqlite"``), so every
backend passes the *same* suite; anything genuinely backend-specific
(how to damage a stored record, how to tear a write) is isolated in the
two ``_corrupt``/``_tear`` helpers that dispatch on ``self.format``.

The module name deliberately does not match ``test_*.py`` so pytest
never collects it directly.
"""

import json
import sqlite3
import warnings

import pytest

from repro.core.metrics import BERPoint
from repro.obs.recorder import Recorder, activate
from repro.runs import ResultStore, measurement_key
from repro.runs.store import SQLITE_FILENAME


def make_point(ebn0_db=4.0, bit_errors=3, total_bits=640, packets_sent=10,
               packets_failed=1) -> BERPoint:
    return BERPoint(ebn0_db=ebn0_db, bit_errors=bit_errors,
                    total_bits=total_bits, packets_sent=packets_sent,
                    packets_failed=packets_failed)


KEY_A = measurement_key("a" * 64, "c" * 64, 64)
KEY_B = measurement_key("b" * 64, "c" * 64, 64)


class StoreConformanceContract:
    """The store contract; subclass with ``format`` set to a backend."""

    format: str = None

    # -- backend access ------------------------------------------------
    def open_store(self, directory, writer_name="store.jsonl"):
        return ResultStore.open(directory, format=self.format,
                                writer_name=writer_name)

    def _corrupt_stored_record(self, directory, key):
        """Damage ``key``'s stored record so the loader must skip it."""
        if self.format == "jsonl":
            path = directory / "store.jsonl"
            lines = path.read_text().splitlines()
            damaged = [line if json.loads(line)["key"] != key
                       else line[: len(line) // 2]
                       for line in lines]
            path.write_text("\n".join(damaged) + "\n")
        else:
            connection = sqlite3.connect(directory / SQLITE_FILENAME)
            with connection:
                connection.execute(
                    "UPDATE chunks SET bit_errors = total_bits + 999 "
                    "WHERE key = ?", (key,))
            connection.close()

    def _tear_last_write(self, directory):
        """Simulate a crash mid-write after a successful earlier write.

        JSONL: chop the final record in half (a torn ``O_APPEND`` tail).
        SQLite: roll the database back to its pre-write state the way a
        crash before COMMIT would (transactions are all-or-nothing, so
        deleting the last-inserted row models the uncommitted write).
        """
        if self.format == "jsonl":
            path = directory / "store.jsonl"
            text = path.read_text()
            lines = text.splitlines(keepends=True)
            last = lines[-1]
            path.write_text("".join(lines[:-1]) + last[: len(last) // 2])
        else:
            connection = sqlite3.connect(directory / SQLITE_FILENAME)
            with connection:
                connection.execute(
                    "DELETE FROM chunks WHERE rowid = "
                    "(SELECT MAX(rowid) FROM chunks)")
            connection.close()

    # -- round trip ----------------------------------------------------
    def test_add_then_lookup(self, tmp_path):
        store = self.open_store(tmp_path)
        measurement = make_point()
        store.add_chunk(KEY_A, 0, measurement)
        assert store.lookup(KEY_A, 10) == measurement
        assert store.lookup(KEY_B, 10) is None
        assert KEY_A in store and KEY_B not in store
        assert store.format == self.format

    def test_persists_across_instances(self, tmp_path):
        first = self.open_store(tmp_path)
        first.add_chunk(KEY_A, 0, make_point())
        first.close()
        reloaded = self.open_store(tmp_path)
        assert reloaded.lookup(KEY_A, 10) == make_point()
        assert reloaded.corrupt_records == 0
        reloaded.close()

    def test_open_detects_format_without_argument(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point())
        store.close()
        detected = ResultStore.open(tmp_path)
        assert detected.format == self.format
        assert detected.lookup(KEY_A, 10) == make_point()
        detected.close()

    # -- coverage / escalation -----------------------------------------
    def test_lookup_misses_when_coverage_short(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(packets_sent=10))
        assert store.lookup(KEY_A, 11) is None
        assert store.coverage(KEY_A) == 10

    def test_escalation_chunks_pool(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(bit_errors=3, total_bits=640,
                                             packets_sent=10,
                                             packets_failed=1))
        store.add_chunk(KEY_A, 10, make_point(bit_errors=5, total_bits=1280,
                                              packets_sent=20,
                                              packets_failed=2))
        pooled = store.lookup(KEY_A, 30)
        assert pooled == make_point(bit_errors=8, total_bits=1920,
                                    packets_sent=30, packets_failed=3)
        # A smaller request pools the same full prefix.
        assert store.lookup(KEY_A, 10) == pooled

    def test_gap_blocks_contiguity(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(packets_sent=10))
        store.add_chunk(KEY_A, 20, make_point(packets_sent=10))
        assert store.coverage(KEY_A) == 10
        assert store.lookup(KEY_A, 20) is None
        # But the stranded chunk is visible to resume logic.
        assert store.chunks_for(KEY_A) == {0: 10, 20: 10}

    def test_keys_sorted(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_B, 0, make_point())
        store.add_chunk(KEY_A, 0, make_point())
        assert store.keys() == tuple(sorted((KEY_A, KEY_B)))
        assert len(store) == 2

    # -- write semantics -----------------------------------------------
    def test_duplicate_chunk_is_idempotent(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point())
        store.add_chunk(KEY_A, 0, make_point())
        store.reload()
        assert store.lookup(KEY_A, 10) == make_point()
        assert store.chunks_for(KEY_A) == {0: 10}

    def test_conflicting_chunk_rejected(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(bit_errors=3))
        with pytest.raises(ValueError, match="different measurement"):
            store.add_chunk(KEY_A, 0, make_point(bit_errors=4))

    def test_batch_ingest_is_atomic(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(bit_errors=3))
        batch = [(KEY_B, 0, make_point()),
                 (KEY_A, 0, make_point(bit_errors=4)),   # conflict
                 (KEY_A, 10, make_point())]
        with pytest.raises(ValueError, match="different measurement"):
            store.add_chunks(batch)
        # Nothing from the failed batch landed — in memory or on disk.
        assert KEY_B not in store
        assert store.chunks_for(KEY_A) == {0: 10}
        store.close()
        reloaded = self.open_store(tmp_path)
        assert KEY_B not in reloaded
        assert reloaded.chunks_for(KEY_A) == {0: 10}
        reloaded.close()

    def test_batch_ingest_lands_together(self, tmp_path):
        store = self.open_store(tmp_path)
        chunks = store.add_chunks([
            (KEY_A, 0, make_point()), (KEY_A, 10, make_point()),
            (KEY_B, 0, make_point(ebn0_db=8.0))])
        assert [chunk.packet_offset for chunk in chunks] == [0, 10, 0]
        store.close()
        reloaded = self.open_store(tmp_path)
        assert reloaded.chunks_for(KEY_A) == {0: 10, 10: 10}
        assert reloaded.lookup(KEY_B, 10) == make_point(ebn0_db=8.0)
        reloaded.close()

    # -- damage tolerance ----------------------------------------------
    def test_corrupt_record_skipped_counted_and_warned(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point())
        store.add_chunk(KEY_B, 0, make_point(ebn0_db=8.0))
        store.close()
        self._corrupt_stored_record(tmp_path, KEY_A)
        recorder = Recorder()
        with activate(recorder), \
                pytest.warns(UserWarning,
                             match="corrupt result-store record"):
            reloaded = self.open_store(tmp_path)
        assert reloaded.corrupt_records == 1
        assert reloaded.lookup(KEY_A, 10) is None
        assert reloaded.lookup(KEY_B, 10) == make_point(ebn0_db=8.0)
        assert recorder.counter_totals()["store.corrupt_lines"] == 1
        assert recorder.counter_breakdown("backend") \
            ["store.corrupt_lines"] == {self.format: 1}
        reloaded.close()

    def test_crash_mid_write_loses_at_most_last_record(self, tmp_path):
        store = self.open_store(tmp_path)
        store.add_chunk(KEY_A, 0, make_point())
        store.add_chunk(KEY_B, 0, make_point(ebn0_db=8.0))
        store.close()
        self._tear_last_write(tmp_path)
        with warnings.catch_warnings():
            # JSONL warns about the torn tail line; SQLite has no
            # partial record at all.
            warnings.simplefilter("ignore")
            reloaded = self.open_store(tmp_path)
        # The earlier record is intact; the torn one is gone (JSONL: a
        # skipped partial line; SQLite: an uncommitted transaction).
        assert reloaded.lookup(KEY_A, 10) == make_point()
        assert reloaded.lookup(KEY_B, 10) is None
        # The store recovers by re-simulating: re-adding works.
        reloaded.add_chunk(KEY_B, 0, make_point(ebn0_db=8.0))
        assert reloaded.lookup(KEY_B, 10) == make_point(ebn0_db=8.0)
        reloaded.close()

    # -- concurrent readers --------------------------------------------
    def test_second_reader_sees_committed_chunks(self, tmp_path):
        writer = self.open_store(tmp_path)
        writer.add_chunk(KEY_A, 0, make_point())
        reader = self.open_store(tmp_path)
        assert reader.lookup(KEY_A, 10) == make_point()
        writer.add_chunk(KEY_A, 10, make_point())
        reader.reload()
        assert reader.coverage(KEY_A) == 20
        writer.close()
        reader.close()

    # -- telemetry attribution -----------------------------------------
    def test_counters_carry_backend_attribute(self, tmp_path):
        recorder = Recorder()
        with activate(recorder):
            store = self.open_store(tmp_path)
            store.add_chunk(KEY_A, 0, make_point())
            assert store.lookup(KEY_A, 10) is not None
            assert store.lookup(KEY_B, 10) is None
            store.close()
        breakdown = recorder.counter_breakdown("backend")
        assert breakdown["store.chunks_added"] == {self.format: 1}
        assert breakdown["store.lookup_hits"] == {self.format: 1}
        assert breakdown["store.lookup_misses"] == {self.format: 1}
        # Name-keyed totals (what reports render) are unchanged.
        assert recorder.counter_totals()["store.chunks_added"] == 1
