"""Tests for the content-addressed result store."""

import json

import pytest

from repro.core.metrics import BERPoint
from repro.runs import ResultStore, StoredChunk, measurement_key


def make_point(ebn0_db=4.0, bit_errors=3, total_bits=640, packets_sent=10,
               packets_failed=1) -> BERPoint:
    return BERPoint(ebn0_db=ebn0_db, bit_errors=bit_errors,
                    total_bits=total_bits, packets_sent=packets_sent,
                    packets_failed=packets_failed)


KEY_A = measurement_key("a" * 64, "c" * 64, 64)
KEY_B = measurement_key("b" * 64, "c" * 64, 64)


class TestMeasurementKey:
    def test_key_is_content_addressed(self):
        assert KEY_A == measurement_key("a" * 64, "c" * 64, 64)
        assert KEY_A != KEY_B
        assert KEY_A != measurement_key("a" * 64, "d" * 64, 64)
        assert KEY_A != measurement_key("a" * 64, "c" * 64, 128)


class TestRoundTrip:
    def test_add_then_lookup(self, tmp_path):
        store = ResultStore(tmp_path)
        measurement = make_point()
        store.add_chunk(KEY_A, 0, measurement)
        assert store.lookup(KEY_A, 10) == measurement
        assert store.lookup(KEY_B, 10) is None
        assert KEY_A in store and KEY_B not in store

    def test_persists_across_instances(self, tmp_path):
        ResultStore(tmp_path).add_chunk(KEY_A, 0, make_point())
        reloaded = ResultStore(tmp_path)
        assert reloaded.lookup(KEY_A, 10) == make_point()
        assert reloaded.corrupt_records == 0

    def test_lookup_misses_when_coverage_short(self, tmp_path):
        store = ResultStore(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(packets_sent=10))
        assert store.lookup(KEY_A, 11) is None
        assert store.coverage(KEY_A) == 10

    def test_escalation_chunks_pool(self, tmp_path):
        store = ResultStore(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(bit_errors=3, total_bits=640,
                                             packets_sent=10,
                                             packets_failed=1))
        store.add_chunk(KEY_A, 10, make_point(bit_errors=5, total_bits=1280,
                                              packets_sent=20,
                                              packets_failed=2))
        pooled = store.lookup(KEY_A, 30)
        assert pooled == make_point(bit_errors=8, total_bits=1920,
                                    packets_sent=30, packets_failed=3)
        # A smaller request is served by the same pooled prefix.
        assert store.lookup(KEY_A, 10) == pooled

    def test_gap_blocks_contiguity(self, tmp_path):
        store = ResultStore(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(packets_sent=10))
        store.add_chunk(KEY_A, 20, make_point(packets_sent=10))
        assert store.coverage(KEY_A) == 10
        assert store.lookup(KEY_A, 20) is None

    def test_duplicate_chunk_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.add_chunk(KEY_A, 0, make_point())
        store.add_chunk(KEY_A, 0, make_point())
        store.reload()
        assert store.lookup(KEY_A, 10) == make_point()

    def test_conflicting_chunk_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.add_chunk(KEY_A, 0, make_point(bit_errors=3))
        with pytest.raises(ValueError, match="different measurement"):
            store.add_chunk(KEY_A, 0, make_point(bit_errors=4))

    def test_chunks_for_reports_every_stored_chunk(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.chunks_for(KEY_A) == {}
        store.add_chunk(KEY_A, 0, make_point(packets_sent=10))
        # A chunk beyond a coverage gap still shows up — resume logic
        # uses this map to avoid re-running it.
        store.add_chunk(KEY_A, 20, make_point(packets_sent=5))
        assert store.chunks_for(KEY_A) == {0: 10, 20: 5}
        assert store.coverage(KEY_A) == 10


class TestMultiWriter:
    def test_all_jsonl_files_load(self, tmp_path):
        """Shards appending to distinct files share one directory."""
        shard0 = ResultStore(tmp_path, writer_name="shard-0.jsonl")
        shard1 = ResultStore(tmp_path, writer_name="shard-1.jsonl")
        shard0.add_chunk(KEY_A, 0, make_point())
        shard1.add_chunk(KEY_B, 0, make_point(ebn0_db=8.0))
        merged = ResultStore(tmp_path)
        assert merged.lookup(KEY_A, 10) is not None
        assert merged.lookup(KEY_B, 10) is not None
        assert set(merged.keys()) == {KEY_A, KEY_B}

    def test_writer_name_must_be_jsonl(self, tmp_path):
        with pytest.raises(ValueError, match="jsonl"):
            ResultStore(tmp_path, writer_name="store.db")


class TestCorruptionRecovery:
    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path)
        store.add_chunk(KEY_A, 0, make_point())
        path = tmp_path / "store.jsonl"
        good_line = path.read_text()
        with open(path, "a") as handle:
            handle.write("{not json at all\n")            # garbage
            handle.write(good_line.strip()[:-8] + "\n")   # truncated record
            handle.write('{"schema": 99, "key": "x"}\n')  # wrong schema
        with open(path, "a") as handle:                   # one more good one
            handle.write(json.dumps(StoredChunk(
                key=KEY_B, packet_offset=0,
                measurement=make_point(ebn0_db=8.0)).to_record()) + "\n")
        with pytest.warns(UserWarning, match="corrupt result-store record"):
            reloaded = ResultStore(tmp_path)
        assert reloaded.corrupt_records == 3
        assert reloaded.lookup(KEY_A, 10) == make_point()
        assert reloaded.lookup(KEY_B, 10) == make_point(ebn0_db=8.0)

    def test_impossible_counts_rejected(self, tmp_path):
        record = StoredChunk(key=KEY_A, packet_offset=0,
                             measurement=make_point()).to_record()
        record["measurement"]["bit_errors"] = 10 ** 9   # > total_bits
        (tmp_path / "store.jsonl").write_text(json.dumps(record) + "\n")
        with pytest.warns(UserWarning, match="more bit errors"):
            store = ResultStore(tmp_path)
        assert store.corrupt_records == 1
        assert store.lookup(KEY_A, 1) is None

    def test_empty_directory_is_fine(self, tmp_path):
        store = ResultStore(tmp_path / "does-not-exist-yet")
        assert len(store) == 0
        store.add_chunk(KEY_A, 0, make_point())
        assert (tmp_path / "does-not-exist-yet" / "store.jsonl").is_file()
