"""Worker-death recovery: SIGKILL a leased worker, the fleet heals.

A real forked worker process takes a lease over HTTP and is killed by a
:data:`repro.sim.engine._chunk_task_hook` mid-chunk — heartbeat thread
and all, exactly like a machine dying.  The lease must lapse, the chunk
must be re-leased to a healthy worker, and the finished curve must be
bit-identical to an unfaulted local :class:`RunDriver` run.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.runs import RunDriver
from repro.serve.api import create_server
from repro.serve.broker import Broker
from repro.serve.worker import BrokerClient, Worker
from repro.sim import SweepEngine, sweep_grid

GRID = sweep_grid([2.0, 4.0])
SPEC = {"points": [{"ebn0_db": point.ebn0_db} for point in GRID],
        "num_packets": 6, "chunk_packets": 3, "seed": 11,
        "payload_bits_per_packet": 16}

LEASE_TIMEOUT_S = 0.5


def _doomed_worker(url):
    """Run one chunk, but SIGKILL ourselves the moment it starts."""
    import repro.sim.engine as engine_module

    def kill_hook(task):
        os.kill(os.getpid(), signal.SIGKILL)

    engine_module._chunk_task_hook = kill_hook
    Worker(url, name="doomed").run_one()


@pytest.fixture
def server(tmp_path):
    broker = Broker(tmp_path / "store",
                    lease_timeout_s=LEASE_TIMEOUT_S)
    server = create_server(broker)
    server.serve_in_thread()
    yield server
    server.shutdown()
    server.server_close()
    broker.close()


def test_killed_worker_lease_expires_and_chunk_reruns(server, tmp_path):
    client = BrokerClient(server.url, timeout_s=10.0)
    job = client.submit(SPEC)
    assert job["chunks_total"] == 4

    # A real separate process takes the first lease and dies mid-chunk
    # (heartbeat thread included — nothing keeps the lease alive).
    context = multiprocessing.get_context("fork")
    doomed = context.Process(target=_doomed_worker, args=(server.url,))
    doomed.start()
    doomed.join(timeout=30.0)
    assert doomed.exitcode == -signal.SIGKILL

    # The broker still counts the orphaned lease as outstanding work, so
    # a healthy exit-when-idle worker keeps polling until it lapses,
    # picks the chunk back up, and drains the queue.
    survivor = Worker(client, name="survivor", exit_when_idle=True,
                      poll_interval_s=0.05)
    tally = survivor.run()
    assert tally["chunks_committed"] == 4
    assert tally["chunks_failed"] == 0

    status = client.status()
    assert status["counters"]["serve.leases_expired"] >= 1
    assert status["counters"]["serve.chunks_leased"] >= 5  # 4 + retry
    assert status["tasks"] == {"pending": 0, "leased": 0,
                               "done": 4, "failed": 0}

    payload = client.wait_for_curve(job["job_id"])
    assert payload["complete"] is True

    # Bit-identical to a never-faulted local run of the same grid.
    local = RunDriver.create(tmp_path / "local",
                             SweepEngine(seed=11, chunk_packets=3),
                             GRID, num_packets=6,
                             payload_bits_per_packet=16)
    local.run_shard(0)
    reference = local.merge()
    remote = [entry["measurement"] for entry in payload["points"]]
    assert remote == [m.to_dict() for _, m in reference.entries]


def test_retried_chunk_commit_records_second_attempt(server):
    client = BrokerClient(server.url, timeout_s=10.0)
    client.submit(SPEC)

    context = multiprocessing.get_context("fork")
    doomed = context.Process(target=_doomed_worker, args=(server.url,))
    doomed.start()
    doomed.join(timeout=30.0)
    assert doomed.exitcode == -signal.SIGKILL

    # Drain; the retried chunk must come back with attempt == 2.
    worker_id = client.register("inspector")["worker_id"]
    attempts = []
    engine = SweepEngine(seed=11)
    while True:
        response = client.lease(worker_id)
        task = response.get("task")
        if task is None:
            if response["outstanding"] == 0:
                break
            time.sleep(0.05)
            continue
        attempts.append(response["attempt"])
        point = GRID[[p.ebn0_db for p in GRID].index(
            task["point"]["ebn0_db"])]
        [measurement] = engine.measure_points(
            [(point, task["num_packets"], task["packet_offset"])],
            payload_bits_per_packet=task["payload_bits_per_packet"],
            chunk_packets=task["num_packets"])
        client.commit(response["lease_id"], task["task_id"],
                      measurement.to_dict())
    assert sorted(attempts) == [1, 1, 1, 2]
