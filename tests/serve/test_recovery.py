"""Broker crash recovery: the journal replays into the live queue.

Two layers.  The unit layer drives :class:`Broker` directly with a fake
clock and a ``state_dir``, restarting it as a new instance over the same
journal + store and asserting the rebuilt queue: committed chunks
dropped, attempt counts preserved, job and lease id counters advanced,
graceful releases un-counted, replay idempotent.  The end-to-end layer
SIGKILLs a real broker *process* mid-job — one chunk still leased — and
restarts it over the same ``--state-dir``, then drains with two workers
and checks the fleet curve is bit-identical to an unfaulted local
:class:`RunDriver` run.
"""

import multiprocessing
import os
import signal
import threading

import pytest

from repro.runs import RunDriver
from repro.serve.api import create_server
from repro.serve.broker import Broker, BrokerDrainingError
from repro.serve.worker import BrokerClient, Worker
from repro.sim import SweepEngine, sweep_grid

from tests.serve.test_broker import (GRID, SPEC, FakeClock, drain,
                                     make_simulator)


def _serial(identifier: str) -> int:
    return int(identifier.rsplit("-", 1)[-1])


def make_broker(tmp_path, clock, **kwargs):
    kwargs.setdefault("lease_timeout_s", 10.0)
    kwargs.setdefault("max_attempts", 3)
    return Broker(tmp_path / "store", clock=clock,
                  state_dir=tmp_path / "state", **kwargs)


@pytest.fixture
def clock():
    return FakeClock()


class TestRecovery:
    def test_restart_restores_queued_job(self, tmp_path, clock):
        first = make_broker(tmp_path, clock)
        job = first.submit(SPEC)
        first.close()

        second = make_broker(tmp_path, clock)
        try:
            assert second.job_ids() == (job["job_id"],)
            status = second.job_status(job["job_id"])
            assert status["state"] == "running"
            assert status["chunks_total"] == job["chunks_total"] == 6
            totals = second.recorder.counter_totals()
            assert totals["serve.jobs_recovered"] == 1
        finally:
            second.close()

    def test_committed_chunks_drop_out_of_rebuilt_queue(self, tmp_path,
                                                        clock):
        first = make_broker(tmp_path, clock)
        job = first.submit(SPEC)
        worker = first.register_worker("w")["worker_id"]
        simulate = make_simulator()
        for _ in range(2):  # commit 2 of the 6 chunks, then "crash"
            response = first.lease(worker)
            task = response["task"]
            first.commit(response["lease_id"], task["task_id"],
                         simulate(task).to_dict())
        first.close()

        second = make_broker(tmp_path, clock)
        try:
            # Replay plans against the store's *current* coverage, the
            # same way a fresh submit treats cached work: the rebuilt
            # job holds only the 4 still-missing chunks, and the fully
            # committed point counts as cached.
            status = second.job_status(job["job_id"])
            assert status["chunks_total"] == 4
            assert status["points_cached_at_submit"] == 1
            assert second.status()["tasks"] == {
                "pending": 4, "leased": 0, "done": 0, "failed": 0}
            # The pre-crash commits are already visible in the curve.
            assert second.curve(job["job_id"])["points_measured"] == 1
            # Drain the remainder; nothing is re-simulated and the
            # finished curve matches a never-crashed local run.
            worker = second.register_worker("w2")["worker_id"]
            drain(second, worker, simulate)
            payload = second.curve(job["job_id"])
            assert payload["complete"] is True
            assert second.recorder.counter_totals()[
                "serve.chunks_committed"] == 4  # 6 total minus 2 pre-crash
        finally:
            second.close()

        local = RunDriver.create(tmp_path / "local",
                                 SweepEngine(seed=7, chunk_packets=4),
                                 GRID, num_packets=8,
                                 payload_bits_per_packet=16)
        local.run_shard(0)
        reference = local.merge()
        remote = [entry["measurement"] for entry in payload["points"]]
        assert remote == [m.to_dict() for _, m in reference.entries]

    def test_leased_task_requeues_with_attempt_preserved(self, tmp_path,
                                                         clock):
        first = make_broker(tmp_path, clock)
        first.submit(SPEC)
        worker = first.register_worker("w")["worker_id"]
        leased = first.lease(worker)["task"]["task_id"]
        first.close()  # crash with the lease outstanding

        second = make_broker(tmp_path, clock)
        try:
            totals = second.recorder.counter_totals()
            assert totals["serve.tasks_requeued"] == 1
            # The orphaned grant still counts: re-leasing that chunk is
            # attempt 2, exactly as if the lease had expired live.
            worker = second.register_worker("w")["worker_id"]
            attempts = {}
            for _ in range(6):
                response = second.lease(worker)
                attempts[response["task"]["task_id"]] = response["attempt"]
            assert attempts.pop(leased) == 2
            assert set(attempts.values()) == {1}
        finally:
            second.close()

    def test_graceful_release_uncounts_attempt_on_replay(self, tmp_path,
                                                         clock):
        first = make_broker(tmp_path, clock)
        first.submit(SPEC)
        worker = first.register_worker("w")["worker_id"]
        response = first.lease(worker)
        task_id = response["task"]["task_id"]
        first.release(response["lease_id"], task_id)
        first.close()

        second = make_broker(tmp_path, clock)
        try:
            # Nothing was outstanding at the crash, and the released
            # grant never counted: every chunk re-leases as attempt 1.
            totals = second.recorder.counter_totals()
            assert totals.get("serve.tasks_requeued", 0) == 0
            worker = second.register_worker("w")["worker_id"]
            for _ in range(6):
                assert second.lease(worker)["attempt"] == 1
        finally:
            second.close()

    def test_id_counters_advance_past_journal(self, tmp_path, clock):
        first = make_broker(tmp_path, clock)
        job_one = first.submit(SPEC)["job_id"]
        worker = first.register_worker("w")["worker_id"]
        lease_one = first.lease(worker)["lease_id"]
        lease_two = first.lease(worker)["lease_id"]
        first.close()

        second = make_broker(tmp_path, clock)
        try:
            # A resubmission must not collide with the recovered job id,
            # and a fresh lease must not collide with a stale pre-crash
            # one (whose worker may still try to commit against it).
            job_two = second.submit(SPEC)["job_id"]
            assert _serial(job_two) == _serial(job_one) + 1
            worker = second.register_worker("w")["worker_id"]
            fresh = second.lease(worker)["lease_id"]
            assert _serial(fresh) > max(_serial(lease_one),
                                        _serial(lease_two))
        finally:
            second.close()

    def test_replay_is_idempotent(self, tmp_path, clock):
        first = make_broker(tmp_path, clock)
        job = first.submit(SPEC)
        worker = first.register_worker("w")["worker_id"]
        response = first.lease(worker)
        simulate = make_simulator()
        task = response["task"]
        first.commit(response["lease_id"], task["task_id"],
                     simulate(task).to_dict())
        first.lease(worker)  # leave one lease outstanding
        first.close()

        def snapshot(broker):
            return (broker.job_ids(), broker.job_status(job["job_id"]),
                    broker.status()["tasks"])

        second = make_broker(tmp_path, clock)
        state_two = snapshot(second)
        second.close()
        third = make_broker(tmp_path, clock)
        state_three = snapshot(third)
        third.close()
        assert state_two == state_three

    def test_terminal_failure_survives_restart(self, tmp_path, clock):
        first = make_broker(tmp_path, clock)
        job = first.submit({"points": [{"ebn0_db": 2.0}],
                            "num_packets": 4, "seed": 7,
                            "payload_bits_per_packet": 16})
        worker = first.register_worker("w")["worker_id"]
        for _ in range(3):  # max_attempts=3: expire every lease
            first.lease(worker)
            clock.advance(10.5)
        assert first.lease(worker)["task"] is None  # reap -> failed
        assert first.job_status(job["job_id"])["state"] == "failed"
        first.close()

        second = make_broker(tmp_path, clock)
        try:
            status = second.job_status(job["job_id"])
            assert status["state"] == "failed"
            assert second.status()["tasks"]["failed"] == 1
            # The failed chunk must not be re-leasable.
            worker = second.register_worker("w")["worker_id"]
            assert second.lease(worker)["task"] is None
        finally:
            second.close()

    def test_corrupt_journal_tail_is_survivable(self, tmp_path, clock):
        first = make_broker(tmp_path, clock)
        job = first.submit(SPEC)
        first.close()
        with open(tmp_path / "state" / "journal.jsonl", "a") as handle:
            handle.write('{"schema": 1, "kind": "gra')  # torn mid-append

        second = make_broker(tmp_path, clock)
        try:
            totals = second.recorder.counter_totals()
            assert totals["serve.journal_corrupt_lines"] == 1
            assert second.job_status(job["job_id"])["state"] == "running"
        finally:
            second.close()

    def test_unparseable_job_record_skipped_not_fatal(self, tmp_path,
                                                     clock):
        first = make_broker(tmp_path, clock)
        good = first.submit(SPEC)
        first.close()
        # A journal written by a newer/older code version may hold specs
        # this version rejects; the broker must come up regardless.
        from repro.serve.journal import BrokerJournal
        journal = BrokerJournal(tmp_path / "state" / "journal.jsonl")
        journal.record("job", job_id="job-0099",
                       spec={"points": [{"ebn0_db": 2.0}],
                             "generation": "gen9"})

        second = make_broker(tmp_path, clock)
        try:
            assert second.job_ids() == (good["job_id"],)
            totals = second.recorder.counter_totals()
            assert totals["serve.jobs_recovered"] == 1
            assert totals["serve.jobs_recovery_skipped"] == 1
        finally:
            second.close()


class TestDraining:
    def test_draining_blocks_submissions_and_leases(self, tmp_path, clock):
        broker = make_broker(tmp_path, clock)
        try:
            broker.submit(SPEC)
            worker = broker.register_worker("w")["worker_id"]
            broker.begin_shutdown()
            assert broker.draining is True
            with pytest.raises(BrokerDrainingError, match="draining"):
                broker.submit(SPEC)
            response = broker.lease(worker)
            assert response["task"] is None
            assert response["draining"] is True
        finally:
            broker.close()

    def test_draining_wakes_long_pollers(self, tmp_path, clock):
        broker = make_broker(tmp_path, clock)
        try:
            job = broker.submit(SPEC)
            results = []

            def poll():
                results.append(broker.curve(job["job_id"], wait_version=0,
                                            timeout_s=30.0))

            thread = threading.Thread(target=poll)
            thread.start()
            broker.begin_shutdown()
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert results and results[0]["state"] == "running"
        finally:
            broker.close()

    def test_restart_after_drain_resumes_queue(self, tmp_path, clock):
        first = make_broker(tmp_path, clock)
        job = first.submit(SPEC)
        first.begin_shutdown()
        first.close()

        second = make_broker(tmp_path, clock)
        try:
            assert second.draining is False
            worker = second.register_worker("w")["worker_id"]
            drain(second, worker, make_simulator())
            assert second.job_status(job["job_id"])["state"] == "done"
        finally:
            second.close()


# ----------------------------------------------------------------------
# End to end: SIGKILL a real broker process, restart on the same state.
# ----------------------------------------------------------------------

E2E_GRID = sweep_grid([2.0, 4.0])
E2E_SPEC = {"points": [{"ebn0_db": point.ebn0_db} for point in E2E_GRID],
            "num_packets": 6, "chunk_packets": 3, "seed": 11,
            "payload_bits_per_packet": 16}


def _broker_process(store_dir, state_dir, conn):
    """Child: serve a durable broker and report the bound URL."""
    broker = Broker(store_dir, lease_timeout_s=5.0, state_dir=state_dir)
    server = create_server(broker)
    conn.send(server.url)
    conn.close()
    server.serve_forever()


def _simulate_e2e(task):
    engine = SweepEngine(seed=11)
    point = E2E_GRID[[p.ebn0_db for p in E2E_GRID].index(
        task["point"]["ebn0_db"])]
    [measurement] = engine.measure_points(
        [(point, task["num_packets"], task["packet_offset"])],
        payload_bits_per_packet=task["payload_bits_per_packet"],
        chunk_packets=task["num_packets"])
    return measurement


def test_sigkilled_broker_restarts_and_fleet_finishes(tmp_path):
    store_dir = tmp_path / "store"
    state_dir = tmp_path / "state"

    context = multiprocessing.get_context("fork")
    parent_conn, child_conn = context.Pipe()
    process = context.Process(target=_broker_process,
                              args=(store_dir, state_dir, child_conn))
    process.start()
    try:
        assert parent_conn.poll(timeout=30.0)
        url = parent_conn.recv()
        client = BrokerClient(url, timeout_s=10.0)
        job = client.submit(E2E_SPEC)
        assert job["chunks_total"] == 4

        # Commit 2 chunks, take (and never finish) a third lease, then
        # SIGKILL the broker mid-job — the worst crash point: work
        # committed, work queued, work leased, all at once.
        worker_id = client.register("pre-crash")["worker_id"]
        for _ in range(2):
            response = client.lease(worker_id)
            task = response["task"]
            client.commit(response["lease_id"], task["task_id"],
                          _simulate_e2e(task).to_dict())
        client.lease(worker_id)  # orphaned on purpose
    finally:
        os.kill(process.pid, signal.SIGKILL)
        process.join(timeout=10.0)
    assert process.exitcode == -signal.SIGKILL

    # Restart over the same state dir and store (in-process this time so
    # we can read the recovery counters directly).
    broker = Broker(store_dir, lease_timeout_s=5.0, state_dir=state_dir)
    server = create_server(broker)
    server.serve_in_thread()
    try:
        totals = broker.recorder.counter_totals()
        assert totals["serve.jobs_recovered"] == 1
        assert totals["serve.tasks_requeued"] == 1

        # The resubmitted job id resolves over HTTP with its pre-crash
        # progress intact.
        client = BrokerClient(server.url, timeout_s=10.0)
        status = client.job_status(job["job_id"])
        assert status["state"] == "running"
        # Replanned against the store: only the 2 missing chunks remain
        # (the fully committed point shows up as cached) and the curve
        # already serves the pre-crash point.
        assert status["chunks_total"] == 2
        assert status["points_cached_at_submit"] == 1
        assert client.curve(job["job_id"])["points_measured"] == 1

        # Two fresh workers drain the remainder.
        workers = [Worker(server.url, name=f"post-crash-{index}",
                          exit_when_idle=True, poll_interval_s=0.05)
                   for index in range(2)]
        threads = [threading.Thread(target=worker.run)
                   for worker in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)

        payload = client.wait_for_curve(job["job_id"])
        assert payload["complete"] is True
        assert broker.status()["tasks"] == {"pending": 0, "leased": 0,
                                            "done": 2, "failed": 0}
    finally:
        server.shutdown()
        server.server_close()
        broker.close()

    # Bit-identical to a never-crashed local run of the same grid.
    local = RunDriver.create(tmp_path / "local",
                             SweepEngine(seed=11, chunk_packets=3),
                             E2E_GRID, num_packets=6,
                             payload_bits_per_packet=16)
    local.run_shard(0)
    reference = local.merge()
    remote = [entry["measurement"] for entry in payload["points"]]
    assert remote == [m.to_dict() for _, m in reference.entries]
