"""Lease-table bookkeeping under a fake, manually-stepped clock."""

import pytest

from repro.serve.leases import (Lease, LeaseError, LeaseExpiredError,
                                LeaseTable, UnknownLeaseError)


class FakeClock:
    """Monotonic clock the test advances by hand."""

    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += float(seconds)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def table(clock):
    return LeaseTable(timeout_s=10.0, clock=clock)


class TestGrant:
    def test_grant_returns_live_lease(self, table, clock):
        lease = table.grant("task-a", "worker-1")
        assert isinstance(lease, Lease)
        assert lease.task_id == "task-a"
        assert lease.worker_id == "worker-1"
        assert lease.deadline == clock.now + 10.0
        assert lease.lease_id in table
        assert len(table) == 1

    def test_double_grant_on_live_lease_rejected(self, table):
        table.grant("task-a", "worker-1")
        with pytest.raises(LeaseError, match="already leased"):
            table.grant("task-a", "worker-2")

    def test_grant_after_expiry_drops_old_holder(self, table, clock):
        first = table.grant("task-a", "worker-1")
        clock.advance(10.1)
        second = table.grant("task-a", "worker-2", attempt=2)
        assert second.lease_id != first.lease_id
        assert first.lease_id not in table
        assert second.attempt == 2
        assert len(table) == 1

    def test_distinct_tasks_lease_independently(self, table):
        a = table.grant("task-a", "worker-1")
        b = table.grant("task-b", "worker-1")
        assert a.lease_id != b.lease_id
        assert len(table) == 2

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout_s"):
            LeaseTable(timeout_s=0.0)


class TestRenew:
    def test_renew_extends_deadline(self, table, clock):
        lease = table.grant("task-a", "worker-1")
        clock.advance(8.0)
        renewed = table.renew(lease.lease_id)
        assert renewed.deadline == clock.now + 10.0
        assert renewed.granted_at == lease.granted_at
        # Heartbeats keep a lease alive indefinitely.
        clock.advance(8.0)
        assert not table.get(lease.lease_id).expired(clock.now)

    def test_renew_after_expiry_raises_and_drops(self, table, clock):
        lease = table.grant("task-a", "worker-1")
        clock.advance(10.5)
        with pytest.raises(LeaseExpiredError, match="expired"):
            table.renew(lease.lease_id)
        assert lease.lease_id not in table
        # The task is free again.
        table.grant("task-a", "worker-2")

    def test_renew_unknown_lease_raises(self, table):
        with pytest.raises(UnknownLeaseError):
            table.renew("lease-999999")


class TestReleaseAndReap:
    def test_release_removes_and_returns(self, table):
        lease = table.grant("task-a", "worker-1")
        released = table.release(lease.lease_id)
        assert released.task_id == "task-a"
        assert len(table) == 0
        with pytest.raises(UnknownLeaseError):
            table.release(lease.lease_id)

    def test_release_frees_the_task(self, table):
        lease = table.grant("task-a", "worker-1")
        table.release(lease.lease_id)
        table.grant("task-a", "worker-2")

    def test_release_keeps_recorded_deadline(self, table, clock):
        lease = table.grant("task-a", "worker-1")
        clock.advance(11.0)
        released = table.release(lease.lease_id)
        # The caller (the broker's commit path) inspects staleness.
        assert released.expired(clock.now)

    def test_reap_returns_only_expired(self, table, clock):
        old = table.grant("task-a", "worker-1")
        clock.advance(6.0)
        fresh = table.grant("task-b", "worker-2")
        clock.advance(6.0)  # old at 12s (dead), fresh at 6s (alive)
        reaped = table.reap()
        assert [lease.lease_id for lease in reaped] == [old.lease_id]
        assert fresh.lease_id in table
        assert len(table) == 1

    def test_reap_empty_table_is_noop(self, table):
        assert table.reap() == []

    def test_active_lists_live_leases(self, table, clock):
        a = table.grant("task-a", "worker-1")
        table.grant("task-b", "worker-2")
        assert len(table.active()) == 2
        clock.advance(10.1)
        table.reap()
        assert table.active() == ()
        assert a.lease_id not in table
