"""Broker planning, lease lifecycle, and at-most-once commit.

Everything here drives the broker directly (no HTTP) with a fake clock,
so lease expiry and recovery are deterministic and instant.
"""

import pytest

from repro.runs import RunDriver
from repro.serve.broker import (Broker, BrokerError, CommitConflictError,
                                JobSpec, UnknownJobError)
from repro.sim import SweepEngine, sweep_grid
from repro.sim.engine import chunk_spans


class FakeClock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += float(seconds)


GRID = sweep_grid([2.0, 4.0, 6.0])
SPEC = {"points": [{"ebn0_db": point.ebn0_db} for point in GRID],
        "num_packets": 8, "chunk_packets": 4, "seed": 7,
        "payload_bits_per_packet": 16}


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def broker(tmp_path, clock):
    broker = Broker(tmp_path / "store", lease_timeout_s=10.0,
                    max_attempts=3, clock=clock)
    yield broker
    broker.close()


def drain(broker, worker_id, simulate):
    """Lease-simulate-commit until the queue is empty."""
    while True:
        response = broker.lease(worker_id)
        if response["task"] is None:
            return response["outstanding"]
        task = response["task"]
        measurement = simulate(task)
        broker.commit(response["lease_id"], task["task_id"],
                      measurement.to_dict())


def make_simulator():
    worker_engine = SweepEngine(seed=7)

    def simulate(task):
        point = GRID[[p.ebn0_db for p in GRID].index(
            task["point"]["ebn0_db"])]
        [measurement] = worker_engine.measure_points(
            [(point, task["num_packets"], task["packet_offset"])],
            payload_bits_per_packet=task["payload_bits_per_packet"],
            chunk_packets=task["num_packets"])
        return measurement

    return simulate


class TestPlanning:
    def test_submit_plans_chunk_spans(self, broker):
        job = broker.submit(SPEC)
        # 3 points x (8 packets / 4 per chunk) = 6 chunks.
        assert job["state"] == "running"
        assert job["chunks_total"] == 6
        assert job["points_cached_at_submit"] == 0
        spans = chunk_spans(8, 4)
        assert spans == ((0, 4), (4, 4))

    def test_bad_specs_rejected(self, broker):
        with pytest.raises(BrokerError, match="points"):
            broker.submit({"points": []})
        with pytest.raises(BrokerError, match="num_packets"):
            broker.submit({**SPEC, "num_packets": 0})
        with pytest.raises(BrokerError, match="generation"):
            broker.submit({**SPEC, "generation": "gen9"})
        with pytest.raises(BrokerError, match="backend"):
            broker.submit({**SPEC, "backend": "quantum"})

    def test_overlapping_jobs_share_tasks(self, broker):
        first = broker.submit(SPEC)
        second = broker.submit(SPEC)
        assert second["chunks_total"] == first["chunks_total"]
        assert second["chunks_shared"] == first["chunks_total"]
        status = broker.status()
        # Shared, not duplicated: the task table holds 6 tasks, not 12.
        assert sum(status["tasks"].values()) == 6

    def test_shared_commit_advances_every_job(self, broker):
        broker.submit(SPEC)
        broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        drain(broker, worker, make_simulator())
        for job_id in broker.job_ids():
            assert broker.job_status(job_id)["state"] == "done"

    def test_fully_cached_submit_is_done_immediately(self, broker):
        worker = broker.register_worker("w")["worker_id"]
        broker.submit(SPEC)
        drain(broker, worker, make_simulator())
        resubmitted = broker.submit(SPEC)
        assert resubmitted["state"] == "done"
        assert resubmitted["points_cached_at_submit"] == len(GRID)
        assert resubmitted["chunks_total"] == 0

    def test_unknown_job_raises(self, broker):
        with pytest.raises(UnknownJobError):
            broker.job_status("job-9999")


class TestLeaseLifecycle:
    def test_lease_requires_registration(self, broker):
        broker.submit(SPEC)
        with pytest.raises(BrokerError, match="register"):
            broker.lease("worker-0042")

    def test_expired_lease_requeues_chunk(self, broker, clock):
        broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        response = broker.lease(worker)
        task_id = response["task"]["task_id"]
        clock.advance(10.5)  # the worker died; lease lapses
        # The chunk comes back out of the queue with a bumped attempt.
        seen = []
        while True:
            again = broker.lease(worker)
            assert again["task"] is not None
            seen.append(again["task"]["task_id"])
            if again["task"]["task_id"] == task_id:
                assert again["attempt"] == 2
                break
        status = broker.status()
        assert status["counters"]["serve.leases_expired"] == 1

    def test_heartbeat_keeps_lease_alive(self, broker, clock):
        broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        response = broker.lease(worker)
        for _ in range(5):
            clock.advance(8.0)
            broker.heartbeat(response["lease_id"])
        # 40s elapsed against a 10s timeout, still committable.
        simulate = make_simulator()
        task = response["task"]
        outcome = broker.commit(response["lease_id"], task["task_id"],
                                simulate(task).to_dict())
        assert outcome == {"ok": True, "duplicate": False, "stale": False}

    def test_worker_fail_requeues_immediately(self, broker):
        broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        response = broker.lease(worker)
        task_id = response["task"]["task_id"]
        broker.fail(response["lease_id"], task_id, "induced")
        # No clock advance needed: the chunk is pending again now.
        seen = set()
        while True:
            again = broker.lease(worker)
            seen.add(again["task"]["task_id"])
            if task_id in seen:
                break

    def test_attempts_cap_fails_task_and_job(self, broker, clock):
        # A single-chunk job so the same task is re-leased every time.
        job = broker.submit({"points": [{"ebn0_db": 2.0}],
                             "num_packets": 4, "seed": 7,
                             "payload_bits_per_packet": 16})
        assert job["chunks_total"] == 1
        worker = broker.register_worker("w")["worker_id"]
        for attempt in (1, 2, 3):  # max_attempts=3
            response = broker.lease(worker)
            assert response["attempt"] == attempt
            clock.advance(10.5)
        response = broker.lease(worker)  # reaps attempt 3 -> failed
        assert response["task"] is None
        status = broker.job_status(job["job_id"])
        assert status["state"] == "failed"
        assert "after 3 attempt" in status["error"]


class TestAtMostOnceCommit:
    def test_stale_identical_commit_is_duplicate_noop(self, broker, clock):
        broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        simulate = make_simulator()
        slow = broker.lease(worker)
        slow_task = slow["task"]
        slow_measurement = simulate(slow_task)
        clock.advance(10.5)  # slow worker's lease lapses
        # A second worker re-runs the same chunk and commits first.
        fast = broker.register_worker("fast")["worker_id"]
        while True:
            response = broker.lease(fast)
            task = response["task"]
            broker.commit(response["lease_id"], task["task_id"],
                          simulate(task).to_dict())
            if task["task_id"] == slow_task["task_id"]:
                break
        # The slow worker's late commit: stale lease, identical counts —
        # ingested as a duplicate, never double-counted.
        outcome = broker.commit(slow["lease_id"], slow_task["task_id"],
                                slow_measurement.to_dict())
        assert outcome["duplicate"] is True
        assert outcome["stale"] is True
        totals = broker.status()["counters"]
        assert totals["serve.commit_duplicates"] == 1
        assert totals["serve.commits_stale"] == 1

    def test_conflicting_commit_rejected(self, broker, clock):
        broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        simulate = make_simulator()
        response = broker.lease(worker)
        task = response["task"]
        good = simulate(task)
        broker.commit(response["lease_id"], task["task_id"],
                      good.to_dict())
        # A stale re-commit with different counts (a worker that is not
        # bit-reproducing) must be rejected, not merged.
        clock.advance(0.0)
        bad = dict(good.to_dict())
        bad["bit_errors"] = good.bit_errors + 1
        with pytest.raises(CommitConflictError, match="not bit-reproducing"):
            broker.commit("lease-999999", task["task_id"], bad)
        assert broker.status()["counters"]["serve.commit_conflicts"] == 1

    def test_double_count_never_reaches_curve(self, broker, clock):
        # Even after a stale duplicate commit, the assembled curve holds
        # each packet exactly once.
        broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        simulate = make_simulator()
        first = broker.lease(worker)
        first_measurement = simulate(first["task"])
        clock.advance(10.5)
        drain(broker, worker, simulate)
        broker.commit(first["lease_id"], first["task"]["task_id"],
                      first_measurement.to_dict())
        payload = broker.curve(broker.job_ids()[0])
        for entry in payload["points"]:
            assert entry["measurement"]["packets_sent"] == 8


class TestCurveParity:
    def test_fleet_curve_bit_identical_to_local_driver(self, broker,
                                                       tmp_path):
        job = broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        drain(broker, worker, make_simulator())
        payload = broker.curve(job["job_id"])
        assert payload["complete"] is True

        local = RunDriver.create(tmp_path / "local",
                                 SweepEngine(seed=7, chunk_packets=4),
                                 GRID, num_packets=8,
                                 payload_bits_per_packet=16)
        local.run_shard(0)
        reference = local.merge()
        remote = [entry["measurement"] for entry in payload["points"]]
        assert remote == [m.to_dict() for _, m in reference.entries]

    def test_partial_curve_streams_in_grid_order(self, broker):
        job = broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        simulate = make_simulator()
        # Commit both chunks of one point only.
        committed_points = set()
        while len(committed_points) == 0:
            response = broker.lease(worker)
            task = response["task"]
            broker.commit(response["lease_id"], task["task_id"],
                          simulate(task).to_dict())
            payload = broker.curve(job["job_id"])
            committed_points = {entry["point"]["ebn0_db"]
                                for entry in payload["points"]}
        payload = broker.curve(job["job_id"])
        assert payload["state"] == "running"
        assert 0 < payload["points_measured"] < len(GRID)
        ordering = [entry["point"]["ebn0_db"] for entry in payload["points"]]
        assert ordering == sorted(ordering)

    def test_curve_long_poll_times_out_cleanly(self, broker):
        job = broker.submit(SPEC)
        payload = broker.curve(job["job_id"], wait_version=0,
                               timeout_s=0.05)
        assert payload["state"] == "running"
        assert payload["points_measured"] == 0


class TestStatus:
    def test_status_shape(self, broker):
        broker.submit(SPEC)
        worker = broker.register_worker("w")["worker_id"]
        drain(broker, worker, make_simulator())
        status = broker.status()
        assert status["jobs"] == {"running": 0, "done": 1, "failed": 0}
        assert status["tasks"]["done"] == 6
        assert status["leases_active"] == 0
        awgn = status["scenarios"]["awgn"]
        assert awgn["chunks_done"] == awgn["chunks_total"] == 6
        assert awgn["packets_done"] == 24
        assert status["throughput"]["chunks_committed"] == 6
        assert status["cache"]["lookup_misses"] >= 3

    def test_metrics_exposition(self, broker):
        broker.submit(SPEC)
        text = broker.render_metrics()
        assert "serve_jobs_submitted" in text
