"""The broker journal: append/read round-trips, torn tails, validation.

The journal carries the broker's whole recovery story, so its unit
contract mirrors the store's: appends are atomic batches, reads
tolerate (and count) a torn tail line, and every record passes one
shared validator on both the write and the read path.
"""

import json

import pytest

from repro.serve.journal import (JOURNAL_SCHEMA_VERSION, BrokerJournal,
                                 validate_record)


def make_journal(tmp_path) -> BrokerJournal:
    return BrokerJournal(tmp_path / "state" / "journal.jsonl")


SAMPLE_RECORDS = [
    {"kind": "job", "job_id": "job-0001",
     "spec": {"points": [{"ebn0_db": 2.0}]}},
    {"kind": "grant", "task_id": "abc:0",
     "lease": {"lease_id": "lease-000001", "task_id": "abc:0",
               "worker_id": "worker-0001", "granted_at": 0.0,
               "deadline": 30.0, "attempt": 1}},
    {"kind": "commit", "task_id": "abc:0"},
    {"kind": "release", "task_id": "abc:4"},
    {"kind": "requeue", "task_id": "abc:4", "reason": "lease expired"},
    {"kind": "task_failed", "task_id": "abc:8", "reason": "gave up"},
]


class TestRoundTrip:
    def test_record_appends_and_reads_back(self, tmp_path):
        journal = make_journal(tmp_path)
        for record in SAMPLE_RECORDS:
            journal.record(record["kind"],
                           **{k: v for k, v in record.items()
                              if k != "kind"})
        records, corrupt = journal.read()
        assert corrupt == 0
        assert [r["kind"] for r in records] \
            == [r["kind"] for r in SAMPLE_RECORDS]
        for written, read in zip(SAMPLE_RECORDS, records):
            for field, value in written.items():
                assert read[field] == value

    def test_records_carry_schema_pin(self, tmp_path):
        journal = make_journal(tmp_path)
        record = journal.record("commit", task_id="abc:0")
        assert record["schema"] == JOURNAL_SCHEMA_VERSION
        assert journal.read()[0][0]["schema"] == JOURNAL_SCHEMA_VERSION

    def test_missing_file_reads_empty(self, tmp_path):
        assert make_journal(tmp_path).read() == ([], 0)

    def test_empty_batch_is_noop(self, tmp_path):
        journal = make_journal(tmp_path)
        assert journal.append([]) == 0
        assert not journal.path.exists()

    def test_append_is_one_line_per_record(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append([{"schema": JOURNAL_SCHEMA_VERSION, **record}
                        for record in SAMPLE_RECORDS])
        lines = journal.path.read_text().splitlines()
        assert len(lines) == len(SAMPLE_RECORDS)
        for line in lines:
            json.loads(line)  # every line is standalone-parseable


class TestTornTail:
    def test_truncated_tail_line_is_skipped_and_counted(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record("commit", task_id="abc:0")
        journal.record("commit", task_id="abc:4")
        # A crash mid-append tears the final line.
        with open(journal.path, "r+") as handle:
            content = handle.read()
            handle.seek(0)
            handle.truncate()
            handle.write(content[:-15])
        records, corrupt = journal.read()
        assert corrupt == 1
        assert [r["task_id"] for r in records] == ["abc:0"]

    def test_garbage_line_is_skipped_not_fatal(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record("commit", task_id="abc:0")
        with open(journal.path, "a") as handle:
            handle.write("{not json at all\n")
        journal.record("commit", task_id="abc:4")
        records, corrupt = journal.read()
        assert corrupt == 1
        assert [r["task_id"] for r in records] == ["abc:0", "abc:4"]

    def test_appends_survive_a_torn_tail(self, tmp_path):
        # New records after a torn line still read back (the tear only
        # costs its own line, exactly like the store's policy).
        journal = make_journal(tmp_path)
        journal.record("commit", task_id="abc:0")
        with open(journal.path, "a") as handle:
            handle.write('{"schema": 1, "kind": "com')  # torn, no newline
        journal.record("commit", task_id="abc:4")
        records, corrupt = journal.read()
        assert corrupt == 1
        assert len(records) == 2


class TestValidation:
    def test_known_kinds_validate(self):
        for record in SAMPLE_RECORDS:
            validate_record({"schema": JOURNAL_SCHEMA_VERSION, **record})

    @pytest.mark.parametrize("record, match", [
        ("not a dict", "must be a dict"),
        ({"kind": "commit", "task_id": "x"}, "schema"),
        ({"schema": 99, "kind": "commit", "task_id": "x"}, "schema"),
        ({"schema": 1, "kind": "nope"}, "kind"),
        ({"schema": 1, "kind": "commit"}, "task_id"),
        ({"schema": 1, "kind": "job", "job_id": "j"}, "spec"),
        ({"schema": 1, "kind": "job", "job_id": 7, "spec": {}},
         "string"),
        ({"schema": 1, "kind": "grant", "task_id": "x", "lease": "no"},
         "object"),
        ({"schema": 1, "kind": "requeue", "task_id": "x"}, "reason"),
    ])
    def test_malformed_records_raise(self, record, match):
        with pytest.raises(ValueError, match=match):
            validate_record(record)

    def test_append_rejects_malformed_without_writing(self, tmp_path):
        journal = make_journal(tmp_path)
        with pytest.raises(ValueError):
            journal.append([{"schema": 1, "kind": "commit"}])
        assert not journal.path.exists()

    def test_unserializable_record_raises(self):
        with pytest.raises(ValueError, match="JSON"):
            validate_record({"schema": 1, "kind": "commit",
                             "task_id": "x", "extra": object()})
