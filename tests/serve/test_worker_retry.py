"""Client transport retries and graceful worker shutdown.

The retry layer is exercised with a scripted transport (injected sleep,
no real sockets, no real waiting) plus one real connection-refused case;
the shutdown layer interrupts a live worker mid-chunk with
:class:`WorkerShutdown` — the fault-injection hook standing in for the
CLI's SIGTERM handler — and asserts the lease comes back *released*,
not abandoned or failed.
"""

import socket
import urllib.error

import pytest

import repro.sim.engine as engine_module
from repro.serve.api import create_server
from repro.serve.broker import Broker
from repro.serve.worker import (BrokerClient, BrokerRequestError,
                                BrokerTransportError, Worker,
                                WorkerShutdown)

from tests.serve.test_broker import SPEC


class ScriptedClient(BrokerClient):
    """A client whose transport plays back a script of outcomes."""

    def __init__(self, outcomes, **kwargs):
        kwargs.setdefault("sleep", self.record_sleep)
        super().__init__("http://broker.invalid", **kwargs)
        self.outcomes = list(outcomes)
        self.calls = 0
        self.slept = []

    def record_sleep(self, seconds):
        self.slept.append(seconds)

    def _request_once(self, method, path, payload=None):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


REFUSED = urllib.error.URLError(ConnectionRefusedError(111,
                                                       "refused"))


class TestTransportRetry:
    def test_transient_errors_retry_then_succeed(self):
        client = ScriptedClient([REFUSED, ConnectionResetError(), {"ok": 1}],
                                max_attempts=5)
        assert client.get("/api/v1/status") == {"ok": 1}
        assert client.calls == 3
        assert client.transport_retries == 2
        assert len(client.slept) == 2

    def test_fails_loudly_after_attempt_budget(self):
        client = ScriptedClient([REFUSED] * 3, max_attempts=3)
        with pytest.raises(BrokerTransportError,
                           match="unreachable after 3 attempt"):
            client.get("/api/v1/status")
        assert client.calls == 3
        assert len(client.slept) == 2  # no sleep before the first try

    def test_transport_error_chains_the_last_cause(self):
        client = ScriptedClient([REFUSED, ConnectionResetError("last")],
                                max_attempts=2)
        with pytest.raises(BrokerTransportError) as excinfo:
            client.get("/api/v1/status")
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, ConnectionResetError)

    def test_http_rejection_is_never_retried(self):
        # The broker answered; retrying cannot change its mind.  The
        # remaining scripted outcomes must never be consumed.
        client = ScriptedClient([BrokerRequestError(404, "no", "not_found"),
                                 {"never": "reached"}], max_attempts=5)
        with pytest.raises(BrokerRequestError):
            client.get("/api/v1/nope")
        assert client.calls == 1
        assert client.slept == []

    def test_backoff_is_exponential_bounded_and_jittered(self):
        client = ScriptedClient([REFUSED] * 6, max_attempts=6,
                                backoff_base_s=1.0, backoff_cap_s=4.0,
                                retry_seed=42)
        with pytest.raises(BrokerTransportError):
            client.get("/api/v1/status")
        exponents = [1.0, 2.0, 4.0, 4.0, 4.0]  # capped at 4s
        assert len(client.slept) == len(exponents)
        for delay, ceiling in zip(client.slept, exponents):
            assert 0.5 * ceiling <= delay <= ceiling

    def test_jitter_is_seeded_and_desynchronized(self):
        def delays(seed):
            client = ScriptedClient([REFUSED] * 4, max_attempts=4,
                                    retry_seed=seed)
            with pytest.raises(BrokerTransportError):
                client.get("/api/v1/status")
            return client.slept

        assert delays(7) == delays(7)  # deterministic per seed...
        assert delays(7) != delays(8)  # ...distinct across workers

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            BrokerClient("http://broker.invalid", max_attempts=0)

    def test_real_connection_refused_raises_transport_error(self):
        # Grab a port the OS just handed out and closed: nothing
        # listens there, so urllib sees a genuine refused connection.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = BrokerClient(f"http://127.0.0.1:{port}", timeout_s=2.0,
                              max_attempts=2, backoff_base_s=0.01,
                              sleep=lambda seconds: None)
        with pytest.raises(BrokerTransportError) as excinfo:
            client.status()
        assert excinfo.value.attempts == 2


@pytest.fixture
def server(tmp_path):
    broker = Broker(tmp_path / "store", lease_timeout_s=30.0)
    server = create_server(broker)
    server.serve_in_thread()
    yield server
    server.shutdown()
    server.server_close()
    broker.close()


class TestWorkerShutdown:
    def test_shutdown_mid_chunk_releases_the_lease(self, server):
        broker = server.broker
        client = BrokerClient(server.url, timeout_s=10.0)
        client.submit(SPEC)

        # Interrupt the first chunk the moment it starts simulating —
        # the in-process stand-in for SIGTERM arriving mid-chunk.
        def shutdown_hook(task):
            engine_module._chunk_task_hook = None
            raise WorkerShutdown("SIGTERM")

        worker = Worker(client, name="interrupted")
        engine_module._chunk_task_hook = shutdown_hook
        try:
            tally = worker.run()
        finally:
            engine_module._chunk_task_hook = None

        assert tally["stopped"] is True
        assert tally["chunks_committed"] == 0
        assert tally["chunks_failed"] == 0  # a shutdown is not a failure
        status = broker.status()
        # Released, not abandoned: the chunk is pending again right now
        # (no lease left to time out) and the grant was un-counted.
        assert status["tasks"] == {"pending": 6, "leased": 0,
                                   "done": 0, "failed": 0}
        assert status["leases_active"] == 0
        assert status["counters"]["serve.leases_released"] == 1
        follow_up = broker.register_worker("next")["worker_id"]
        assert broker.lease(follow_up)["attempt"] == 1

    def test_request_stop_halts_between_chunks(self, server):
        client = BrokerClient(server.url, timeout_s=10.0)
        client.submit(SPEC)
        worker = Worker(client, name="stopping", poll_interval_s=0.01)
        committed = []

        def stop_hook(task):
            worker.request_stop()
            committed.append(task)

        engine_module._chunk_task_hook = stop_hook
        try:
            tally = worker.run()
        finally:
            engine_module._chunk_task_hook = None

        # The chunk in flight when stop was requested still commits;
        # the loop then notices the flag instead of leasing again.
        assert tally["stopped"] is True
        assert tally["chunks_committed"] == 1
        assert server.broker.status()["tasks"]["done"] == 1

    def test_worker_stops_when_broker_drains(self, server):
        client = BrokerClient(server.url, timeout_s=10.0)
        client.submit(SPEC)
        server.broker.begin_shutdown()
        tally = Worker(client, name="drained",
                       poll_interval_s=0.01).run()
        assert tally["stopped"] is True
        assert tally["chunks_committed"] == 0
