"""The HTTP surface: end-to-end over a real socket, in one process.

The server binds port 0 on localhost and runs on a daemon thread; the
client is the same :class:`BrokerClient` / :class:`Worker` pair that
``python -m repro worker`` uses in production.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.runs import RunDriver
from repro.serve.api import create_server
from repro.serve.broker import Broker
from repro.serve.worker import BrokerClient, BrokerRequestError, Worker
from repro.sim import SweepEngine, sweep_grid

GRID = sweep_grid([2.0, 4.0, 6.0])
SPEC = {"points": [{"ebn0_db": point.ebn0_db} for point in GRID],
        "num_packets": 8, "chunk_packets": 4, "seed": 7,
        "payload_bits_per_packet": 16}


@pytest.fixture
def server(tmp_path):
    broker = Broker(tmp_path / "store", lease_timeout_s=30.0)
    server = create_server(broker)
    server.serve_in_thread()
    yield server
    server.shutdown()
    server.server_close()
    broker.close()


@pytest.fixture
def client(server):
    return BrokerClient(server.url, timeout_s=10.0)


class TestEndToEnd:
    def test_submit_work_curve_matches_local_driver(self, server, client,
                                                    tmp_path):
        job = client.submit(SPEC)
        assert job["state"] == "running"
        assert job["chunks_total"] == 6

        tally = Worker(client, name="t1", exit_when_idle=True,
                       poll_interval_s=0.01).run()
        assert tally["chunks_committed"] == 6
        assert tally["chunks_failed"] == 0

        payload = client.wait_for_curve(job["job_id"])
        assert payload["complete"] is True

        local = RunDriver.create(tmp_path / "local",
                                 SweepEngine(seed=7, chunk_packets=4),
                                 GRID, num_packets=8,
                                 payload_bits_per_packet=16)
        local.run_shard(0)
        reference = local.merge()
        remote = [entry["measurement"] for entry in payload["points"]]
        assert remote == [m.to_dict() for _, m in reference.entries]

    def test_two_workers_split_the_queue(self, server, client):
        job = client.submit(SPEC)
        workers = [Worker(client, name=f"w{i}", exit_when_idle=True,
                          poll_interval_s=0.01) for i in range(2)]
        threads = [threading.Thread(target=worker.run)
                   for worker in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        committed = sum(worker.chunks_committed for worker in workers)
        assert committed == 6
        assert client.job_status(job["job_id"])["state"] == "done"

    def test_resubmit_hits_cache(self, server, client):
        job = client.submit(SPEC)
        Worker(client, exit_when_idle=True, poll_interval_s=0.01).run()
        client.wait_for_curve(job["job_id"])
        again = client.submit(SPEC)
        assert again["state"] == "done"
        assert again["points_cached_at_submit"] == len(GRID)

    def test_status_and_metrics(self, server, client):
        client.submit(SPEC)
        Worker(client, name="metrics-worker", exit_when_idle=True,
               poll_interval_s=0.01).run()
        status = client.status()
        assert status["jobs"]["done"] == 1
        assert status["tasks"]["done"] == 6
        assert status["throughput"]["chunks_committed"] == 6
        assert [info["name"] for info in status["workers"]] \
            == ["metrics-worker"]
        with urllib.request.urlopen(server.url + "/metrics") as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        assert "repro_serve_chunks_committed_total 6" in text

    def test_healthz(self, server):
        with urllib.request.urlopen(server.url + "/healthz") as response:
            assert json.loads(response.read()) == {"ok": True}


class TestErrorMapping:
    def _status_of(self, call):
        with pytest.raises(BrokerRequestError) as excinfo:
            call()
        return excinfo.value

    def test_unknown_job_is_404(self, client):
        error = self._status_of(lambda: client.job_status("job-9999"))
        assert error.status == 404
        assert error.kind == "unknown_job"

    def test_bad_spec_is_400(self, client):
        error = self._status_of(lambda: client.submit({"points": []}))
        assert error.status == 400

    def test_unregistered_worker_is_400(self, client):
        error = self._status_of(lambda: client.lease("worker-9999"))
        assert error.status == 400

    def test_unknown_lease_is_409(self, client):
        error = self._status_of(lambda: client.heartbeat("lease-999999"))
        assert error.status == 409
        assert error.kind == "lease"

    def test_unknown_route_is_404(self, client):
        error = self._status_of(lambda: client.get("/api/v1/nope"))
        assert error.status == 404

    def test_malformed_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/api/v1/jobs", data=b"not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_bad_query_param_is_400(self, client):
        job = client.submit(SPEC)
        error = self._status_of(lambda: client.get(
            f"/api/v1/jobs/{job['job_id']}/curve?wait_version=soon"))
        assert error.status == 400

    @pytest.mark.parametrize("query", [
        "wait_version=-1",
        "wait_version=0&timeout=-3",
        "wait_version=0&timeout=nan",
        "wait_version=0&timeout=inf",
    ])
    def test_negative_or_nonfinite_params_are_400(self, client, query):
        # Validated at the edge: a poisoned wait_version/timeout must
        # never reach the broker's long-poll arithmetic.
        job = client.submit(SPEC)
        error = self._status_of(lambda: client.get(
            f"/api/v1/jobs/{job['job_id']}/curve?{query}"))
        assert error.status == 400
        assert error.kind == "bad_request"


class TestReleaseAndDrain:
    def test_release_route_requeues_without_attempt(self, server, client):
        client.submit(SPEC)
        worker_id = client.register("releasing")["worker_id"]
        response = client.lease(worker_id)
        outcome = client.release(response["lease_id"],
                                 response["task"]["task_id"])
        assert outcome == {"ok": True, "state": "pending"}
        status = client.status()
        assert status["tasks"]["leased"] == 0
        assert status["counters"]["serve.leases_released"] == 1
        # The grant was un-counted: the chunk leases again as attempt 1.
        attempts = {client.lease(worker_id)["attempt"] for _ in range(6)}
        assert attempts == {1}

    def test_draining_broker_rejects_submissions_with_503(self, server,
                                                          client):
        client.submit(SPEC)
        server.broker.begin_shutdown()
        with pytest.raises(BrokerRequestError) as excinfo:
            client.submit(SPEC)
        assert excinfo.value.status == 503
        assert excinfo.value.kind == "draining"

    def test_draining_broker_stops_granting_leases(self, server, client):
        client.submit(SPEC)
        worker_id = client.register("late")["worker_id"]
        server.broker.begin_shutdown()
        response = client.lease(worker_id)
        assert response["task"] is None
        assert response["draining"] is True
        assert client.status()["draining"] is True
