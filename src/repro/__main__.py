"""``python -m repro`` dispatches to the run-subsystem CLI."""

import sys

from repro.runs.cli import main

if __name__ == "__main__":
    sys.exit(main())
