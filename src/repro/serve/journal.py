"""Durable broker state: the append-only, fsynced recovery journal.

The broker's queue — submitted :class:`~repro.serve.broker.JobSpec`\\ s,
task attempt counts, lease grants, terminal failures — used to live
only in memory; a broker crash dropped every queued job even though the
committed chunks themselves are durable in the content-addressed store.
``journal.jsonl`` closes that gap with the same write discipline as the
result store and :class:`repro.obs.ledger.EventLedger`: every record is
one JSON line, appended with a single ``os.write`` on an ``O_APPEND``
descriptor followed by ``fsync``, so concurrent appends never interleave
partial lines and a crash tears at worst the final line — which
:meth:`BrokerJournal.read` skips and counts, never fatal.

The journal is a *redo log of intent*, not a state snapshot: recovery
(:meth:`repro.serve.Broker` with ``state_dir=``) replays the records
**against the store's actual chunk coverage** — each ``job`` record is
re-planned with the exact submit-time planning code, so chunks that
were committed before (or after!) the crash drop out of the rebuilt
queue automatically, and nothing is ever re-simulated.  ``grant``
records restore per-task attempt counts and advance the lease-id
counter past every id ever issued (a stale pre-crash worker can then
never collide with a post-restart lease); outstanding leases themselves
are *not* restored — they are reaped as expired, which requeues their
tasks exactly like a worker death.

Record kinds (all carry ``schema`` + ``kind``):

``job``
    ``{job_id, spec}`` — a validated submission; ``spec`` is the
    :meth:`JobSpec.to_dict` payload and round-trips losslessly.
``grant``
    ``{task_id, lease}`` — a lease grant; ``lease`` is
    :meth:`repro.serve.leases.Lease.to_dict` (the serialized claim).
``commit``
    ``{task_id}`` — appended *after* the store ingest succeeded, so a
    commit record always implies the chunk is durable in the store.
``release``
    ``{task_id}`` — a graceful worker shutdown returned the lease; the
    grant's attempt is un-counted on replay.
``requeue``
    ``{task_id, reason}`` — an expired lease or reported worker
    failure put the task back in the queue (attempts stay counted).
``task_failed``
    ``{task_id, reason}`` — terminal: the attempt cap was reached and
    the task plus every attached job failed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["JOURNAL_NAME", "JOURNAL_SCHEMA_VERSION", "BrokerJournal",
           "validate_record"]

#: File name of the broker journal inside a ``--state-dir`` directory.
JOURNAL_NAME = "journal.jsonl"

#: Journal record schema version (bump on incompatible shape changes).
JOURNAL_SCHEMA_VERSION = 1

_KINDS = ("job", "grant", "commit", "release", "requeue", "task_failed")

_REQUIRED_FIELDS = {
    "job": ("job_id", "spec"),
    "grant": ("task_id", "lease"),
    "commit": ("task_id",),
    "release": ("task_id",),
    "requeue": ("task_id", "reason"),
    "task_failed": ("task_id", "reason"),
}


def validate_record(record) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid journal record.

    Checks the envelope (``schema`` pin, known ``kind``), the
    kind-specific required fields, and JSON-serializability — the single
    source of truth both the appender and the replayer trust.
    """
    if not isinstance(record, dict):
        raise ValueError(
            f"journal record must be a dict, got {type(record).__name__}")
    if record.get("schema") != JOURNAL_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported journal schema {record.get('schema')!r} "
            f"(expected {JOURNAL_SCHEMA_VERSION})")
    kind = record.get("kind")
    if kind not in _KINDS:
        raise ValueError(f"unknown journal record kind {kind!r}")
    for field in _REQUIRED_FIELDS[kind]:
        value = record.get(field)
        if value is None:
            raise ValueError(f"{kind!r} journal record needs {field!r}")
        if field in ("job_id", "task_id", "reason") \
                and not isinstance(value, str):
            raise ValueError(f"journal field {field!r} must be a string, "
                             f"got {value!r}")
        if field in ("spec", "lease") and not isinstance(value, dict):
            raise ValueError(f"journal field {field!r} must be an object, "
                             f"got {value!r}")
    try:
        json.dumps(record)
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"journal record is not JSON-serializable: {error}") from None


class BrokerJournal:
    """The append-only ``journal.jsonl`` of one broker state directory.

    Writes are validated, serialized with sorted keys, and flushed with
    the store's ``O_APPEND`` + ``fsync`` discipline; reads tolerate (and
    count) a torn tail line from a crashed append.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)

    def record(self, kind: str, **fields) -> dict:
        """Append one record of ``kind`` with ``fields``; returns it."""
        record = {"schema": JOURNAL_SCHEMA_VERSION, "kind": kind, **fields}
        self.append([record])
        return record

    def append(self, records) -> int:
        """Validate and append a batch of records; returns the count.

        The whole batch goes out as one ``os.write`` on an ``O_APPEND``
        descriptor followed by ``fsync`` — atomic with respect to
        concurrent appenders, durable up to the last completed batch.

        Unlike the run ledger (one writer, one run), the journal is
        re-opened for appending after a crash, so a torn tail left
        without its newline would glue the next record onto the corrupt
        bytes and destroy it too.  The first append to a file whose last
        byte is not a newline therefore terminates the torn line first,
        confining the damage to the line that was already lost.
        """
        records = list(records)
        if not records:
            return 0
        lines = []
        for record in records:
            validate_record(record)
            lines.append(json.dumps(record, sort_keys=True))
        payload = "\n".join(lines) + "\n"
        if self._tail_is_torn():
            payload = "\n" + payload
        self.path.parent.mkdir(parents=True, exist_ok=True)
        descriptor = os.open(self.path,
                             os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(descriptor, payload.encode("utf-8"))
            os.fsync(descriptor)
        finally:
            os.close(descriptor)
        return len(records)

    def _tail_is_torn(self) -> bool:
        """Whether the file ends mid-line (crashed append, no newline)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):
            return False  # missing or empty file: nothing to heal

    def read(self) -> tuple[list[dict], int]:
        """Load the journal; returns ``(records, corrupt_count)``.

        Corrupt or truncated lines — the torn tail of a crashed append,
        or bit rot — are skipped and counted, never fatal: losing the
        final grant or requeue record costs at most one redundant (and
        bit-identical) chunk re-execution, exactly like a worker death.
        """
        if not self.path.exists():
            return [], 0
        records: list[dict] = []
        corrupt = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    validate_record(record)
                except (json.JSONDecodeError, ValueError):
                    corrupt += 1
                    continue
                records.append(record)
        return records, corrupt
