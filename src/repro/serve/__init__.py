"""Sweep service: a broker that leases seeded packet chunks to workers.

ROADMAP item 1 ("one shared cache, many clients") realized as a small
stdlib-only service.  Clients submit sweep grids to a :class:`Broker`
(usually over the HTTP API in :mod:`repro.serve.api`); the broker
decomposes each grid into the same seeded packet-chunk units the local
:class:`repro.runs.RunDriver` schedules — identical
:func:`repro.runs.store.measurement_key` content addresses, identical
:func:`repro.sim.engine.chunk_spans` layout — and hands the missing
chunks out as time-limited *leases* to pull-based workers
(:mod:`repro.serve.worker`).  Because every chunk's random stream is
content-seeded, a fleet run merges bit-identically to a local run of the
same grid, whatever workers executed which chunks in whatever order.

Lifecycle: ``submit -> lease -> heartbeat -> commit``.  A worker that
dies mid-chunk simply stops heartbeating; its lease expires and the
chunk is re-leased to the next worker.  Commits are at-most-once by
construction: the :class:`repro.runs.ResultStore` is content-addressed
and idempotent for identical replays, so a stale worker's late commit
either lands as a no-op duplicate or is rejected as a conflict — it can
never double-count packets.

Durability: with ``state_dir`` (CLI ``--state-dir``) the broker
journals every submission, grant, commit and failure to an append-only
fsynced ``journal.jsonl`` (:mod:`repro.serve.journal`) and, on restart,
replays it against the store's actual chunk coverage — committed
chunks drop out of the rebuilt queue, outstanding leases are reaped as
expired, job ids survive, and a SIGKILLed broker resumes mid-job
without re-simulating a single committed chunk.
"""

from repro.serve.broker import Broker, BrokerDrainingError, JobSpec
from repro.serve.journal import BrokerJournal
from repro.serve.leases import (Lease, LeaseError, LeaseExpiredError,
                                LeaseTable, UnknownLeaseError)
from repro.serve.worker import (BrokerClient, BrokerTransportError, Worker,
                                WorkerShutdown)

__all__ = [
    "Broker",
    "BrokerClient",
    "BrokerDrainingError",
    "BrokerJournal",
    "BrokerTransportError",
    "JobSpec",
    "Lease",
    "LeaseError",
    "LeaseExpiredError",
    "LeaseTable",
    "UnknownLeaseError",
    "Worker",
    "WorkerShutdown",
]
