"""Time-limited chunk leases: who is working on what, until when.

A lease is the broker's claim ticket for one chunk task: it names the
task, the worker holding it, and a deadline.  Workers extend the
deadline by heartbeating; a worker that dies (or loses the network)
simply stops renewing, the deadline passes, and :meth:`LeaseTable.reap`
returns the lease so the broker can hand the chunk to someone else.
The table is pure bookkeeping — no threads, no timers — driven entirely
by an injectable monotonic clock, which is what makes lease-expiry
behaviour unit-testable without sleeping.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

__all__ = ["Lease", "LeaseError", "LeaseExpiredError", "LeaseTable",
           "UnknownLeaseError"]


class LeaseError(ValueError):
    """Base class for lease bookkeeping errors."""


class UnknownLeaseError(LeaseError):
    """The lease id names no live lease (never granted, or already
    released/reaped — e.g. a commit arriving after the lease expired and
    the chunk was handed to another worker)."""


class LeaseExpiredError(LeaseError):
    """The lease exists but its deadline has passed; the holder must not
    act on it any further."""


@dataclass(frozen=True)
class Lease:
    """One worker's time-limited claim on one chunk task."""

    lease_id: str
    task_id: str
    worker_id: str
    granted_at: float
    deadline: float
    attempt: int

    def expired(self, now: float) -> bool:
        """Whether the deadline has passed at monotonic time ``now``."""
        return now > self.deadline

    def to_dict(self) -> dict:
        """The JSON-safe serialized claim (journal ``grant`` records)."""
        return {"lease_id": self.lease_id, "task_id": self.task_id,
                "worker_id": self.worker_id,
                "granted_at": self.granted_at, "deadline": self.deadline,
                "attempt": self.attempt}

    @classmethod
    def from_dict(cls, data: dict) -> "Lease":
        """Rebuild a lease from :meth:`to_dict` output (raises
        ``ValueError``/``KeyError``/``TypeError`` on malformed data)."""
        return cls(lease_id=str(data["lease_id"]),
                   task_id=str(data["task_id"]),
                   worker_id=str(data["worker_id"]),
                   granted_at=float(data["granted_at"]),
                   deadline=float(data["deadline"]),
                   attempt=int(data["attempt"]))


class LeaseTable:
    """Live leases, keyed by lease id, with deadline bookkeeping.

    Parameters
    ----------
    timeout_s:
        Seconds a lease stays valid without a renewal.  Workers should
        heartbeat at a small fraction of this.
    clock:
        Monotonic time source (default :func:`time.monotonic`); tests
        inject a fake to step time deterministically.
    """

    def __init__(self, timeout_s: float = 30.0, clock=time.monotonic) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = float(timeout_s)
        self._clock = clock
        self._leases: dict[str, Lease] = {}
        self._by_task: dict[str, str] = {}
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, lease_id: str) -> bool:
        return lease_id in self._leases

    def grant(self, task_id: str, worker_id: str, attempt: int = 1) -> Lease:
        """Grant a fresh lease on ``task_id`` to ``worker_id``.

        Raises :class:`LeaseError` while another unexpired lease holds
        the task — the broker must reap before re-leasing.
        """
        now = self._clock()
        holder_id = self._by_task.get(task_id)
        if holder_id is not None:
            holder = self._leases[holder_id]
            if not holder.expired(now):
                raise LeaseError(
                    f"task {task_id} is already leased to worker "
                    f"{holder.worker_id} (lease {holder.lease_id})")
            self._drop(holder)
        lease = Lease(lease_id=f"lease-{next(self._ids):06d}",
                      task_id=task_id, worker_id=worker_id,
                      granted_at=now, deadline=now + self.timeout_s,
                      attempt=int(attempt))
        self._leases[lease.lease_id] = lease
        self._by_task[task_id] = lease.lease_id
        return lease

    def get(self, lease_id: str) -> Lease:
        """The live lease named ``lease_id``; raises if unknown."""
        lease = self._leases.get(lease_id)
        if lease is None:
            raise UnknownLeaseError(
                f"unknown lease {lease_id!r} (expired and reaped, or "
                "never granted)")
        return lease

    def renew(self, lease_id: str) -> Lease:
        """Extend a lease's deadline (the heartbeat).

        An expired-but-not-yet-reaped lease cannot be revived: raising
        :class:`LeaseExpiredError` tells the worker to abandon the chunk
        — the broker may already have promised it elsewhere.
        """
        lease = self.get(lease_id)
        now = self._clock()
        if lease.expired(now):
            self._drop(lease)
            raise LeaseExpiredError(
                f"lease {lease_id} on task {lease.task_id} expired "
                f"{now - lease.deadline:.1f}s ago; stop working on it")
        renewed = Lease(lease_id=lease.lease_id, task_id=lease.task_id,
                        worker_id=lease.worker_id,
                        granted_at=lease.granted_at,
                        deadline=now + self.timeout_s,
                        attempt=lease.attempt)
        self._leases[lease_id] = renewed
        return renewed

    def release(self, lease_id: str) -> Lease:
        """Remove and return a live lease (the commit path).

        The caller decides what an expired-but-present lease means; the
        lease is removed and returned either way, with its recorded
        deadline intact for the caller to inspect.
        """
        lease = self.get(lease_id)
        self._drop(lease)
        return lease

    def reap(self) -> list[Lease]:
        """Remove and return every lease whose deadline has passed.

        The broker calls this before granting work: each reaped lease's
        task goes back to the pending queue (with its attempt count
        bumped), which is the entire worker-death recovery mechanism.
        """
        now = self._clock()
        expired = [lease for lease in self._leases.values()
                   if lease.expired(now)]
        for lease in expired:
            self._drop(lease)
        return expired

    def active(self) -> tuple[Lease, ...]:
        """Every live (granted, unreaped) lease."""
        return tuple(self._leases.values())

    def advance_ids(self, past: int) -> None:
        """Ensure the next granted lease id is greater than ``past``.

        Recovery replays the journal's grant records through this so a
        restarted broker never reissues a lease id a pre-crash worker
        might still present — an old id must resolve to *unknown*
        (ingested as a stale commit), never to someone else's lease.
        """
        past = int(past)
        current = next(self._ids)
        self._ids = itertools.count(max(current, past + 1))

    def _drop(self, lease: Lease) -> None:
        self._leases.pop(lease.lease_id, None)
        if self._by_task.get(lease.task_id) == lease.lease_id:
            del self._by_task[lease.task_id]
