"""The sweep broker: grids in, chunk leases out, curves assembled.

The broker is the service-side twin of :class:`repro.runs.RunDriver`:
it plans work the exact same way — per-point
:func:`repro.runs.store.measurement_key` content addresses, the
uncovered tail decomposed with :func:`repro.sim.engine.chunk_spans`,
already-stored chunks skipped — but instead of simulating the missing
chunks itself it queues them as :class:`ChunkTask` units and hands them
to pull-based workers under time-limited leases
(:class:`repro.serve.leases.LeaseTable`).

Because tasks are keyed by ``(measurement key, packet offset)`` they are
shared *across jobs*: two clients submitting overlapping grids against
one broker deduplicate into one simulation pass and one cache entry —
the ROADMAP's "millions of users, one warehouse" shape in miniature.

At-most-once commit falls out of the content-addressed store: commits
are idempotent for identical replays and raise on conflicting
measurements, so a stale worker (lease expired, chunk re-leased and
possibly already committed by someone else) can never double-count —
its late commit is either a recorded duplicate or a rejected conflict.
Seeded chunks make the duplicate case the only one a healthy fleet ever
produces: every worker simulating a given chunk produces bit-identical
counts.

All queue state lives in one process behind one lock; the store holds
the committed chunks durably either way.  With a ``state_dir`` the
queue state is durable too: submissions, lease grants, attempt counts
and terminal failures are journaled to an append-only fsynced
``journal.jsonl`` (:mod:`repro.serve.journal`), and a restarted broker
replays it against the store's actual chunk coverage — committed chunks
drop out of the rebuilt queue, outstanding leases are reaped as
expired, and job ids (hence in-flight ``curve()`` clients) survive the
restart.  Without a ``state_dir`` the historical behaviour remains:
queued jobs die with the process, committed chunks never do.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.metrics import BERPoint
from repro.obs.recorder import Recorder, activate
from repro.runs.store import ResultStore, measurement_key
from repro.serve.journal import JOURNAL_NAME, BrokerJournal
from repro.serve.leases import LeaseTable, UnknownLeaseError
from repro.sim.engine import SweepEngine, SweepPoint, SweepResult, chunk_spans

__all__ = ["Broker", "BrokerDrainingError", "BrokerError", "ChunkTask",
           "CommitConflictError", "JobSpec", "UnknownJobError",
           "result_from_curve_payload"]


def result_from_curve_payload(payload: dict) -> SweepResult:
    """Rebuild a :class:`SweepResult` from a ``curve`` response payload.

    The inverse of :meth:`Broker.curve`'s ``points`` encoding — what a
    remote client (``python -m repro submit --export``) uses to feed the
    standard artifact exporter with a fleet-produced curve.
    """
    result = SweepResult()
    for entry in payload.get("points", ()):
        result.entries.append((_point_from_dict(entry["point"]),
                               BERPoint.from_dict(entry["measurement"])))
    return result

_GENERATIONS = ("gen1", "gen2")
_BACKENDS = ("batch", "fullstack", "packet")


class BrokerError(ValueError):
    """Base class for broker request errors (bad specs, unknown ids)."""


class UnknownJobError(BrokerError):
    """The job id names no submitted job."""


class BrokerDrainingError(BrokerError):
    """The broker is shutting down and no longer accepts new work."""


class CommitConflictError(BrokerError):
    """A committed measurement conflicts with what the store already
    holds for that chunk — a nondeterministic or misconfigured worker,
    never a healthy retry (seeded chunks replay bit-identically)."""


def _id_serial(identifier: str) -> int:
    """The numeric suffix of ids like ``job-0007``/``lease-000012``
    (0 when there is none) — how recovery restores id counters."""
    try:
        return int(str(identifier).rsplit("-", 1)[-1])
    except ValueError:
        return 0


def _point_to_dict(point: SweepPoint) -> dict:
    return {"ebn0_db": float(point.ebn0_db), "scenario": point.scenario,
            "modulation": point.modulation, "adc_bits": point.adc_bits}


def _point_from_dict(data) -> SweepPoint:
    if not isinstance(data, dict):
        raise BrokerError("each grid point must be an object with "
                          "ebn0_db/scenario/modulation/adc_bits")
    try:
        adc_bits = data.get("adc_bits")
        return SweepPoint(
            ebn0_db=float(data["ebn0_db"]),
            scenario=str(data.get("scenario", "awgn")),
            modulation=str(data.get("modulation", "bpsk")),
            adc_bits=None if adc_bits is None else int(adc_bits))
    except (KeyError, TypeError, ValueError) as error:
        raise BrokerError(f"malformed grid point {data!r}: {error}") \
            from None


@dataclass(frozen=True)
class JobSpec:
    """One submitted grid: the points plus everything that shapes results.

    The JSON-able subset of a :class:`repro.sim.SweepEngine` + budget —
    deliberately mirroring the ``python -m repro sweep`` arguments, and
    deliberately *excluding* custom base configs (they do not round-trip
    through JSON; a grid needing one runs through the local driver).
    """

    points: tuple[SweepPoint, ...]
    num_packets: int = 32
    payload_bits_per_packet: int = 64
    chunk_packets: int | None = None
    seed: int = 0
    generation: str = "gen2"
    backend: str = "batch"
    quantize: bool = True
    array_backend: str | None = None
    name: str | None = None

    @classmethod
    def from_dict(cls, data) -> "JobSpec":
        """Parse and validate a submission payload (raises
        :class:`BrokerError` with a client-actionable message)."""
        if not isinstance(data, dict):
            raise BrokerError("job spec must be a JSON object")
        points_data = data.get("points")
        if not isinstance(points_data, list) or not points_data:
            raise BrokerError("job spec needs a non-empty 'points' list")
        points = tuple(_point_from_dict(entry) for entry in points_data)
        try:
            spec = cls(
                points=points,
                num_packets=int(data.get("num_packets", 32)),
                payload_bits_per_packet=int(
                    data.get("payload_bits_per_packet", 64)),
                chunk_packets=(None if data.get("chunk_packets") is None
                               else int(data["chunk_packets"])),
                seed=int(data.get("seed", 0)),
                generation=str(data.get("generation", "gen2")),
                backend=str(data.get("backend", "batch")),
                quantize=bool(data.get("quantize", True)),
                array_backend=(None if data.get("array_backend") is None
                               else str(data["array_backend"])),
                name=(None if data.get("name") is None
                      else str(data["name"])))
        except (TypeError, ValueError) as error:
            raise BrokerError(f"malformed job spec: {error}") from None
        if spec.num_packets < 1:
            raise BrokerError("num_packets must be >= 1")
        if spec.payload_bits_per_packet < 1:
            raise BrokerError("payload_bits_per_packet must be >= 1")
        if spec.chunk_packets is not None and spec.chunk_packets < 1:
            raise BrokerError("chunk_packets must be >= 1 (or null)")
        if spec.generation not in _GENERATIONS:
            raise BrokerError(f"unknown generation {spec.generation!r}; "
                              f"known: {', '.join(_GENERATIONS)}")
        if spec.backend not in _BACKENDS:
            raise BrokerError(f"unknown backend {spec.backend!r}; "
                              f"known: {', '.join(_BACKENDS)}")
        return spec

    def to_dict(self) -> dict:
        """The submission payload this spec round-trips through."""
        return {"points": [_point_to_dict(point) for point in self.points],
                "num_packets": self.num_packets,
                "payload_bits_per_packet": self.payload_bits_per_packet,
                "chunk_packets": self.chunk_packets,
                "seed": self.seed,
                "generation": self.generation,
                "backend": self.backend,
                "quantize": self.quantize,
                "array_backend": self.array_backend,
                "name": self.name}

    def engine_params(self) -> dict:
        """The engine-shaping fields a worker needs to replay a chunk."""
        return {"seed": self.seed, "generation": self.generation,
                "backend": self.backend, "quantize": self.quantize,
                "array_backend": self.array_backend}

    def build_engine(self) -> SweepEngine:
        """The engine this spec describes (default base config)."""
        return SweepEngine(generation=self.generation, seed=self.seed,
                           backend=self.backend, quantize=self.quantize,
                           array_backend=self.array_backend,
                           chunk_packets=self.chunk_packets)


@dataclass
class ChunkTask:
    """One leasable unit of work: a seeded packet chunk of one point.

    Identity is ``(measurement key, packet offset)`` — the same pair the
    store caches under — so overlapping jobs share tasks and a committed
    chunk satisfies every job that wanted it.
    """

    task_id: str
    key: str
    point: SweepPoint
    packet_offset: int
    num_packets: int
    payload_bits_per_packet: int
    engine_params: dict
    state: str = "pending"  # pending | leased | done | failed
    attempts: int = 0
    job_ids: set = field(default_factory=set)
    last_error: str | None = None

    def descriptor(self) -> dict:
        """The self-contained work order a worker receives with a lease."""
        return {"task_id": self.task_id,
                "point": _point_to_dict(self.point),
                "packet_offset": self.packet_offset,
                "num_packets": self.num_packets,
                "payload_bits_per_packet": self.payload_bits_per_packet,
                "engine": dict(self.engine_params)}


@dataclass
class _Job:
    job_id: str
    spec: JobSpec
    keys: tuple[str, ...]
    task_ids: tuple[str, ...]
    remaining: int
    points_cached: int
    chunks_shared: int
    state: str = "running"  # running | done | failed
    version: int = 0
    error: str | None = None


class Broker:
    """Plans submitted grids into chunk tasks and leases them to workers.

    Parameters
    ----------
    store_dir:
        Directory of the shared content-addressed result store (opened
        via :meth:`repro.runs.ResultStore.open` — JSONL or SQLite).
    store_format:
        Explicit store backend for a fresh directory (``None``: detect,
        then ``REPRO_STORE_FORMAT``, then JSONL).
    lease_timeout_s:
        Seconds a chunk lease survives without a heartbeat.
    max_attempts:
        Lease grants per task before it (and every job needing it) is
        marked failed.
    clock:
        Monotonic time source shared with the lease table; tests inject
        a fake to drive expiry deterministically.
    recorder:
        The :class:`repro.obs.Recorder` service counters land in
        (default: a fresh one).  Store hit/miss counters accumulate here
        too, which is where the status endpoint's cache hit rates come
        from.
    state_dir:
        Directory for durable broker state.  When given, every
        submission, lease grant, commit and failure is appended to an
        fsynced ``journal.jsonl`` there, and an existing journal is
        replayed on construction: jobs are re-planned against the
        store's current coverage (committed chunks drop out), attempt
        counts are restored, and outstanding pre-crash leases are
        reaped as expired so their chunks requeue.  ``None`` (default)
        keeps the historical in-memory-only queue.
    """

    def __init__(self, store_dir, store_format: str | None = None,
                 lease_timeout_s: float = 30.0, max_attempts: int = 5,
                 clock=time.monotonic, recorder: Recorder | None = None,
                 state_dir=None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.recorder = Recorder() if recorder is None else recorder
        self.store = ResultStore.open(store_dir, format=store_format,
                                      writer_name="serve.jsonl")
        self.max_attempts = int(max_attempts)
        self._clock = clock
        self._started = clock()
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._leases = LeaseTable(timeout_s=lease_timeout_s, clock=clock)
        self._jobs: dict[str, _Job] = {}
        self._tasks: dict[str, ChunkTask] = {}
        self._queue: list[str] = []
        self._workers: dict[str, dict] = {}
        self._job_counter = 0
        self._worker_counter = 0
        self._draining = False
        self._journal: BrokerJournal | None = None
        if state_dir is not None:
            self._journal = BrokerJournal(Path(state_dir) / JOURNAL_NAME)
            self._recover()

    @property
    def draining(self) -> bool:
        """Whether :meth:`begin_shutdown` stopped new submissions/leases."""
        with self._lock:
            return self._draining

    def begin_shutdown(self) -> None:
        """Stop accepting submissions and lease grants (graceful drain).

        Called from the SIGTERM path before the process exits: the
        journal is already flushed per append, in-flight leases stay
        journaled (a restarted broker reaps them as expired), and
        long-polling ``curve()`` clients are woken so they observe the
        current state instead of blocking on a dying process.
        """
        with self._changed:
            self._draining = True
            self._changed.notify_all()

    def close(self) -> None:
        """Release the store's backend resources."""
        self.store.close()

    def _journal_record(self, kind: str, **fields) -> None:
        if self._journal is not None:
            self._journal.record(kind, **fields)

    # ------------------------------------------------------------------
    # Submission and planning
    # ------------------------------------------------------------------
    def submit(self, spec_data) -> dict:
        """Plan a submitted grid into tasks; returns the job descriptor.

        Planning mirrors :meth:`repro.runs.RunDriver.run_shard` exactly:
        fully covered points are cache hits, partially covered points
        contribute only their missing chunks, and chunks already queued
        by an earlier overlapping job are attached rather than
        duplicated.  A grid that is entirely cached completes without a
        single lease being granted.
        """
        spec = (spec_data if isinstance(spec_data, JobSpec)
                else JobSpec.from_dict(spec_data))
        with self._changed, activate(self.recorder):
            if self._draining:
                raise BrokerDrainingError(
                    "broker is draining for shutdown; submit to a "
                    "restarted broker (queued state is journaled)")
            self._reap()
            self._job_counter += 1
            job_id = f"job-{self._job_counter:04d}"
            job = self._plan_job(spec, job_id)
            self._journal_record("job", job_id=job_id, spec=spec.to_dict())
            self.recorder.counter("serve.jobs_submitted")
            self._changed.notify_all()
            return self._job_descriptor(job)

    def _plan_job(self, spec: JobSpec, job_id: str) -> _Job:
        """Plan ``spec`` into tasks under ``job_id`` (caller holds the
        lock).  Shared verbatim by :meth:`submit` and journal replay —
        replaying a ``job`` record against the *current* store coverage
        is exactly what drops already-committed chunks from a rebuilt
        queue."""
        engine = spec.build_engine()
        engine._validate_modulations(spec.points)
        config_digest = engine.config_digest()
        requested = spec.num_packets
        keys = []
        task_ids: list[str] = []
        points_cached = 0
        chunks_shared = 0
        for point in spec.points:
            key = measurement_key(engine.point_digest(point),
                                  config_digest,
                                  spec.payload_bits_per_packet)
            keys.append(key)
            if self.store.lookup(key, requested) is not None:
                points_cached += 1
                continue
            covered = self.store.coverage(key)
            stored = self.store.chunks_for(key)
            spans = chunk_spans(requested - covered,
                                spec.chunk_packets, covered)
            missing = [(offset, packets) for offset, packets in spans
                       if stored.get(offset) != packets]
            for offset, packets in missing:
                task_id = f"{key}:{offset}"
                task = self._tasks.get(task_id)
                if task is not None and task.state != "failed":
                    chunks_shared += 1
                else:
                    payload_bits = spec.payload_bits_per_packet
                    task = ChunkTask(
                        task_id=task_id, key=key, point=point,
                        packet_offset=int(offset),
                        num_packets=int(packets),
                        payload_bits_per_packet=payload_bits,
                        engine_params=spec.engine_params())
                    self._tasks[task_id] = task
                    self._queue.append(task_id)
                task.job_ids.add(job_id)
                task_ids.append(task_id)
        job = _Job(job_id=job_id, spec=spec, keys=tuple(keys),
                   task_ids=tuple(task_ids), remaining=len(task_ids),
                   points_cached=points_cached,
                   chunks_shared=chunks_shared)
        if job.remaining == 0:
            job.state = "done"
        self._jobs[job_id] = job
        self.recorder.counter("serve.chunks_planned",
                              len(task_ids) - chunks_shared)
        self.recorder.counter("serve.chunks_shared", chunks_shared)
        return job

    # ------------------------------------------------------------------
    # Journal recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild queue state by replaying the journal (constructor).

        The journal is a redo log of intent, not a snapshot: ``job``
        records re-run the exact submit-time planning against the
        store's *current* coverage, so chunks committed at any time —
        before or after the crash — are dropped rather than
        re-simulated.  ``grant`` records restore attempt counts and
        advance the lease-id counter past every id ever issued; the
        leases themselves are not restored (reaped as expired), so any
        task that was leased at the crash sits requeued as pending.
        Replay is idempotent: recovering twice from the same journal
        (and store) reaches the same state.
        """
        records, corrupt = self._journal.read()
        if corrupt:
            self.recorder.counter("serve.journal_corrupt_lines", corrupt)
        if not records:
            return
        outstanding: dict[str, int] = {}  # task_id -> live grants at crash
        max_lease_serial = 0
        with self._lock, activate(self.recorder):
            for record in records:
                kind = record["kind"]
                task = self._tasks.get(record.get("task_id", ""))
                if kind == "job":
                    job_id = str(record["job_id"])
                    try:
                        spec = JobSpec.from_dict(record["spec"])
                        self._job_counter = max(
                            self._job_counter, _id_serial(job_id))
                        self._plan_job(spec, job_id)
                    except (BrokerError, ValueError):
                        # A journal written by an incompatible code
                        # version; skip the job, keep the broker up.
                        self.recorder.counter(
                            "serve.jobs_recovery_skipped")
                        continue
                    self.recorder.counter("serve.jobs_recovered")
                elif kind == "grant":
                    lease_data = record["lease"]
                    max_lease_serial = max(
                        max_lease_serial,
                        _id_serial(str(lease_data.get("lease_id", ""))))
                    if task is not None:
                        task.attempts = max(
                            task.attempts, int(lease_data.get("attempt", 1)))
                        outstanding[task.task_id] = \
                            outstanding.get(task.task_id, 0) + 1
                elif kind == "release":
                    if task is not None:
                        # A graceful worker shutdown returned the lease;
                        # that grant never counts toward max_attempts.
                        task.attempts = max(task.attempts - 1, 0)
                        outstanding[task.task_id] = max(
                            outstanding.get(task.task_id, 0) - 1, 0)
                elif kind == "commit":
                    # Appended only after the store ingest succeeded, so
                    # planning already dropped the chunk; the store is
                    # the truth and nothing needs marking here.
                    outstanding.pop(record["task_id"], None)
                elif kind == "requeue":
                    outstanding.pop(record["task_id"], None)
                elif kind == "task_failed":
                    outstanding.pop(record["task_id"], None)
                    if task is not None and task.state != "failed":
                        self._fail_task(task, str(record["reason"]))
            self._leases.advance_ids(max_lease_serial)
            requeued = sum(
                1 for task_id, grants in outstanding.items() if grants > 0
                and (task := self._tasks.get(task_id)) is not None
                and task.state == "pending")
            self.recorder.counter("serve.tasks_requeued", requeued)

    # ------------------------------------------------------------------
    # Worker-facing: register / lease / heartbeat / commit
    # ------------------------------------------------------------------
    def register_worker(self, name: str | None = None) -> dict:
        """Register a worker; returns its assigned id."""
        with self._lock:
            self._worker_counter += 1
            worker_id = f"worker-{self._worker_counter:04d}"
            self._workers[worker_id] = {
                "worker_id": worker_id,
                "name": name or worker_id,
                "registered_at": self._clock(),
                "last_seen": self._clock(),
                "chunks_committed": 0,
            }
            self.recorder.counter("serve.workers_registered")
            return {"worker_id": worker_id,
                    "lease_timeout_s": self._leases.timeout_s}

    def lease(self, worker_id: str) -> dict:
        """Hand the next pending chunk to ``worker_id`` (the pull).

        Returns ``{"task": <descriptor>, "lease_id": ..., ...}`` or,
        when nothing is pending, ``{"task": None, "outstanding": N}``
        with the number of chunks still leased or queued — workers use
        ``outstanding == 0`` as their exit-when-idle signal.
        """
        with self._lock:
            self._touch_worker(worker_id)
            self._reap()
            while self._queue and not self._draining:
                task = self._tasks.get(self._queue.pop(0))
                if task is None or task.state != "pending":
                    continue  # committed or failed while queued
                task.state = "leased"
                task.attempts += 1
                lease = self._leases.grant(task.task_id, worker_id,
                                           attempt=task.attempts)
                self._journal_record("grant", task_id=task.task_id,
                                     lease=lease.to_dict())
                self.recorder.counter("serve.chunks_leased")
                return {"task": task.descriptor(),
                        "lease_id": lease.lease_id,
                        "attempt": lease.attempt,
                        "lease_timeout_s": self._leases.timeout_s}
            outstanding = sum(1 for task in self._tasks.values()
                              if task.state in ("pending", "leased"))
            response = {"task": None, "outstanding": outstanding}
            if self._draining:
                response["draining"] = True
            return response

    def heartbeat(self, lease_id: str) -> dict:
        """Renew a lease (raises :class:`repro.serve.leases.LeaseError`
        when it is unknown or already expired)."""
        with self._lock:
            self._reap()
            lease = self._leases.renew(lease_id)
            self._touch_worker(lease.worker_id)
            self.recorder.counter("serve.heartbeats")
            return {"lease_id": lease.lease_id,
                    "lease_timeout_s": self._leases.timeout_s}

    def commit(self, lease_id: str, task_id: str, measurement_data) -> dict:
        """Ingest one simulated chunk (the at-most-once commit point).

        The happy path releases the lease and stores the chunk.  A
        *stale* commit — the lease expired and was reaped, possibly with
        the chunk already re-executed by another worker — is still
        ingested through the store's idempotent replay check: identical
        counts land as a duplicate (a no-op beyond telemetry), different
        counts raise :class:`CommitConflictError`.  Either way packets
        are never double-counted.
        """
        measurement = BERPoint.from_dict(measurement_data)
        with self._changed, activate(self.recorder):
            self._reap()
            stale = False
            try:
                lease = self._leases.release(lease_id)
                if lease.task_id != task_id:
                    raise BrokerError(
                        f"lease {lease_id} covers task {lease.task_id}, "
                        f"not {task_id}")
                if lease.expired(self._clock()):
                    stale = True
                self._touch_worker(lease.worker_id)
            except UnknownLeaseError:
                stale = True
            task = self._tasks.get(task_id)
            if task is None:
                raise BrokerError(f"unknown task {task_id!r}")
            duplicate = task.state == "done"
            try:
                self.store.add_chunk(task.key, task.packet_offset,
                                     measurement)
            except ValueError as error:
                self.recorder.counter("serve.commit_conflicts")
                raise CommitConflictError(
                    f"chunk {task_id} commit conflicts with the stored "
                    f"measurement ({error}); the committing worker is "
                    "not bit-reproducing this chunk — check its code "
                    "version and array backend") from None
            self.recorder.counter("serve.chunks_committed")
            self.recorder.counter("serve.packets_committed",
                                  measurement.packets_sent)
            if stale:
                self.recorder.counter("serve.commits_stale")
            if duplicate:
                self.recorder.counter("serve.commit_duplicates")
            else:
                # Journaled after the store ingest above succeeded: a
                # commit record always implies a durable chunk, so
                # replay never has to trust the journal over the store.
                self._journal_record("commit", task_id=task.task_id)
                task.state = "done"
                task.last_error = None
                for job_id in task.job_ids:
                    job = self._jobs[job_id]
                    job.version += 1
                    job.remaining -= 1
                    if job.remaining == 0 and job.state == "running":
                        job.state = "done"
                self._changed.notify_all()
            return {"ok": True, "duplicate": duplicate, "stale": stale}

    def fail(self, lease_id: str, task_id: str, error: str) -> dict:
        """A worker reporting it cannot complete its chunk.

        Releases the lease and requeues the chunk immediately (rather
        than waiting out the lease timeout); the attempt still counts
        toward ``max_attempts``.
        """
        with self._changed:
            try:
                self._leases.release(lease_id)
            except UnknownLeaseError:
                pass  # already reaped; the task was requeued then
            task = self._tasks.get(task_id)
            if task is None:
                raise BrokerError(f"unknown task {task_id!r}")
            if task.state == "leased":
                self._requeue(task, f"worker error: {error}")
                self._changed.notify_all()
            return {"ok": True, "state": task.state}

    def release(self, lease_id: str, task_id: str) -> dict:
        """A worker gracefully returning a lease it will not finish.

        The shutdown path (SIGTERM'd worker): the chunk requeues
        immediately *and the grant is un-counted* — unlike :meth:`fail`,
        a graceful release never moves a task toward ``max_attempts``,
        because nothing went wrong with the chunk.
        """
        with self._changed:
            try:
                self._leases.release(lease_id)
            except UnknownLeaseError:
                pass  # already reaped; the task was requeued then
            task = self._tasks.get(task_id)
            if task is None:
                raise BrokerError(f"unknown task {task_id!r}")
            if task.state == "leased":
                task.attempts = max(task.attempts - 1, 0)
                task.state = "pending"
                task.last_error = None
                self._queue.append(task.task_id)
                self._journal_record("release", task_id=task.task_id)
                self.recorder.counter("serve.leases_released")
                self._changed.notify_all()
            return {"ok": True, "state": task.state}

    # ------------------------------------------------------------------
    # Client-facing: status / curves
    # ------------------------------------------------------------------
    def job_ids(self) -> tuple[str, ...]:
        """Every submitted job id, in submission order."""
        with self._lock:
            return tuple(self._jobs)

    def job_status(self, job_id: str) -> dict:
        """One job's descriptor: state, version, progress."""
        with self._lock:
            self._reap()
            return self._job_descriptor(self._require_job(job_id))

    def curve(self, job_id: str, wait_version: int | None = None,
              timeout_s: float | None = None) -> dict:
        """The job's measured points, in grid order (the partial curve).

        With ``wait_version`` the call long-polls: it blocks until the
        job's version exceeds it (another chunk landed), the job reaches
        a terminal state, or ``timeout_s`` passes — so clients stream
        curve updates without busy-polling.  Assembly reads the shared
        store exactly like :meth:`repro.runs.RunDriver.merge` (pooled
        contiguous chunks per key, grid order), which is what makes a
        completed fleet curve bit-identical to a local driver run.
        """
        with self._changed:
            job = self._require_job(job_id)
            if wait_version is not None:
                deadline = None if timeout_s is None \
                    else self._clock() + timeout_s
                while (job.version <= wait_version
                       and job.state == "running"
                       and not self._draining):
                    remaining = None if deadline is None \
                        else deadline - self._clock()
                    if remaining is not None and remaining <= 0:
                        break
                    if not self._changed.wait(timeout=remaining):
                        break
            requested = job.spec.num_packets
            entries = []
            for point, key in zip(job.spec.points, job.keys):
                measurement = self.store.lookup(key, requested)
                if measurement is not None:
                    entries.append((point, measurement))
            descriptor = self._job_descriptor(job)
            descriptor["points_measured"] = len(entries)
            descriptor["complete"] = len(entries) == len(job.spec.points)
            descriptor["points"] = [
                {"point": _point_to_dict(point),
                 "measurement": measurement.to_dict()}
                for point, measurement in entries]
            return descriptor

    def result(self, job_id: str) -> SweepResult:
        """The job's measured points as a :class:`SweepResult` (in-process
        convenience; the HTTP path goes through :meth:`curve`)."""
        return result_from_curve_payload(self.curve(job_id))

    def status(self) -> dict:
        """Service-level status: workers, queue depths, throughput,
        per-scenario progress and store cache hit rates."""
        with self._lock:
            self._reap()
            states = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
            scenarios: dict[str, dict] = {}
            for task in self._tasks.values():
                states[task.state] += 1
                entry = scenarios.setdefault(task.point.scenario, {
                    "chunks_total": 0, "chunks_done": 0,
                    "packets_total": 0, "packets_done": 0})
                entry["chunks_total"] += 1
                entry["packets_total"] += task.num_packets
                if task.state == "done":
                    entry["chunks_done"] += 1
                    entry["packets_done"] += task.num_packets
            totals = self.recorder.counter_totals()
            hits = totals.get("store.lookup_hits", 0)
            misses = totals.get("store.lookup_misses", 0)
            lookups = hits + misses
            elapsed = max(self._clock() - self._started, 1e-9)
            committed = totals.get("serve.chunks_committed", 0)
            jobs = {"running": 0, "done": 0, "failed": 0}
            for job in self._jobs.values():
                jobs[job.state] += 1
            return {
                "workers": sorted(self._workers.values(),
                                  key=lambda info: info["worker_id"]),
                "draining": self._draining,
                "durable": self._journal is not None,
                "jobs": jobs,
                "tasks": states,
                "leases_active": len(self._leases),
                "scenarios": scenarios,
                "throughput": {
                    "elapsed_s": elapsed,
                    "chunks_committed": committed,
                    "packets_committed":
                        totals.get("serve.packets_committed", 0),
                    "chunks_per_s": committed / elapsed,
                },
                "cache": {
                    "lookup_hits": hits,
                    "lookup_misses": misses,
                    "hit_rate": hits / lookups if lookups else None,
                },
                "counters": totals,
            }

    def render_metrics(self) -> str:
        """The recorder's Prometheus text exposition (``/metrics``)."""
        with self._lock:
            return self.recorder.render_prom()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def _job_descriptor(self, job: _Job) -> dict:
        done = sum(1 for task_id in set(job.task_ids)
                   if self._tasks[task_id].state == "done")
        return {"job_id": job.job_id,
                "name": job.spec.name,
                "state": job.state,
                "version": job.version,
                "error": job.error,
                "points_total": len(job.spec.points),
                "points_cached_at_submit": job.points_cached,
                "chunks_total": len(job.task_ids),
                "chunks_done": done,
                "chunks_shared": job.chunks_shared,
                "num_packets": job.spec.num_packets}

    def _touch_worker(self, worker_id: str) -> None:
        info = self._workers.get(worker_id)
        if info is None:
            raise BrokerError(f"unknown worker {worker_id!r}; register "
                              "first (POST /api/v1/workers)")
        info["last_seen"] = self._clock()

    def _reap(self) -> None:
        """Expire overdue leases, requeueing or failing their tasks."""
        for lease in self._leases.reap():
            task = self._tasks.get(lease.task_id)
            if task is None or task.state != "leased":
                continue
            self.recorder.counter("serve.leases_expired")
            self._requeue(task,
                          f"lease {lease.lease_id} expired on worker "
                          f"{lease.worker_id} (attempt {lease.attempt})")

    def _requeue(self, task: ChunkTask, reason: str) -> None:
        task.last_error = reason
        if task.attempts >= self.max_attempts:
            self._fail_task(task, reason)
            self._journal_record("task_failed", task_id=task.task_id,
                                 reason=reason)
            self._changed.notify_all()
        else:
            task.state = "pending"
            self._queue.append(task.task_id)
            self._journal_record("requeue", task_id=task.task_id,
                                 reason=reason)

    def _fail_task(self, task: ChunkTask, reason: str) -> None:
        """Mark a task terminally failed and fail every attached job
        (shared by the live attempt-cap path and journal replay)."""
        task.state = "failed"
        task.last_error = reason
        self.recorder.counter("serve.chunks_failed")
        for job_id in task.job_ids:
            job = self._jobs[job_id]
            if job.state == "running":
                job.state = "failed"
                job.error = (f"chunk {task.task_id} failed after "
                             f"{task.attempts} attempt(s): {reason}")
                job.version += 1
