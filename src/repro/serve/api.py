"""Stdlib HTTP front end for the sweep broker.

A thin JSON-over-HTTP veneer on :class:`repro.serve.Broker` built on
``http.server.ThreadingHTTPServer`` — no framework, no dependency.  One
handler thread per request; every route delegates to a broker method,
which does its own locking, so the HTTP layer holds no state at all.

Routes (all JSON unless noted):

===============================================  =========================
``GET  /healthz``                                liveness probe
``GET  /metrics``                                Prometheus text
                                                 (:meth:`Recorder.render_prom`)
``GET  /api/v1/status``                          service status
``POST /api/v1/jobs``                            submit a grid (a
                                                 :class:`JobSpec` payload)
``GET  /api/v1/jobs``                            list job ids
``GET  /api/v1/jobs/<id>``                       one job's status
``GET  /api/v1/jobs/<id>/curve``                 measured points in grid
                                                 order; ``?wait_version=N
                                                 [&timeout=S]`` long-polls
                                                 until more chunks land
``POST /api/v1/workers``                         register a worker
``POST /api/v1/lease``                           pull the next chunk lease
``POST /api/v1/heartbeat``                       renew a lease
``POST /api/v1/commit``                          commit a simulated chunk
``POST /api/v1/fail``                            report a failed chunk
``POST /api/v1/release``                         gracefully return a lease
                                                 (shutdown; attempt
                                                 un-counted)
===============================================  =========================

Error mapping: malformed requests and unknown ids return 400/404,
expired or unknown leases 409 (the worker must drop the chunk), commit
conflicts 409 with ``error_kind: "conflict"``, and a draining broker
503 with ``error_kind: "draining"``.  Query parameters are validated at
the edge: integers must be non-negative, floats non-negative and
finite — ``wait_version=-1`` or ``timeout=nan`` is a 400, never a
value the broker has to reason about.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.serve.broker import (Broker, BrokerDrainingError, BrokerError,
                                CommitConflictError, UnknownJobError)
from repro.serve.leases import LeaseError

__all__ = ["ServeServer", "create_server"]

_MAX_BODY_BYTES = 16 * 1024 * 1024


class _RequestError(Exception):
    """Internal: carries an HTTP status + payload up to the dispatcher."""

    def __init__(self, status: int, message: str, kind: str = "bad_request"):
        super().__init__(message)
        self.status = status
        self.kind = kind


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's broker."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # The broker is attached to the server object by create_server().
    def _broker(self) -> Broker:
        return self.server.broker

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------
    def _send_json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200,
                   content_type: str = "text/plain; charset=utf-8") -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _RequestError(400, "request body required")
        if length > _MAX_BODY_BYTES:
            raise _RequestError(413, "request body too large")
        try:
            data = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _RequestError(400, f"malformed JSON body: {error}") \
                from None
        if not isinstance(data, dict):
            raise _RequestError(400, "request body must be a JSON object")
        return data

    def _dispatch(self, method: str) -> None:
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        query = {name: values[-1]
                 for name, values in parse_qs(parsed.query).items()}
        try:
            self._route(method, parts, query)
        except _RequestError as error:
            self._send_json({"error": str(error),
                             "error_kind": error.kind}, error.status)
        except BrokerDrainingError as error:
            self._send_json({"error": str(error),
                             "error_kind": "draining"}, 503)
        except UnknownJobError as error:
            self._send_json({"error": str(error),
                             "error_kind": "unknown_job"}, 404)
        except CommitConflictError as error:
            self._send_json({"error": str(error),
                             "error_kind": "conflict"}, 409)
        except LeaseError as error:
            self._send_json({"error": str(error),
                             "error_kind": "lease"}, 409)
        except BrokerError as error:
            self._send_json({"error": str(error),
                             "error_kind": "bad_request"}, 400)
        except (ValueError, KeyError) as error:
            self._send_json({"error": str(error),
                             "error_kind": "bad_request"}, 400)

    # -- routing -------------------------------------------------------
    def _route(self, method: str, parts: list[str], query: dict) -> None:
        broker = self._broker()
        if method == "GET" and parts == ["healthz"]:
            self._send_json({"ok": True})
            return
        if method == "GET" and parts == ["metrics"]:
            self._send_text(broker.render_metrics(),
                            content_type="text/plain; version=0.0.4; "
                                         "charset=utf-8")
            return
        if parts[:2] != ["api", "v1"]:
            raise _RequestError(404, f"no such route: {self.path}",
                                kind="not_found")
        route = parts[2:]
        if method == "GET":
            if route == ["status"]:
                self._send_json(broker.status())
                return
            if route == ["jobs"]:
                self._send_json({"jobs": list(broker.job_ids())})
                return
            if len(route) == 2 and route[0] == "jobs":
                self._send_json(broker.job_status(route[1]))
                return
            if len(route) == 3 and route[0] == "jobs" \
                    and route[2] == "curve":
                wait_version = None
                timeout_s = None
                if "wait_version" in query:
                    wait_version = self._int_param(query, "wait_version")
                    timeout_s = self._float_param(query, "timeout", 30.0)
                self._send_json(broker.curve(route[1],
                                             wait_version=wait_version,
                                             timeout_s=timeout_s))
                return
        if method == "POST":
            if route == ["jobs"]:
                self._send_json(broker.submit(self._read_json()), 201)
                return
            if route == ["workers"]:
                body = self._read_body_or_empty()
                self._send_json(
                    broker.register_worker(name=body.get("name")), 201)
                return
            if route == ["lease"]:
                body = self._read_json()
                self._send_json(broker.lease(
                    self._required(body, "worker_id")))
                return
            if route == ["heartbeat"]:
                body = self._read_json()
                self._send_json(broker.heartbeat(
                    self._required(body, "lease_id")))
                return
            if route == ["commit"]:
                body = self._read_json()
                self._send_json(broker.commit(
                    self._required(body, "lease_id"),
                    self._required(body, "task_id"),
                    self._required(body, "measurement")))
                return
            if route == ["fail"]:
                body = self._read_json()
                self._send_json(broker.fail(
                    self._required(body, "lease_id"),
                    self._required(body, "task_id"),
                    str(body.get("error", "unspecified worker error"))))
                return
            if route == ["release"]:
                body = self._read_json()
                self._send_json(broker.release(
                    self._required(body, "lease_id"),
                    self._required(body, "task_id")))
                return
        raise _RequestError(404, f"no such route: {method} {self.path}",
                            kind="not_found")

    def _read_body_or_empty(self) -> dict:
        if int(self.headers.get("Content-Length") or 0) <= 0:
            return {}
        return self._read_json()

    @staticmethod
    def _required(body: dict, name: str):
        value = body.get(name)
        if value is None:
            raise _RequestError(400, f"request body needs {name!r}")
        return value

    @staticmethod
    def _int_param(query: dict, name: str) -> int:
        try:
            value = int(query[name])
        except (ValueError, TypeError):
            raise _RequestError(400, f"query parameter {name!r} must be "
                                     "an integer") from None
        if value < 0:
            raise _RequestError(400, f"query parameter {name!r} must be "
                                     f"non-negative, got {value}")
        return value

    @staticmethod
    def _float_param(query: dict, name: str, default: float) -> float:
        if name not in query:
            return default
        try:
            value = float(query[name])
        except (ValueError, TypeError):
            raise _RequestError(400, f"query parameter {name!r} must be "
                                     "a number") from None
        if not math.isfinite(value) or value < 0:
            raise _RequestError(400, f"query parameter {name!r} must be "
                                     f"a finite non-negative number, got "
                                     f"{query[name]}")
        return value

    # Stdlib entry points.
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        """Handle a GET request."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        """Handle a POST request."""
        self._dispatch("POST")


class ServeServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` carrying its broker.

    ``daemon_threads`` keeps an in-flight long-poll from blocking
    shutdown; ``allow_reuse_address`` makes quick restarts in tests and
    CI painless.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, broker: Broker, verbose: bool = False):
        super().__init__(address, _Handler)
        self.broker = broker
        self.verbose = verbose

    @property
    def url(self) -> str:
        """The server's base URL (reflects the actual bound port, so
        passing port 0 and reading this back is the test idiom)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_thread(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve", daemon=True)
        thread.start()
        return thread


def create_server(broker: Broker, host: str = "127.0.0.1",
                  port: int = 0, verbose: bool = False) -> ServeServer:
    """Bind the broker's HTTP API; ``port=0`` picks a free port."""
    return ServeServer((host, port), broker, verbose=verbose)
