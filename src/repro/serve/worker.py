"""Pull workers: lease a chunk, simulate it, heartbeat, commit.

:class:`BrokerClient` is a tiny urllib JSON client for the broker's
HTTP API (:mod:`repro.serve.api`); :class:`Worker` is the loop
``python -m repro worker`` runs: pull a lease, rebuild the engine the
task's parameters describe, simulate exactly the leased chunk, and
commit its measurement.

Determinism is the whole point: a chunk is simulated via
``engine.measure_points([(point, packets, offset)], ...,
chunk_packets=packets)`` — the same seeded-chunk entry point the local
:class:`repro.runs.RunDriver` uses — so any worker anywhere produces
bit-identical counts for a given chunk, and the broker's merged curve
matches a local run exactly.

A heartbeat thread renews the lease while the chunk simulates.  If the
broker reports the lease dead (expired, re-leased elsewhere), the
worker abandons the chunk: its result is discarded locally rather than
committed, keeping the at-most-once story clean even before the
store's idempotency backstop.

Transport resilience: the broker restarting (durable brokers journal
their queue and come back) or a dropped connection must not kill a
fleet of workers, so :class:`BrokerClient` retries *transport* errors —
``URLError``, connection resets, timeouts — with bounded, seeded-jitter
exponential backoff, raising :class:`BrokerTransportError` loudly only
after the attempt budget is spent.  HTTP-level rejections
(:class:`BrokerRequestError`) are never retried: the broker answered;
retrying the same request cannot change its mind.

Shutdown: ``python -m repro worker`` installs SIGTERM/SIGINT handlers
that raise :class:`WorkerShutdown` in the worker loop; the loop
*releases* its in-flight lease (``POST /api/v1/release`` — the chunk
requeues immediately and the grant is un-counted) instead of abandoning
it to the lease timeout, then exits cleanly.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

from repro.core.metrics import BERPoint
from repro.sim.engine import SweepEngine, SweepPoint

__all__ = ["BrokerClient", "BrokerRequestError", "BrokerTransportError",
           "Worker", "WorkerShutdown"]


class BrokerRequestError(RuntimeError):
    """An HTTP request the broker rejected (carries status + error kind)."""

    def __init__(self, status: int, message: str, kind: str = "error"):
        super().__init__(f"[{status}/{kind}] {message}")
        self.status = status
        self.kind = kind


class BrokerTransportError(RuntimeError):
    """The broker stayed unreachable through the whole retry budget.

    Raised only after :class:`BrokerClient` exhausted its bounded
    backoff schedule against transient transport failures (connection
    refused/reset, timeouts, DNS trouble) — a loud signal that the
    broker is really gone, not merely restarting.
    """

    def __init__(self, attempts: int, message: str):
        super().__init__(
            f"broker unreachable after {attempts} attempt(s): {message}")
        self.attempts = attempts


class WorkerShutdown(Exception):
    """Raised into the worker loop to request a graceful stop.

    The CLI's SIGTERM/SIGINT handlers raise this in the main thread;
    :meth:`Worker.run` catches it, releases any in-flight lease back to
    the broker, and returns its tally with ``stopped: True``.
    """


#: Transport-level exceptions worth retrying.  ``URLError`` covers
#: refused/reset connections and DNS failures wrapped by urllib;
#: ``OSError`` covers raw socket errors (``ConnectionResetError``,
#: ``BrokenPipeError``, ``socket.timeout``) escaping unwrapped.  Note
#: ``HTTPError`` subclasses ``URLError`` — it is re-raised as a
#: :class:`BrokerRequestError` *before* the retry check, so an answered
#: request is never retried.
_TRANSIENT_ERRORS = (urllib.error.URLError, ConnectionError, OSError)


class BrokerClient:
    """JSON-over-HTTP client for the serve API (stdlib urllib only).

    Parameters
    ----------
    base_url:
        The broker's base URL (as printed by ``python -m repro serve``).
    timeout_s:
        Per-request socket timeout.
    max_attempts:
        Total tries per request against transient transport errors
        before :class:`BrokerTransportError` is raised (>= 1).
    backoff_base_s / backoff_cap_s:
        The exponential backoff schedule: attempt ``k`` sleeps
        ``min(base * 2**k, cap)`` scaled by a seeded jitter factor in
        [0.5, 1.0] — bounded, deterministic for a given ``retry_seed``,
        and desynchronized across differently-seeded workers.
    retry_seed:
        Seed for the jitter stream (default 0 — deterministic; give
        each worker its own seed to spread a thundering herd).
    """

    def __init__(self, base_url: str, timeout_s: float = 60.0,
                 max_attempts: int = 5, backoff_base_s: float = 0.1,
                 backoff_cap_s: float = 5.0, retry_seed: int = 0,
                 sleep=time.sleep) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.transport_retries = 0
        self._jitter = random.Random(retry_seed)
        self._sleep = sleep

    # -- plumbing ------------------------------------------------------
    def _request_once(self, method: str, path: str, payload=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(body)
                message = detail.get("error", body)
                kind = detail.get("error_kind", "error")
            except json.JSONDecodeError:
                message, kind = body, "error"
            raise BrokerRequestError(error.code, message, kind) from None

    def _request(self, method: str, path: str, payload=None):
        """One logical request: transient transport errors are retried
        on the bounded seeded-jitter backoff schedule; HTTP rejections
        propagate immediately as :class:`BrokerRequestError`."""
        last_error = None
        for attempt in range(self.max_attempts):
            if attempt:
                delay = min(self.backoff_base_s * 2 ** (attempt - 1),
                            self.backoff_cap_s)
                self._sleep(delay * (0.5 + 0.5 * self._jitter.random()))
                self.transport_retries += 1
            try:
                return self._request_once(method, path, payload)
            except BrokerRequestError:
                raise
            except _TRANSIENT_ERRORS as error:
                last_error = error
        raise BrokerTransportError(self.max_attempts, str(last_error)) \
            from last_error

    def get(self, path: str):
        """GET ``path`` and decode the JSON response."""
        return self._request("GET", path)

    def post(self, path: str, payload=None):
        """POST ``payload`` as JSON to ``path`` and decode the response."""
        return self._request("POST", path, payload or {})

    # -- client-side (submitters) --------------------------------------
    def submit(self, spec: dict) -> dict:
        """Submit a grid (a :class:`repro.serve.JobSpec` payload)."""
        return self.post("/api/v1/jobs", spec)

    def job_status(self, job_id: str) -> dict:
        """One job's status descriptor."""
        return self.get(f"/api/v1/jobs/{job_id}")

    def curve(self, job_id: str, wait_version: int | None = None,
              timeout_s: float = 30.0) -> dict:
        """The job's partial curve; long-polls when ``wait_version`` is
        given (see :meth:`repro.serve.Broker.curve`)."""
        path = f"/api/v1/jobs/{job_id}/curve"
        if wait_version is not None:
            path += f"?wait_version={int(wait_version)}&timeout={timeout_s}"
        return self.get(path)

    def wait_for_curve(self, job_id: str,
                       poll_timeout_s: float = 10.0) -> dict:
        """Long-poll until the job reaches a terminal state; returns the
        final curve payload (raises on a failed job)."""
        payload = self.curve(job_id)
        while payload["state"] == "running":
            payload = self.curve(job_id,
                                 wait_version=payload["version"],
                                 timeout_s=poll_timeout_s)
        if payload["state"] == "failed":
            raise BrokerRequestError(500, payload.get("error")
                                     or "job failed", "job_failed")
        return payload

    def status(self) -> dict:
        """Service-level status (workers, queues, throughput, cache)."""
        return self.get("/api/v1/status")

    # -- worker-side ---------------------------------------------------
    def register(self, name: str | None = None) -> dict:
        """Register this process as a worker; returns its id."""
        return self.post("/api/v1/workers",
                         {"name": name} if name else {})

    def lease(self, worker_id: str) -> dict:
        """Pull the next chunk lease (``task`` is ``None`` when idle)."""
        return self.post("/api/v1/lease", {"worker_id": worker_id})

    def heartbeat(self, lease_id: str) -> dict:
        """Renew a lease mid-chunk."""
        return self.post("/api/v1/heartbeat", {"lease_id": lease_id})

    def commit(self, lease_id: str, task_id: str,
               measurement: dict) -> dict:
        """Commit a simulated chunk's measurement."""
        return self.post("/api/v1/commit",
                         {"lease_id": lease_id, "task_id": task_id,
                          "measurement": measurement})

    def fail(self, lease_id: str, task_id: str, error: str) -> dict:
        """Report a chunk this worker could not complete."""
        return self.post("/api/v1/fail",
                         {"lease_id": lease_id, "task_id": task_id,
                          "error": error})

    def release(self, lease_id: str, task_id: str) -> dict:
        """Gracefully return a lease (shutdown path): the chunk requeues
        immediately and the grant does not count as an attempt."""
        return self.post("/api/v1/release",
                         {"lease_id": lease_id, "task_id": task_id})


class _Heartbeat:
    """Renews one lease on a background thread while a chunk simulates.

    Sets ``abandoned`` when the broker declares the lease dead, which
    tells the worker loop to discard its in-flight result instead of
    committing it.
    """

    def __init__(self, client: BrokerClient, lease_id: str,
                 interval_s: float) -> None:
        self._client = client
        self._lease_id = lease_id
        self._interval_s = interval_s
        self._stop = threading.Event()
        self.abandoned = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"heartbeat-{lease_id}")

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._stop.set()
        self._thread.join(timeout=5.0)
        return False

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._client.heartbeat(self._lease_id)
            except BrokerRequestError as error:
                if error.kind == "lease":
                    self.abandoned.set()
                    return
            except (BrokerTransportError, OSError):
                pass  # broker unreachable; keep simulating — if it
                # stays down past the lease timeout the restarted
                # broker reaps the lease and our commit lands stale
                # (an idempotent duplicate at worst)


class Worker:
    """The pull-worker loop behind ``python -m repro worker``.

    Parameters
    ----------
    client:
        A :class:`BrokerClient` (or a broker URL string).
    name:
        Human-readable worker name reported at registration.
    poll_interval_s:
        Sleep between lease polls while the queue is empty.
    exit_when_idle:
        Stop once the broker reports no pending or leased chunks at all
        — how CI drains a fleet deterministically.
    """

    def __init__(self, client, name: str | None = None,
                 poll_interval_s: float = 0.2,
                 exit_when_idle: bool = False) -> None:
        self.client = (BrokerClient(client) if isinstance(client, str)
                       else client)
        self.name = name
        self.poll_interval_s = float(poll_interval_s)
        self.exit_when_idle = bool(exit_when_idle)
        self.worker_id: str | None = None
        self.chunks_committed = 0
        self.chunks_abandoned = 0
        self.chunks_failed = 0
        self.stopped = False
        self._stop = threading.Event()
        self._inflight: tuple[str, str] | None = None  # (lease, task)
        self._engines: dict[tuple, SweepEngine] = {}

    def request_stop(self) -> None:
        """Ask the loop to stop at the next check (thread/signal-safe).

        The loop exits after the current chunk commits; to interrupt a
        chunk mid-simulation, raise :class:`WorkerShutdown` in the loop
        thread instead (what the CLI's signal handlers do) — the
        in-flight lease is then released, not abandoned.
        """
        self._stop.set()

    def _engine_for(self, params: dict) -> SweepEngine:
        key = (params["seed"], params["generation"], params["backend"],
               params["quantize"], params.get("array_backend"))
        engine = self._engines.get(key)
        if engine is None:
            engine = SweepEngine(seed=int(params["seed"]),
                                 generation=str(params["generation"]),
                                 backend=str(params["backend"]),
                                 quantize=bool(params["quantize"]),
                                 array_backend=params.get("array_backend"))
            self._engines[key] = engine
        return engine

    def simulate(self, task: dict) -> BERPoint:
        """Simulate exactly the leased chunk, bit-identical to the local
        driver's execution of the same span."""
        point_data = task["point"]
        adc_bits = point_data.get("adc_bits")
        point = SweepPoint(
            ebn0_db=float(point_data["ebn0_db"]),
            scenario=str(point_data["scenario"]),
            modulation=str(point_data["modulation"]),
            adc_bits=None if adc_bits is None else int(adc_bits))
        packets = int(task["num_packets"])
        offset = int(task["packet_offset"])
        engine = self._engine_for(task["engine"])
        # chunk_packets == the span length: the engine must treat this
        # span as one chunk (the broker already realized the layout),
        # exactly like RunDriver passing chunk_packets=num_packets.
        [measurement] = engine.measure_points(
            [(point, packets, offset)],
            payload_bits_per_packet=int(task["payload_bits_per_packet"]),
            chunk_packets=packets)
        return measurement

    def _ensure_registered(self) -> str:
        if self.worker_id is None:
            self.worker_id = self.client.register(self.name)["worker_id"]
        return self.worker_id

    def _execute(self, response: dict) -> None:
        """Simulate and commit the chunk a lease response carries."""
        task = response["task"]
        lease_id = response["lease_id"]
        interval = max(float(response["lease_timeout_s"]) / 3.0, 0.05)
        self._inflight = (lease_id, task["task_id"])
        shutdown = False
        try:
            with _Heartbeat(self.client, lease_id, interval) as heartbeat:
                try:
                    measurement = self.simulate(task)
                except WorkerShutdown:
                    # A shutdown request is not a chunk failure: let
                    # run() release the lease instead of failing it.
                    shutdown = True
                    raise
                except Exception as error:
                    # Report the failure so the chunk requeues
                    # immediately (instead of waiting out the lease),
                    # then propagate.
                    self.chunks_failed += 1
                    try:
                        self.client.fail(lease_id, task["task_id"],
                                         str(error))
                    except (BrokerRequestError, BrokerTransportError,
                            OSError):
                        pass
                    raise
            if heartbeat.abandoned.is_set():
                # The broker gave the chunk to someone else; our result
                # is bit-identical anyway, but dropping it keeps this
                # worker honestly at-most-once without leaning on the
                # store.
                self.chunks_abandoned += 1
                return
            self.client.commit(lease_id, task["task_id"],
                               measurement.to_dict())
            self.chunks_committed += 1
        finally:
            if not shutdown:
                # Committed, abandoned, or reported failed — the chunk
                # is disposed of either way.  On a shutdown the marker
                # stays set so run() can *release* the live lease.
                self._inflight = None

    def _release_inflight(self) -> None:
        """Gracefully return the lease of an interrupted chunk."""
        if self._inflight is None:
            return
        lease_id, task_id = self._inflight
        self._inflight = None
        try:
            self.client.release(lease_id, task_id)
        except (BrokerRequestError, BrokerTransportError, OSError):
            pass  # broker gone or lease reaped; the timeout requeues it

    def run_one(self) -> bool:
        """Pull and execute at most one chunk; False when queue is empty."""
        self._ensure_registered()
        response = self.client.lease(self.worker_id)
        if response.get("task") is None:
            return False
        self._execute(response)
        return True

    def run(self, max_chunks: int | None = None) -> dict:
        """Pull chunks until told to stop; returns this worker's tally.

        Stops after ``max_chunks`` commits (when given), or — with
        ``exit_when_idle`` — once the broker has no outstanding chunks
        (neither queued nor leased); otherwise idles on
        ``poll_interval_s`` waiting for more work.  A
        :class:`WorkerShutdown` raised into the loop (the CLI's
        SIGTERM/SIGINT handlers) or :meth:`request_stop` stops it
        cleanly: any in-flight lease is *released* back to the broker —
        requeued immediately, grant un-counted — rather than abandoned
        to the lease timeout.
        """
        try:
            self._ensure_registered()
            while max_chunks is None or self.chunks_committed < max_chunks:
                if self._stop.is_set():
                    self.stopped = True
                    break
                response = self.client.lease(self.worker_id)
                if response.get("task") is not None:
                    self._execute(response)
                    continue
                if self.exit_when_idle \
                        and response.get("outstanding", 0) == 0:
                    break
                if response.get("draining"):
                    # A draining broker grants nothing further; idling
                    # on it would spin until the process dies.
                    self.stopped = True
                    break
                if self._stop.wait(self.poll_interval_s):
                    self.stopped = True
                    break
        except WorkerShutdown:
            self.stopped = True
            self._release_inflight()
        return {"worker_id": self.worker_id,
                "chunks_committed": self.chunks_committed,
                "chunks_abandoned": self.chunks_abandoned,
                "chunks_failed": self.chunks_failed,
                "stopped": self.stopped}
