"""Pull workers: lease a chunk, simulate it, heartbeat, commit.

:class:`BrokerClient` is a tiny urllib JSON client for the broker's
HTTP API (:mod:`repro.serve.api`); :class:`Worker` is the loop
``python -m repro worker`` runs: pull a lease, rebuild the engine the
task's parameters describe, simulate exactly the leased chunk, and
commit its measurement.

Determinism is the whole point: a chunk is simulated via
``engine.measure_points([(point, packets, offset)], ...,
chunk_packets=packets)`` — the same seeded-chunk entry point the local
:class:`repro.runs.RunDriver` uses — so any worker anywhere produces
bit-identical counts for a given chunk, and the broker's merged curve
matches a local run exactly.

A heartbeat thread renews the lease while the chunk simulates.  If the
broker reports the lease dead (expired, re-leased elsewhere), the
worker abandons the chunk: its result is discarded locally rather than
committed, keeping the at-most-once story clean even before the
store's idempotency backstop.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

from repro.core.metrics import BERPoint
from repro.sim.engine import SweepEngine, SweepPoint

__all__ = ["BrokerClient", "BrokerRequestError", "Worker"]


class BrokerRequestError(RuntimeError):
    """An HTTP request the broker rejected (carries status + error kind)."""

    def __init__(self, status: int, message: str, kind: str = "error"):
        super().__init__(f"[{status}/{kind}] {message}")
        self.status = status
        self.kind = kind


class BrokerClient:
    """JSON-over-HTTP client for the serve API (stdlib urllib only)."""

    def __init__(self, base_url: str, timeout_s: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str, payload=None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.base_url + path, data=data,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(body)
                message = detail.get("error", body)
                kind = detail.get("error_kind", "error")
            except json.JSONDecodeError:
                message, kind = body, "error"
            raise BrokerRequestError(error.code, message, kind) from None

    def get(self, path: str):
        """GET ``path`` and decode the JSON response."""
        return self._request("GET", path)

    def post(self, path: str, payload=None):
        """POST ``payload`` as JSON to ``path`` and decode the response."""
        return self._request("POST", path, payload or {})

    # -- client-side (submitters) --------------------------------------
    def submit(self, spec: dict) -> dict:
        """Submit a grid (a :class:`repro.serve.JobSpec` payload)."""
        return self.post("/api/v1/jobs", spec)

    def job_status(self, job_id: str) -> dict:
        """One job's status descriptor."""
        return self.get(f"/api/v1/jobs/{job_id}")

    def curve(self, job_id: str, wait_version: int | None = None,
              timeout_s: float = 30.0) -> dict:
        """The job's partial curve; long-polls when ``wait_version`` is
        given (see :meth:`repro.serve.Broker.curve`)."""
        path = f"/api/v1/jobs/{job_id}/curve"
        if wait_version is not None:
            path += f"?wait_version={int(wait_version)}&timeout={timeout_s}"
        return self.get(path)

    def wait_for_curve(self, job_id: str,
                       poll_timeout_s: float = 10.0) -> dict:
        """Long-poll until the job reaches a terminal state; returns the
        final curve payload (raises on a failed job)."""
        payload = self.curve(job_id)
        while payload["state"] == "running":
            payload = self.curve(job_id,
                                 wait_version=payload["version"],
                                 timeout_s=poll_timeout_s)
        if payload["state"] == "failed":
            raise BrokerRequestError(500, payload.get("error")
                                     or "job failed", "job_failed")
        return payload

    def status(self) -> dict:
        """Service-level status (workers, queues, throughput, cache)."""
        return self.get("/api/v1/status")

    # -- worker-side ---------------------------------------------------
    def register(self, name: str | None = None) -> dict:
        """Register this process as a worker; returns its id."""
        return self.post("/api/v1/workers",
                         {"name": name} if name else {})

    def lease(self, worker_id: str) -> dict:
        """Pull the next chunk lease (``task`` is ``None`` when idle)."""
        return self.post("/api/v1/lease", {"worker_id": worker_id})

    def heartbeat(self, lease_id: str) -> dict:
        """Renew a lease mid-chunk."""
        return self.post("/api/v1/heartbeat", {"lease_id": lease_id})

    def commit(self, lease_id: str, task_id: str,
               measurement: dict) -> dict:
        """Commit a simulated chunk's measurement."""
        return self.post("/api/v1/commit",
                         {"lease_id": lease_id, "task_id": task_id,
                          "measurement": measurement})

    def fail(self, lease_id: str, task_id: str, error: str) -> dict:
        """Report a chunk this worker could not complete."""
        return self.post("/api/v1/fail",
                         {"lease_id": lease_id, "task_id": task_id,
                          "error": error})


class _Heartbeat:
    """Renews one lease on a background thread while a chunk simulates.

    Sets ``abandoned`` when the broker declares the lease dead, which
    tells the worker loop to discard its in-flight result instead of
    committing it.
    """

    def __init__(self, client: BrokerClient, lease_id: str,
                 interval_s: float) -> None:
        self._client = client
        self._lease_id = lease_id
        self._interval_s = interval_s
        self._stop = threading.Event()
        self.abandoned = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"heartbeat-{lease_id}")

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._stop.set()
        self._thread.join(timeout=5.0)
        return False

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._client.heartbeat(self._lease_id)
            except BrokerRequestError as error:
                if error.kind == "lease":
                    self.abandoned.set()
                    return
            except OSError:
                pass  # transient network trouble; try again next beat


class Worker:
    """The pull-worker loop behind ``python -m repro worker``.

    Parameters
    ----------
    client:
        A :class:`BrokerClient` (or a broker URL string).
    name:
        Human-readable worker name reported at registration.
    poll_interval_s:
        Sleep between lease polls while the queue is empty.
    exit_when_idle:
        Stop once the broker reports no pending or leased chunks at all
        — how CI drains a fleet deterministically.
    """

    def __init__(self, client, name: str | None = None,
                 poll_interval_s: float = 0.2,
                 exit_when_idle: bool = False) -> None:
        self.client = (BrokerClient(client) if isinstance(client, str)
                       else client)
        self.name = name
        self.poll_interval_s = float(poll_interval_s)
        self.exit_when_idle = bool(exit_when_idle)
        self.worker_id: str | None = None
        self.chunks_committed = 0
        self.chunks_abandoned = 0
        self.chunks_failed = 0
        self._engines: dict[tuple, SweepEngine] = {}

    def _engine_for(self, params: dict) -> SweepEngine:
        key = (params["seed"], params["generation"], params["backend"],
               params["quantize"], params.get("array_backend"))
        engine = self._engines.get(key)
        if engine is None:
            engine = SweepEngine(seed=int(params["seed"]),
                                 generation=str(params["generation"]),
                                 backend=str(params["backend"]),
                                 quantize=bool(params["quantize"]),
                                 array_backend=params.get("array_backend"))
            self._engines[key] = engine
        return engine

    def simulate(self, task: dict) -> BERPoint:
        """Simulate exactly the leased chunk, bit-identical to the local
        driver's execution of the same span."""
        point_data = task["point"]
        adc_bits = point_data.get("adc_bits")
        point = SweepPoint(
            ebn0_db=float(point_data["ebn0_db"]),
            scenario=str(point_data["scenario"]),
            modulation=str(point_data["modulation"]),
            adc_bits=None if adc_bits is None else int(adc_bits))
        packets = int(task["num_packets"])
        offset = int(task["packet_offset"])
        engine = self._engine_for(task["engine"])
        # chunk_packets == the span length: the engine must treat this
        # span as one chunk (the broker already realized the layout),
        # exactly like RunDriver passing chunk_packets=num_packets.
        [measurement] = engine.measure_points(
            [(point, packets, offset)],
            payload_bits_per_packet=int(task["payload_bits_per_packet"]),
            chunk_packets=packets)
        return measurement

    def _ensure_registered(self) -> str:
        if self.worker_id is None:
            self.worker_id = self.client.register(self.name)["worker_id"]
        return self.worker_id

    def _execute(self, response: dict) -> None:
        """Simulate and commit the chunk a lease response carries."""
        task = response["task"]
        lease_id = response["lease_id"]
        interval = max(float(response["lease_timeout_s"]) / 3.0, 0.05)
        with _Heartbeat(self.client, lease_id, interval) as heartbeat:
            try:
                measurement = self.simulate(task)
            except Exception as error:
                # Report the failure so the chunk requeues immediately
                # (instead of waiting out the lease), then propagate.
                self.chunks_failed += 1
                try:
                    self.client.fail(lease_id, task["task_id"], str(error))
                except (BrokerRequestError, OSError):
                    pass
                raise
        if heartbeat.abandoned.is_set():
            # The broker gave the chunk to someone else; our result is
            # bit-identical anyway, but dropping it keeps this worker
            # honestly at-most-once without leaning on the store.
            self.chunks_abandoned += 1
            return
        self.client.commit(lease_id, task["task_id"],
                           measurement.to_dict())
        self.chunks_committed += 1

    def run_one(self) -> bool:
        """Pull and execute at most one chunk; False when queue is empty."""
        self._ensure_registered()
        response = self.client.lease(self.worker_id)
        if response.get("task") is None:
            return False
        self._execute(response)
        return True

    def run(self, max_chunks: int | None = None) -> dict:
        """Pull chunks until told to stop; returns this worker's tally.

        Stops after ``max_chunks`` commits (when given), or — with
        ``exit_when_idle`` — once the broker has no outstanding chunks
        (neither queued nor leased); otherwise idles on
        ``poll_interval_s`` waiting for more work.
        """
        self._ensure_registered()
        while max_chunks is None or self.chunks_committed < max_chunks:
            response = self.client.lease(self.worker_id)
            if response.get("task") is not None:
                self._execute(response)
                continue
            if self.exit_when_idle and response.get("outstanding", 0) == 0:
                break
            time.sleep(self.poll_interval_s)
        return {"worker_id": self.worker_id,
                "chunks_committed": self.chunks_committed,
                "chunks_abandoned": self.chunks_abandoned,
                "chunks_failed": self.chunks_failed}
