"""Result containers and link-quality metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import special

from repro.utils.bits import bit_errors

__all__ = [
    "PacketResult",
    "BERPoint",
    "BERCurve",
    "qfunc",
    "theoretical_bpsk_ber",
    "theoretical_ook_ber",
    "theoretical_ppm_ber",
]


def qfunc(x) -> np.ndarray:
    """Gaussian Q-function."""
    return 0.5 * special.erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def theoretical_bpsk_ber(ebn0_db) -> np.ndarray:
    """Matched-filter BPSK bit error rate in AWGN."""
    ebn0 = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    return qfunc(np.sqrt(2.0 * ebn0))


def theoretical_ook_ber(ebn0_db) -> np.ndarray:
    """On-off keying with an optimal threshold in AWGN."""
    ebn0 = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    return qfunc(np.sqrt(ebn0))


def theoretical_ppm_ber(ebn0_db) -> np.ndarray:
    """Binary orthogonal (PPM) signalling in AWGN."""
    ebn0 = 10.0 ** (np.asarray(ebn0_db, dtype=float) / 10.0)
    return qfunc(np.sqrt(ebn0))


@dataclass(frozen=True)
class PacketResult:
    """Outcome of transmitting and receiving one packet."""

    detected: bool
    crc_ok: bool
    payload_bit_errors: int
    num_payload_bits: int
    timing_error_samples: int
    acquisition_time_s: float
    peak_acquisition_metric: float
    extra: dict = field(default_factory=dict)

    @property
    def bit_error_rate(self) -> float:
        """Payload BER of this packet (1.0 when nothing was recovered)."""
        if self.num_payload_bits == 0:
            return 1.0
        return self.payload_bit_errors / self.num_payload_bits

    @property
    def packet_success(self) -> bool:
        """A packet counts as delivered when detected and CRC-clean."""
        return self.detected and self.crc_ok


@dataclass(frozen=True)
class BERPoint:
    """One operating point of a BER sweep."""

    ebn0_db: float
    bit_errors: int
    total_bits: int
    packets_sent: int
    packets_failed: int

    @property
    def ber(self) -> float:
        """Measured bit error rate (1.0 when no bits were measured)."""
        if self.total_bits == 0:
            return 1.0
        return self.bit_errors / self.total_bits

    @property
    def per(self) -> float:
        """Measured packet error rate."""
        if self.packets_sent == 0:
            return 1.0
        return self.packets_failed / self.packets_sent

    def merge(self, other: "BERPoint") -> "BERPoint":
        """Pool this measurement with another one of the same operating point.

        Error and packet counts are additive, so independently simulated
        batches (cache chunks, escalated ``num_packets`` runs) combine into
        one tighter estimate.  Raises ``ValueError`` when the Eb/N0 values
        differ — pooling across operating points is a bug, not a merge.
        """
        if not isinstance(other, BERPoint):
            raise TypeError("merge() expects a BERPoint")
        if float(other.ebn0_db) != float(self.ebn0_db):
            raise ValueError(
                f"cannot merge BER points at different operating points "
                f"({self.ebn0_db} dB vs {other.ebn0_db} dB)")
        return BERPoint(
            ebn0_db=self.ebn0_db,
            bit_errors=self.bit_errors + other.bit_errors,
            total_bits=self.total_bits + other.total_bits,
            packets_sent=self.packets_sent + other.packets_sent,
            packets_failed=self.packets_failed + other.packets_failed)

    def to_dict(self) -> dict:
        """Plain-type mapping for JSON persistence (see ``from_dict``)."""
        return {"ebn0_db": float(self.ebn0_db),
                "bit_errors": int(self.bit_errors),
                "total_bits": int(self.total_bits),
                "packets_sent": int(self.packets_sent),
                "packets_failed": int(self.packets_failed)}

    @classmethod
    def from_dict(cls, data: dict) -> "BERPoint":
        """Rebuild a point from :meth:`to_dict` output, validating counts."""
        try:
            point = cls(ebn0_db=float(data["ebn0_db"]),
                        bit_errors=int(data["bit_errors"]),
                        total_bits=int(data["total_bits"]),
                        packets_sent=int(data["packets_sent"]),
                        packets_failed=int(data["packets_failed"]))
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed BER point record: {error}") from None
        if not np.isfinite(point.ebn0_db):
            raise ValueError("malformed BER point record: non-finite ebn0_db")
        if min(point.bit_errors, point.total_bits, point.packets_sent,
               point.packets_failed) < 0:
            raise ValueError("malformed BER point record: negative count")
        if point.bit_errors > point.total_bits:
            raise ValueError("malformed BER point record: more bit errors "
                             "than bits")
        if point.packets_failed > point.packets_sent:
            raise ValueError("malformed BER point record: more failed "
                             "packets than packets sent")
        return point


@dataclass
class BERCurve:
    """A sweep of BER points plus metadata."""

    label: str
    points: list[BERPoint] = field(default_factory=list)

    def add(self, point: BERPoint) -> None:
        """Append a point to the curve."""
        self.points.append(point)

    def ebn0_values(self) -> np.ndarray:
        """The swept Eb/N0 values."""
        return np.asarray([p.ebn0_db for p in self.points])

    def ber_values(self) -> np.ndarray:
        """The measured BER values."""
        return np.asarray([p.ber for p in self.points])

    def required_ebn0_for_ber(self, target_ber: float) -> float:
        """Interpolate the Eb/N0 needed to hit ``target_ber`` (inf if never)."""
        ebn0 = self.ebn0_values()
        ber = self.ber_values()
        if ebn0.size == 0:
            return float("inf")
        order = np.argsort(ebn0)
        ebn0, ber = ebn0[order], ber[order]
        below = np.where(ber <= target_ber)[0]
        if below.size == 0:
            return float("inf")
        first = below[0]
        if first == 0:
            return float(ebn0[0])
        # Log-linear interpolation between the bracketing points.
        b0, b1 = ber[first - 1], ber[first]
        e0, e1 = ebn0[first - 1], ebn0[first]
        if b0 <= 0 or b1 <= 0 or b0 == b1:
            return float(e1)
        t = (np.log10(target_ber) - np.log10(b0)) / (np.log10(b1) - np.log10(b0))
        return float(e0 + t * (e1 - e0))

    def as_rows(self) -> list[tuple[float, float, float]]:
        """Rows of ``(ebn0_db, ber, per)`` for printing."""
        return [(p.ebn0_db, p.ber, p.per) for p in self.points]


def count_payload_errors(sent_bits, received_bits) -> int:
    """Bit errors between sent and received payloads of possibly unequal length.

    Missing bits count as errors (a truncated payload is not a free pass).
    """
    sent_bits = np.asarray(sent_bits, dtype=np.int64)
    received_bits = np.asarray(received_bits, dtype=np.int64)
    overlap = min(sent_bits.size, received_bits.size)
    errors = bit_errors(sent_bits[:overlap], received_bits[:overlap]) \
        if overlap else 0
    errors += sent_bits.size - overlap
    return int(errors)


__all__.append("count_payload_errors")
