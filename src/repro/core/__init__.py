"""Core transceivers: configs, TX/RX chains, link simulation, adaptation."""

from repro.core.adaptation import (
    AdaptationController,
    ChannelConditions,
    OperatingMode,
)
from repro.core.config import Gen1Config, Gen2Config
from repro.core.hopping import (
    ChannelQualityMap,
    ChannelSelector,
    HoppingLinkPlanner,
)
from repro.core.link import AcquisitionStatistics, LinkSimulator
from repro.core.metrics import (
    BERCurve,
    BERPoint,
    PacketResult,
    count_payload_errors,
    qfunc,
    theoretical_bpsk_ber,
    theoretical_ook_ber,
    theoretical_ppm_ber,
)
from repro.core.receiver import Gen1Receiver, Gen2Receiver, ReceiveResult
from repro.core.transceiver import Gen1Transceiver, Gen2Transceiver, PacketSimulation
from repro.core.transmitter import Gen1Transmitter, Gen2Transmitter, TransmitOutput

__all__ = [
    "AdaptationController",
    "ChannelConditions",
    "OperatingMode",
    "Gen1Config",
    "Gen2Config",
    "ChannelQualityMap",
    "ChannelSelector",
    "HoppingLinkPlanner",
    "AcquisitionStatistics",
    "LinkSimulator",
    "BERCurve",
    "BERPoint",
    "PacketResult",
    "count_payload_errors",
    "qfunc",
    "theoretical_bpsk_ber",
    "theoretical_ook_ber",
    "theoretical_ppm_ber",
    "Gen1Receiver",
    "Gen2Receiver",
    "ReceiveResult",
    "Gen1Transceiver",
    "Gen2Transceiver",
    "PacketSimulation",
    "Gen1Transmitter",
    "Gen2Transmitter",
    "TransmitOutput",
]
