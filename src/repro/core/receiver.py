"""Receivers for both transceiver generations.

The receive pipeline mirrors the block diagrams of Fig. 1 and Fig. 3:

``analog waveform -> AGC -> ADC -> coarse acquisition -> channel estimation
-> RAKE combining (-> MLSE/Viterbi) -> demodulation -> packet parsing``

Everything downstream of the ADC operates on the quantized ADC-rate sample
stream, the way the silicon does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adc.interleaved import TimeInterleavedADC
from repro.adc.sar import QuadratureSARADC
from repro.core.config import Gen1Config, Gen2Config
from repro.core.metrics import PacketResult, count_payload_errors
from repro.dsp.acquisition import AcquisitionConfig, AcquisitionResult, CoarseAcquisition
from repro.dsp.agc import AutomaticGainControl
from repro.dsp.channel_estimation import ChannelEstimate, ChannelEstimator
from repro.dsp.notch import DigitalNotchFilter
from repro.dsp.rake import RakeReceiver
from repro.dsp.spectral_monitor import SpectralMonitor, SpectralMonitorConfig
from repro.dsp.viterbi import MLSEEqualizer
from repro.phy.packet import HEADER_LENGTH_BITS, PacketParser
from repro.phy.preamble import build_preamble_symbols
from repro.pulses.shapes import Pulse, gaussian_derivative_pulse, gaussian_pulse
from repro.utils.bits import bits_to_int

__all__ = ["ReceiveResult", "Gen1Receiver", "Gen2Receiver"]


@dataclass
class ReceiveResult:
    """Everything the receiver learned from one capture."""

    acquisition: AcquisitionResult
    channel_estimate: ChannelEstimate | None
    payload_bits: np.ndarray
    crc_ok: bool
    body_bits: np.ndarray = field(repr=False, default=None)
    statistics: np.ndarray = field(repr=False, default=None)
    interferer_report: object = None

    @property
    def detected(self) -> bool:
        """True when acquisition declared a packet."""
        return bool(self.acquisition.detected)

    def to_packet_result(self, sent_payload_bits,
                         true_preamble_start_adc: int) -> PacketResult:
        """Score this reception against the known transmitted payload."""
        sent_payload_bits = np.asarray(sent_payload_bits, dtype=np.int64)
        errors = count_payload_errors(sent_payload_bits, self.payload_bits)
        return PacketResult(
            detected=self.detected,
            crc_ok=bool(self.crc_ok),
            payload_bit_errors=errors,
            num_payload_bits=int(sent_payload_bits.size),
            timing_error_samples=self.acquisition.timing_error_samples(
                true_preamble_start_adc),
            acquisition_time_s=self.acquisition.search_time_s,
            peak_acquisition_metric=self.acquisition.peak_metric,
        )


class _PulsedReceiver:
    """Shared receive pipeline; subclasses provide the pulse and the ADC."""

    def __init__(self, config, pulse_sim_rate: Pulse) -> None:
        self.config = config
        self.parser = PacketParser(config.packet)
        self.agc = AutomaticGainControl(target_rms=0.2)

        decimation = config.decimation_factor
        template = np.asarray(pulse_sim_rate.waveform)[::decimation]
        self.pulse_template = template
        self.samples_per_chip = config.samples_per_pri_adc
        self.samples_per_symbol = self.samples_per_chip * config.pulses_per_bit

        # Known preamble waveform at the ADC rate (used for acquisition).
        preamble_symbols = build_preamble_symbols(config.packet.preamble)
        self.preamble_symbols = preamble_symbols
        self.preamble_template = self._chips_to_waveform(preamble_symbols)
        self.preamble_length_samples = (preamble_symbols.size
                                        * self.samples_per_chip)

        # One-bit symbol template (pulses_per_bit pulses at PRI spacing).
        self.symbol_template = self._chips_to_waveform(
            np.ones(config.pulses_per_bit))

        self.acquisition = CoarseAcquisition(
            self.preamble_template,
            AcquisitionConfig(threshold=config.acquisition_threshold,
                              parallelism=config.acquisition_parallelism,
                              backend_clock_hz=config.backend_clock_hz))
        base_sequence = config.packet.preamble.base_sequence_bipolar()
        self.channel_estimator = ChannelEstimator(
            preamble_symbols=base_sequence,
            samples_per_symbol=self.samples_per_chip,
            pulse_template=self.pulse_template,
            num_taps=config.channel_estimate_taps,
            quantization_bits=config.channel_estimate_bits)

    # ------------------------------------------------------------------
    # Template construction
    # ------------------------------------------------------------------
    def _chips_to_waveform(self, chips) -> np.ndarray:
        """Place one pulse per chip (scaled by the chip value) on the ADC grid."""
        chips = np.asarray(chips, dtype=float)
        total = chips.size * self.samples_per_chip
        is_complex = np.iscomplexobj(self.pulse_template)
        waveform = np.zeros(total, dtype=complex if is_complex else float)
        pulse_len = self.pulse_template.size
        for index, chip in enumerate(chips):
            start = index * self.samples_per_chip
            stop = min(start + pulse_len, total)
            waveform[start:stop] += chip * self.pulse_template[:stop - start]
        return waveform

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _digitize(self, analog_adc_rate, rng) -> np.ndarray:
        """Quantize the ADC-rate analog samples (architecture-specific)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def _decimate(self, waveform) -> np.ndarray:
        return np.asarray(waveform)[::self.config.decimation_factor]

    def _demodulate_statistics(self, statistics) -> np.ndarray:
        """Map normalized decision statistics to bits (BPSK slicer)."""
        return (np.real(statistics) > 0).astype(np.int64)

    def _coded_payload_bit_count(self, header_bits) -> int:
        """Number of body bits after the header, as implied by the header."""
        payload_length = bits_to_int(header_bits[:12])
        coding_flag = int(header_bits[15])
        crc_width = self.config.packet.crc.width
        protected = payload_length + crc_width
        code = self.config.packet.code
        if coding_flag and code is not None:
            return (protected + code.constraint_length - 1) * code.rate_inverse
        return protected

    def frontend_samples(self, waveform,
                         rng: np.random.Generator | None = None,
                         monitor_spectrum: bool = False):
        """Analog waveform -> quantized ADC-rate stream (+ interferer report).

        The front half of :meth:`receive` — decimation, AGC, ADC
        conversion, and the spectral-monitor/digital-notch control loop.
        This is the per-packet reference the batched full-stack receiver
        (:class:`repro.sim.batch_rx.BatchedFullStackModel`) is pinned
        against: both generations now have whole-batch equivalents of the
        decimate/AGC/ADC chain, and configurations outside those fast
        paths (e.g. the closed-loop notch) run this method in a loop.
        Returns ``(samples, interferer_report)``.
        """
        if rng is None:
            rng = np.random.default_rng()

        adc_input = self._decimate(waveform)
        scaled, _gain = self.agc.apply_from_peak(adc_input, full_scale=1.0,
                                                 peak_backoff_db=1.0)
        samples = self._digitize(scaled, rng)

        # Spectral monitoring and (optional) closed-loop interferer
        # mitigation: the back end estimates the interferer frequency and
        # notches it out before synchronization, exactly the control path
        # Fig. 3 draws from the spectral monitor to the notch filter.
        notch_enabled = getattr(self.config, "enable_digital_notch", False)
        interferer_report = None
        if monitor_spectrum or notch_enabled:
            monitor = SpectralMonitor(self.config.adc_rate_hz,
                                      SpectralMonitorConfig())
            try:
                interferer_report = monitor.analyze(samples)
            except ValueError:
                interferer_report = None
        if (notch_enabled and interferer_report is not None
                and interferer_report.detected):
            notch = DigitalNotchFilter(
                notch_frequency_hz=interferer_report.frequency_hz,
                sample_rate_hz=self.config.adc_rate_hz)
            samples = notch.apply(samples)
        return samples, interferer_report

    def receive(self, waveform, rng: np.random.Generator | None = None,
                monitor_spectrum: bool = False) -> ReceiveResult:
        """Run the full receive pipeline on a simulation-rate waveform."""
        samples, interferer_report = self.frontend_samples(
            waveform, rng=rng, monitor_spectrum=monitor_spectrum)

        acquisition = self.acquisition.acquire(samples)
        if not acquisition.detected:
            return ReceiveResult(acquisition=acquisition, channel_estimate=None,
                                 payload_bits=np.zeros(0, dtype=np.int64),
                                 crc_ok=False, body_bits=np.zeros(0, dtype=np.int64),
                                 statistics=np.zeros(0),
                                 interferer_report=interferer_report)

        timing = acquisition.timing_offset_samples
        estimate = self.channel_estimator.estimate_averaged(
            samples, timing, self.config.adc_rate_hz,
            num_repetitions=self.config.packet.preamble.num_repetitions)

        rake = RakeReceiver(estimate,
                            num_fingers=getattr(self.config, "rake_fingers", 1),
                            policy=getattr(self.config, "rake_policy", "srake"))

        body_start = timing + self.preamble_length_samples
        template_energy = float(np.sum(np.abs(self.symbol_template) ** 2))
        weight_energy = float(np.sum(np.abs(rake.combining_weights()) ** 2))
        normalization = max(template_energy * weight_energy, 1e-30)

        # Demodulate the header first, then as many body bits as it implies.
        header_stats = rake.combine_stream(
            samples, self.symbol_template, self.samples_per_symbol,
            body_start, HEADER_LENGTH_BITS) / normalization
        header_bits = self._demodulate_statistics(header_stats)
        remaining = self._coded_payload_bit_count(header_bits)

        available = (samples.size - body_start
                     - HEADER_LENGTH_BITS * self.samples_per_symbol)
        max_remaining = max(available // self.samples_per_symbol, 0)
        remaining = int(min(remaining, max_remaining))

        payload_stats = np.zeros(0, dtype=complex)
        if remaining > 0:
            payload_start = (body_start
                             + HEADER_LENGTH_BITS * self.samples_per_symbol)
            payload_stats = rake.combine_stream(
                samples, self.symbol_template, self.samples_per_symbol,
                payload_start, remaining) / normalization

        statistics = np.concatenate((header_stats, payload_stats))

        if getattr(self.config, "use_mlse", False) and payload_stats.size:
            isi = rake.isi_taps(
                self.samples_per_symbol,
                max_symbol_taps=getattr(self.config, "mlse_max_taps", 3))
            if isi.size > 1:
                equalizer = MLSEEqualizer(isi, alphabet=(-1.0, 1.0))
                payload_bits_coded = equalizer.equalize_to_bits(payload_stats)
            else:
                payload_bits_coded = self._demodulate_statistics(payload_stats)
            soft_values = None
        else:
            payload_bits_coded = self._demodulate_statistics(payload_stats)
            soft_values = np.real(payload_stats)

        body_bits = np.concatenate((header_bits, payload_bits_coded))
        parse = self.parser.parse(body_bits, soft_values=soft_values)

        return ReceiveResult(
            acquisition=acquisition,
            channel_estimate=estimate,
            payload_bits=parse.payload_bits,
            crc_ok=parse.crc_ok,
            body_bits=body_bits,
            statistics=statistics,
            interferer_report=interferer_report,
        )


class Gen1Receiver(_PulsedReceiver):
    """Gen-1 receiver: wideband front end into the 2 GSPS interleaved flash ADC."""

    def __init__(self, config: Gen1Config | None = None,
                 rng: np.random.Generator | None = None) -> None:
        config = config if config is not None else Gen1Config()
        pulse = gaussian_derivative_pulse(
            order=config.pulse_order,
            bandwidth_hz=config.pulse_bandwidth_hz,
            sample_rate_hz=config.simulation_rate_hz)
        super().__init__(config, pulse)
        self.adc = TimeInterleavedADC.uniform(
            num_slices=config.adc_interleave_factor,
            bits=config.adc_bits,
            aggregate_rate_hz=config.adc_rate_hz,
            full_scale=1.0,
            gain_mismatch_std=config.adc_gain_mismatch_std,
            offset_mismatch_std=config.adc_offset_mismatch_std,
            timing_skew_std_s=config.adc_timing_skew_std_s,
            rng=rng)

    def _digitize(self, analog_adc_rate, rng) -> np.ndarray:
        return self.adc.convert_presampled(np.real(analog_adc_rate))


class Gen2Receiver(_PulsedReceiver):
    """Gen-2 receiver: direct-conversion I/Q into two 5-bit SAR ADCs."""

    def __init__(self, config: Gen2Config | None = None,
                 rng: np.random.Generator | None = None) -> None:
        config = config if config is not None else Gen2Config()
        base = gaussian_pulse(bandwidth_hz=config.pulse_bandwidth_hz,
                              sample_rate_hz=config.simulation_rate_hz)
        pulse = Pulse(base.waveform.astype(complex), base.sample_rate_hz,
                      name="gen2_envelope")
        super().__init__(config, pulse)
        self.adc = QuadratureSARADC.matched_pair(
            bits=config.adc_bits,
            full_scale=1.0,
            sample_rate_hz=config.adc_rate_hz,
            capacitor_mismatch_std=config.adc_capacitor_mismatch_std,
            comparator_noise_std=config.adc_comparator_noise_std,
            rng=rng)

    def _digitize(self, analog_adc_rate, rng) -> np.ndarray:
        return self.adc.convert(np.asarray(analog_adc_rate, dtype=complex),
                                rng=rng)
