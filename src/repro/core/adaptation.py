"""Power / QoS / data-rate adaptation policy.

"This receiver allows us to trade off power dissipation with signal
processing complexity, quality of service and data rate, adapting to
channel conditions."  The controller below makes that sentence concrete:
given an estimate of the channel (SNR, delay spread, interference) it picks
an operating mode — pulses per bit, RAKE fingers, MLSE on/off, ADC
resolution — and reports the resulting data rate and modelled power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import Gen2Config
from repro.power.budget import gen2_power_budget
from repro.utils.validation import require_positive

__all__ = ["ChannelConditions", "OperatingMode", "AdaptationController"]


@dataclass(frozen=True)
class ChannelConditions:
    """What the back end knows about the current channel."""

    snr_db: float
    rms_delay_spread_s: float = 5e-9
    interferer_detected: bool = False

    def __post_init__(self) -> None:
        if self.rms_delay_spread_s < 0:
            raise ValueError("rms_delay_spread_s must be non-negative")


@dataclass(frozen=True)
class OperatingMode:
    """One selectable receiver configuration and its cost/benefit summary."""

    name: str
    pulses_per_bit: int
    rake_fingers: int
    use_mlse: bool
    adc_bits: int
    notch_enabled: bool
    data_rate_bps: float
    power_w: float
    min_snr_db: float

    def energy_per_bit_j(self) -> float:
        """Receiver energy spent per delivered bit."""
        if self.data_rate_bps <= 0:
            return float("inf")
        return self.power_w / self.data_rate_bps


class AdaptationController:
    """Pick the cheapest operating mode that satisfies the QoS constraint.

    The mode table is generated from a base :class:`Gen2Config`: higher
    pulses-per-bit modes need less SNR but deliver less throughput; more
    RAKE fingers and the MLSE are engaged as the delay spread grows; the
    ADC resolution and notch are raised only when an interferer is present
    (the paper's 1-bit/4-bit observation).
    """

    #: (name, pulses_per_bit, rake_fingers, use_mlse, min_snr_db)
    _MODE_TABLE = (
        ("full_rate", 1, 4, True, 14.0),
        ("half_rate", 2, 4, True, 11.0),
        ("quarter_rate", 4, 6, True, 8.0),
        ("eighth_rate", 8, 6, True, 5.0),
        ("robust", 16, 8, True, 2.0),
    )

    def __init__(self, base_config: Gen2Config | None = None) -> None:
        self.base_config = base_config if base_config is not None else Gen2Config()

    # ------------------------------------------------------------------
    # Mode table
    # ------------------------------------------------------------------
    def available_modes(self, conditions: ChannelConditions) -> list[OperatingMode]:
        """All operating modes with their data rate and power for the conditions."""
        modes = []
        interference = conditions.interferer_detected
        adc_bits = max(self.base_config.adc_bits, 4) if interference else \
            self.base_config.adc_bits
        for name, ppb, fingers, use_mlse, min_snr in self._MODE_TABLE:
            # Long delay spreads need the MLSE regardless of the table entry.
            needs_mlse = (conditions.rms_delay_spread_s
                          > self.base_config.pulse_repetition_interval_s)
            mlse = use_mlse or needs_mlse
            data_rate = (1.0 / (ppb
                                * self.base_config.pulse_repetition_interval_s))
            budget = gen2_power_budget(
                adc_bits=adc_bits,
                adc_rate_hz=self.base_config.adc_rate_hz,
                num_rake_fingers=fingers,
                num_viterbi_states=4 if mlse else 0,
                spectral_monitoring=True)
            modes.append(OperatingMode(
                name=name,
                pulses_per_bit=ppb,
                rake_fingers=fingers,
                use_mlse=mlse,
                adc_bits=adc_bits,
                notch_enabled=interference,
                data_rate_bps=data_rate,
                power_w=budget.total_w(),
                min_snr_db=min_snr))
        return modes

    # ------------------------------------------------------------------
    # Selection policies
    # ------------------------------------------------------------------
    def select_max_throughput(self, conditions: ChannelConditions
                              ) -> OperatingMode:
        """Highest data rate whose SNR requirement the channel meets."""
        feasible = [m for m in self.available_modes(conditions)
                    if conditions.snr_db >= m.min_snr_db]
        if not feasible:
            # Fall back to the most robust mode.
            return self.available_modes(conditions)[-1]
        return max(feasible, key=lambda m: m.data_rate_bps)

    def select_min_power(self, conditions: ChannelConditions,
                         required_rate_bps: float) -> OperatingMode:
        """Lowest power mode that still delivers ``required_rate_bps``."""
        require_positive(required_rate_bps, "required_rate_bps")
        feasible = [m for m in self.available_modes(conditions)
                    if (conditions.snr_db >= m.min_snr_db
                        and m.data_rate_bps >= required_rate_bps)]
        if not feasible:
            return self.select_max_throughput(conditions)
        return min(feasible, key=lambda m: m.power_w)

    def select_min_energy_per_bit(self, conditions: ChannelConditions
                                  ) -> OperatingMode:
        """Mode with the lowest receiver energy per delivered bit."""
        feasible = [m for m in self.available_modes(conditions)
                    if conditions.snr_db >= m.min_snr_db]
        if not feasible:
            return self.available_modes(conditions)[-1]
        return min(feasible, key=lambda m: m.energy_per_bit_j())

    # ------------------------------------------------------------------
    # Config realization
    # ------------------------------------------------------------------
    def config_for_mode(self, mode: OperatingMode) -> Gen2Config:
        """Instantiate a :class:`Gen2Config` implementing the chosen mode."""
        return self.base_config.with_changes(
            pulses_per_bit=mode.pulses_per_bit,
            rake_fingers=mode.rake_fingers,
            use_mlse=mode.use_mlse,
            adc_bits=mode.adc_bits)

    def rate_power_frontier(self, conditions: ChannelConditions
                            ) -> list[tuple[float, float]]:
        """(data rate, power) pairs of all feasible modes, rate-sorted."""
        feasible = [m for m in self.available_modes(conditions)
                    if conditions.snr_db >= m.min_snr_db]
        pairs = [(m.data_rate_bps, m.power_w) for m in feasible]
        return sorted(pairs)
