"""Multi-channel operation: sub-band selection and hopping across the band plan.

The gen-2 signal is "upconverted to one of 14 channels (sub-bands) in the
3.1-10.6 GHz band".  Working at complex baseband, the choice of sub-band
does not change the waveform math — what it changes is the RF environment:
which narrowband interferers fall in band, what the path loss is, and how
much settling time the synthesizer spends when the link hops.

This module provides the link-level view of that choice:

* :class:`ChannelQualityMap` — per-sub-band interference/SNR bookkeeping, as
  the back end's spectral monitor would accumulate it over time;
* :class:`ChannelSelector` — picks the best sub-band (or an ordered hopping
  pattern) from the quality map, avoiding occupied channels;
* :class:`HoppingLinkPlanner` — computes the throughput overhead of a
  hopping pattern given the synthesizer's settling time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import BandPlan, DEFAULT_BAND_PLAN
from repro.rf.synthesizer import FrequencySynthesizer, HoppingSequence
from repro.utils.validation import require_int, require_positive

__all__ = ["ChannelQualityMap", "ChannelSelector", "HoppingLinkPlanner"]


@dataclass
class ChannelQualityMap:
    """Per-sub-band link-quality bookkeeping.

    The map stores, for every channel of the band plan, the most recent
    estimate of the signal-to-interference-plus-noise ratio (dB) and whether
    a narrowband interferer has been detected there.  It is the data the
    gen-2 back end can assemble from its spectral monitor while hopping.
    """

    band_plan: BandPlan = field(default_factory=lambda: DEFAULT_BAND_PLAN)

    def __post_init__(self) -> None:
        count = self.band_plan.num_channels
        self._sinr_db = np.full(count, 20.0)
        self._interferer = np.zeros(count, dtype=bool)

    @property
    def num_channels(self) -> int:
        return self.band_plan.num_channels

    def update(self, channel: int, sinr_db: float,
               interferer_detected: bool = False) -> None:
        """Record a fresh measurement for one channel."""
        require_int(channel, "channel", minimum=0)
        if channel >= self.num_channels:
            raise ValueError(f"channel {channel} outside the band plan")
        self._sinr_db[channel] = float(sinr_db)
        self._interferer[channel] = bool(interferer_detected)

    def record_interferer_frequency(self, frequency_hz: float,
                                    sinr_penalty_db: float = 20.0) -> int:
        """Mark the channel containing an interferer at an absolute frequency.

        Returns the affected channel index.  The channel's SINR is reduced
        by ``sinr_penalty_db`` to reflect the degradation.
        """
        channel = self.band_plan.channel_for_frequency(frequency_hz)
        self._interferer[channel] = True
        self._sinr_db[channel] -= sinr_penalty_db
        return channel

    def sinr_db(self, channel: int) -> float:
        """Latest SINR estimate for a channel."""
        return float(self._sinr_db[channel])

    def interferer_detected(self, channel: int) -> bool:
        """True when a narrowband interferer was seen in the channel."""
        return bool(self._interferer[channel])

    def clean_channels(self) -> list[int]:
        """Channels with no detected interferer."""
        return [int(c) for c in np.nonzero(~self._interferer)[0]]

    def as_rows(self) -> list[tuple[int, float, bool]]:
        """(channel, sinr_db, interferer) rows for reporting."""
        return [(c, float(self._sinr_db[c]), bool(self._interferer[c]))
                for c in range(self.num_channels)]


class ChannelSelector:
    """Pick sub-bands from a :class:`ChannelQualityMap`."""

    def __init__(self, quality_map: ChannelQualityMap) -> None:
        self.quality_map = quality_map

    def best_channel(self) -> int:
        """The interferer-free channel with the highest SINR.

        Falls back to the globally best SINR when every channel has an
        interferer (better a degraded channel than none).
        """
        candidates = self.quality_map.clean_channels()
        if not candidates:
            candidates = list(range(self.quality_map.num_channels))
        sinrs = [self.quality_map.sinr_db(c) for c in candidates]
        return int(candidates[int(np.argmax(sinrs))])

    def ranked_channels(self, count: int | None = None) -> list[int]:
        """Channels ordered best-first (clean channels before jammed ones)."""
        rows = self.quality_map.as_rows()
        ordered = sorted(rows, key=lambda row: (row[2], -row[1]))
        channels = [row[0] for row in ordered]
        if count is not None:
            require_int(count, "count", minimum=1)
            channels = channels[:count]
        return channels

    def hopping_sequence(self, length: int,
                         max_channels: int = 4) -> HoppingSequence:
        """A hopping pattern cycling over the best ``max_channels`` channels."""
        require_int(length, "length", minimum=1)
        best = self.ranked_channels(count=max_channels)
        channels = tuple(best[i % len(best)] for i in range(length))
        return HoppingSequence(channels=channels,
                               band_plan=self.quality_map.band_plan)


class HoppingLinkPlanner:
    """Throughput accounting for a frequency-hopping link.

    Every hop to a *different* channel costs the synthesizer's settling
    time, during which no pulses are sent.  The planner converts a hopping
    pattern plus per-dwell payload into an effective data rate, which is the
    number the adaptation layer needs when deciding whether hopping (for
    interference diversity) is worth its overhead.
    """

    def __init__(self, synthesizer: FrequencySynthesizer | None = None,
                 dwell_time_s: float = 10e-6,
                 data_rate_bps: float = 100e6) -> None:
        self.synthesizer = (synthesizer if synthesizer is not None
                            else FrequencySynthesizer())
        require_positive(dwell_time_s, "dwell_time_s")
        require_positive(data_rate_bps, "data_rate_bps")
        self.dwell_time_s = dwell_time_s
        self.data_rate_bps = data_rate_bps

    def hop_overhead_fraction(self, sequence: HoppingSequence,
                              num_dwells: int | None = None) -> float:
        """Fraction of air time lost to synthesizer settling."""
        channels = sequence.channels
        if num_dwells is None:
            num_dwells = len(channels)
        require_int(num_dwells, "num_dwells", minimum=1)
        hops = 0
        previous = None
        for index in range(num_dwells):
            channel = channels[index % len(channels)]
            if previous is not None and channel != previous:
                hops += 1
            previous = channel
        total_time = num_dwells * self.dwell_time_s \
            + hops * self.synthesizer.hop_time_s
        if total_time <= 0:
            return 0.0
        return hops * self.synthesizer.hop_time_s / total_time

    def effective_data_rate_bps(self, sequence: HoppingSequence,
                                num_dwells: int | None = None) -> float:
        """Data rate after subtracting the hop overhead."""
        overhead = self.hop_overhead_fraction(sequence, num_dwells=num_dwells)
        return self.data_rate_bps * (1.0 - overhead)
