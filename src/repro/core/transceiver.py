"""Complete transceivers: a transmitter + receiver pair over a channel.

``Gen1Transceiver`` and ``Gen2Transceiver`` wrap the whole TX -> channel ->
RX chain for one packet, which is the unit of work the link simulator
repeats to build BER/PER curves and acquisition statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn, noise_std_for_ebn0
from repro.channel.interference import accepts_rng
from repro.channel.multipath import MultipathChannel
from repro.core.config import Gen1Config, Gen2Config
from repro.core.metrics import PacketResult
from repro.core.receiver import Gen1Receiver, Gen2Receiver, ReceiveResult
from repro.core.transmitter import Gen1Transmitter, Gen2Transmitter, TransmitOutput
from repro.utils import dsp
from repro.utils.bits import random_bits

__all__ = ["PacketSimulation", "Gen1Transceiver", "Gen2Transceiver"]


@dataclass(frozen=True)
class PacketSimulation:
    """Full record of one simulated packet exchange."""

    transmit: TransmitOutput
    receive: ReceiveResult
    result: PacketResult
    ebn0_db: float | None


class _Transceiver:
    """Shared packet-simulation flow for both generations."""

    def __init__(self, transmitter, receiver, config) -> None:
        self.transmitter = transmitter
        self.receiver = receiver
        self.config = config

    # ------------------------------------------------------------------
    # Channel application helpers
    # ------------------------------------------------------------------
    def _apply_channel(self, waveform, channel: MultipathChannel | None,
                       sample_rate_hz: float) -> np.ndarray:
        if channel is None:
            return np.asarray(waveform)
        return channel.apply(waveform, sample_rate_hz)

    def _apply_impairments(self, waveform,
                           rng: np.random.Generator) -> np.ndarray:
        """Hook for generation-specific analog impairments."""
        return np.asarray(waveform)

    # ------------------------------------------------------------------
    # Packet simulation
    # ------------------------------------------------------------------
    def simulate_packet(self, payload_bits=None, num_payload_bits: int = 64,
                        ebn0_db: float | None = 12.0,
                        channel: MultipathChannel | None = None,
                        interferer=None,
                        lead_in_s: float | None = None,
                        rng: np.random.Generator | None = None,
                        monitor_spectrum: bool = False) -> PacketSimulation:
        """Simulate one packet through the configured chain.

        Parameters
        ----------
        payload_bits:
            Explicit payload; when ``None``, ``num_payload_bits`` random
            bits are drawn.
        ebn0_db:
            Eb/N0 of the AWGN added after the (optional) multipath channel,
            referenced to the transmitted energy per body bit.  ``None``
            disables noise.
        channel:
            Optional :class:`MultipathChannel`.
        interferer:
            Optional object with an ``add_to(waveform, sample_rate_hz)``
            method (any of the generators in ``repro.channel.interference``).
        lead_in_s:
            Idle air time before the packet; when ``None``, a random lead-in
            of up to ~25 pulse intervals is drawn so acquisition is
            exercised with an unknown arrival time.
        """
        if rng is None:
            rng = np.random.default_rng()
        if payload_bits is None:
            payload_bits = random_bits(num_payload_bits, rng=rng)
        payload_bits = np.asarray(payload_bits, dtype=np.int64)

        if lead_in_s is None:
            max_lead_chips = 25
            lead_in_s = (float(rng.integers(4, max_lead_chips))
                         * self.config.pulse_repetition_interval_s)

        tx = self.transmitter.transmit(payload_bits, lead_in_s=lead_in_s,
                                       lead_out_s=2e-8)
        sample_rate = tx.sample_rate_hz
        energy_per_bit = tx.energy_per_body_bit()

        waveform = self._apply_channel(tx.waveform, channel, sample_rate)
        waveform = self._apply_impairments(waveform, rng)
        if interferer is not None:
            # Modulated interferers draw random symbols; feed them the
            # packet rng so seeded simulations stay deterministic.
            if accepts_rng(interferer, "add_to"):
                waveform = interferer.add_to(waveform, sample_rate, rng=rng)
            else:
                waveform = interferer.add_to(waveform, sample_rate)
        if ebn0_db is not None:
            noise_std = noise_std_for_ebn0(energy_per_bit, ebn0_db)
            waveform = awgn(waveform, noise_std, rng=rng)

        rx = self.receiver.receive(waveform, rng=rng,
                                   monitor_spectrum=monitor_spectrum)

        true_preamble_start_adc = (tx.preamble_start_sample
                                   // self.config.decimation_factor)
        result = rx.to_packet_result(payload_bits, true_preamble_start_adc)
        return PacketSimulation(transmit=tx, receive=rx, result=result,
                                ebn0_db=ebn0_db)

    def data_rate_bps(self) -> float:
        """Uncoded channel bit rate of the configured waveform."""
        return self.config.data_rate_bps

    def batch_model(self, modulation: str = "bpsk", quantize: bool = True,
                    notch_frequency_hz: float | None = None,
                    array_backend=None):
        """Vectorized fast path for this configuration.

        Returns a :class:`repro.sim.batch.BatchedLinkModel` sharing this
        transceiver's configuration — the batch-capable kernel the sweep
        engine uses, with ``simulate_packet`` remaining the per-packet
        reference implementation.  ``array_backend`` selects the array
        backend the kernel runs on (``None``, a name like ``"cupy"``, or
        an :class:`repro.sim.backends.ArrayBackend`).
        """
        from repro.sim.batch import BatchedLinkModel
        return BatchedLinkModel(self.config, modulation=modulation,
                                quantize=quantize,
                                notch_frequency_hz=notch_frequency_hz,
                                backend=array_backend)

    def fullstack_model(self, array_backend=None):
        """Batched full-stack receiver sharing this transceiver's stack.

        Returns a :class:`repro.sim.batch_rx.BatchedFullStackModel` built
        around this transceiver instance (same transmitter, receiver and
        hardware-seeded ADC), so batched Monte-Carlo runs are
        bit-decision-identical to repeating :meth:`simulate_packet` with
        the same random streams.  Both generations batch end to end:
        the gen-2 SAR front and the gen-1 4 GHz interleaved-flash front
        each have whole-batch transmit/channel/AGC/ADC passes.
        ``array_backend`` selects the array backend the batched stages
        run on.
        """
        from repro.sim.batch_rx import BatchedFullStackModel
        return BatchedFullStackModel(self, backend=array_backend)


class Gen1Transceiver(_Transceiver):
    """First-generation baseband pulsed transceiver (Fig. 1)."""

    def __init__(self, config: Gen1Config | None = None,
                 rng: np.random.Generator | None = None) -> None:
        config = config if config is not None else Gen1Config()
        super().__init__(Gen1Transmitter(config), Gen1Receiver(config, rng=rng),
                         config)


class Gen2Transceiver(_Transceiver):
    """Second-generation direct-conversion transceiver (Fig. 3)."""

    def __init__(self, config: Gen2Config | None = None,
                 rng: np.random.Generator | None = None) -> None:
        config = config if config is not None else Gen2Config()
        super().__init__(Gen2Transmitter(config), Gen2Receiver(config, rng=rng),
                         config)

    def _apply_impairments(self, waveform, rng: np.random.Generator) -> np.ndarray:
        """Apply the direct-conversion impairments configured for the link."""
        config = self.config
        x = np.asarray(waveform, dtype=complex)
        needs_cfo = abs(config.carrier_frequency_offset_hz) > 0
        needs_iq = (abs(config.iq_gain_imbalance_db) > 0
                    or abs(config.iq_phase_imbalance_deg) > 0)
        needs_dc = abs(config.dc_offset) > 0
        if not (needs_cfo or needs_iq or needs_dc):
            return x
        if needs_cfo:
            t = dsp.time_vector(x.size, config.simulation_rate_hz)
            x = x * np.exp(1j * 2.0 * np.pi
                           * config.carrier_frequency_offset_hz * t)
        if needs_iq:
            gain_error = 10.0 ** (config.iq_gain_imbalance_db / 20.0) - 1.0
            phase_error = np.deg2rad(config.iq_phase_imbalance_deg)
            alpha = 0.5 * (1.0 + (1.0 + gain_error) * np.exp(-1j * phase_error))
            beta = 0.5 * (1.0 - (1.0 + gain_error) * np.exp(1j * phase_error))
            x = alpha * x + beta * np.conj(x)
        if needs_dc:
            x = x + config.dc_offset
        return x
