"""Link-level simulation harness: BER/PER sweeps and acquisition statistics.

This is the measurement machinery the benchmarks use to regenerate the
paper's quantitative claims: BER versus Eb/N0 (with or without multipath,
interference, ADC-resolution limits), packet-error rates, throughput, and
acquisition time/probability statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.metrics import BERCurve, BERPoint
from repro.core.transceiver import _Transceiver
from repro.utils.validation import require_int

__all__ = ["AcquisitionStatistics", "LinkSimulator"]


@dataclass
class AcquisitionStatistics:
    """Aggregated acquisition behaviour over many packets."""

    attempts: int = 0
    detections: int = 0
    timing_errors_samples: list[int] = field(default_factory=list)
    search_times_s: list[float] = field(default_factory=list)

    @property
    def detection_probability(self) -> float:
        """Fraction of packets whose preamble was detected.

        ``nan`` when no packets were recorded — "no data" must not read as
        "never detects".
        """
        if self.attempts == 0:
            return float("nan")
        return self.detections / self.attempts

    @property
    def mean_search_time_s(self) -> float:
        """Average back-end search latency of the detected packets.

        ``nan`` when no packet was detected (there is no latency to report).
        """
        if not self.search_times_s:
            return float("nan")
        return float(np.mean(self.search_times_s))

    @property
    def rms_timing_error_samples(self) -> float:
        """RMS timing error of the detected packets.

        ``nan`` when no packet was detected — a ``0.0`` here would read as
        perfect timing.
        """
        if not self.timing_errors_samples:
            return float("nan")
        return float(np.sqrt(np.mean(np.square(self.timing_errors_samples))))

    def record(self, detected: bool, timing_error_samples: int,
               search_time_s: float) -> None:
        """Add one packet's acquisition outcome."""
        self.attempts += 1
        if detected:
            self.detections += 1
            self.timing_errors_samples.append(int(timing_error_samples))
            self.search_times_s.append(float(search_time_s))


class LinkSimulator:
    """Monte-Carlo link simulation driver for a transceiver."""

    def __init__(self, transceiver: _Transceiver,
                 rng: np.random.Generator | None = None) -> None:
        self.transceiver = transceiver
        self.rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # BER sweeps
    # ------------------------------------------------------------------
    def ber_point(self, ebn0_db: float, num_packets: int = 10,
                  payload_bits_per_packet: int = 64,
                  channel_factory: Callable[[], object] | None = None,
                  interferer_factory: Callable[[], object] | None = None,
                  **packet_kwargs) -> BERPoint:
        """Measure one Eb/N0 operating point.

        ``channel_factory`` / ``interferer_factory`` are zero-argument
        callables returning a fresh channel / interferer per packet (or
        ``None`` for a static / absent one).
        """
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet", minimum=1)
        bit_errors = 0
        total_bits = 0
        packets_failed = 0
        for _ in range(num_packets):
            channel = channel_factory() if channel_factory is not None else None
            interferer = (interferer_factory()
                          if interferer_factory is not None else None)
            simulation = self.transceiver.simulate_packet(
                num_payload_bits=payload_bits_per_packet,
                ebn0_db=ebn0_db,
                channel=channel,
                interferer=interferer,
                rng=self.rng,
                **packet_kwargs)
            bit_errors += simulation.result.payload_bit_errors
            total_bits += simulation.result.num_payload_bits
            if not simulation.result.packet_success:
                packets_failed += 1
        return BERPoint(ebn0_db=ebn0_db, bit_errors=bit_errors,
                        total_bits=total_bits, packets_sent=num_packets,
                        packets_failed=packets_failed)

    def ber_sweep(self, ebn0_values_db, label: str = "link",
                  num_packets: int = 10, payload_bits_per_packet: int = 64,
                  channel_factory: Callable[[], object] | None = None,
                  interferer_factory: Callable[[], object] | None = None,
                  **packet_kwargs) -> BERCurve:
        """Sweep Eb/N0 and return the resulting BER curve."""
        curve = BERCurve(label=label)
        for ebn0_db in ebn0_values_db:
            curve.add(self.ber_point(
                float(ebn0_db), num_packets=num_packets,
                payload_bits_per_packet=payload_bits_per_packet,
                channel_factory=channel_factory,
                interferer_factory=interferer_factory,
                **packet_kwargs))
        return curve

    def ber_sweep_batched(self, ebn0_values_db, label: str = "link",
                          num_packets: int = 10,
                          payload_bits_per_packet: int = 64,
                          seed: int = 0) -> BERCurve:
        """Fast Eb/N0 sweep via the vectorized batch kernel.

        Thin wrapper over :class:`repro.sim.batch.BatchedLinkModel` for the
        common AWGN case; use :class:`repro.sim.SweepEngine` directly for
        multi-scenario / multi-modulation grids and process-pool
        parallelism.  The batch path is genie-timed (no acquisition or
        channel-estimation loss), so it matches :meth:`ber_sweep` within
        Monte-Carlo tolerance only at operating points where
        synchronization is reliable.
        """
        model = self.transceiver.batch_model()
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        curve = BERCurve(label=label)
        for ebn0_db in ebn0_values_db:
            result = model.simulate(float(ebn0_db), num_packets,
                                    payload_bits_per_packet, rng=rng)
            curve.add(result.to_ber_point())
        return curve

    # ------------------------------------------------------------------
    # Acquisition statistics
    # ------------------------------------------------------------------
    def acquisition_statistics(self, ebn0_db: float, num_packets: int = 20,
                               payload_bits_per_packet: int = 16,
                               channel_factory: Callable[[], object] | None = None,
                               **packet_kwargs) -> AcquisitionStatistics:
        """Measure detection probability, timing error and search latency."""
        require_int(num_packets, "num_packets", minimum=1)
        stats = AcquisitionStatistics()
        for _ in range(num_packets):
            channel = channel_factory() if channel_factory is not None else None
            simulation = self.transceiver.simulate_packet(
                num_payload_bits=payload_bits_per_packet,
                ebn0_db=ebn0_db,
                channel=channel,
                rng=self.rng,
                **packet_kwargs)
            result = simulation.result
            stats.record(result.detected, result.timing_error_samples,
                         result.acquisition_time_s)
        return stats

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    def effective_throughput_bps(self, ebn0_db: float, num_packets: int = 10,
                                 payload_bits_per_packet: int = 64,
                                 channel_factory: Callable[[], object] | None = None,
                                 **packet_kwargs) -> float:
        """Goodput: delivered payload bits per second of air time."""
        delivered_bits = 0
        air_time_s = 0.0
        for _ in range(num_packets):
            channel = channel_factory() if channel_factory is not None else None
            simulation = self.transceiver.simulate_packet(
                num_payload_bits=payload_bits_per_packet,
                ebn0_db=ebn0_db,
                channel=channel,
                rng=self.rng,
                **packet_kwargs)
            air_time_s += simulation.transmit.duration_s
            if simulation.result.packet_success:
                delivered_bits += simulation.result.num_payload_bits
        if air_time_s <= 0:
            return 0.0
        return delivered_bits / air_time_s
