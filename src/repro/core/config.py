"""System configurations for the two transceiver generations.

Every knob the paper mentions is a field here: pulse bandwidth, pulses per
bit, ADC resolution/rate, preamble structure, RAKE fingers, Viterbi use,
sub-band selection.  The defaults correspond to the paper's nominal
operating points; the ``fast_*`` factories scale the time-consuming
parameters down for unit tests while keeping the architecture identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.constants import (
    GEN1_ADC_BITS,
    GEN1_ADC_INTERLEAVE_FACTOR,
    GEN1_ADC_RATE_HZ,
    GEN2_ADC_BITS,
    GEN2_CHANNEL_BANDWIDTH_HZ,
    GEN2_CHANNEL_ESTIMATE_BITS,
)
from repro.phy.packet import PacketConfig
from repro.phy.preamble import PreambleConfig
from repro.utils.validation import require_int, require_positive

__all__ = ["Gen1Config", "Gen2Config"]


@dataclass(frozen=True)
class Gen1Config:
    """First-generation baseband pulsed transceiver configuration.

    The signal is a carrier-free pulse train (Gaussian monocycle) sampled
    as a real waveform; the ADC is the 4-way time-interleaved flash.
    """

    # Waveform
    pulse_bandwidth_hz: float = 1.0e9
    pulse_order: int = 1                      # Gaussian derivative order
    pulse_repetition_interval_s: float = 50e-9
    pulses_per_bit: int = 104                 # 104 * 50 ns -> 192.3 kbps
    # Sampling
    simulation_rate_hz: float = 4e9
    adc_rate_hz: float = GEN1_ADC_RATE_HZ
    adc_bits: int = GEN1_ADC_BITS
    adc_interleave_factor: int = GEN1_ADC_INTERLEAVE_FACTOR
    adc_gain_mismatch_std: float = 0.01
    adc_offset_mismatch_std: float = 0.005
    adc_timing_skew_std_s: float = 2e-12
    # Packetization
    packet: PacketConfig = field(default_factory=lambda: PacketConfig(
        preamble=PreambleConfig(sequence_degree=7, num_repetitions=4)))
    # Back end
    acquisition_threshold: float = 0.3
    acquisition_parallelism: int = 8
    backend_clock_hz: float = 250e6
    channel_estimate_taps: int = 32
    channel_estimate_bits: int = 4
    rake_fingers: int = 2
    use_mlse: bool = False

    def __post_init__(self) -> None:
        require_positive(self.pulse_bandwidth_hz, "pulse_bandwidth_hz")
        require_positive(self.pulse_repetition_interval_s,
                         "pulse_repetition_interval_s")
        require_int(self.pulses_per_bit, "pulses_per_bit", minimum=1)
        require_positive(self.simulation_rate_hz, "simulation_rate_hz")
        require_positive(self.adc_rate_hz, "adc_rate_hz")
        if self.simulation_rate_hz < self.adc_rate_hz:
            raise ValueError("simulation rate must be >= ADC rate")
        ratio = self.simulation_rate_hz / self.adc_rate_hz
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError("simulation rate must be an integer multiple of "
                             "the ADC rate")
        samples_per_pri = self.pulse_repetition_interval_s * self.adc_rate_hz
        if abs(samples_per_pri - round(samples_per_pri)) > 1e-6:
            raise ValueError("pulse repetition interval must be an integer "
                             "number of ADC sample periods")

    @property
    def bit_duration_s(self) -> float:
        """Duration of one information bit on the air."""
        return self.pulses_per_bit * self.pulse_repetition_interval_s

    @property
    def data_rate_bps(self) -> float:
        """Uncoded channel bit rate."""
        return 1.0 / self.bit_duration_s

    @property
    def decimation_factor(self) -> int:
        """Simulation-rate to ADC-rate decimation."""
        return int(round(self.simulation_rate_hz / self.adc_rate_hz))

    @property
    def samples_per_pri_adc(self) -> int:
        """ADC samples per pulse repetition interval."""
        return int(round(self.pulse_repetition_interval_s * self.adc_rate_hz))

    @property
    def preamble_duration_s(self) -> float:
        """On-air duration of the preamble (one chip per PRI)."""
        return (self.packet.preamble.total_symbols
                * self.pulse_repetition_interval_s)

    @classmethod
    def fast_test_config(cls) -> "Gen1Config":
        """Small configuration for unit tests (same architecture, less data)."""
        return cls(
            pulse_repetition_interval_s=20e-9,
            pulses_per_bit=4,
            simulation_rate_hz=4e9,
            adc_rate_hz=2e9,
            packet=PacketConfig(
                preamble=PreambleConfig(sequence_degree=5, num_repetitions=2)),
            channel_estimate_taps=16,
        )

    def with_changes(self, **kwargs) -> "Gen1Config":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class Gen2Config:
    """Second-generation 3.1-10.6 GHz direct-conversion transceiver configuration.

    The signal is a 500 MHz-bandwidth pulse train at complex baseband; the
    sub-band centre frequency only matters to the RF models (band plan,
    synthesizer, FCC analysis), not to the baseband math.
    """

    # Waveform
    pulse_bandwidth_hz: float = GEN2_CHANNEL_BANDWIDTH_HZ
    pulse_repetition_interval_s: float = 10e-9
    pulses_per_bit: int = 1                   # 1 pulse / 10 ns -> 100 Mbps
    channel_index: int = 3                    # sub-band (0-13)
    # Sampling
    simulation_rate_hz: float = 2e9
    adc_rate_hz: float = 1e9
    adc_bits: int = GEN2_ADC_BITS
    adc_capacitor_mismatch_std: float = 0.003
    adc_comparator_noise_std: float = 0.002
    # RF impairments (baseband-equivalent)
    carrier_frequency_offset_hz: float = 0.0
    iq_gain_imbalance_db: float = 0.0
    iq_phase_imbalance_deg: float = 0.0
    dc_offset: float = 0.0
    # Interferer mitigation (spectral monitor -> digital notch control loop)
    enable_digital_notch: bool = False
    # Packetization
    packet: PacketConfig = field(default_factory=lambda: PacketConfig(
        preamble=PreambleConfig(sequence_degree=7, num_repetitions=8)))
    # Back end
    acquisition_threshold: float = 0.3
    acquisition_parallelism: int = 16
    backend_clock_hz: float = 250e6
    channel_estimate_taps: int = 64
    channel_estimate_bits: int = GEN2_CHANNEL_ESTIMATE_BITS
    rake_fingers: int = 4
    rake_policy: str = "srake"
    use_mlse: bool = True
    mlse_max_taps: int = 3

    def __post_init__(self) -> None:
        require_positive(self.pulse_bandwidth_hz, "pulse_bandwidth_hz")
        require_positive(self.pulse_repetition_interval_s,
                         "pulse_repetition_interval_s")
        require_int(self.pulses_per_bit, "pulses_per_bit", minimum=1)
        require_positive(self.simulation_rate_hz, "simulation_rate_hz")
        require_positive(self.adc_rate_hz, "adc_rate_hz")
        require_int(self.channel_index, "channel_index", minimum=0)
        if self.channel_index > 13:
            raise ValueError("channel_index must be in [0, 13]")
        if self.simulation_rate_hz < self.adc_rate_hz:
            raise ValueError("simulation rate must be >= ADC rate")
        ratio = self.simulation_rate_hz / self.adc_rate_hz
        if abs(ratio - round(ratio)) > 1e-9:
            raise ValueError("simulation rate must be an integer multiple of "
                             "the ADC rate")
        samples_per_pri = self.pulse_repetition_interval_s * self.adc_rate_hz
        if abs(samples_per_pri - round(samples_per_pri)) > 1e-6:
            raise ValueError("pulse repetition interval must be an integer "
                             "number of ADC sample periods")

    @property
    def bit_duration_s(self) -> float:
        """Duration of one information bit on the air."""
        return self.pulses_per_bit * self.pulse_repetition_interval_s

    @property
    def data_rate_bps(self) -> float:
        """Uncoded channel bit rate."""
        return 1.0 / self.bit_duration_s

    @property
    def decimation_factor(self) -> int:
        """Simulation-rate to ADC-rate decimation."""
        return int(round(self.simulation_rate_hz / self.adc_rate_hz))

    @property
    def samples_per_pri_adc(self) -> int:
        """ADC samples per pulse repetition interval."""
        return int(round(self.pulse_repetition_interval_s * self.adc_rate_hz))

    @property
    def preamble_duration_s(self) -> float:
        """On-air duration of the preamble (one chip per PRI)."""
        return (self.packet.preamble.total_symbols
                * self.pulse_repetition_interval_s)

    @classmethod
    def fast_test_config(cls) -> "Gen2Config":
        """Small configuration for unit tests."""
        return cls(
            pulse_repetition_interval_s=8e-9,
            pulses_per_bit=1,
            simulation_rate_hz=2e9,
            adc_rate_hz=1e9,
            packet=PacketConfig(
                preamble=PreambleConfig(sequence_degree=5, num_repetitions=4)),
            channel_estimate_taps=32,
            use_mlse=False,
        )

    def with_changes(self, **kwargs) -> "Gen2Config":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)
