"""Transmitters for both transceiver generations.

A transmitter maps payload bits to a sampled waveform:

``payload bits -> packet (preamble chips + body bits) -> pulse train``

The preamble chips and the body symbols both ride on the same prototype
pulse; the preamble sends one pulse per chip, the body sends
``pulses_per_bit`` identical pulses per (BPSK) bit — the "Pulses per bit"
knob of Fig. 3 that trades data rate for energy per bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_BAND_PLAN
from repro.core.config import Gen1Config, Gen2Config
from repro.phy.packet import Packet, PacketBuilder
from repro.pulses.modulation import BPSKModulator
from repro.pulses.shapes import (
    Pulse,
    gaussian_derivative_pulse,
    gaussian_pulse,
)
from repro.pulses.train import PulseTrainConfig, PulseTrainGenerator
from repro.utils import dsp

__all__ = ["TransmitOutput", "Gen1Transmitter", "Gen2Transmitter"]


@dataclass(frozen=True)
class TransmitOutput:
    """Everything a link simulation needs to know about one transmission."""

    waveform: np.ndarray
    sample_rate_hz: float
    packet: Packet
    pulse: Pulse
    preamble_start_sample: int
    body_start_sample: int
    num_body_symbols: int
    samples_per_symbol: int
    samples_per_chip: int

    @property
    def num_samples(self) -> int:
        return int(self.waveform.size)

    @property
    def duration_s(self) -> float:
        return self.num_samples / self.sample_rate_hz

    def energy_per_body_bit(self) -> float:
        """Average transmitted energy per body (channel) bit."""
        body = self.waveform[self.body_start_sample:
                             self.body_start_sample
                             + self.num_body_symbols * self.samples_per_symbol]
        num_bits = max(self.packet.body_bits.size, 1)
        return dsp.signal_energy(body) / num_bits


class _PulsedTransmitter:
    """Shared machinery of both generations (they differ only in the pulse)."""

    def __init__(self, config, pulse: Pulse) -> None:
        self.config = config
        self.pulse = pulse
        self.builder = PacketBuilder(config.packet)
        self.modulator = BPSKModulator()
        self._chip_train_config = PulseTrainConfig(
            pulse_repetition_interval_s=config.pulse_repetition_interval_s,
            pulses_per_symbol=1)
        self._bit_train_config = PulseTrainConfig(
            pulse_repetition_interval_s=config.pulse_repetition_interval_s,
            pulses_per_symbol=config.pulses_per_bit)
        self._chip_generator = PulseTrainGenerator(
            pulse, self._chip_train_config, self.modulator)
        self._bit_generator = PulseTrainGenerator(
            pulse, self._bit_train_config, self.modulator)

    @property
    def samples_per_chip(self) -> int:
        """Simulation-rate samples per preamble chip."""
        return self._chip_generator.samples_per_pulse_interval

    @property
    def samples_per_symbol(self) -> int:
        """Simulation-rate samples per body bit."""
        return self._bit_generator.samples_per_symbol

    def transmit(self, payload_bits, lead_in_s: float = 0.0,
                 lead_out_s: float = 0.0,
                 amplitude: float = 1.0) -> TransmitOutput:
        """Build the transmit waveform for one packet.

        ``lead_in_s``/``lead_out_s`` pad the waveform with silence before
        and after the packet (the receiver does not know where the packet
        starts — that is acquisition's job).
        """
        packet = self.builder.build(payload_bits)
        preamble_train = self._chip_generator.generate_from_symbols(
            packet.preamble_symbols)
        body_symbols = self.modulator.modulate(packet.body_bits)
        body_train = self._bit_generator.generate_from_symbols(body_symbols)

        sample_rate = self.pulse.sample_rate_hz
        lead_in = int(round(lead_in_s * sample_rate))
        lead_out = int(round(lead_out_s * sample_rate))
        is_complex = np.iscomplexobj(self.pulse.waveform)
        dtype = complex if is_complex else float
        waveform = np.concatenate((
            np.zeros(lead_in, dtype=dtype),
            preamble_train.waveform.astype(dtype),
            body_train.waveform.astype(dtype),
            np.zeros(lead_out, dtype=dtype),
        )) * amplitude

        return TransmitOutput(
            waveform=waveform,
            sample_rate_hz=sample_rate,
            packet=packet,
            pulse=self.pulse,
            preamble_start_sample=lead_in,
            body_start_sample=lead_in + preamble_train.waveform.size,
            num_body_symbols=int(body_symbols.size),
            samples_per_symbol=self.samples_per_symbol,
            samples_per_chip=self.samples_per_chip,
        )


class Gen1Transmitter(_PulsedTransmitter):
    """Carrier-free baseband pulse transmitter (gen 1).

    The pulse is a Gaussian derivative ("monocycle" by default) whose
    spectrum sits below ~1 GHz, matching the baseband chip that needs no
    up-conversion.
    """

    def __init__(self, config: Gen1Config | None = None) -> None:
        config = config if config is not None else Gen1Config()
        pulse = gaussian_derivative_pulse(
            order=config.pulse_order,
            bandwidth_hz=config.pulse_bandwidth_hz,
            sample_rate_hz=config.simulation_rate_hz)
        super().__init__(config, pulse)


class Gen2Transmitter(_PulsedTransmitter):
    """Complex-baseband transmitter for the 3.1-10.6 GHz system (gen 2).

    The waveform is the 500 MHz-bandwidth complex envelope; the sub-band
    centre frequency lives in ``config.channel_index`` and is applied by the
    RF models (synthesizer / FCC analysis), not baked into the samples.
    """

    def __init__(self, config: Gen2Config | None = None) -> None:
        config = config if config is not None else Gen2Config()
        base = gaussian_pulse(bandwidth_hz=config.pulse_bandwidth_hz,
                              sample_rate_hz=config.simulation_rate_hz)
        pulse = Pulse(base.waveform.astype(complex),
                      base.sample_rate_hz, name="gen2_envelope")
        super().__init__(config, pulse)

    def carrier_frequency_hz(self) -> float:
        """Centre frequency of the configured sub-band."""
        return DEFAULT_BAND_PLAN.center_frequency(self.config.channel_index)

    def passband_waveform(self, output: TransmitOutput) -> np.ndarray:
        """Up-convert a transmit output to a real passband waveform.

        Only used by the RF-level benchmarks (FCC mask, Fig. 4 style
        waveforms); link simulations stay at complex baseband.  The
        returned waveform is sampled at a rate high enough for the carrier.
        """
        carrier = self.carrier_frequency_hz()
        passband_rate = 4.0 * (carrier + self.config.pulse_bandwidth_hz)
        upsample = int(np.ceil(passband_rate / output.sample_rate_hz))
        passband_rate = output.sample_rate_hz * upsample
        envelope = np.repeat(output.waveform, upsample)
        envelope = dsp.lowpass_filter(envelope,
                                      self.config.pulse_bandwidth_hz,
                                      passband_rate)
        return dsp.upconvert(envelope, carrier, passband_rate)
