"""Transmitters for both transceiver generations.

A transmitter maps payload bits to a sampled waveform:

``payload bits -> packet (preamble chips + body bits) -> pulse train``

The preamble chips and the body symbols both ride on the same prototype
pulse; the preamble sends one pulse per chip, the body sends
``pulses_per_bit`` identical pulses per (BPSK) bit — the "Pulses per bit"
knob of Fig. 3 that trades data rate for energy per bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_BAND_PLAN
from repro.core.config import Gen1Config, Gen2Config
from repro.phy.packet import Packet, PacketBuilder
from repro.pulses.modulation import BPSKModulator
from repro.pulses.shapes import (
    Pulse,
    gaussian_derivative_pulse,
    gaussian_pulse,
)
from repro.pulses.train import PulseTrainConfig, PulseTrainGenerator
from repro.utils import dsp

__all__ = ["TransmitOutput", "TransmitBatch", "Gen1Transmitter",
           "Gen2Transmitter"]


@dataclass(frozen=True)
class TransmitOutput:
    """Everything a link simulation needs to know about one transmission."""

    waveform: np.ndarray
    sample_rate_hz: float
    packet: Packet
    pulse: Pulse
    preamble_start_sample: int
    body_start_sample: int
    num_body_symbols: int
    samples_per_symbol: int
    samples_per_chip: int

    @property
    def num_samples(self) -> int:
        """Length of the transmit waveform in samples."""
        return int(self.waveform.size)

    @property
    def duration_s(self) -> float:
        """On-air duration of the transmission."""
        return self.num_samples / self.sample_rate_hz

    def energy_per_body_bit(self) -> float:
        """Average transmitted energy per body (channel) bit."""
        body = self.waveform[self.body_start_sample:
                             self.body_start_sample
                             + self.num_body_symbols * self.samples_per_symbol]
        num_bits = max(self.packet.body_bits.size, 1)
        return dsp.signal_energy(body) / num_bits


@dataclass(frozen=True)
class TransmitBatch:
    """A zero-padded batch of transmissions, one packet per row.

    Produced by :meth:`_PulsedTransmitter.transmit_batch`; row ``i`` of
    ``waveforms`` holds the first ``lengths[i]`` samples of what
    :meth:`_PulsedTransmitter.transmit` would have emitted for packet
    ``i`` (bitwise — the batch synthesis broadcasts the same elementwise
    pulse placement), zero-padded to the widest packet.
    """

    waveforms: np.ndarray
    lengths: np.ndarray
    sample_rate_hz: float
    packets: tuple
    pulse: Pulse
    preamble_start_samples: np.ndarray
    body_start_samples: np.ndarray
    num_body_symbols: int
    samples_per_symbol: int
    samples_per_chip: int
    energies_per_body_bit: np.ndarray

    @property
    def num_packets(self) -> int:
        """Number of transmissions in the batch."""
        return int(self.waveforms.shape[0])

    def output_for(self, index: int) -> TransmitOutput:
        """Materialize one row as a standalone :class:`TransmitOutput`."""
        return TransmitOutput(
            waveform=self.waveforms[index, :self.lengths[index]].copy(),
            sample_rate_hz=self.sample_rate_hz,
            packet=self.packets[index],
            pulse=self.pulse,
            preamble_start_sample=int(self.preamble_start_samples[index]),
            body_start_sample=int(self.body_start_samples[index]),
            num_body_symbols=self.num_body_symbols,
            samples_per_symbol=self.samples_per_symbol,
            samples_per_chip=self.samples_per_chip,
        )


class _PulsedTransmitter:
    """Shared machinery of both generations (they differ only in the pulse)."""

    def __init__(self, config, pulse: Pulse) -> None:
        self.config = config
        self.pulse = pulse
        self.builder = PacketBuilder(config.packet)
        self.modulator = BPSKModulator()
        self._chip_train_config = PulseTrainConfig(
            pulse_repetition_interval_s=config.pulse_repetition_interval_s,
            pulses_per_symbol=1)
        self._bit_train_config = PulseTrainConfig(
            pulse_repetition_interval_s=config.pulse_repetition_interval_s,
            pulses_per_symbol=config.pulses_per_bit)
        self._chip_generator = PulseTrainGenerator(
            pulse, self._chip_train_config, self.modulator)
        self._bit_generator = PulseTrainGenerator(
            pulse, self._bit_train_config, self.modulator)

    @property
    def samples_per_chip(self) -> int:
        """Simulation-rate samples per preamble chip."""
        return self._chip_generator.samples_per_pulse_interval

    @property
    def samples_per_symbol(self) -> int:
        """Simulation-rate samples per body bit."""
        return self._bit_generator.samples_per_symbol

    def transmit(self, payload_bits, lead_in_s: float = 0.0,
                 lead_out_s: float = 0.0,
                 amplitude: float = 1.0) -> TransmitOutput:
        """Build the transmit waveform for one packet.

        ``lead_in_s``/``lead_out_s`` pad the waveform with silence before
        and after the packet (the receiver does not know where the packet
        starts — that is acquisition's job).
        """
        return self._transmit_built(self.builder.build(payload_bits),
                                    lead_in_s=lead_in_s,
                                    lead_out_s=lead_out_s,
                                    amplitude=amplitude)

    def _transmit_built(self, packet, lead_in_s: float = 0.0,
                        lead_out_s: float = 0.0,
                        amplitude: float = 1.0) -> TransmitOutput:
        """:meth:`transmit` for a packet that is already built (so batch
        callers that built packets early never build them twice)."""
        preamble_train = self._chip_generator.generate_from_symbols(
            packet.preamble_symbols)
        body_symbols = self.modulator.modulate(packet.body_bits)
        body_train = self._bit_generator.generate_from_symbols(body_symbols)

        sample_rate = self.pulse.sample_rate_hz
        lead_in = int(round(lead_in_s * sample_rate))
        lead_out = int(round(lead_out_s * sample_rate))
        is_complex = np.iscomplexobj(self.pulse.waveform)
        dtype = complex if is_complex else float
        waveform = np.concatenate((
            np.zeros(lead_in, dtype=dtype),
            preamble_train.waveform.astype(dtype),
            body_train.waveform.astype(dtype),
            np.zeros(lead_out, dtype=dtype),
        )) * amplitude

        return TransmitOutput(
            waveform=waveform,
            sample_rate_hz=sample_rate,
            packet=packet,
            pulse=self.pulse,
            preamble_start_sample=lead_in,
            body_start_sample=lead_in + preamble_train.waveform.size,
            num_body_symbols=int(body_symbols.size),
            samples_per_symbol=self.samples_per_symbol,
            samples_per_chip=self.samples_per_chip,
        )

    def num_transmit_samples(self, packet, lead_in_s: float = 0.0,
                             lead_out_s: float = 0.0) -> int:
        """Sample count :meth:`transmit` would emit for a built packet.

        Lets batched front ends size per-packet random draws (interferer
        symbols, noise samples) *before* any waveform is synthesized —
        the key to consuming seeded streams in per-packet order while the
        synthesis itself runs as one batch.
        """
        sample_rate = self.pulse.sample_rate_hz
        lead_in = int(round(lead_in_s * sample_rate))
        lead_out = int(round(lead_out_s * sample_rate))
        preamble = packet.preamble_symbols.size * self.samples_per_chip
        body = (self.modulator.num_symbols(packet.body_bits.size)
                * self.samples_per_symbol)
        return lead_in + preamble + body + lead_out

    def transmit_batch(self, payloads, lead_in_s, lead_out_s: float = 0.0,
                       amplitude: float = 1.0,
                       packets=None) -> TransmitBatch:
        """Build a whole batch of transmit waveforms in one array pass.

        The batched form of :meth:`transmit`: ``payloads`` holds one
        equal-length payload per packet and ``lead_in_s`` a scalar or
        per-packet lead-in.  The preamble waveform is synthesized once
        (it is payload-independent) and every body rides through
        :meth:`~repro.pulses.train.PulseTrainGenerator
        .generate_batch_from_symbols`, so row ``i`` of the result is
        bitwise what ``transmit(payloads[i], ...)`` would have produced
        — pinned by the full-stack parity suite.  Configurations the
        grid fast path cannot express (time hopping, position
        modulation) fall back to per-packet synthesis into the same
        container.  ``packets`` may pass packets already built from the
        payloads (callers that needed the lengths early); otherwise they
        are built here.
        """
        payloads = [np.asarray(bits, dtype=np.int64) for bits in payloads]
        num_packets = len(payloads)
        if num_packets == 0:
            raise ValueError("transmit_batch needs at least one payload")
        if packets is None:
            packets = [self.builder.build(bits) for bits in payloads]
        packets = list(packets)
        if len(packets) != num_packets:
            raise ValueError("packets must match payloads one to one")
        sample_rate = self.pulse.sample_rate_hz
        lead_in_s = np.broadcast_to(np.asarray(lead_in_s, dtype=float),
                                    (num_packets,))
        lead_ins = np.rint(lead_in_s * sample_rate).astype(np.int64)
        lead_out = int(round(lead_out_s * sample_rate))

        body_symbol_rows = [self.modulator.modulate(packet.body_bits)
                            for packet in packets]
        num_body_symbols = int(body_symbol_rows[0].size)
        same_shape = (
            all(row.size == num_body_symbols for row in body_symbol_rows)
            and all(np.array_equal(packet.preamble_symbols,
                                   packets[0].preamble_symbols)
                    for packet in packets[1:]))
        body_batch = None
        if same_shape:
            body_batch = self._bit_generator.generate_batch_from_symbols(
                np.stack(body_symbol_rows))
        if body_batch is None:
            # Uneven bodies or a non-grid waveform: synthesize per packet
            # from the already-built packets (identical output, just
            # without the batched multiply).
            outputs = [self._transmit_built(packet, lead_in_s=float(lead),
                                            lead_out_s=lead_out_s,
                                            amplitude=amplitude)
                       for packet, lead in zip(packets, lead_in_s)]
            return self._batch_from_outputs(outputs)

        preamble_wave = self._chip_generator.generate_from_symbols(
            packets[0].preamble_symbols).waveform
        is_complex = np.iscomplexobj(self.pulse.waveform)
        dtype = complex if is_complex else float
        preamble_wave = np.asarray(preamble_wave, dtype=dtype)
        body_batch = np.asarray(body_batch, dtype=dtype)
        if amplitude != 1.0:
            # Scaling by exactly 1.0 is the identity on every float, so
            # the default skips the two full-batch multiply passes.
            preamble_wave = preamble_wave * amplitude
            body_batch = body_batch * amplitude

        preamble_len = preamble_wave.size
        body_len = body_batch.shape[1]
        lengths = lead_ins + preamble_len + body_len + lead_out
        width = int(lengths.max())
        waveforms = np.zeros((num_packets, width), dtype=dtype)
        body_starts = lead_ins + preamble_len
        for index in range(num_packets):
            start = int(lead_ins[index])
            waveforms[index, start:start + preamble_len] = preamble_wave
            body_start = start + preamble_len
            waveforms[index, body_start:body_start + body_len] = \
                body_batch[index]

        num_bits = max(packets[0].body_bits.size, 1)
        energies = np.sum(np.abs(body_batch) ** 2, axis=-1) / num_bits
        return TransmitBatch(
            waveforms=waveforms,
            lengths=lengths,
            sample_rate_hz=sample_rate,
            packets=tuple(packets),
            pulse=self.pulse,
            preamble_start_samples=lead_ins,
            body_start_samples=body_starts,
            num_body_symbols=num_body_symbols,
            samples_per_symbol=self.samples_per_symbol,
            samples_per_chip=self.samples_per_chip,
            energies_per_body_bit=energies,
        )

    def _batch_from_outputs(self, outputs) -> TransmitBatch:
        """Pack per-packet :class:`TransmitOutput` rows into a batch."""
        lengths = np.asarray([output.num_samples for output in outputs],
                             dtype=np.int64)
        width = int(lengths.max())
        is_complex = any(np.iscomplexobj(output.waveform)
                         for output in outputs)
        waveforms = np.zeros((len(outputs), width),
                             dtype=complex if is_complex else float)
        for index, output in enumerate(outputs):
            waveforms[index, :lengths[index]] = output.waveform
        return TransmitBatch(
            waveforms=waveforms,
            lengths=lengths,
            sample_rate_hz=outputs[0].sample_rate_hz,
            packets=tuple(output.packet for output in outputs),
            pulse=self.pulse,
            preamble_start_samples=np.asarray(
                [output.preamble_start_sample for output in outputs],
                dtype=np.int64),
            body_start_samples=np.asarray(
                [output.body_start_sample for output in outputs],
                dtype=np.int64),
            num_body_symbols=outputs[0].num_body_symbols,
            samples_per_symbol=outputs[0].samples_per_symbol,
            samples_per_chip=outputs[0].samples_per_chip,
            energies_per_body_bit=np.asarray(
                [output.energy_per_body_bit() for output in outputs]),
        )


class Gen1Transmitter(_PulsedTransmitter):
    """Carrier-free baseband pulse transmitter (gen 1).

    The pulse is a Gaussian derivative ("monocycle" by default) whose
    spectrum sits below ~1 GHz, matching the baseband chip that needs no
    up-conversion.
    """

    def __init__(self, config: Gen1Config | None = None) -> None:
        config = config if config is not None else Gen1Config()
        pulse = gaussian_derivative_pulse(
            order=config.pulse_order,
            bandwidth_hz=config.pulse_bandwidth_hz,
            sample_rate_hz=config.simulation_rate_hz)
        super().__init__(config, pulse)


class Gen2Transmitter(_PulsedTransmitter):
    """Complex-baseband transmitter for the 3.1-10.6 GHz system (gen 2).

    The waveform is the 500 MHz-bandwidth complex envelope; the sub-band
    centre frequency lives in ``config.channel_index`` and is applied by the
    RF models (synthesizer / FCC analysis), not baked into the samples.
    """

    def __init__(self, config: Gen2Config | None = None) -> None:
        config = config if config is not None else Gen2Config()
        base = gaussian_pulse(bandwidth_hz=config.pulse_bandwidth_hz,
                              sample_rate_hz=config.simulation_rate_hz)
        pulse = Pulse(base.waveform.astype(complex),
                      base.sample_rate_hz, name="gen2_envelope")
        super().__init__(config, pulse)

    def carrier_frequency_hz(self) -> float:
        """Centre frequency of the configured sub-band."""
        return DEFAULT_BAND_PLAN.center_frequency(self.config.channel_index)

    def passband_waveform(self, output: TransmitOutput) -> np.ndarray:
        """Up-convert a transmit output to a real passband waveform.

        Only used by the RF-level benchmarks (FCC mask, Fig. 4 style
        waveforms); link simulations stay at complex baseband.  The
        returned waveform is sampled at a rate high enough for the carrier.
        """
        carrier = self.carrier_frequency_hz()
        passband_rate = 4.0 * (carrier + self.config.pulse_bandwidth_hz)
        upsample = int(np.ceil(passband_rate / output.sample_rate_hz))
        passband_rate = output.sample_rate_hz * upsample
        envelope = np.repeat(output.waveform, upsample)
        envelope = dsp.lowpass_filter(envelope,
                                      self.config.pulse_bandwidth_hz,
                                      passband_rate)
        return dsp.upconvert(envelope, carrier, passband_rate)
