"""Preamble sequences for packet acquisition and channel estimation.

The paper requires "a fast signal acquisition algorithm ... to reduce the
duration of the preamble to a value comparable with current wireless
systems (~20 us)".  The preamble has two jobs here:

1. packet detection / timing acquisition — needs a sequence with a sharp
   aperiodic autocorrelation (we use m-sequences / Gold codes), and
2. channel estimation — the correlators re-use the same sequence to sound
   the channel with up-to-4-bit precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_int

__all__ = [
    "lfsr_sequence",
    "m_sequence",
    "gold_code",
    "barker_sequence",
    "PreambleConfig",
    "build_preamble_symbols",
]

# Primitive polynomial taps (feedback positions, 1-indexed from the output
# stage) for common LFSR lengths.
_PRIMITIVE_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
}

# Second (preferred-pair) polynomials used to build Gold codes.
_GOLD_SECOND_TAPS = {
    5: (5, 4, 3, 2),
    6: (6, 5, 2, 1),
    7: (7, 4),
    9: (9, 6, 4, 3),
    10: (10, 9, 8, 5),
    11: (11, 8, 5, 2),
}


def lfsr_sequence(taps: tuple[int, ...], num_bits: int,
                  initial_state: int = 1) -> np.ndarray:
    """Generate ``num_bits`` outputs of a Fibonacci LFSR with the given taps.

    ``taps`` are the exponents of the feedback polynomial
    ``x^degree + ... + 1`` (``degree`` itself is implied by the largest
    tap).  Each clock the register shifts right, the freshly computed
    feedback bit enters at the top, and the bit shifted out is the output.
    ``initial_state`` must be non-zero or the register would stay at zero
    forever.
    """
    require_int(num_bits, "num_bits", minimum=1)
    degree = max(taps)
    if initial_state <= 0 or initial_state >= (1 << degree):
        raise ValueError("initial_state must be a non-zero state of the register")
    state = initial_state
    out = np.zeros(num_bits, dtype=np.int64)
    for i in range(num_bits):
        out[i] = state & 1
        feedback = 0
        for tap in taps:
            feedback ^= (state >> (degree - tap)) & 1
        state = (state >> 1) | (feedback << (degree - 1))
    return out


def m_sequence(degree: int, initial_state: int = 1) -> np.ndarray:
    """A maximal-length sequence of length ``2^degree - 1`` bits."""
    if degree not in _PRIMITIVE_TAPS:
        raise ValueError(
            f"degree must be one of {sorted(_PRIMITIVE_TAPS)}, got {degree}")
    length = (1 << degree) - 1
    return lfsr_sequence(_PRIMITIVE_TAPS[degree], length,
                         initial_state=initial_state)


def gold_code(degree: int, code_index: int = 0) -> np.ndarray:
    """One Gold code of length ``2^degree - 1``.

    Gold codes are XOR combinations of a preferred pair of m-sequences; the
    family provides many codes with controlled cross-correlation, useful for
    distinguishing piconets.
    """
    if degree not in _GOLD_SECOND_TAPS:
        raise ValueError(
            f"degree must be one of {sorted(_GOLD_SECOND_TAPS)}, got {degree}")
    length = (1 << degree) - 1
    if not 0 <= code_index <= length + 1:
        raise ValueError(f"code_index must be in [0, {length + 1}]")
    seq_a = m_sequence(degree)
    seq_b = lfsr_sequence(_GOLD_SECOND_TAPS[degree], length, initial_state=1)
    if code_index == length:
        return seq_a
    if code_index == length + 1:
        return seq_b
    shifted_b = np.roll(seq_b, -code_index)
    return np.bitwise_xor(seq_a, shifted_b)


def barker_sequence(length: int = 13) -> np.ndarray:
    """A Barker sequence (as 0/1 bits) of the requested length."""
    barker = {
        2: [1, 0],
        3: [1, 1, 0],
        4: [1, 1, 0, 1],
        5: [1, 1, 1, 0, 1],
        7: [1, 1, 1, 0, 0, 1, 0],
        11: [1, 1, 1, 0, 0, 0, 1, 0, 0, 1, 0],
        13: [1, 1, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1],
    }
    if length not in barker:
        raise ValueError(f"no Barker sequence of length {length}")
    return np.asarray(barker[length], dtype=np.int64)


def bits_to_bipolar(bits) -> np.ndarray:
    """Map bits {0,1} to bipolar symbols {-1,+1}."""
    bits = np.asarray(bits, dtype=np.int64)
    return 2.0 * bits - 1.0


@dataclass(frozen=True)
class PreambleConfig:
    """Preamble structure used by both transceiver generations.

    The preamble is ``num_repetitions`` back-to-back copies of a base
    spreading sequence (an m-sequence of ``2^sequence_degree - 1`` chips).
    Repetition lets the receiver integrate across copies for detection at
    low SNR and average the channel estimate.
    """

    sequence_degree: int = 7
    num_repetitions: int = 16
    code_index: int | None = None
    use_gold: bool = False

    def __post_init__(self) -> None:
        require_int(self.sequence_degree, "sequence_degree", minimum=3)
        require_int(self.num_repetitions, "num_repetitions", minimum=1)

    @property
    def sequence_length(self) -> int:
        """Chips in one repetition of the base sequence."""
        return (1 << self.sequence_degree) - 1

    @property
    def total_symbols(self) -> int:
        """Total chips in the whole preamble."""
        return self.sequence_length * self.num_repetitions

    def base_sequence_bits(self) -> np.ndarray:
        """The base spreading sequence as bits."""
        if self.use_gold:
            index = self.code_index if self.code_index is not None else 0
            return gold_code(self.sequence_degree, index)
        initial = self.code_index + 1 if self.code_index is not None else 1
        return m_sequence(self.sequence_degree, initial_state=initial)

    def base_sequence_bipolar(self) -> np.ndarray:
        """The base sequence as +-1 symbols (what the correlators use)."""
        return bits_to_bipolar(self.base_sequence_bits())


def build_preamble_symbols(config: PreambleConfig) -> np.ndarray:
    """Full preamble as a +-1 symbol sequence (repetitions concatenated)."""
    base = config.base_sequence_bipolar()
    return np.tile(base, config.num_repetitions)


__all__.append("bits_to_bipolar")
