"""PHY layer: preambles, CRC, scrambler, convolutional coding, packet framing."""

from repro.phy.coding import (
    ConvolutionalCode,
    K3_RATE_HALF,
    K7_RATE_HALF,
    ViterbiDecoder,
)
from repro.phy.crc import CRC, CRC16_CCITT, CRC32, append_crc, check_crc
from repro.phy.packet import (
    HEADER_LENGTH_BITS,
    Packet,
    PacketBuilder,
    PacketConfig,
    PacketParser,
    ParseResult,
)
from repro.phy.preamble import (
    PreambleConfig,
    barker_sequence,
    bits_to_bipolar,
    build_preamble_symbols,
    gold_code,
    lfsr_sequence,
    m_sequence,
)
from repro.phy.scrambler import Scrambler

__all__ = [
    "ConvolutionalCode",
    "K3_RATE_HALF",
    "K7_RATE_HALF",
    "ViterbiDecoder",
    "CRC",
    "CRC16_CCITT",
    "CRC32",
    "append_crc",
    "check_crc",
    "HEADER_LENGTH_BITS",
    "Packet",
    "PacketBuilder",
    "PacketConfig",
    "PacketParser",
    "ParseResult",
    "PreambleConfig",
    "barker_sequence",
    "bits_to_bipolar",
    "build_preamble_symbols",
    "gold_code",
    "lfsr_sequence",
    "m_sequence",
    "Scrambler",
]
