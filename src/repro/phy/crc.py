"""Cyclic redundancy checks for packet integrity.

Both chips need to declare whether a decoded packet is correct; the standard
way is a CRC over the payload.  CRC-16-CCITT and CRC-32 are provided, both
implemented bit-serially over 0/1 numpy arrays so they plug directly into
the PHY bit pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bits import int_to_bits

__all__ = ["CRC", "CRC16_CCITT", "CRC32", "append_crc", "check_crc"]


@dataclass(frozen=True)
class CRC:
    """A CRC defined by its polynomial (without the leading term) and width."""

    width: int
    polynomial: int
    initial_value: int
    final_xor: int = 0
    name: str = "crc"

    def compute(self, bits) -> int:
        """Compute the CRC register value over a 0/1 bit array (MSB first)."""
        bits = np.asarray(bits, dtype=np.int64).ravel()
        if bits.size and not np.all((bits == 0) | (bits == 1)):
            raise ValueError("bits must contain only 0 and 1")
        register = self.initial_value
        mask = (1 << self.width) - 1
        top_shift = self.width - 1
        # Iterating Python ints (tolist) instead of numpy scalars keeps the
        # identical bit-serial arithmetic ~10x cheaper per packet.
        for bit in bits.tolist():
            incoming = bit ^ ((register >> top_shift) & 1)
            register = ((register << 1) & mask)
            if incoming:
                register ^= self.polynomial
        return (register ^ self.final_xor) & mask

    def compute_bits(self, bits) -> np.ndarray:
        """CRC value expressed as a bit array of length ``width``."""
        return int_to_bits(self.compute(bits), self.width)


CRC16_CCITT = CRC(width=16, polynomial=0x1021, initial_value=0xFFFF,
                  final_xor=0x0000, name="crc16_ccitt")
CRC32 = CRC(width=32, polynomial=0x04C11DB7, initial_value=0xFFFFFFFF,
            final_xor=0xFFFFFFFF, name="crc32")


def append_crc(bits, crc: CRC = CRC16_CCITT) -> np.ndarray:
    """Return ``bits`` with the CRC bits appended."""
    bits = np.asarray(bits, dtype=np.int64).ravel()
    return np.concatenate((bits, crc.compute_bits(bits)))


def check_crc(bits_with_crc, crc: CRC = CRC16_CCITT) -> bool:
    """Verify a bit array whose tail is the CRC computed by :func:`append_crc`."""
    bits_with_crc = np.asarray(bits_with_crc, dtype=np.int64).ravel()
    if bits_with_crc.size < crc.width:
        return False
    payload = bits_with_crc[:-crc.width]
    received = bits_with_crc[-crc.width:]
    expected = crc.compute_bits(payload)
    return bool(np.array_equal(received, expected))
