"""Packet format: preamble + header + payload + CRC.

A minimal but complete framing layer so the end-to-end link simulations
exercise real packets the way the silicon does: the preamble drives
acquisition and channel estimation, the header carries the payload length
and modulation configuration, and a CRC closes the payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.phy.coding import ConvolutionalCode, K3_RATE_HALF, ViterbiDecoder
from repro.phy.crc import CRC, CRC16_CCITT, append_crc, check_crc
from repro.phy.preamble import PreambleConfig, build_preamble_symbols
from repro.phy.scrambler import Scrambler
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.validation import require_int

__all__ = ["PacketConfig", "Packet", "PacketBuilder", "PacketParser",
           "HEADER_LENGTH_BITS"]

#: Header: 12-bit payload length (bits), 3-bit modulation id, 1-bit coding flag.
HEADER_LENGTH_BITS = 16


@dataclass(frozen=True)
class PacketConfig:
    """Static configuration shared by the builder and the parser."""

    preamble: PreambleConfig = field(default_factory=PreambleConfig)
    crc: CRC = CRC16_CCITT
    scrambler_seed: int = 0x5B
    code: ConvolutionalCode | None = K3_RATE_HALF
    use_coding: bool = True

    def scrambler(self) -> Scrambler:
        """A fresh scrambler instance with this config's seed."""
        return Scrambler(seed=self.scrambler_seed)


@dataclass(frozen=True)
class Packet:
    """A built packet ready for modulation.

    ``preamble_symbols`` are bipolar (+-1) chips; ``body_bits`` are the
    header plus the (scrambled, coded, CRC-protected) payload bits that the
    modulator maps onto pulses.
    """

    preamble_symbols: np.ndarray
    body_bits: np.ndarray
    payload_bits: np.ndarray
    config: PacketConfig

    @property
    def num_body_bits(self) -> int:
        return int(self.body_bits.size)

    @property
    def num_payload_bits(self) -> int:
        return int(self.payload_bits.size)


class PacketBuilder:
    """Assemble packets: scramble, CRC, optionally encode, prepend a header."""

    def __init__(self, config: PacketConfig | None = None) -> None:
        self.config = config if config is not None else PacketConfig()

    def _build_header(self, payload_length_bits: int, modulation_id: int) -> np.ndarray:
        require_int(payload_length_bits, "payload_length_bits", minimum=0)
        require_int(modulation_id, "modulation_id", minimum=0)
        if payload_length_bits >= (1 << 12):
            raise ValueError("payload too long for the 12-bit length field")
        if modulation_id >= (1 << 3):
            raise ValueError("modulation_id must fit in 3 bits")
        coding_flag = 1 if (self.config.use_coding and self.config.code) else 0
        return np.concatenate((
            int_to_bits(payload_length_bits, 12),
            int_to_bits(modulation_id, 3),
            int_to_bits(coding_flag, 1),
        ))

    def build(self, payload_bits, modulation_id: int = 0) -> Packet:
        """Build a packet around ``payload_bits``."""
        payload_bits = np.asarray(payload_bits, dtype=np.int64).ravel()
        if payload_bits.size and not np.all((payload_bits == 0) | (payload_bits == 1)):
            raise ValueError("payload_bits must contain only 0 and 1")

        protected = append_crc(payload_bits, self.config.crc)
        scrambled = self.config.scrambler().scramble(protected)
        if self.config.use_coding and self.config.code is not None:
            body_payload = self.config.code.encode(scrambled, terminate=True)
        else:
            body_payload = scrambled
        header = self._build_header(payload_bits.size, modulation_id)
        body_bits = np.concatenate((header, body_payload))
        preamble_symbols = build_preamble_symbols(self.config.preamble)
        return Packet(preamble_symbols=preamble_symbols,
                      body_bits=body_bits,
                      payload_bits=payload_bits,
                      config=self.config)


@dataclass(frozen=True)
class ParseResult:
    """Outcome of parsing received body bits."""

    payload_bits: np.ndarray
    crc_ok: bool
    header_payload_length: int
    header_modulation_id: int
    header_coding_flag: int


class PacketParser:
    """Recover the payload from received (possibly erroneous) body bits."""

    def __init__(self, config: PacketConfig | None = None) -> None:
        self.config = config if config is not None else PacketConfig()
        self._decoder = (ViterbiDecoder(self.config.code)
                         if self.config.code is not None else None)

    def parse(self, body_bits, soft_values=None) -> ParseResult:
        """Parse received body bits (header + coded payload).

        ``soft_values``, when given, are real-valued reliabilities aligned
        with the *coded payload* portion (positive = bit 1) used for
        soft-decision Viterbi decoding.
        """
        body_bits = np.asarray(body_bits, dtype=np.int64).ravel()
        if body_bits.size < HEADER_LENGTH_BITS:
            return ParseResult(np.zeros(0, dtype=np.int64), False, 0, 0, 0)
        header = body_bits[:HEADER_LENGTH_BITS]
        payload_length = bits_to_int(header[:12])
        modulation_id = bits_to_int(header[12:15])
        coding_flag = int(header[15])
        coded = body_bits[HEADER_LENGTH_BITS:]

        if coding_flag and self._decoder is not None:
            if soft_values is not None:
                soft = np.asarray(soft_values, dtype=float).ravel()
                usable = (soft.size // self.config.code.rate_inverse) \
                    * self.config.code.rate_inverse
                scrambled = self._decoder.decode(soft[:usable], soft=True,
                                                 terminated=True)
            else:
                usable = (coded.size // self.config.code.rate_inverse) \
                    * self.config.code.rate_inverse
                scrambled = self._decoder.decode(coded[:usable], soft=False,
                                                 terminated=True)
        else:
            scrambled = coded

        return self._finish_parse(scrambled, payload_length, modulation_id,
                                  coding_flag)

    def parse_many(self, body_bits_rows,
                   soft_values_rows=None) -> list["ParseResult"]:
        """Parse a batch of received packets, sharing Viterbi trellis passes.

        Each row is parsed to exactly the :class:`ParseResult` that
        :meth:`parse` would return for it; rows whose (possibly corrupted)
        headers imply the same coded length and decision mode are decoded
        together through :meth:`ViterbiDecoder.decode_batch`, which is
        where the per-packet parse spends most of its time.
        ``soft_values_rows`` (optional, one entry per row, entries may be
        ``None``) carries the per-row soft reliabilities :meth:`parse`
        accepts.
        """
        rows = [np.asarray(row, dtype=np.int64).ravel()
                for row in body_bits_rows]
        if soft_values_rows is None:
            soft_values_rows = [None] * len(rows)
        else:
            soft_values_rows = list(soft_values_rows)
            if len(soft_values_rows) != len(rows):
                raise ValueError("soft_values_rows must hold one entry "
                                 "(possibly None) per body-bits row")

        results: list[ParseResult | None] = [None] * len(rows)
        # (soft?, usable coded length) -> list of (row index, decoder input)
        groups: dict[tuple[bool, int], list[tuple[int, np.ndarray]]] = {}
        headers: dict[int, tuple[int, int, int]] = {}
        for index, body_bits in enumerate(rows):
            if body_bits.size < HEADER_LENGTH_BITS:
                results[index] = ParseResult(np.zeros(0, dtype=np.int64),
                                             False, 0, 0, 0)
                continue
            header = body_bits[:HEADER_LENGTH_BITS]
            payload_length = bits_to_int(header[:12])
            modulation_id = bits_to_int(header[12:15])
            coding_flag = int(header[15])
            headers[index] = (payload_length, modulation_id, coding_flag)
            coded = body_bits[HEADER_LENGTH_BITS:]
            if coding_flag and self._decoder is not None:
                soft_values = soft_values_rows[index]
                rate = self.config.code.rate_inverse
                if soft_values is not None:
                    soft = np.asarray(soft_values, dtype=float).ravel()
                    usable = (soft.size // rate) * rate
                    groups.setdefault((True, usable), []).append(
                        (index, soft[:usable]))
                else:
                    usable = (coded.size // rate) * rate
                    groups.setdefault((False, usable), []).append(
                        (index, coded[:usable].astype(float)))
            else:
                results[index] = self._finish_parse(coded, *headers[index])

        for (soft, _usable), members in groups.items():
            batch = np.asarray([entry for _, entry in members])
            decoded = self._decoder.decode_batch(batch, soft=soft,
                                                 terminated=True)
            for (index, _), scrambled in zip(members, decoded):
                results[index] = self._finish_parse(scrambled,
                                                    *headers[index])
        return results

    def _finish_parse(self, scrambled, payload_length: int,
                      modulation_id: int, coding_flag: int) -> "ParseResult":
        """Descramble + CRC-check one packet's decoded stream (the shared
        tail of :meth:`parse` and :meth:`parse_many`)."""
        descrambled = self.config.scrambler().descramble(scrambled)
        expected_protected = payload_length + self.config.crc.width
        if descrambled.size < expected_protected:
            return ParseResult(np.zeros(0, dtype=np.int64), False,
                               payload_length, modulation_id, coding_flag)
        protected = descrambled[:expected_protected]
        crc_ok = check_crc(protected, self.config.crc)
        payload = protected[:payload_length]
        return ParseResult(payload_bits=payload, crc_ok=crc_ok,
                           header_payload_length=payload_length,
                           header_modulation_id=modulation_id,
                           header_coding_flag=coding_flag)


__all__.append("ParseResult")
