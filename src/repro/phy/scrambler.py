"""Data scrambler/descrambler.

Whitening the payload keeps the transmitted pulse polarities balanced, which
both flattens the transmit spectrum (discrete spectral lines are what break
the FCC mask first) and keeps the timing-tracking loops fed with
transitions.  A synchronous (additive) LFSR scrambler is used so that
descrambling is the identical operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_int

__all__ = ["Scrambler"]

# Keystreams are pure functions of (taps, seed, length); packet builders
# create a fresh Scrambler per packet, so memoizing the longest stream
# computed per configuration turns the per-packet LFSR loop into a slice.
_KEYSTREAM_CACHE: dict[tuple[tuple[int, ...], int], np.ndarray] = {}


@dataclass
class Scrambler:
    """Additive LFSR scrambler ``x^7 + x^4 + 1`` (802.11-style) by default.

    Attributes
    ----------
    taps:
        LFSR feedback taps, 1-indexed stage numbers.
    seed:
        Initial register state (non-zero).
    """

    taps: tuple[int, ...] = (7, 4)
    seed: int = 0x5B

    def __post_init__(self) -> None:
        self._degree = max(self.taps)
        require_int(self._degree, "max(taps)", minimum=2)
        if self.seed <= 0 or self.seed >= (1 << self._degree):
            raise ValueError("seed must be a non-zero register state")

    def keystream(self, num_bits: int) -> np.ndarray:
        """The scrambling sequence itself."""
        require_int(num_bits, "num_bits", minimum=0)
        key = (tuple(self.taps), self.seed)
        cached = _KEYSTREAM_CACHE.get(key)
        if cached is None or cached.size < num_bits:
            state = self.seed
            out = np.zeros(num_bits, dtype=np.int64)
            for i in range(num_bits):
                feedback = 0
                for tap in self.taps:
                    feedback ^= (state >> (tap - 1)) & 1
                out[i] = feedback
                state = ((state << 1) | feedback) & ((1 << self._degree) - 1)
            _KEYSTREAM_CACHE[key] = out
            cached = out
        return cached[:num_bits].copy()

    def scramble(self, bits) -> np.ndarray:
        """XOR the bits with the keystream (self-inverse)."""
        bits = np.asarray(bits, dtype=np.int64).ravel()
        if bits.size and not np.all((bits == 0) | (bits == 1)):
            raise ValueError("bits must contain only 0 and 1")
        return np.bitwise_xor(bits, self.keystream(bits.size))

    def descramble(self, bits) -> np.ndarray:
        """Identical to :meth:`scramble` for an additive scrambler."""
        return self.scramble(bits)
