"""Convolutional channel coding and Viterbi decoding.

The gen-2 digital back end contains a Viterbi machine.  The paper uses it
both as a channel-code decoder and (with the channel estimate) as an MLSE
demodulator for ISI; this module provides the coding-side machinery — a
rate-1/n feedforward convolutional encoder and a soft/hard-decision Viterbi
decoder.  The MLSE equalizer lives in ``repro.dsp.viterbi``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require_int

__all__ = ["ConvolutionalCode", "ViterbiDecoder", "K3_RATE_HALF", "K7_RATE_HALF"]


@dataclass(frozen=True)
class ConvolutionalCode:
    """A rate-1/n feedforward convolutional code.

    Attributes
    ----------
    constraint_length:
        Number of input bits that influence each output (K).
    generators:
        Generator polynomials in octal-like integer form, MSB = current bit.
    """

    constraint_length: int
    generators: tuple[int, ...]

    def __post_init__(self) -> None:
        require_int(self.constraint_length, "constraint_length", minimum=2)
        if len(self.generators) < 2:
            raise ValueError("need at least two generator polynomials")
        limit = 1 << self.constraint_length
        for gen in self.generators:
            if not 0 < gen < limit:
                raise ValueError(
                    f"generator {gen:o} (octal) does not fit constraint length "
                    f"{self.constraint_length}")

    @property
    def rate_inverse(self) -> int:
        """Number of coded bits per information bit."""
        return len(self.generators)

    @property
    def num_states(self) -> int:
        """Number of trellis states, ``2^(K-1)``."""
        return 1 << (self.constraint_length - 1)

    def encode(self, bits, terminate: bool = True) -> np.ndarray:
        """Encode a bit array; optionally append ``K-1`` zero tail bits."""
        bits = np.asarray(bits, dtype=np.int64).ravel()
        if bits.size and not np.all((bits == 0) | (bits == 1)):
            raise ValueError("bits must contain only 0 and 1")
        if terminate:
            bits = np.concatenate((bits,
                                   np.zeros(self.constraint_length - 1,
                                            dtype=np.int64)))
        if bits.size == 0:
            return np.zeros(0, dtype=np.int64)
        # A feedforward encoder is a sliding mod-2 correlation: register
        # bit b at step i holds input bit i - (K-1) + b, so each output is
        # the parity of a window/generator product — one integer matmul
        # for the whole stream, bit-exact with the historical shift loop.
        k = self.constraint_length
        padded = np.concatenate((np.zeros(k - 1, dtype=np.int64), bits))
        windows = np.lib.stride_tricks.sliding_window_view(padded, k)
        taps = np.asarray([[(gen >> position) & 1 for position in range(k)]
                           for gen in self.generators], dtype=np.int64)
        return ((windows @ taps.T) % 2).ravel()

    def output_bits(self, state: int, input_bit: int) -> np.ndarray:
        """Coded output for one trellis transition."""
        register = (input_bit << (self.constraint_length - 1)) | state
        return np.array([bin(register & gen).count("1") % 2
                         for gen in self.generators], dtype=np.int64)

    def next_state(self, state: int, input_bit: int) -> int:
        """Trellis state after consuming ``input_bit``."""
        register = (input_bit << (self.constraint_length - 1)) | state
        return register >> 1


#: Industry-standard K=3 (7,5) and K=7 (171,133) rate-1/2 codes.
K3_RATE_HALF = ConvolutionalCode(constraint_length=3, generators=(0b111, 0b101))
K7_RATE_HALF = ConvolutionalCode(constraint_length=7,
                                 generators=(0o171, 0o133))


class ViterbiDecoder:
    """Viterbi decoder for a :class:`ConvolutionalCode`.

    Supports hard decisions (Hamming branch metrics over 0/1 inputs) and
    soft decisions (Euclidean metrics over bipolar reliabilities, where the
    transmitted coded bit ``b`` maps to ``2b - 1``).
    """

    def __init__(self, code: ConvolutionalCode) -> None:
        self.code = code
        num_states = code.num_states
        n = code.rate_inverse
        self._outputs = np.zeros((num_states, 2, n), dtype=np.int64)
        self._next_states = np.zeros((num_states, 2), dtype=np.int64)
        for state in range(num_states):
            for bit in (0, 1):
                self._outputs[state, bit] = code.output_bits(state, bit)
                self._next_states[state, bit] = code.next_state(state, bit)
        # Incoming transitions per state, in (state-major, bit-minor) scan
        # order — the same order the scalar add-compare-select visits them,
        # so batched argmin tie-breaking matches the scalar "first strictly
        # smaller candidate wins" rule exactly.
        incoming: list[list[tuple[int, int]]] = [[] for _ in range(num_states)]
        for state in range(num_states):
            for bit in (0, 1):
                incoming[int(self._next_states[state, bit])].append(
                    (state, bit))
        width = max(len(entry) for entry in incoming)
        self._in_prev = np.zeros((num_states, width), dtype=np.int64)
        self._in_bit = np.zeros((num_states, width), dtype=np.int64)
        self._in_valid = np.zeros((num_states, width), dtype=bool)
        for state, entry in enumerate(incoming):
            for slot, (prev, bit) in enumerate(entry):
                self._in_prev[state, slot] = prev
                self._in_bit[state, slot] = bit
                self._in_valid[state, slot] = True

    def decode(self, received, soft: bool = False,
               terminated: bool = True) -> np.ndarray:
        """Decode a received coded stream back to information bits.

        ``received`` has length ``n * num_steps``; hard input is 0/1, soft
        input is real-valued with positive meaning "more likely 1".  When
        the encoder appended tail bits (``terminated``), they are stripped
        from the decoded output.
        """
        received = np.asarray(received, dtype=float).ravel()
        n = self.code.rate_inverse
        if received.size % n != 0:
            raise ValueError(
                f"received length {received.size} is not a multiple of {n}")
        num_steps = received.size // n
        num_states = self.code.num_states

        metrics = np.full(num_states, np.inf)
        metrics[0] = 0.0
        # survivors[t, s] = (previous state, input bit) leading to state s.
        survivors = np.zeros((num_steps, num_states, 2), dtype=np.int64)

        expected_bipolar = 2.0 * self._outputs - 1.0
        for t in range(num_steps):
            segment = received[t * n:(t + 1) * n]
            new_metrics = np.full(num_states, np.inf)
            new_survivors = np.zeros((num_states, 2), dtype=np.int64)
            for state in range(num_states):
                if not np.isfinite(metrics[state]):
                    continue
                for bit in (0, 1):
                    if soft:
                        branch = float(np.sum(
                            (segment - expected_bipolar[state, bit]) ** 2))
                    else:
                        branch = float(np.sum(
                            np.abs(segment - self._outputs[state, bit])))
                    candidate = metrics[state] + branch
                    nxt = self._next_states[state, bit]
                    if candidate < new_metrics[nxt]:
                        new_metrics[nxt] = candidate
                        new_survivors[nxt] = (state, bit)
            metrics = new_metrics
            survivors[t] = new_survivors

        # Trace back from the best end state (state 0 if terminated).
        if terminated and np.isfinite(metrics[0]):
            state = 0
        else:
            state = int(np.argmin(metrics))
        decoded = np.zeros(num_steps, dtype=np.int64)
        for t in range(num_steps - 1, -1, -1):
            prev_state, bit = survivors[t, state]
            decoded[t] = bit
            state = int(prev_state)

        if terminated:
            tail = self.code.constraint_length - 1
            if decoded.size >= tail:
                decoded = decoded[:-tail] if tail > 0 else decoded
        return decoded

    def decode_batch(self, received, soft: bool = False,
                     terminated: bool = True) -> np.ndarray:
        """Decode a ``(packets, coded_bits)`` batch in one trellis pass.

        Every row is decoded to exactly the bits :meth:`decode` would
        return for it (the add-compare-select arithmetic, tie-breaking and
        traceback all replicate the scalar path bit for bit); the batch
        axis turns the per-state Python loops into array operations, which
        is what makes the batched full-stack receiver's payload decoding
        cheap.  All rows must share one coded length — callers group rows
        by length first (see :meth:`repro.phy.packet.PacketParser
        .parse_many`).
        """
        received = np.asarray(received, dtype=float)
        if received.ndim != 2:
            raise ValueError("decode_batch expects a (packets, coded_bits) "
                             "batch; use decode() for a single stream")
        num_packets = int(received.shape[0])
        n = self.code.rate_inverse
        if received.shape[1] % n != 0:
            raise ValueError(
                f"received length {received.shape[1]} is not a multiple "
                f"of {n}")
        num_steps = received.shape[1] // n
        num_states = self.code.num_states

        metrics = np.full((num_packets, num_states), np.inf)
        metrics[:, 0] = 0.0
        surv_prev = np.zeros((num_steps, num_packets, num_states),
                             dtype=np.int64)
        surv_bit = np.zeros((num_steps, num_packets, num_states),
                            dtype=np.int64)

        expected_bipolar = 2.0 * self._outputs - 1.0
        reference = expected_bipolar if soft else self._outputs
        in_prev, in_bit, in_valid = (self._in_prev, self._in_bit,
                                     self._in_valid)
        # All branch metrics up front: (packets, steps, states, 2), summed
        # over the n coded bits of each step exactly as the scalar loop
        # does per transition.
        steps = received.reshape(num_packets, num_steps, n)
        delta = steps[:, :, None, None, :] - reference[None, None, :, :, :]
        branch_all = ((delta ** 2).sum(axis=-1) if soft
                      else np.abs(delta).sum(axis=-1))
        branch_incoming = branch_all[:, :, in_prev, in_bit]
        if not in_valid.all():
            branch_incoming[:, :, ~in_valid] = np.inf
        state_index = np.arange(num_states)[None, :]
        for t in range(num_steps):
            candidates = metrics[:, in_prev] + branch_incoming[:, t]
            choice = np.argmin(candidates, axis=-1)
            metrics = np.min(candidates, axis=-1)
            surv_prev[t] = in_prev[state_index, choice]
            surv_bit[t] = in_bit[state_index, choice]

        state = np.where(np.isfinite(metrics[:, 0]) if terminated
                         else np.zeros(num_packets, dtype=bool),
                         0, np.argmin(metrics, axis=-1))
        decoded = np.zeros((num_packets, num_steps), dtype=np.int64)
        rows = np.arange(num_packets)
        for t in range(num_steps - 1, -1, -1):
            decoded[:, t] = surv_bit[t, rows, state]
            state = surv_prev[t, rows, state]

        if terminated:
            tail = self.code.constraint_length - 1
            if num_steps >= tail and tail > 0:
                decoded = decoded[:, :-tail]
        return decoded
