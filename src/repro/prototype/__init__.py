"""Discrete prototype platform and modulation-scheme comparison."""

from repro.prototype.comparison import ModulationComparison, SchemeResult
from repro.prototype.platform import DiscretePrototypePlatform

__all__ = [
    "ModulationComparison",
    "SchemeResult",
    "DiscretePrototypePlatform",
]
