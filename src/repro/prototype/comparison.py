"""Modulation-scheme comparison on the discrete prototype platform.

The paper motivates the prototype by the ability to compare modulation
schemes within the 500 MHz bandwidth.  This module runs that comparison:
for each scheme (BPSK, OOK, binary PPM, 4-PAM) it builds pulse trains on the
platform, passes them through AWGN (optionally multipath), demodulates with
a matched-filter receiver, and reports BER versus Eb/N0 next to the
textbook expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.awgn import awgn, noise_std_for_ebn0
from repro.core.metrics import (
    theoretical_bpsk_ber,
    theoretical_ook_ber,
    theoretical_ppm_ber,
)
from repro.prototype.platform import DiscretePrototypePlatform
from repro.pulses.modulation import Modulator, make_modulator
from repro.pulses.shapes import gaussian_pulse
from repro.pulses.train import PulseTrainConfig, PulseTrainGenerator
from repro.utils import dsp
from repro.utils.bits import bit_errors, random_bits
from repro.utils.validation import require_int

__all__ = ["SchemeResult", "ModulationComparison"]


@dataclass
class SchemeResult:
    """BER results of one modulation scheme over the Eb/N0 sweep."""

    scheme: str
    ebn0_db: np.ndarray
    measured_ber: np.ndarray
    theoretical_ber: np.ndarray | None = None

    def penalty_db_at(self, target_ber: float) -> float:
        """Implementation loss versus theory at the given BER (rough estimate)."""
        if self.theoretical_ber is None:
            return float("nan")
        measured = _ebn0_for_ber(self.ebn0_db, self.measured_ber, target_ber)
        ideal = _ebn0_for_ber(self.ebn0_db, self.theoretical_ber, target_ber)
        return measured - ideal


def _ebn0_for_ber(ebn0_db: np.ndarray, ber: np.ndarray, target: float) -> float:
    below = np.where(ber <= target)[0]
    if below.size == 0:
        return float("inf")
    return float(ebn0_db[below[0]])


class ModulationComparison:
    """Run the prototype's modulation-scheme comparison."""

    THEORY = {
        "bpsk": theoretical_bpsk_ber,
        "ook": theoretical_ook_ber,
        "ppm": theoretical_ppm_ber,
    }

    def __init__(self, platform: DiscretePrototypePlatform | None = None,
                 pulse_repetition_interval_s: float = 8e-9,
                 rng: np.random.Generator | None = None) -> None:
        self.platform = (platform if platform is not None
                         else DiscretePrototypePlatform())
        self.rng = rng if rng is not None else np.random.default_rng()
        self.pulse_repetition_interval_s = pulse_repetition_interval_s
        self._pulse = gaussian_pulse(self.platform.bandwidth_hz,
                                     self.platform.baseband_rate_hz)

    def _generator(self, modulator: Modulator) -> PulseTrainGenerator:
        config = PulseTrainConfig(
            pulse_repetition_interval_s=self.pulse_repetition_interval_s,
            pulses_per_symbol=1)
        return PulseTrainGenerator(self._pulse, config, modulator)

    def _demodulate(self, received, modulator: Modulator,
                    generator: PulseTrainGenerator,
                    num_symbols: int) -> np.ndarray:
        """Matched-filter demodulation aligned to the known symbol grid."""
        template = self._pulse.waveform
        template_energy = float(np.sum(np.abs(template) ** 2))
        samples_per_symbol = generator.samples_per_symbol
        sample_rate = self.platform.baseband_rate_hz
        statistics = np.zeros(num_symbols)
        offsets = modulator.position_offsets
        for k in range(num_symbols):
            start = k * samples_per_symbol
            if offsets is None:
                segment = received[start:start + template.size]
                value = np.real(np.sum(segment * np.conj(template[:segment.size])))
                statistics[k] = value / template_energy
            else:
                # PPM: difference of the late- and early-position correlators.
                correlations = []
                for offset_s in offsets:
                    shift = int(round(offset_s * sample_rate))
                    segment = received[start + shift:start + shift + template.size]
                    correlations.append(np.real(np.sum(
                        segment * np.conj(template[:segment.size]))))
                statistics[k] = (correlations[1] - correlations[0]) / template_energy
        return modulator.demodulate(statistics)

    def run_scheme(self, scheme: str, ebn0_values_db, num_bits: int = 2000,
                   channel=None) -> SchemeResult:
        """Measure one scheme's BER over the Eb/N0 sweep."""
        require_int(num_bits, "num_bits", minimum=1)
        modulator = make_modulator(scheme)
        generator = self._generator(modulator)
        usable_bits = (num_bits // modulator.bits_per_symbol) \
            * modulator.bits_per_symbol
        bits = random_bits(usable_bits, rng=self.rng)
        train = generator.generate_from_bits(bits)
        clean = self.platform.shape_baseband(train.waveform)
        num_symbols = train.num_symbols
        energy_per_bit = dsp.signal_energy(clean) / usable_bits

        ebn0_array = np.asarray(list(ebn0_values_db), dtype=float)
        measured = np.zeros(ebn0_array.size)
        for index, ebn0_db in enumerate(ebn0_array):
            received = clean
            if channel is not None:
                received = channel.apply(received, self.platform.baseband_rate_hz)
            noise_std = noise_std_for_ebn0(energy_per_bit, float(ebn0_db))
            received = awgn(received, noise_std, rng=self.rng)
            decoded = self._demodulate(received, modulator, generator,
                                       num_symbols)
            measured[index] = bit_errors(bits, decoded) / usable_bits

        theory_fn = self.THEORY.get(scheme)
        theory = theory_fn(ebn0_array) if theory_fn is not None else None
        return SchemeResult(scheme=scheme, ebn0_db=ebn0_array,
                            measured_ber=measured, theoretical_ber=theory)

    def run_all(self, schemes, ebn0_values_db, num_bits: int = 2000,
                channel=None) -> dict[str, SchemeResult]:
        """Run the comparison for every scheme in ``schemes``."""
        return {scheme: self.run_scheme(scheme, ebn0_values_db,
                                        num_bits=num_bits, channel=channel)
                for scheme in schemes}
