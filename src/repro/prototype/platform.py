"""Discrete prototype platform (Section 3, Fig. 4).

"A discrete prototype with the same specifications has been designed and
implemented ... This platform is also flexible enough to generate all kinds
of signals within a bandwidth of 500 MHz, allowing the comparison between
different modulation schemes."

The :class:`DiscretePrototypePlatform` is an arbitrary-waveform generator
constrained to a 500 MHz bandwidth: it accepts any complex baseband
waveform, band-limits it, up-converts it to a selectable carrier (5 GHz in
Fig. 4), and plays it through a configurable channel so receiver algorithms
can be exercised "under realistic conditions" exactly as the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn, noise_std_for_snr
from repro.constants import FIG4_BANDWIDTH_HZ, FIG4_CARRIER_HZ
from repro.pulses.modulated import ModulatedPulse
from repro.pulses.shapes import gaussian_pulse
from repro.utils import dsp
from repro.utils.validation import require_positive

__all__ = ["DiscretePrototypePlatform"]


@dataclass
class DiscretePrototypePlatform:
    """Arbitrary-waveform pulsed-UWB test platform.

    Attributes
    ----------
    bandwidth_hz:
        Maximum signal bandwidth the platform can generate (500 MHz in the
        paper).
    carrier_hz:
        Up-conversion carrier for passband output (5 GHz in Fig. 4).
    baseband_rate_hz:
        Sampling rate of the baseband waveform memory.
    dac_bits:
        Resolution of the arbitrary waveform generator's DAC; ``None``
        disables quantization.
    """

    bandwidth_hz: float = FIG4_BANDWIDTH_HZ
    carrier_hz: float = FIG4_CARRIER_HZ
    baseband_rate_hz: float = 2e9
    dac_bits: int | None = 10

    def __post_init__(self) -> None:
        require_positive(self.bandwidth_hz, "bandwidth_hz")
        require_positive(self.carrier_hz, "carrier_hz")
        require_positive(self.baseband_rate_hz, "baseband_rate_hz")
        if self.bandwidth_hz > self.baseband_rate_hz:
            raise ValueError("baseband rate must be at least the bandwidth")

    # ------------------------------------------------------------------
    # Waveform generation
    # ------------------------------------------------------------------
    def shape_baseband(self, waveform) -> np.ndarray:
        """Band-limit (and optionally quantize) an arbitrary baseband waveform.

        This is the platform's defining constraint: whatever the user loads
        into the waveform memory, the analog output never exceeds the
        500 MHz bandwidth.
        """
        x = np.asarray(waveform, dtype=complex)
        cutoff = min(self.bandwidth_hz / 2.0, 0.45 * self.baseband_rate_hz)
        shaped = dsp.lowpass_filter(x, cutoff, self.baseband_rate_hz)
        if self.dac_bits is not None:
            peak = float(np.max(np.abs(shaped))) if shaped.size else 0.0
            if peak > 0:
                levels = 1 << self.dac_bits
                step = 2.0 * peak / levels
                shaped = (np.round(shaped.real / step) * step
                          + 1j * np.round(shaped.imag / step) * step)
        return shaped

    def reference_pulse(self) -> np.ndarray:
        """The platform's standard test pulse (Gaussian, full bandwidth)."""
        pulse = gaussian_pulse(self.bandwidth_hz, self.baseband_rate_hz)
        return pulse.waveform.astype(complex)

    def generate_passband(self, baseband_waveform,
                          amplitude: float = 0.15) -> ModulatedPulse:
        """Up-convert a baseband waveform to the platform's carrier.

        The passband waveform is sampled at four times the highest signal
        frequency, which is what an oscilloscope capture of the prototype
        output (Fig. 4) would show.
        """
        baseband = self.shape_baseband(baseband_waveform)
        passband_rate = 4.0 * (self.carrier_hz + self.bandwidth_hz / 2.0)
        upsample = max(int(np.ceil(passband_rate / self.baseband_rate_hz)), 1)
        passband_rate = self.baseband_rate_hz * upsample
        dense = np.repeat(baseband, upsample)
        dense = dsp.lowpass_filter(dense, self.bandwidth_hz / 2.0 * 1.2,
                                   passband_rate)
        passband = dsp.upconvert(dense, self.carrier_hz, passband_rate)
        passband = dsp.normalize_peak(passband, amplitude)
        scale = amplitude / max(float(np.max(np.abs(dense))), 1e-300)
        return ModulatedPulse(
            passband=passband,
            envelope=dense * scale,
            carrier_hz=self.carrier_hz,
            sample_rate_hz=passband_rate,
            name="prototype_output",
        )

    # ------------------------------------------------------------------
    # Test-bench channel
    # ------------------------------------------------------------------
    def loopback(self, baseband_waveform, snr_db: float | None = None,
                 channel=None,
                 rng: np.random.Generator | None = None) -> np.ndarray:
        """Play a waveform through an optional channel and AWGN back to baseband.

        This is the "complete testing of the algorithms implemented in the
        digital back end under realistic conditions" loop: generate, impair,
        and hand the result to whichever receiver algorithm is under test.
        """
        shaped = self.shape_baseband(baseband_waveform)
        received = shaped
        if channel is not None:
            received = channel.apply(received, self.baseband_rate_hz)
        if snr_db is not None:
            noise_std = noise_std_for_snr(shaped, snr_db)
            received = awgn(received, noise_std, rng=rng)
        return received
