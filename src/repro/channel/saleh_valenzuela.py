"""IEEE 802.15.3a Saleh-Valenzuela UWB channel model (CM1-CM4).

The paper assumes an indoor UWB channel with an RMS delay spread "on the
order of 20 ns".  The standard statistical model for exactly this
environment is the IEEE 802.15.3a modified Saleh-Valenzuela model, whose
four parameter sets cover line-of-sight 0-4 m (CM1) up to an extreme NLOS
environment with 25 ns RMS delay spread (CM4).  CM3 (4-10 m NLOS, ~15 ns)
and CM4 bracket the paper's 20 ns figure.

The model generates clusters with Poisson arrivals (rate ``cluster_rate``),
rays within each cluster with Poisson arrivals (rate ``ray_rate``), cluster
powers decaying with constant ``cluster_decay`` and ray powers decaying with
constant ``ray_decay``, log-normal shadowing on each ray, and equiprobable
polarity inversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.multipath import MultipathChannel
from repro.utils.validation import require_positive

__all__ = [
    "SalehValenzuelaParameters",
    "CM1",
    "CM2",
    "CM3",
    "CM4",
    "CHANNEL_MODELS",
    "SalehValenzuelaChannelGenerator",
    "generate_channel",
]


@dataclass(frozen=True)
class SalehValenzuelaParameters:
    """Parameter set of the 802.15.3a modified S-V model.

    Rates are in 1/ns and decay constants in ns, matching the units used in
    the IEEE 802.15.3a final report; conversions to seconds happen inside
    the generator.
    """

    name: str
    cluster_rate_per_ns: float      # Lambda
    ray_rate_per_ns: float          # lambda
    cluster_decay_ns: float         # Gamma
    ray_decay_ns: float             # gamma
    cluster_shadowing_db: float     # sigma_1
    ray_shadowing_db: float         # sigma_2
    lognormal_shadowing_db: float   # sigma_x
    nominal_rms_delay_spread_ns: float

    def __post_init__(self) -> None:
        require_positive(self.cluster_rate_per_ns, "cluster_rate_per_ns")
        require_positive(self.ray_rate_per_ns, "ray_rate_per_ns")
        require_positive(self.cluster_decay_ns, "cluster_decay_ns")
        require_positive(self.ray_decay_ns, "ray_decay_ns")


# Parameter values from the IEEE 802.15.3a channel modeling sub-committee
# final report (Foerster et al., 2003).
CM1 = SalehValenzuelaParameters(
    name="CM1", cluster_rate_per_ns=0.0233, ray_rate_per_ns=2.5,
    cluster_decay_ns=7.1, ray_decay_ns=4.3,
    cluster_shadowing_db=3.3941, ray_shadowing_db=3.3941,
    lognormal_shadowing_db=3.0, nominal_rms_delay_spread_ns=5.0)

CM2 = SalehValenzuelaParameters(
    name="CM2", cluster_rate_per_ns=0.4, ray_rate_per_ns=0.5,
    cluster_decay_ns=5.5, ray_decay_ns=6.7,
    cluster_shadowing_db=3.3941, ray_shadowing_db=3.3941,
    lognormal_shadowing_db=3.0, nominal_rms_delay_spread_ns=8.0)

CM3 = SalehValenzuelaParameters(
    name="CM3", cluster_rate_per_ns=0.0667, ray_rate_per_ns=2.1,
    cluster_decay_ns=14.0, ray_decay_ns=7.9,
    cluster_shadowing_db=3.3941, ray_shadowing_db=3.3941,
    lognormal_shadowing_db=3.0, nominal_rms_delay_spread_ns=15.0)

CM4 = SalehValenzuelaParameters(
    name="CM4", cluster_rate_per_ns=0.0667, ray_rate_per_ns=2.1,
    cluster_decay_ns=24.0, ray_decay_ns=12.0,
    cluster_shadowing_db=3.3941, ray_shadowing_db=3.3941,
    lognormal_shadowing_db=3.0, nominal_rms_delay_spread_ns=25.0)

CHANNEL_MODELS = {"CM1": CM1, "CM2": CM2, "CM3": CM3, "CM4": CM4}


class SalehValenzuelaChannelGenerator:
    """Random UWB channel realizations from a parameter set."""

    def __init__(self, parameters: SalehValenzuelaParameters,
                 rng: np.random.Generator | None = None,
                 max_excess_delay_ns: float | None = None,
                 complex_gains: bool = False) -> None:
        self.parameters = parameters
        self.rng = rng if rng is not None else np.random.default_rng()
        # Truncate the profile where ray power has decayed ~40 dB.
        if max_excess_delay_ns is None:
            max_excess_delay_ns = 10.0 * max(parameters.cluster_decay_ns,
                                             parameters.ray_decay_ns)
        self.max_excess_delay_ns = float(max_excess_delay_ns)
        self.complex_gains = complex_gains

    def _poisson_arrivals(self, rate_per_ns: float, horizon_ns: float,
                          start_ns: float = 0.0) -> np.ndarray:
        """Arrival times of a Poisson process on [start, horizon]."""
        arrivals = []
        t = start_ns
        while True:
            t += self.rng.exponential(1.0 / rate_per_ns)
            if t > horizon_ns:
                break
            arrivals.append(t)
        return np.asarray(arrivals)

    def realize(self, name_suffix: str = "") -> MultipathChannel:
        """Draw one channel realization (unit total power)."""
        p = self.parameters
        horizon = self.max_excess_delay_ns

        cluster_times = np.concatenate((
            [0.0], self._poisson_arrivals(p.cluster_rate_per_ns, horizon)))

        # The per-ray RNG calls must stay scalar and in this exact order —
        # seeded streams are part of the published-results contract — so
        # the loop only draws (and evaluates the scalar power law, whose
        # vectorized ``**`` is NOT bit-identical to the scalar form); the
        # exponential decay and the complex phasors are vectorized after
        # the loop, where numpy's array exp IS bit-identical to its
        # scalar exp.
        shadow_sigma = np.sqrt(p.cluster_shadowing_db ** 2
                               + p.ray_shadowing_db ** 2)
        two_pi = 2.0 * np.pi
        rng = self.rng
        cluster_of_ray: list[float] = []
        ray_of_ray: list[float] = []
        shadow_linear: list[float] = []
        phases_or_signs: list[float] = []
        for cluster_time in cluster_times:
            ray_times = np.concatenate((
                [0.0],
                self._poisson_arrivals(p.ray_rate_per_ns,
                                       horizon - cluster_time)))
            for ray_time in ray_times:
                shadow_db = rng.normal(0.0, shadow_sigma)
                shadow_linear.append(10.0 ** (shadow_db / 10.0))
                phases_or_signs.append(
                    rng.uniform(0.0, two_pi) if self.complex_gains
                    else rng.choice([-1.0, 1.0]))
                cluster_of_ray.append(cluster_time)
                ray_of_ray.append(ray_time)

        cluster_arr = np.asarray(cluster_of_ray)
        ray_arr = np.asarray(ray_of_ray)
        mean_power = (np.exp(-cluster_arr / p.cluster_decay_ns)
                      * np.exp(-ray_arr / p.ray_decay_ns))
        amplitude = np.sqrt(mean_power * np.asarray(shadow_linear))
        if self.complex_gains:
            gains_arr = amplitude * np.exp(1j * np.asarray(phases_or_signs))
        else:
            gains_arr = amplitude * np.asarray(phases_or_signs)
        delays_s = (cluster_arr + ray_arr) * 1e-9
        channel = MultipathChannel(
            delays_s, gains_arr,
            name=f"{p.name}{name_suffix}")
        return channel.normalized()

    def realize_many(self, count: int) -> list[MultipathChannel]:
        """Draw ``count`` independent realizations."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return [self.realize(name_suffix=f"_{i}") for i in range(count)]

    def average_rms_delay_spread_s(self, num_realizations: int = 20) -> float:
        """Monte-Carlo estimate of the model's mean RMS delay spread."""
        spreads = [self.realize().rms_delay_spread_s()
                   for _ in range(num_realizations)]
        return float(np.mean(spreads))


def generate_channel(model: str = "CM3",
                     rng: np.random.Generator | None = None,
                     complex_gains: bool = False) -> MultipathChannel:
    """Convenience wrapper: one realization of a named 802.15.3a model."""
    key = model.upper()
    if key not in CHANNEL_MODELS:
        raise ValueError(
            f"unknown channel model {model!r}; choose from {sorted(CHANNEL_MODELS)}")
    generator = SalehValenzuelaChannelGenerator(CHANNEL_MODELS[key], rng=rng,
                                                complex_gains=complex_gains)
    return generator.realize()
