"""Channel models: AWGN, multipath (802.15.3a S-V), interference, path loss."""

from repro.channel.awgn import (
    AWGNChannel,
    awgn,
    noise_std_for_ebn0,
    noise_std_for_snr,
)
from repro.channel.interference import (
    ModulatedInterferer,
    MultiToneInterferer,
    ToneInterferer,
    interferer_amplitude_for_sir,
)
from repro.channel.multipath import (
    MultipathChannel,
    exponential_decay_channel,
    two_ray_channel,
)
from repro.channel.pathloss import (
    LinkBudget,
    free_space_path_loss_db,
    log_distance_path_loss_db,
    max_transmit_power_dbm,
    thermal_noise_power_dbm,
)
from repro.channel.saleh_valenzuela import (
    CHANNEL_MODELS,
    CM1,
    CM2,
    CM3,
    CM4,
    SalehValenzuelaChannelGenerator,
    SalehValenzuelaParameters,
    generate_channel,
)

__all__ = [
    "AWGNChannel",
    "awgn",
    "noise_std_for_ebn0",
    "noise_std_for_snr",
    "ModulatedInterferer",
    "MultiToneInterferer",
    "ToneInterferer",
    "interferer_amplitude_for_sir",
    "MultipathChannel",
    "exponential_decay_channel",
    "two_ray_channel",
    "LinkBudget",
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "max_transmit_power_dbm",
    "thermal_noise_power_dbm",
    "CHANNEL_MODELS",
    "CM1",
    "CM2",
    "CM3",
    "CM4",
    "SalehValenzuelaChannelGenerator",
    "SalehValenzuelaParameters",
    "generate_channel",
]
