"""Path-loss and link-budget models for short-range UWB links.

The paper's systems target "high data rates over short distances"; the gen-1
chip demonstrated a 193 kbps link and the gen-2 design targets 100 Mbps over
a few metres.  This module provides free-space and log-distance path-loss
models plus a link-budget calculator that converts the FCC-limited transmit
power into a received SNR for a given distance, bandwidth, and noise figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import (
    BOLTZMANN,
    FCC_EIRP_LIMIT_DBM_PER_MHZ,
    ROOM_TEMPERATURE_K,
    SPEED_OF_LIGHT,
)
from repro.utils.db import linear_to_db
from repro.utils.validation import require_positive

__all__ = [
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "thermal_noise_power_dbm",
    "max_transmit_power_dbm",
    "LinkBudget",
]


def free_space_path_loss_db(distance_m: float, frequency_hz: float) -> float:
    """Friis free-space path loss in dB."""
    require_positive(distance_m, "distance_m")
    require_positive(frequency_hz, "frequency_hz")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return float(linear_to_db((4.0 * np.pi * distance_m / wavelength) ** 2))


def log_distance_path_loss_db(distance_m: float, frequency_hz: float,
                              exponent: float = 2.0,
                              reference_distance_m: float = 1.0,
                              shadowing_db: float = 0.0) -> float:
    """Log-distance path loss with optional fixed shadowing margin.

    Indoor UWB measurements report exponents near 1.7 (LOS) to 3.5 (NLOS);
    the default of 2.0 matches free space at the reference distance.
    """
    require_positive(distance_m, "distance_m")
    require_positive(reference_distance_m, "reference_distance_m")
    reference_loss = free_space_path_loss_db(reference_distance_m, frequency_hz)
    return float(reference_loss
                 + 10.0 * exponent * np.log10(distance_m / reference_distance_m)
                 + shadowing_db)


def thermal_noise_power_dbm(bandwidth_hz: float,
                            noise_figure_db: float = 0.0,
                            temperature_k: float = ROOM_TEMPERATURE_K) -> float:
    """Integrated thermal noise power (dBm) in ``bandwidth_hz`` plus NF."""
    require_positive(bandwidth_hz, "bandwidth_hz")
    noise_watts = BOLTZMANN * temperature_k * bandwidth_hz
    return float(linear_to_db(noise_watts / 1e-3) + noise_figure_db)


def max_transmit_power_dbm(bandwidth_hz: float,
                           psd_limit_dbm_per_mhz: float = FCC_EIRP_LIMIT_DBM_PER_MHZ
                           ) -> float:
    """Maximum total transmit power allowed by a flat PSD limit.

    A 500 MHz channel at -41.3 dBm/MHz integrates to about -14.3 dBm, the
    familiar UWB transmit-power budget.
    """
    require_positive(bandwidth_hz, "bandwidth_hz")
    return float(psd_limit_dbm_per_mhz + 10.0 * np.log10(bandwidth_hz / 1e6))


@dataclass(frozen=True)
class LinkBudget:
    """A simple UWB link budget.

    Attributes mirror the usual budget line items; ``received_snr_db`` ties
    them together for a given distance.
    """

    center_frequency_hz: float
    bandwidth_hz: float
    noise_figure_db: float = 6.0
    tx_antenna_gain_dbi: float = 0.0
    rx_antenna_gain_dbi: float = 0.0
    implementation_loss_db: float = 3.0
    path_loss_exponent: float = 2.0
    psd_limit_dbm_per_mhz: float = FCC_EIRP_LIMIT_DBM_PER_MHZ

    def transmit_power_dbm(self) -> float:
        """FCC-limited total transmit power for the channel bandwidth."""
        return max_transmit_power_dbm(self.bandwidth_hz,
                                      self.psd_limit_dbm_per_mhz)

    def path_loss_db(self, distance_m: float) -> float:
        """Path loss at ``distance_m`` with the configured exponent."""
        return log_distance_path_loss_db(distance_m, self.center_frequency_hz,
                                         exponent=self.path_loss_exponent)

    def received_power_dbm(self, distance_m: float) -> float:
        """Received signal power at ``distance_m``."""
        return (self.transmit_power_dbm()
                + self.tx_antenna_gain_dbi + self.rx_antenna_gain_dbi
                - self.path_loss_db(distance_m)
                - self.implementation_loss_db)

    def noise_power_dbm(self) -> float:
        """Receiver noise power integrated over the channel bandwidth."""
        return thermal_noise_power_dbm(self.bandwidth_hz, self.noise_figure_db)

    def received_snr_db(self, distance_m: float) -> float:
        """SNR at the demodulator input for ``distance_m``."""
        return self.received_power_dbm(distance_m) - self.noise_power_dbm()

    def ebn0_db(self, distance_m: float, data_rate_bps: float) -> float:
        """Eb/N0 at ``distance_m`` for a given information rate."""
        require_positive(data_rate_bps, "data_rate_bps")
        snr = self.received_snr_db(distance_m)
        return float(snr + 10.0 * np.log10(self.bandwidth_hz / data_rate_bps))

    def max_range_m(self, required_snr_db: float,
                    max_distance_m: float = 100.0) -> float:
        """Largest distance at which the required SNR is still met."""
        distances = np.linspace(0.1, max_distance_m, 2000)
        snrs = np.array([self.received_snr_db(d) for d in distances])
        feasible = distances[snrs >= required_snr_db]
        if feasible.size == 0:
            return 0.0
        return float(feasible[-1])
