"""Narrowband interferer models.

The paper's receiver must operate in the presence of narrowband interferers
(e.g. 802.11a at 5-6 GHz sits right inside the UWB band).  The digital back
end detects the interferer, estimates its frequency and can command an RF
notch filter.  These generators produce the interference waveforms those
blocks are exercised against.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.utils import dsp
from repro.utils.db import db_to_linear
from repro.utils.validation import require_non_negative, require_positive

__all__ = [
    "ToneInterferer",
    "ModulatedInterferer",
    "MultiToneInterferer",
    "accepts_rng",
    "interferer_amplitude_for_sir",
]


@lru_cache(maxsize=None)
def _type_method_accepts_rng(cls: type, method_name: str) -> bool:
    return "rng" in inspect.signature(getattr(cls, method_name)).parameters


def accepts_rng(obj, method_name: str) -> bool:
    """Whether ``obj.<method_name>`` accepts an ``rng`` keyword.

    Deterministic generators (tones) take no ``rng``; modulated ones do.
    Callers that feed interferers a seeded generator use this to dispatch
    without trial-and-error (an ``except TypeError`` would mask bugs inside
    the method).  Cached per type so per-packet loops pay no reflection
    cost.
    """
    return _type_method_accepts_rng(type(obj), method_name)


def interferer_amplitude_for_sir(signal, sir_db: float,
                                 interferer_is_complex: bool = True) -> float:
    """Peak amplitude of a constant-envelope interferer for a target SIR.

    ``SIR = P_signal / P_interferer``.  A complex exponential of amplitude A
    has power A^2; a real sinusoid has power A^2/2.
    """
    signal_power = dsp.signal_power(signal)
    if signal_power <= 0:
        raise ValueError("signal power must be positive to set an SIR")
    interferer_power = signal_power / db_to_linear(sir_db)
    if interferer_is_complex:
        return float(np.sqrt(interferer_power))
    return float(np.sqrt(2.0 * interferer_power))


@dataclass
class ToneInterferer:
    """A continuous-wave (single-tone) interferer.

    ``frequency_hz`` is the offset from the receiver's centre frequency when
    used against complex-baseband signals, or the absolute frequency when
    used against real passband signals.
    """

    frequency_hz: float
    amplitude: float = 1.0
    phase_rad: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative(abs(self.frequency_hz), "frequency_hz")
        require_non_negative(self.amplitude, "amplitude")

    def waveform(self, num_samples: int, sample_rate_hz: float,
                 complex_baseband: bool = True) -> np.ndarray:
        """Generate the interferer waveform."""
        require_positive(sample_rate_hz, "sample_rate_hz")
        t = dsp.time_vector(num_samples, sample_rate_hz)
        if complex_baseband:
            return self.amplitude * np.exp(
                1j * (2.0 * np.pi * self.frequency_hz * t + self.phase_rad))
        return self.amplitude * np.cos(
            2.0 * np.pi * self.frequency_hz * t + self.phase_rad)

    def add_to(self, signal, sample_rate_hz: float) -> np.ndarray:
        """Return ``signal`` plus the interferer (complex for complex input)."""
        signal = np.asarray(signal)
        complex_baseband = np.iscomplexobj(signal)
        tone = self.waveform(signal.size, sample_rate_hz,
                             complex_baseband=complex_baseband)
        return signal + tone

    def power(self, complex_baseband: bool = True) -> float:
        """Average power of the interferer."""
        if complex_baseband:
            return self.amplitude ** 2
        return self.amplitude ** 2 / 2.0


@dataclass
class ModulatedInterferer:
    """A narrowband digitally-modulated interferer (random QPSK-like).

    Models an OFDM/WLAN-style interferer as a random-phase narrowband
    process: rectangular symbols at ``symbol_rate_hz`` on a carrier at
    ``frequency_hz``.  Its spectrum is a sinc of width ~``symbol_rate_hz``
    centred on the carrier, i.e. narrow compared with the 500 MHz UWB pulse.
    """

    frequency_hz: float
    symbol_rate_hz: float = 20e6
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.symbol_rate_hz, "symbol_rate_hz")
        require_non_negative(self.amplitude, "amplitude")

    def waveform(self, num_samples: int, sample_rate_hz: float,
                 rng: np.random.Generator | None = None,
                 complex_baseband: bool = True) -> np.ndarray:
        """Generate the interferer waveform."""
        require_positive(sample_rate_hz, "sample_rate_hz")
        if rng is None:
            rng = np.random.default_rng()
        samples_per_symbol = max(int(round(sample_rate_hz / self.symbol_rate_hz)), 1)
        num_symbols = int(np.ceil(num_samples / samples_per_symbol))
        phases = rng.choice([np.pi / 4, 3 * np.pi / 4, 5 * np.pi / 4, 7 * np.pi / 4],
                            size=num_symbols)
        symbols = np.exp(1j * phases)
        envelope = np.repeat(symbols, samples_per_symbol)[:num_samples]
        t = dsp.time_vector(num_samples, sample_rate_hz)
        carrier = np.exp(1j * 2.0 * np.pi * self.frequency_hz * t)
        waveform = self.amplitude * envelope * carrier
        if complex_baseband:
            return waveform
        return np.real(waveform) * np.sqrt(2.0)

    def add_to(self, signal, sample_rate_hz: float,
               rng: np.random.Generator | None = None) -> np.ndarray:
        """Return ``signal`` plus the interferer."""
        signal = np.asarray(signal)
        complex_baseband = np.iscomplexobj(signal)
        wave = self.waveform(signal.size, sample_rate_hz, rng=rng,
                             complex_baseband=complex_baseband)
        return signal + wave


@dataclass
class MultiToneInterferer:
    """Several independent tone interferers summed together."""

    tones: tuple[ToneInterferer, ...]

    def __post_init__(self) -> None:
        if len(self.tones) == 0:
            raise ValueError("need at least one tone")

    def waveform(self, num_samples: int, sample_rate_hz: float,
                 complex_baseband: bool = True) -> np.ndarray:
        """Sum of all tone waveforms."""
        total = np.zeros(num_samples,
                         dtype=complex if complex_baseband else float)
        for tone in self.tones:
            total = total + tone.waveform(num_samples, sample_rate_hz,
                                          complex_baseband=complex_baseband)
        return total

    def add_to(self, signal, sample_rate_hz: float) -> np.ndarray:
        """Return ``signal`` plus all tones."""
        signal = np.asarray(signal)
        complex_baseband = np.iscomplexobj(signal)
        return signal + self.waveform(signal.size, sample_rate_hz,
                                      complex_baseband=complex_baseband)

    def frequencies(self) -> tuple[float, ...]:
        """Frequencies of all constituent tones."""
        return tuple(tone.frequency_hz for tone in self.tones)
