"""Tapped-delay-line multipath channel.

A :class:`MultipathChannel` is an arbitrary set of (delay, complex gain)
rays.  It can be applied to a sampled waveform (continuous-time delays are
rounded or interpolated onto the sample grid), and it exposes the statistics
the paper cares about: RMS delay spread, excess delay, and the discrete
impulse response the digital back end has to estimate.
"""

from __future__ import annotations

import os
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.utils import dsp
from repro.utils.validation import require_int, require_positive

__all__ = [
    "MultipathChannel",
    "apply_channels_batch",
    "channel_fft_workers",
    "set_channel_fft_workers",
    "two_ray_channel",
    "exponential_decay_channel",
]

# Process-wide thread count for the batched channel-FFT pass; None defers
# to the REPRO_FFT_WORKERS environment variable (default 1).
_channel_fft_workers: int | None = None


def set_channel_fft_workers(num_workers: int | None) -> int | None:
    """Set how many threads the batched channel-FFT pass may use.

    ``scipy``'s pocketfft splits a batched 1-D transform over its rows,
    computing each row's transform exactly as a single thread would — so
    raising the worker count changes wall-clock time, never a single bit
    of the convolution output (the chunk-equivalence suite pins this).
    ``None`` defers to the ``REPRO_FFT_WORKERS`` environment variable
    (default 1, the historical single-threaded pass).  Returns the
    previous setting so callers can restore it.
    """
    global _channel_fft_workers
    if num_workers is not None:
        require_int(num_workers, "num_workers", minimum=1)
    previous = _channel_fft_workers
    _channel_fft_workers = num_workers
    return previous


def channel_fft_workers() -> int:
    """The effective channel-FFT thread count (setting, else environment)."""
    if _channel_fft_workers is not None:
        return _channel_fft_workers
    env = os.environ.get("REPRO_FFT_WORKERS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value >= 1:
            return value
        warnings.warn(f"ignoring invalid REPRO_FFT_WORKERS={env!r} "
                      "(need a positive integer)", stacklevel=2)
    return 1


def _fft_workers_context():
    """The ``scipy.fft`` workers context for the configured thread count."""
    workers = channel_fft_workers()
    if workers <= 1:
        return nullcontext()
    from scipy import fft as sp_fft
    return sp_fft.set_workers(workers)


@dataclass
class MultipathChannel:
    """A multipath channel as a list of discrete rays.

    Attributes
    ----------
    delays_s:
        Arrival time of each ray in seconds (non-negative).
    gains:
        Complex gain of each ray.  Real-valued gains model the carrier-free
        (gen-1) baseband channel; complex gains model the complex-baseband
        equivalent channel of the gen-2 system.
    name:
        Label used in reports.
    """

    delays_s: np.ndarray
    gains: np.ndarray
    name: str = "multipath"

    def __post_init__(self) -> None:
        self.delays_s = np.asarray(self.delays_s, dtype=float).ravel()
        self.gains = np.asarray(self.gains).ravel()
        if self.delays_s.size != self.gains.size:
            raise ValueError("delays_s and gains must have the same length")
        if self.delays_s.size == 0:
            raise ValueError("channel must have at least one ray")
        if np.any(self.delays_s < 0):
            raise ValueError("ray delays must be non-negative")
        order = np.argsort(self.delays_s)
        self.delays_s = self.delays_s[order]
        self.gains = self.gains[order]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def num_rays(self) -> int:
        """Number of discrete rays in the channel."""
        return int(self.delays_s.size)

    def total_power(self) -> float:
        """Sum of squared ray magnitudes."""
        return float(np.sum(np.abs(self.gains) ** 2))

    def mean_excess_delay_s(self) -> float:
        """Power-weighted mean of the ray delays."""
        powers = np.abs(self.gains) ** 2
        total = np.sum(powers)
        if total == 0:
            return 0.0
        return float(np.sum(powers * self.delays_s) / total)

    def rms_delay_spread_s(self) -> float:
        """Power-weighted RMS spread of the ray delays.

        This is the statistic the paper quotes as "on the order of 20 ns"
        for the indoor UWB channel.
        """
        powers = np.abs(self.gains) ** 2
        total = np.sum(powers)
        if total == 0:
            return 0.0
        mean = np.sum(powers * self.delays_s) / total
        # Centered form: the textbook E[t^2] - E[t]^2 cancels
        # catastrophically when the spread is tiny next to the mean delay
        # (identical ~80 ns delays leave O(1e-15 s) of float64 noise).
        second_centered = np.sum(powers * (self.delays_s - mean) ** 2) / total
        return float(np.sqrt(max(second_centered, 0.0)))

    def maximum_excess_delay_s(self, threshold_db: float = 30.0) -> float:
        """Delay of the last ray within ``threshold_db`` of the strongest ray."""
        powers = np.abs(self.gains) ** 2
        peak = np.max(powers)
        if peak == 0:
            return 0.0
        keep = powers >= peak * 10.0 ** (-threshold_db / 10.0)
        return float(np.max(self.delays_s[keep]) - np.min(self.delays_s[keep]))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def normalized(self) -> "MultipathChannel":
        """Return a copy with unit total power."""
        power = self.total_power()
        if power == 0:
            raise ValueError("cannot normalize a zero-power channel")
        return MultipathChannel(self.delays_s.copy(),
                                self.gains / np.sqrt(power),
                                name=self.name)

    def discrete_impulse_response(self, sample_rate_hz: float,
                                  num_taps: int | None = None) -> np.ndarray:
        """Return the channel as a sampled FIR impulse response.

        Each ray is accumulated into the nearest sample bin.  ``num_taps``
        defaults to just enough taps to hold the longest delay.
        """
        require_positive(sample_rate_hz, "sample_rate_hz")
        max_delay_samples = int(np.ceil(np.max(self.delays_s) * sample_rate_hz))
        if num_taps is None:
            num_taps = max_delay_samples + 1
        if num_taps < max_delay_samples + 1:
            raise ValueError("num_taps too small to hold the longest ray delay")
        is_complex = np.iscomplexobj(self.gains)
        h = np.zeros(num_taps, dtype=complex if is_complex else float)
        # Unbuffered np.add.at accumulates rays in array order, which is
        # exactly the historical per-ray loop (bit-identical results when
        # several rays share a bin); np.rint matches round()'s half-even.
        indices = np.rint(self.delays_s * sample_rate_hz).astype(np.int64)
        np.add.at(h, indices, self.gains)
        return h

    def apply(self, signal, sample_rate_hz: float,
              keep_length: bool = True) -> np.ndarray:
        """Convolve a sampled waveform with the channel impulse response.

        With ``keep_length`` the output is truncated to the input length
        (what a fixed-length receive buffer would capture); otherwise the
        full convolution tail is returned.  This is the per-packet wrapper
        around :meth:`apply_batch`.
        """
        signal = np.asarray(signal)
        return self.apply_batch(signal[np.newaxis, :], sample_rate_hz,
                                keep_length=keep_length)[0]

    def apply_batch(self, signals, sample_rate_hz: float,
                    keep_length: bool = True, backend=None):
        """Convolve a batch of waveforms with the channel in one FFT pass.

        ``signals`` has shape ``(..., num_samples)``; the channel is applied
        along the last axis to every waveform in the batch, which is how the
        sweep engine pushes whole Monte-Carlo batches through the channel
        without a Python loop.  With ``keep_length`` the output keeps the
        input sample count, otherwise the convolution tail is returned too.

        ``backend`` selects the array backend the convolution runs on
        (see :mod:`repro.sim.backends`); ``signals`` may already live on
        that backend's device and the result stays there.  ``None``
        means :func:`repro.sim.backends.reference_backend` (NumPy —
        never the environment variable).  The ray-level impulse response
        is always assembled on the host — it is O(taps), not O(samples).
        """
        from repro.sim.backends import get_backend, reference_backend
        backend = (reference_backend() if backend is None
                   else get_backend(backend))
        xp = backend.xp
        signals = backend.asarray(signals)
        if signals.ndim < 2:
            raise ValueError("apply_batch expects a (..., num_samples) batch; "
                             "use apply() for a single waveform")
        h = self.discrete_impulse_response(sample_rate_hz)
        if xp.iscomplexobj(signals) or np.iscomplexobj(h):
            signals = signals.astype(complex)
            h = h.astype(complex)
        h = backend.asarray(h).reshape((1,) * (signals.ndim - 1) + h.shape)
        out = backend.fftconvolve_full(signals, h)
        if keep_length:
            return out[..., : signals.shape[-1]]
        return out

    def combined_with(self, other: "MultipathChannel") -> "MultipathChannel":
        """Cascade two ray channels (all pairwise delay sums and gain products).

        This is how the paper's observation that "the impulse responses of
        both the antenna and the RF front-end add to that of the channel" is
        modelled at the ray level.
        """
        delays = (self.delays_s[:, None] + other.delays_s[None, :]).ravel()
        gains = (self.gains[:, None] * other.gains[None, :]).ravel()
        return MultipathChannel(delays, gains,
                                name=f"{self.name}+{other.name}")


def apply_channels_batch(channels, signals, sample_rate_hz: float,
                         valid_lengths=None, backend=None) -> np.ndarray:
    """Apply one channel per row of a padded waveform batch in one FFT pass.

    Where :meth:`MultipathChannel.apply_batch` pushes many waveforms
    through a *single* channel, this is the Monte-Carlo front-end shape:
    ``signals`` is a zero-padded ``(packets, num_samples)`` batch and
    ``channels`` holds one :class:`MultipathChannel` (or ``None`` for a
    clean link) per row.  Every per-row impulse response is assembled on
    the host (O(taps)), zero-padded to a common tap count, and the whole
    batch convolves in a single broadcast FFT pass on ``backend``
    (``None`` = the NumPy reference).  Rows whose channel is ``None``
    pass through bitwise untouched, exactly like the per-packet flow
    that skips ``channel.apply`` for them.

    ``valid_lengths`` gives each row's real sample count; convolved rows
    are zeroed beyond it, dropping the convolution energy that leaked
    into the padding region (samples a per-packet receive buffer of that
    length would never have captured).  Rows without a channel are
    passed through untouched — including their padding, which the
    zero-padded batches this function is built for already keep clean —
    and when *no* row has a channel the input array itself is returned
    (no copy).  The output dtype is complex when the signals or any ray
    gain are complex, real otherwise (so the carrier-free gen-1 path
    keeps its real-FFT convolution).

    On the NumPy backend the batch convolves in row chunks sized to stay
    cache-resident — every row's FFT length is fixed by the *global*
    padded width and tap count, so the chunking changes nothing, not
    even at the last ulp, while avoiding the memory-bound giant-batch
    transform.
    """
    from repro.sim.backends import NumpyBackend, get_backend, reference_backend
    backend = (reference_backend() if backend is None
               else get_backend(backend))
    signals = np.asarray(signals)
    if signals.ndim != 2:
        raise ValueError("apply_channels_batch expects a (packets, "
                         "num_samples) batch")
    channels = list(channels)
    if len(channels) != signals.shape[0]:
        raise ValueError("need exactly one channel (or None) per batch row; "
                         f"got {len(channels)} channels for "
                         f"{signals.shape[0]} rows")
    width = int(signals.shape[1])
    with_channel = [index for index, channel in enumerate(channels)
                    if channel is not None]
    if not with_channel:
        return signals
    responses = [channels[index].discrete_impulse_response(sample_rate_hz)
                 for index in with_channel]
    is_complex = (np.iscomplexobj(signals)
                  or any(np.iscomplexobj(response) for response in responses))
    taps_width = max(response.size for response in responses)
    kernels = np.zeros((len(with_channel), taps_width),
                       dtype=complex if is_complex else float)
    for row, response in enumerate(responses):
        kernels[row, :response.size] = response
    lengths = (None if valid_lengths is None
               else np.asarray(valid_lengths, dtype=np.int64))

    # Convolved rows are rewritten wholesale, so the output starts empty
    # and only rows *without* a channel copy over from the input (the
    # input batch itself is never written to).
    out = np.empty((signals.shape[0], width),
                   dtype=complex if is_complex else signals.dtype)
    in_channel = set(with_channel)
    for index in range(signals.shape[0]):
        if index not in in_channel:
            out[index] = signals[index]
    if type(backend) is NumpyBackend:
        # Row-chunked convolution: each chunk's FFT length is the same
        # global (width + taps_width - 1), so results are bitwise those
        # of the one-shot batch call, minus its cache-hostile footprint.
        # The workers context threads scipy's pocketfft across the rows
        # of each chunk — same per-row transform, so still bitwise.
        chunk = max(1, (1 << 19) // max(width, 1))
        with _fft_workers_context():
            for start in range(0, len(with_channel), chunk):
                rows = with_channel[start:start + chunk]
                convolved = backend.fftconvolve_full(
                    signals[rows], kernels[start:start + chunk])[:, :width]
                out[rows] = convolved
    else:
        convolved = backend.to_numpy(backend.fftconvolve_full(
            backend.asarray(signals[with_channel]),
            backend.asarray(kernels)))[:, :width]
        out[with_channel] = convolved
    if lengths is not None:
        for index in with_channel:
            out[index, lengths[index]:] = 0.0
    return out


def two_ray_channel(delay_s: float, relative_gain_db: float = -3.0,
                    name: str = "two_ray") -> MultipathChannel:
    """A simple line-of-sight plus single-echo channel."""
    require_positive(delay_s, "delay_s")
    echo_gain = 10.0 ** (relative_gain_db / 20.0)
    return MultipathChannel(np.array([0.0, delay_s]),
                            np.array([1.0, echo_gain]), name=name)


def exponential_decay_channel(rms_delay_spread_s: float,
                              ray_spacing_s: float,
                              num_rays: int | None = None,
                              rng: np.random.Generator | None = None,
                              complex_gains: bool = True,
                              name: str = "exp_decay") -> MultipathChannel:
    """A uniformly spaced exponential power-delay-profile channel.

    The tap powers decay as ``exp(-t / rms_delay_spread_s)`` which gives an
    RMS delay spread approximately equal to ``rms_delay_spread_s`` when the
    profile extends over several time constants.  Ray phases (or signs, when
    ``complex_gains`` is False) are random.
    """
    require_positive(rms_delay_spread_s, "rms_delay_spread_s")
    require_positive(ray_spacing_s, "ray_spacing_s")
    if rng is None:
        rng = np.random.default_rng()
    if num_rays is None:
        num_rays = max(int(np.ceil(6.0 * rms_delay_spread_s / ray_spacing_s)), 2)
    delays = np.arange(num_rays) * ray_spacing_s
    powers = np.exp(-delays / rms_delay_spread_s)
    amplitudes = np.sqrt(powers) * rng.rayleigh(scale=1.0 / np.sqrt(2.0),
                                                size=num_rays)
    if complex_gains:
        phases = rng.uniform(0.0, 2.0 * np.pi, size=num_rays)
        gains = amplitudes * np.exp(1j * phases)
    else:
        signs = rng.choice([-1.0, 1.0], size=num_rays)
        gains = amplitudes * signs
    channel = MultipathChannel(delays, gains, name=name)
    return channel.normalized()
