"""Batched (vectorized) Monte-Carlo link kernel.

The legacy :class:`~repro.core.link.LinkSimulator` pushes one packet at a
time through the full transceiver stack — transmitter, channel, AWGN, AGC,
ADC, acquisition, channel estimation, RAKE — which makes wide BER grids
slow.  This module provides the *fast path*: a :class:`BatchedLinkModel`
that carries a leading batch axis end-to-end, so one grid point becomes a
handful of array operations instead of a Python loop:

* packet generation: one ``(packets, bits)`` draw, one modulation call;
* pulse shaping: an outer product with the per-symbol pulse template;
* multipath: one FFT convolution over the whole batch
  (:meth:`repro.channel.multipath.MultipathChannel.apply_batch`);
* AWGN: one broadcasted noise draw with per-packet noise levels;
* demodulation: a strided matched-filter correlation against the
  channel-convolved template (the ideal all-finger RAKE).

Every array operation routes through an
:class:`repro.sim.backends.ArrayBackend`, so the same kernel runs on the
NumPy reference (bit-identical to the historical module-level ``np``
code), on a CUDA device via CuPy, or under JAX — pass ``backend=`` (a
name or an :class:`~repro.sim.backends.ArrayBackend`) or set the
``REPRO_ARRAY_BACKEND`` environment variable.  Host-side work (modulator
symbol maps, channel ray bookkeeping, the final error count) is
O(packets); everything O(samples) runs on the backend's device.

The model is *genie-aided* on the receiver side — symbol timing and the
channel impulse response are known exactly, so there is no acquisition or
channel-estimation loss.  ADC amplitude resolution (AGC + uniform
quantization) and the digital notch are still modelled because they are the
impairments the paper's resolution claims hinge on.  The result matches the
full per-packet simulator within Monte-Carlo tolerance at operating points
where synchronization is reliable, at a fraction of the cost.

When synchronization and estimation losses are the point — the paper's
synchronization cliff, the genie-vs-full-stack BER gap, energy capture
vs RAKE fingers — use the batched *full-stack* sibling instead:
:class:`repro.sim.batch_rx.BatchedFullStackModel`
(``SweepEngine(backend="fullstack")``), which runs the real receiver
chain over the batch axis and is bit-decision-identical to the
per-packet oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.awgn import awgn, noise_std_for_ebn0
from repro.channel.interference import accepts_rng
from repro.channel.multipath import MultipathChannel
from repro.core.config import Gen1Config, Gen2Config
from repro.core.metrics import BERPoint
from repro.pulses.modulation import make_modulator
from repro.pulses.shapes import Pulse, gaussian_derivative_pulse, gaussian_pulse
from repro.sim.backends import ArrayBackend, get_backend
from repro.utils.validation import require_int

__all__ = ["BatchResult", "BatchedLinkModel", "pulse_for_config"]

_AGC_PEAK_BACKOFF_DB = 1.0
_AGC_FULL_SCALE = 1.0
_NOTCH_POLE_RADIUS = 0.995


def pulse_for_config(config) -> Pulse:
    """The prototype pulse a configuration's transmitter would use."""
    if isinstance(config, Gen1Config):
        return gaussian_derivative_pulse(
            order=config.pulse_order,
            bandwidth_hz=config.pulse_bandwidth_hz,
            sample_rate_hz=config.simulation_rate_hz)
    if isinstance(config, Gen2Config):
        base = gaussian_pulse(bandwidth_hz=config.pulse_bandwidth_hz,
                              sample_rate_hz=config.simulation_rate_hz)
        return Pulse(base.waveform.astype(complex), base.sample_rate_hz,
                     name="gen2_envelope")
    raise TypeError(f"unsupported configuration type {type(config).__name__}")


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batched grid point."""

    ebn0_db: float
    bit_errors: int
    total_bits: int
    packets_sent: int
    packets_failed: int
    errors_per_packet: np.ndarray

    @property
    def ber(self) -> float:
        """Measured bit error rate of the batch."""
        if self.total_bits == 0:
            return 1.0
        return self.bit_errors / self.total_bits

    def to_ber_point(self) -> BERPoint:
        """Convert to the BER-curve point container the plots expect."""
        return BERPoint(ebn0_db=self.ebn0_db, bit_errors=self.bit_errors,
                        total_bits=self.total_bits,
                        packets_sent=self.packets_sent,
                        packets_failed=self.packets_failed)


class BatchedLinkModel:
    """Vectorized body-only link model for one transceiver configuration.

    Parameters
    ----------
    config:
        A :class:`Gen1Config` or :class:`Gen2Config`; the pulse shape,
        pulses per bit, sampling rates and ADC resolution are taken from it.
    modulation:
        Any scheme accepted by :func:`repro.pulses.modulation.make_modulator`
        (``"bpsk"``, ``"ook"``, ``"ppm"``, ``"pam4"``, ...).
    quantize:
        Model the AGC + uniform ADC quantization (resolution taken from
        ``config.adc_bits``).  Disable for an ideal infinite-resolution
        receiver, e.g. when checking measured BER against textbook curves.
    notch_frequency_hz:
        When set, a digital single-pole notch at this frequency is applied
        to the quantized samples (the batched equivalent of the spectral
        monitor + digital notch control loop, with a genie frequency
        estimate).
    backend:
        Array backend carrying every waveform-scale operation: ``None``
        (environment default, normally NumPy), a registered backend name
        (``"numpy"``, ``"cupy"``, ``"jax"``), or an
        :class:`~repro.sim.backends.ArrayBackend` instance.
    """

    def __init__(self, config, modulation: str = "bpsk",
                 quantize: bool = True,
                 notch_frequency_hz: float | None = None,
                 backend: str | ArrayBackend | None = None) -> None:
        self.config = config
        self.modulator = make_modulator(modulation)
        self.quantize = bool(quantize)
        self.notch_frequency_hz = notch_frequency_hz
        self.backend = get_backend(backend)
        self.pulse = pulse_for_config(config)

        self.sim_rate_hz = config.simulation_rate_hz
        self.decimation = config.decimation_factor
        samples_per_pri = int(round(config.pulse_repetition_interval_s
                                    * self.sim_rate_hz))
        if self.pulse.num_samples > samples_per_pri:
            raise ValueError("pulse duration exceeds the pulse repetition "
                             "interval; pulses would overlap")
        self.samples_per_symbol = samples_per_pri * config.pulses_per_bit
        if self.samples_per_symbol % self.decimation != 0:
            raise ValueError("symbol duration must be an integer number of "
                             "ADC sample periods")
        self.samples_per_symbol_adc = self.samples_per_symbol // self.decimation

        # Templates are assembled on the host (tiny arrays, Python loop)
        # and mirrored onto the backend's device for the batch products.
        template = np.zeros(self.samples_per_symbol,
                            dtype=self.pulse.waveform.dtype)
        for rep in range(config.pulses_per_bit):
            start = rep * samples_per_pri
            template[start:start + self.pulse.num_samples] += self.pulse.waveform
        self.symbol_template = template
        self._symbol_template_dev = self.backend.asarray(template)

        offsets = self.modulator.position_offsets
        if offsets is not None:
            self.position_templates = tuple(
                self._shifted_template(offset) for offset in offsets)
            self._position_templates_dev = tuple(
                self.backend.asarray(t) for t in self.position_templates)
        else:
            self.position_templates = None
            self._position_templates_dev = None

    def _shifted_template(self, offset_s: float) -> np.ndarray:
        """Host-side symbol template delayed by a PPM position offset."""
        shift = int(round(offset_s * self.sim_rate_hz))
        if shift >= self.samples_per_symbol:
            raise ValueError("position offset exceeds the symbol duration")
        template = np.zeros_like(self.symbol_template)
        keep = self.samples_per_symbol - shift
        template[shift:] = self.symbol_template[:keep]
        return template

    # ------------------------------------------------------------------
    # Transmit side
    # ------------------------------------------------------------------
    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map a ``(packets, bits)`` array to per-symbol modulation symbols.

        Runs on the host — the modulator maps are O(packets x symbols),
        negligible next to the O(samples) waveform work.
        """
        bits = np.asarray(self.backend.to_numpy(bits), dtype=np.int64)
        packets, num_bits = bits.shape
        bps = self.modulator.bits_per_symbol
        if num_bits % bps != 0:
            raise ValueError(f"bits per packet ({num_bits}) must be a "
                             f"multiple of bits_per_symbol ({bps})")
        # Rows stay aligned through the flatten because num_bits % bps == 0.
        symbols = self.modulator.modulate(bits.ravel())
        return symbols.reshape(packets, num_bits // bps)

    def synthesize(self, symbols: np.ndarray):
        """Pulse-shape a ``(packets, symbols)`` array into batch waveforms.

        The outer products against the symbol template run on the array
        backend; the returned waveform is a backend (device) array.
        """
        xp = self.backend.xp
        symbols = np.asarray(symbols)
        packets, num_symbols = symbols.shape
        if self._position_templates_dev is not None:
            indices = self.backend.asarray(symbols.astype(np.int64))
            waveform = xp.zeros(
                (packets, num_symbols, self.samples_per_symbol),
                dtype=self.symbol_template.dtype)
            for position, template in enumerate(self._position_templates_dev):
                mask = (indices == position)[:, :, None]
                waveform = waveform + mask * template
        else:
            amplitudes = self.backend.asarray(
                self.modulator.symbols_to_amplitudes(
                    symbols.ravel()).reshape(packets, num_symbols))
            waveform = amplitudes[:, :, None] * self._symbol_template_dev
        return waveform.reshape(packets, num_symbols * self.samples_per_symbol)

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def _agc_gains(self, samples):
        """Per-packet feed-forward gains, mirroring the receiver's block AGC."""
        xp = self.backend.xp
        peaks = xp.max(xp.abs(samples), axis=-1)
        target = _AGC_FULL_SCALE * 10.0 ** (-_AGC_PEAK_BACKOFF_DB / 20.0)
        return xp.where(peaks > 0, target / xp.maximum(peaks, 1e-300), 1.0)

    def _apply_notch(self, samples):
        """Batched complex one-pole notch (same transfer function as
        :class:`repro.dsp.notch.DigitalNotchFilter`)."""
        w0 = (2.0 * np.pi * self.notch_frequency_hz
              / self.config.adc_rate_hz)
        zero = np.exp(1j * w0)
        pole = _NOTCH_POLE_RADIUS * zero
        return self.backend.lfilter([1.0, -zero], [1.0, -pole],
                                    samples.astype(complex))

    def _reference_templates(self, channel: MultipathChannel | None
                             ) -> tuple[np.ndarray, ...]:
        """ADC-rate matched-filter references (per PPM position if any).

        Built on the host (template-length convolutions) and returned as
        host arrays; :meth:`simulate` mirrors them onto the device.
        """
        if self.position_templates is not None:
            sim_templates = self.position_templates
        else:
            sim_templates = (self.symbol_template,)
        references = []
        for template in sim_templates:
            if channel is not None:
                h = channel.discrete_impulse_response(self.sim_rate_hz)
                template = np.convolve(template, h, mode="full")
            references.append(template[::self.decimation])
        return tuple(references)

    def _correlate(self, samples, reference, num_symbols: int):
        """Matched-filter statistic of every symbol of every packet."""
        xp = self.backend.xp
        length = int(reference.shape[-1])
        positions = np.arange(num_symbols) * self.samples_per_symbol_adc
        needed = int(positions[-1]) + length
        if samples.shape[-1] < needed:
            pad = needed - samples.shape[-1]
            samples = xp.pad(samples,
                             [(0, 0)] * (samples.ndim - 1) + [(0, pad)])
        windows = self.backend.symbol_windows(samples, positions, length)
        return xp.einsum("psl,l->ps", windows, xp.conj(reference))

    # ------------------------------------------------------------------
    # Full grid point
    # ------------------------------------------------------------------
    def simulate(self, ebn0_db: float | None, num_packets: int,
                 payload_bits_per_packet: int,
                 rng: np.random.Generator | None = None,
                 channel: MultipathChannel | None = None,
                 interferer=None) -> BatchResult:
        """Run one Monte-Carlo operating point as a single batch.

        ``channel`` is one impulse-response realization applied to the whole
        batch; ``interferer`` is any generator from
        :mod:`repro.channel.interference` (added once, broadcast to every
        packet).  ``ebn0_db=None`` disables noise.  ``rng`` seeds the host
        stream; non-NumPy backends derive their device streams from it.
        """
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        backend = self.backend
        xp = backend.xp
        if rng is None:
            rng = np.random.default_rng()
        draws = backend.random_source(rng)

        bits = draws.integers(0, 2, size=(num_packets,
                                          payload_bits_per_packet),
                              dtype=np.int64)
        bits_host = np.asarray(backend.to_numpy(bits), dtype=np.int64)
        symbols = self.modulate(bits_host)
        clean = self.synthesize(symbols)

        # Per-packet transmitted energy per bit, same convention as
        # TransmitOutput.energy_per_body_bit (sim-rate sum of squares).
        energy = xp.sum(xp.abs(clean) ** 2, axis=-1) / payload_bits_per_packet
        positive = energy > 0
        if not bool(xp.any(positive)):
            raise ValueError("batch transmitted zero energy; cannot set Eb/N0")
        energy = xp.where(positive, energy, energy[positive].mean())

        if channel is not None:
            waveform = channel.apply_batch(clean, self.sim_rate_hz,
                                           keep_length=False, backend=backend)
        else:
            waveform = clean

        # The IIR notch needs to settle on the interferer before the body
        # arrives (in the full stack the lead-in and preamble provide that
        # time); prepend an interferer-only pad and drop it after filtering.
        pad_adc = 0
        if self.notch_frequency_hz is not None and interferer is not None:
            pad_adc = int(np.ceil(6.0 / (1.0 - _NOTCH_POLE_RADIUS)))
        if pad_adc:
            pad = xp.zeros((num_packets, pad_adc * self.decimation),
                           dtype=waveform.dtype)
            waveform = xp.concatenate((pad, waveform), axis=-1)

        if interferer is not None:
            waveform = waveform + backend.asarray(self._interferer_waveform(
                interferer, int(waveform.shape[-1]),
                bool(xp.iscomplexobj(waveform)), rng))
        if ebn0_db is not None:
            noise_std = noise_std_for_ebn0(energy, float(ebn0_db),
                                           backend=backend)
            waveform = awgn(waveform, noise_std[..., None], rng=draws,
                            backend=backend)

        samples = waveform[..., ::self.decimation]
        gains = xp.ones(num_packets)
        if self.quantize:
            gains = self._agc_gains(samples)
            samples = backend.quantize_uniform(samples * gains[:, None],
                                               bits=self.config.adc_bits,
                                               full_scale=_AGC_FULL_SCALE)
        if self.notch_frequency_hz is not None:
            samples = self._apply_notch(samples)
        if pad_adc:
            samples = samples[..., pad_adc:]

        references = tuple(backend.asarray(reference) for reference
                           in self._reference_templates(channel))
        num_symbols = symbols.shape[1]
        statistics = [self._correlate(samples, reference, num_symbols)
                      for reference in references]

        if self.position_templates is not None:
            # Binary PPM: the modulator expects late-minus-early statistics.
            early, late = statistics[0], statistics[1]
            norm = gains[:, None] * xp.sum(xp.abs(references[0]) ** 2)
            decision = xp.real(late - early) / xp.maximum(norm, 1e-300)
        else:
            norm = gains[:, None] * xp.sum(xp.abs(references[0]) ** 2)
            decision = xp.real(statistics[0]) / xp.maximum(norm, 1e-300)

        received = self.modulator.demodulate(
            backend.to_numpy(decision).ravel()).reshape(bits_host.shape)
        errors_per_packet = np.sum(received != bits_host, axis=-1)
        packets_failed = int(np.count_nonzero(errors_per_packet))
        return BatchResult(
            ebn0_db=float(ebn0_db) if ebn0_db is not None else float("inf"),
            bit_errors=int(errors_per_packet.sum()),
            total_bits=int(bits_host.size),
            packets_sent=num_packets,
            packets_failed=packets_failed,
            errors_per_packet=errors_per_packet)

    def _interferer_waveform(self, interferer, num_samples: int,
                             complex_baseband: bool,
                             rng: np.random.Generator) -> np.ndarray:
        """One host-side interferer realization (generators are NumPy code)."""
        if accepts_rng(interferer, "waveform"):
            return interferer.waveform(num_samples, self.sim_rate_hz, rng=rng,
                                       complex_baseband=complex_baseband)
        return interferer.waveform(num_samples, self.sim_rate_hz,
                                   complex_baseband=complex_baseband)
