"""Batched full-stack receiver: the non-genie fast path.

:class:`repro.sim.batch.BatchedLinkModel` is *genie-aided* — symbol timing
and the channel response are known exactly, so it cannot reproduce the
paper's synchronization cliff, the genie-vs-full-stack BER gap, or the
energy-capture-vs-RAKE-finger trade.  Those claims live in the full
receiver chain, which ``backend="packet"`` simulates one packet at a time
through Python loops: coarse acquisition, channel estimation, RAKE
combining and Viterbi decoding dominated every full-stack sweep point.

:class:`BatchedFullStackModel` runs the *same* receiver over a whole
Monte-Carlo batch:

* the transmit/channel/impairment/noise/ADC front half consumes the
  random streams in exactly the per-packet order (seeded parity with
  ``backend="packet"`` is a hard contract, guarded by
  ``tests/sim/test_fullstack_parity.py``) while computing the waveform
  values as whole-batch array passes: batched pulse-train synthesis
  (:meth:`~repro.core.transmitter._PulsedTransmitter.transmit_batch`),
  one broadcast FFT for every packet's multipath channel
  (:func:`~repro.channel.multipath.apply_channels_batch`), batched AGC
  (:meth:`~repro.dsp.agc.AutomaticGainControl.apply_from_peak_batch`)
  and a batched ADC — the gen-2 SAR pair with pre-drawn comparator
  noise, or the gen-1 4-way time-interleaved flash
  (:meth:`~repro.adc.interleaved.TimeInterleavedADC
  .convert_presampled_batch`, slice round-robin preserved exactly).
  Configurations outside both fast paths (e.g. a closed-loop digital
  notch) keep the per-packet front-end loop, whose parity is immediate;
* everything downstream of the ADC is batched: one correlation plane for
  acquisition (:meth:`~repro.dsp.acquisition.CoarseAcquisition
  .acquire_batch`), one einsum for channel estimation
  (:meth:`~repro.dsp.channel_estimation.ChannelEstimator
  .estimate_averaged_batch`), one gather/einsum for RAKE combining
  (:func:`~repro.dsp.rake.combine_streams_batch`) and one trellis pass
  per coded length for Viterbi decoding
  (:meth:`~repro.phy.coding.ViterbiDecoder.decode_batch` via
  :meth:`~repro.phy.packet.PacketParser.parse_many`).

The batched stages route their array work through an
:class:`~repro.sim.backends.ArrayBackend`, so the full-stack fast path
inherits the NumPy/CuPy/JAX selection, shared-memory fan-out and
``repro.runs`` caching the genie kernel already has.  Bit decisions are
identical to the per-packet loop; intermediate floats can differ at
rounding level (batched FFT widths and einsum reduction orders), which is
why the parity suite pins *decisions* and the golden fixture pins the
batched path's own numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adc.interleaved import TimeInterleavedADC
from repro.adc.sar import QuadratureSARADC
from repro.channel.awgn import awgn, noise_std_for_ebn0
from repro.channel.interference import accepts_rng
from repro.channel.multipath import apply_channels_batch
from repro.core.metrics import BERPoint, PacketResult
from repro.core.receiver import Gen1Receiver, Gen2Receiver, ReceiveResult
from repro.dsp.acquisition import BatchedAcquisitionResult
from repro.dsp.channel_estimation import BatchedChannelEstimate
from repro.dsp.rake import RakeReceiver, combine_streams_batch, finger_arrays
from repro.dsp.viterbi import MLSEEqualizer, equalize_to_bits_batch
from repro.obs.recorder import active
from repro.phy.packet import HEADER_LENGTH_BITS
from repro.sim.backends import ArrayBackend, get_backend
from repro.utils.bits import random_bits
from repro.utils.validation import require_int

__all__ = ["FullStackBatchResult", "BatchedFullStackModel"]


@dataclass(frozen=True)
class FullStackBatchResult:
    """Outcome of one batched full-stack grid point.

    Scalar aggregates mirror :class:`repro.sim.batch.BatchResult`; the
    batched records (``acquisition``, ``channel_estimates``) and the
    per-packet :class:`ReceiveResult`/:class:`PacketResult` views expose
    everything the per-packet loop would have produced.
    """

    ebn0_db: float
    bit_errors: int
    total_bits: int
    packets_sent: int
    packets_failed: int
    errors_per_packet: np.ndarray
    acquisition: BatchedAcquisitionResult = field(repr=False, default=None)
    channel_estimates: BatchedChannelEstimate = field(repr=False,
                                                      default=None)
    packet_results: tuple = field(repr=False, default=())
    receive_results: tuple = field(repr=False, default=())

    @property
    def ber(self) -> float:
        """Measured bit error rate of the batch."""
        if self.total_bits == 0:
            return 1.0
        return self.bit_errors / self.total_bits

    @property
    def packets_detected(self) -> int:
        """How many packets coarse acquisition declared."""
        return int(np.count_nonzero(self.acquisition.detected))

    def to_ber_point(self) -> BERPoint:
        """Convert to the BER-curve point container the plots expect."""
        return BERPoint(ebn0_db=self.ebn0_db, bit_errors=self.bit_errors,
                        total_bits=self.total_bits,
                        packets_sent=self.packets_sent,
                        packets_failed=self.packets_failed)


class BatchedFullStackModel:
    """Batched TX -> channel -> full-RX chain for one transceiver.

    Parameters
    ----------
    transceiver:
        A :class:`~repro.core.transceiver.Gen1Transceiver` or
        :class:`~repro.core.transceiver.Gen2Transceiver`; its transmitter,
        receiver (including the hardware-seeded ADC instance) and
        configuration are used directly, so the batch shares every
        modelling choice with ``simulate_packet``.
    backend:
        Array backend the batched receive stages run on: ``None``
        (environment default), a registered name, or an
        :class:`~repro.sim.backends.ArrayBackend` instance.
    """

    def __init__(self, transceiver,
                 backend: str | ArrayBackend | None = None) -> None:
        self.transceiver = transceiver
        self.receiver = transceiver.receiver
        self.config = transceiver.config
        self.backend = get_backend(backend)
        notch = bool(getattr(self.config, "enable_digital_notch", False))
        # Which batched front half (if any) this stack supports: the gen-2
        # direct-conversion SAR pair or the gen-1 interleaved flash.  A
        # closed-loop notch feeds back per packet, so it pins the loop.
        self._gen2_batched_front = (isinstance(self.receiver, Gen2Receiver)
                                    and isinstance(self.receiver.adc,
                                                   QuadratureSARADC)
                                    and not notch)
        self._gen1_batched_front = (isinstance(self.receiver, Gen1Receiver)
                                    and isinstance(self.receiver.adc,
                                                   TimeInterleavedADC)
                                    and not notch)

    # ------------------------------------------------------------------
    # Batched receive (shared waveforms in, per-packet results out)
    # ------------------------------------------------------------------
    def receive_batch(self, waveforms,
                      rng: np.random.Generator | None = None,
                      monitor_spectrum: bool = False) -> list[ReceiveResult]:
        """Receive a set of simulation-rate waveforms as one batch.

        Equivalent to ``[receiver.receive(w, rng=rng) for w in waveforms]``
        — same bit decisions packet for packet, with the ADC consuming the
        ``rng`` stream in the same per-packet order — but the DSP back
        half runs batched, and on the gen-1 stack (whose interleaved
        flash draws no conversion randomness) the AGC + ADC front half
        batches too.  Waveforms may have different lengths (packets carry
        random lead-ins and channel tails).
        """
        if rng is None:
            rng = np.random.default_rng()
        receiver = self.receiver
        if self._gen1_batched_front and not monitor_spectrum:
            waveform_rows = [np.asarray(waveform) for waveform in waveforms]
            samples_rows = self._gen1_samples_from_waveforms(waveform_rows)
            reports = [None] * len(samples_rows)
        else:
            samples_rows = []
            reports = []
            for waveform in waveforms:
                samples, report = receiver.frontend_samples(
                    waveform, rng=rng, monitor_spectrum=monitor_spectrum)
                samples_rows.append(np.asarray(samples))
                reports.append(report)
        results, _, _ = self._receive_samples_batch(samples_rows, reports)
        return results

    def _gen1_samples_from_waveforms(self, waveform_rows):
        """Gen-1 analog-to-codes front half, batched over packets.

        Decimate -> per-row peak AGC -> batched interleaved-flash
        conversion: the batched equivalent of looping
        :meth:`~repro.core.receiver._PulsedReceiver.frontend_samples`,
        sample-identical per packet because the rows are processed on
        their own lengths (trailing zero padding never moves a peak and
        never shifts the slice round-robin, which counts from index 0 of
        every row).  Returns the per-packet quantized ADC-rate streams.
        """
        lengths = np.asarray([row.size for row in waveform_rows],
                             dtype=np.int64)
        if lengths.size == 0:
            return []
        width = int(lengths.max())
        is_complex = any(np.iscomplexobj(row) for row in waveform_rows)
        batch = np.zeros((len(waveform_rows), width),
                         dtype=complex if is_complex else float)
        for index, row in enumerate(waveform_rows):
            batch[index, :row.size] = row
        return self._gen1_samples_from_rows(batch, lengths)

    def _receive_samples_batch(self, samples_rows, reports):
        """The batched DSP back half: ADC streams in, per-packet results
        plus the batched acquisition/estimate records out."""
        receiver = self.receiver
        config = self.config
        num_packets = len(samples_rows)
        if num_packets == 0:
            return [], None, None
        lengths = np.asarray([row.size for row in samples_rows],
                             dtype=np.int64)
        width = int(lengths.max())
        is_complex = any(np.iscomplexobj(row) for row in samples_rows)
        batch = np.zeros((num_packets, width),
                         dtype=complex if is_complex else float)
        for index, row in enumerate(samples_rows):
            batch[index, :row.size] = row

        with active().span("rx.acquisition", packets=num_packets):
            acquisition = receiver.acquisition.acquire_batch(
                batch, valid_lengths=lengths, backend=self.backend)
        results: list[ReceiveResult | None] = [None] * num_packets
        detected = np.nonzero(acquisition.detected)[0]
        for index in np.nonzero(~acquisition.detected)[0]:
            results[index] = ReceiveResult(
                acquisition=acquisition.result_for(index),
                channel_estimate=None,
                payload_bits=np.zeros(0, dtype=np.int64), crc_ok=False,
                body_bits=np.zeros(0, dtype=np.int64),
                statistics=np.zeros(0),
                interferer_report=reports[index])
        if detected.size == 0:
            return results, acquisition, None

        timing = acquisition.timing_offset_samples[detected]
        with active().span("rx.chanest", packets=int(detected.size)):
            estimates = receiver.channel_estimator.estimate_averaged_batch(
                batch[detected], timing, config.adc_rate_hz,
                num_repetitions=config.packet.preamble.num_repetitions,
                valid_lengths=lengths[detected], backend=self.backend)
        rakes = [RakeReceiver(estimates.estimate_for(slot),
                              num_fingers=getattr(config, "rake_fingers", 1),
                              policy=getattr(config, "rake_policy", "srake"))
                 for slot in range(detected.size)]
        delays, weights = finger_arrays(rakes)

        template = receiver.symbol_template
        template_energy = float(np.sum(np.abs(template) ** 2))
        normalization = np.asarray([
            max(template_energy
                * float(np.sum(np.abs(rake.combining_weights()) ** 2)),
                1e-30)
            for rake in rakes])
        period = receiver.samples_per_symbol
        body_start = timing + receiver.preamble_length_samples

        with active().span("rx.rake", packets=int(detected.size),
                           part="header"):
            header_stats = combine_streams_batch(
                batch[detected], delays, weights, template, period,
                body_start, HEADER_LENGTH_BITS,
                valid_lengths=lengths[detected],
                backend=self.backend) / normalization[:, None]
        header_bits = (np.real(header_stats) > 0).astype(np.int64)

        # How much payload each packet's (possibly corrupted) header
        # implies, capped by what the capture actually holds.
        available = (lengths[detected] - body_start
                     - HEADER_LENGTH_BITS * period)
        remaining = np.asarray(
            [int(min(receiver._coded_payload_bit_count(header_bits[slot]),
                     max(int(available[slot]) // period, 0)))
             for slot in range(detected.size)], dtype=np.int64)

        payload_stats_rows: list[np.ndarray] = [
            np.zeros(0, dtype=complex)] * detected.size
        payload_start = body_start + HEADER_LENGTH_BITS * period
        for count in np.unique(remaining):
            if count <= 0:
                continue
            group = np.nonzero(remaining == count)[0]
            with active().span("rx.rake", packets=int(group.size),
                               part="payload"):
                stats = combine_streams_batch(
                    batch[detected[group]], delays[group], weights[group],
                    template, period, payload_start[group], int(count),
                    valid_lengths=lengths[detected[group]],
                    backend=self.backend) / normalization[group, None]
            for row, slot in enumerate(group):
                payload_stats_rows[slot] = stats[row]

        use_mlse = bool(getattr(config, "use_mlse", False))
        coded_rows: list[np.ndarray] = [None] * detected.size
        soft_rows: list[np.ndarray | None] = [None] * detected.size
        statistics_rows: list[np.ndarray] = []
        mlse_slots: list[int] = []
        mlse_equalizers: list[MLSEEqualizer] = []
        for slot in range(detected.size):
            payload_stats = payload_stats_rows[slot]
            statistics_rows.append(np.concatenate((header_stats[slot],
                                                   payload_stats)))
            if use_mlse and payload_stats.size:
                isi = rakes[slot].isi_taps(
                    period,
                    max_symbol_taps=getattr(config, "mlse_max_taps", 3))
                if isi.size > 1:
                    mlse_slots.append(slot)
                    mlse_equalizers.append(
                        MLSEEqualizer(isi, alphabet=(-1.0, 1.0)))
                else:
                    coded_rows[slot] = (np.real(payload_stats)
                                        > 0).astype(np.int64)
            else:
                coded_rows[slot] = (np.real(payload_stats)
                                    > 0).astype(np.int64)
                soft_rows[slot] = np.real(payload_stats)
        if mlse_slots:
            with active().span("rx.viterbi", packets=len(mlse_slots),
                               part="mlse"):
                equalized = equalize_to_bits_batch(
                    mlse_equalizers,
                    [payload_stats_rows[slot] for slot in mlse_slots])
            for slot, coded in zip(mlse_slots, equalized):
                coded_rows[slot] = coded
        body_bits_rows = [
            np.concatenate((header_bits[slot], coded_rows[slot]))
            for slot in range(detected.size)]

        with active().span("rx.viterbi", packets=int(detected.size),
                           part="parse"):
            parses = receiver.parser.parse_many(body_bits_rows, soft_rows)
        for slot, index in enumerate(detected):
            results[index] = ReceiveResult(
                acquisition=acquisition.result_for(index),
                channel_estimate=estimates.estimate_for(slot),
                payload_bits=parses[slot].payload_bits,
                crc_ok=parses[slot].crc_ok,
                body_bits=body_bits_rows[slot],
                statistics=statistics_rows[slot],
                interferer_report=reports[index])
        return results, acquisition, estimates

    # ------------------------------------------------------------------
    # Front ends: analog chain + ADC, per-packet random-stream order
    # ------------------------------------------------------------------
    def _frontend_per_packet(self, ebn0_db, num_packets: int,
                             payload_bits_per_packet: int, rng,
                             make_channel, make_interferer, lead_in_s):
        """Reference front half: loop ``simulate_packet``'s TX/channel/
        noise/ADC flow one packet at a time (trivially stream-faithful)."""
        transceiver = self.transceiver
        receiver = self.receiver
        config = self.config
        decimation = config.decimation_factor
        payloads, true_starts, samples_rows, reports = [], [], [], []
        for _ in range(num_packets):
            channel = make_channel() if make_channel is not None else None
            interferer = (make_interferer() if make_interferer is not None
                          else None)
            payload = random_bits(payload_bits_per_packet, rng=rng)
            if lead_in_s is None:
                packet_lead_in_s = (float(rng.integers(4, 25))
                                    * config.pulse_repetition_interval_s)
            else:
                packet_lead_in_s = lead_in_s
            tx = transceiver.transmitter.transmit(
                payload, lead_in_s=packet_lead_in_s, lead_out_s=2e-8)
            waveform = transceiver._apply_channel(tx.waveform, channel,
                                                  tx.sample_rate_hz)
            waveform = transceiver._apply_impairments(waveform, rng)
            if interferer is not None:
                if accepts_rng(interferer, "add_to"):
                    waveform = interferer.add_to(waveform, tx.sample_rate_hz,
                                                 rng=rng)
                else:
                    waveform = interferer.add_to(waveform, tx.sample_rate_hz)
            if ebn0_db is not None:
                noise_std = noise_std_for_ebn0(tx.energy_per_body_bit(),
                                               ebn0_db)
                waveform = awgn(waveform, noise_std, rng=rng)
            samples, report = receiver.frontend_samples(waveform, rng=rng)
            payloads.append(payload)
            true_starts.append(tx.preamble_start_sample // decimation)
            samples_rows.append(np.asarray(samples))
            reports.append(report)
        return samples_rows, reports, payloads, true_starts

    def _phase1_draws(self, ebn0_db, num_packets: int,
                      payload_bits_per_packet: int, rng,
                      make_channel, make_interferer, lead_in_s,
                      complex_waveform, draw_noise, draw_adc_noise=None):
        """Timed wrapper over :meth:`_phase1_draws_impl` (the
        ``rx.synthesis`` telemetry stage: draws + batched TX synthesis).
        """
        with active().span("rx.synthesis", packets=int(num_packets)):
            return self._phase1_draws_impl(
                ebn0_db, num_packets, payload_bits_per_packet, rng,
                make_channel, make_interferer, lead_in_s,
                complex_waveform, draw_noise, draw_adc_noise)

    def _phase1_draws_impl(self, ebn0_db, num_packets: int,
                           payload_bits_per_packet: int, rng,
                           make_channel, make_interferer, lead_in_s,
                           complex_waveform, draw_noise,
                           draw_adc_noise=None):
        """Phase 1 of both batched front halves: every random draw, in
        exactly the per-packet order the packet oracle performs them.

        Per packet: channel and interferer realization, payload bits,
        lead-in, interferer symbols (by the ``add_to == signal +
        waveform(...)`` convention every built-in rng-consuming
        interferer follows), then the generation-specific noise draws —
        all sized from :meth:`~repro.core.transmitter._PulsedTransmitter
        .num_transmit_samples` before any waveform exists.  This draw
        order is the parity contract with ``backend="packet"``, so it
        lives in exactly one place; the generation hooks only decide
        *what* is drawn, never *when*:

        ``complex_waveform(channel)``
            whether this packet's analog waveform is complex (drives the
            interferer's ``complex_baseband`` flag and the noise shape);
        ``draw_noise(rng, num_samples, is_complex)``
            the AWGN draw(s) for one packet (skipped when ``ebn0_db`` is
            ``None``);
        ``draw_adc_noise(rng, num_adc_samples)``
            optional converter-noise draw (the gen-2 SAR comparator
            pair; gen 1 draws none).

        Returns ``(tx_batch, payloads, channels, interferers,
        interferer_waves, complex_rows, noise_draws, adc_noise)`` with
        the transmit waveforms already synthesized as one batch.
        """
        transmitter = self.transceiver.transmitter
        config = self.config
        decimation = config.decimation_factor
        sample_rate = config.simulation_rate_hz

        payloads, packets, lead_ins_s = [], [], []
        channels, interferers, interferer_waves = [], [], []
        complex_rows, noise_draws, adc_noise = [], [], []
        for _ in range(num_packets):
            channel = make_channel() if make_channel is not None else None
            interferer = (make_interferer() if make_interferer is not None
                          else None)
            payload = random_bits(payload_bits_per_packet, rng=rng)
            if lead_in_s is None:
                packet_lead_in_s = (float(rng.integers(4, 25))
                                    * config.pulse_repetition_interval_s)
            else:
                packet_lead_in_s = lead_in_s
            packet = transmitter.builder.build(payload)
            num_samples = transmitter.num_transmit_samples(
                packet, lead_in_s=packet_lead_in_s, lead_out_s=2e-8)
            is_complex = bool(complex_waveform(channel))
            interferer_wave = None
            if interferer is not None and accepts_rng(interferer, "add_to"):
                interferer_wave = interferer.waveform(
                    num_samples, sample_rate, rng=rng,
                    complex_baseband=is_complex)
            noise_draws.append(None if ebn0_db is None
                               else draw_noise(rng, num_samples, is_complex))
            if draw_adc_noise is not None:
                adc_noise.append(
                    draw_adc_noise(rng, -(-num_samples // decimation)))
            payloads.append(payload)
            packets.append(packet)
            lead_ins_s.append(packet_lead_in_s)
            channels.append(channel)
            interferers.append(interferer)
            interferer_waves.append(interferer_wave)
            complex_rows.append(is_complex)

        tx_batch = transmitter.transmit_batch(payloads, lead_ins_s,
                                              lead_out_s=2e-8,
                                              packets=packets)
        return (tx_batch, payloads, channels, interferers, interferer_waves,
                complex_rows, noise_draws, adc_noise)

    def _channel_batch(self, channels, tx_batch):
        """Phase-2 channel pass over the transmit batch, copy-safe.

        :func:`apply_channels_batch` returns its input array when no row
        has a channel; the later interference/noise adds write in place,
        so that case copies first — the (frozen) ``tx_batch`` must keep
        its clean transmit waveforms.
        """
        with active().span("rx.channel_fft",
                           packets=int(tx_batch.waveforms.shape[0])):
            batch = apply_channels_batch(channels, tx_batch.waveforms,
                                         self.config.simulation_rate_hz,
                                         valid_lengths=tx_batch.lengths,
                                         backend=self.backend)
        if batch is tx_batch.waveforms:
            batch = batch.copy()
        return batch

    def _frontend_batched_gen2(self, ebn0_db, num_packets: int,
                               payload_bits_per_packet: int, rng,
                               make_channel, make_interferer, lead_in_s):
        """Batched gen-2 front half.

        Phase 1 (:meth:`_phase1_draws`) performs every random draw in
        exactly the per-packet order — payload bits, lead-in, interferer
        symbols, the AWGN I/Q pair, SAR comparator noise — while phase 2
        computes the waveform values as whole-batch array operations:
        one batched pulse-train synthesis, one FFT pass for every
        packet's channel, one SAR search for every packet's I/Q streams.
        Post-ADC streams match the per-packet front end bit for bit
        except at exact quantizer code boundaries (probability ~0 under
        continuous noise).
        """
        transceiver = self.transceiver
        receiver = self.receiver
        config = self.config
        decimation = config.decimation_factor
        sample_rate = config.simulation_rate_hz
        sqrt2 = np.sqrt(2.0)

        def draw_noise(rng, num_samples, is_complex):
            return (rng.standard_normal(num_samples),
                    rng.standard_normal(num_samples))

        def draw_adc_noise(rng, num_adc):
            return (receiver.adc.i_adc.draw_comparator_noise(rng,
                                                             (num_adc,)),
                    receiver.adc.q_adc.draw_comparator_noise(rng,
                                                             (num_adc,)))

        (tx_batch, payloads, channels, interferers, interferer_waves,
         _complex_rows, noise_pairs, adc_noise) = self._phase1_draws(
            ebn0_db, num_packets, payload_bits_per_packet, rng,
            make_channel, make_interferer, lead_in_s,
            complex_waveform=lambda channel: True,
            draw_noise=draw_noise, draw_adc_noise=draw_adc_noise)

        lengths = tx_batch.lengths
        true_starts = [int(start) // decimation
                       for start in tx_batch.preamble_start_samples]
        batch = self._channel_batch(channels, tx_batch)

        gen2_config = config
        needs_impairments = (
            abs(gen2_config.carrier_frequency_offset_hz) > 0
            or abs(gen2_config.iq_gain_imbalance_db) > 0
            or abs(gen2_config.iq_phase_imbalance_deg) > 0
            or abs(gen2_config.dc_offset) > 0)
        for index in range(num_packets):
            valid = slice(0, int(lengths[index]))
            if needs_impairments:
                batch[index, valid] = transceiver._apply_impairments(
                    batch[index, valid], rng)
            if interferer_waves[index] is not None:
                batch[index, valid] += interferer_waves[index]
            elif interferers[index] is not None:
                batch[index, valid] = interferers[index].add_to(
                    batch[index, valid], sample_rate)
            if noise_pairs[index] is not None:
                noise_std = noise_std_for_ebn0(
                    float(tx_batch.energies_per_body_bit[index]), ebn0_db)
                in_phase, quadrature = noise_pairs[index]
                batch[index, valid] += ((in_phase + 1j * quadrature)
                                        * (noise_std / sqrt2))

        # Decimate -> block AGC -> SAR pair, batched (the per-packet
        # equivalents are frontend_samples' decimate/apply_from_peak/
        # _digitize with full_scale 1.0 and 1 dB peak backoff).
        decimated = batch[:, ::decimation]
        adc_lengths = -(-lengths // decimation)
        scaled, _gains = receiver.agc.apply_from_peak_batch(
            decimated, full_scale=1.0, peak_backoff_db=1.0)

        bits = receiver.adc.bits
        adc_width = int(scaled.shape[1])

        def _stack_noise(side: int) -> np.ndarray | None:
            # Each SAR path draws (or not) independently of the other, so
            # an asymmetric pair — noisy I comparator, ideal Q — still
            # injects exactly the pre-drawn per-packet streams.
            if adc_noise[0][side] is None:
                return None
            stacked = np.zeros((bits, num_packets, adc_width))
            for index, drawn in enumerate(adc_noise):
                stacked[:, index, :drawn[side].shape[-1]] = drawn[side]
            return stacked

        samples_batch = receiver.adc.convert(scaled,
                                             noise_i=_stack_noise(0),
                                             noise_q=_stack_noise(1))
        samples_rows = [samples_batch[index, :adc_lengths[index]]
                        for index in range(num_packets)]
        return samples_rows, [None] * num_packets, payloads, true_starts

    def _frontend_batched_gen1(self, ebn0_db, num_packets: int,
                               payload_bits_per_packet: int, rng,
                               make_channel, make_interferer, lead_in_s):
        """Batched gen-1 front half (4 GHz sim-rate carrier-free chain).

        The same two-phase discipline as the gen-2 front
        (:meth:`_phase1_draws`): phase 1 makes every random draw in
        per-packet order — payload bits, lead-in, interferer symbols,
        AWGN noise (*one* real stream per packet, or an I/Q pair when a
        complex-gain channel promotes the waveform, exactly the draws
        :func:`~repro.channel.awgn.awgn` would make) — and phase 2 runs
        the waveform math batched: one pulse-train synthesis pass, one
        broadcast FFT over every packet's real multipath kernel, batched
        peak AGC and the batched 4-way interleaved-flash conversion.
        The gen-1 interleaved flash draws no conversion randomness (its
        mismatches are frozen at construction), so there is no ADC-noise
        phase.  Post-ADC streams match the per-packet front end bit for
        bit except at exact flash threshold crossings (probability ~0
        under continuous noise).
        """
        config = self.config
        sample_rate = config.simulation_rate_hz
        sqrt2 = np.sqrt(2.0)

        def complex_waveform(channel):
            # A complex-gain channel promotes this packet's real waveform
            # to complex, which changes every later dtype-sensitive step
            # (interferer tone vs complex exponential, one noise stream
            # vs an I/Q pair) — track it per packet.
            return channel is not None and np.iscomplexobj(channel.gains)

        def draw_noise(rng, num_samples, is_complex):
            if is_complex:
                return (rng.standard_normal(num_samples),
                        rng.standard_normal(num_samples))
            return rng.standard_normal(num_samples)

        (tx_batch, payloads, channels, interferers, interferer_waves,
         complex_rows, noise_draws, _adc_noise) = self._phase1_draws(
            ebn0_db, num_packets, payload_bits_per_packet, rng,
            make_channel, make_interferer, lead_in_s,
            complex_waveform=complex_waveform, draw_noise=draw_noise)

        lengths = tx_batch.lengths
        decimation = config.decimation_factor
        true_starts = [int(start) // decimation
                       for start in tx_batch.preamble_start_samples]
        batch = self._channel_batch(channels, tx_batch)
        batch_is_complex = np.iscomplexobj(batch)

        # Gen-1 has no analog impairment hook (``_apply_impairments`` is
        # the identity), so phase 2 goes straight to interference+noise.
        for index in range(num_packets):
            valid = slice(0, int(lengths[index]))
            if interferer_waves[index] is not None:
                batch[index, valid] += interferer_waves[index]
            elif interferers[index] is not None:
                if batch_is_complex and not complex_rows[index]:
                    # The batch was promoted by *other* rows' channels;
                    # this packet is still logically real (zero imag), so
                    # feed add_to the real view to keep the per-packet
                    # tone real, not a complex exponential.
                    batch[index, valid] = interferers[index].add_to(
                        np.real(batch[index, valid]), sample_rate)
                else:
                    batch[index, valid] = interferers[index].add_to(
                        batch[index, valid], sample_rate)
            if noise_draws[index] is None:
                continue
            noise_std = noise_std_for_ebn0(
                float(tx_batch.energies_per_body_bit[index]), ebn0_db)
            if complex_rows[index]:
                in_phase, quadrature = noise_draws[index]
                batch[index, valid] += ((in_phase + 1j * quadrature)
                                        * (noise_std / sqrt2))
            else:
                batch[index, valid] += noise_std * noise_draws[index]

        samples_rows = self._gen1_samples_from_rows(batch, lengths)
        return samples_rows, [None] * num_packets, payloads, true_starts

    def _gen1_samples_from_rows(self, batch, lengths):
        """Shared gen-1 decimate -> AGC -> interleaved-flash batch tail."""
        receiver = self.receiver
        decimation = self.config.decimation_factor
        decimated = batch[:, ::decimation]
        adc_lengths = -(-np.asarray(lengths, dtype=np.int64) // decimation)
        scaled, _gains = receiver.agc.apply_from_peak_batch(
            decimated, full_scale=1.0, peak_backoff_db=1.0)
        samples_batch = receiver.adc.convert_presampled_batch(
            np.real(scaled), backend=self.backend)
        samples_batch = self.backend.to_numpy(samples_batch)
        return [samples_batch[index, :adc_lengths[index]]
                for index in range(batch.shape[0])]

    # ------------------------------------------------------------------
    # Full Monte-Carlo grid point
    # ------------------------------------------------------------------
    def simulate(self, ebn0_db: float | None, num_packets: int,
                 payload_bits_per_packet: int,
                 rng: np.random.Generator | None = None,
                 make_channel=None, make_interferer=None,
                 lead_in_s: float | None = None) -> FullStackBatchResult:
        """Run one full-stack Monte-Carlo operating point as a batch.

        The per-packet flow — payload draw, random lead-in, channel and
        interferer realization, AWGN, ADC conversion — consumes ``rng``
        (and the factories' own generators) in exactly the order
        ``Transceiver.simulate_packet`` would, so a seeded run is
        bit-decision-identical to the per-packet loop.  ``make_channel`` /
        ``make_interferer`` are no-argument callables invoked once per
        packet (``None`` for a clean link); ``lead_in_s`` pins the lead-in
        instead of drawing it, exactly like ``simulate_packet``.
        """
        require_int(num_packets, "num_packets", minimum=1)
        require_int(payload_bits_per_packet, "payload_bits_per_packet",
                    minimum=1)
        if rng is None:
            rng = np.random.default_rng()

        # Both hardware generations have a fully batched front half — the
        # gen-2 direct-conversion SAR pair and the gen-1 4 GHz
        # interleaved-flash chain; anything else (e.g. a closed-loop
        # digital notch) keeps the per-packet front-end loop, whose
        # parity is immediate.
        if self._gen2_batched_front:
            frontend = self._frontend_batched_gen2
        elif self._gen1_batched_front:
            frontend = self._frontend_batched_gen1
        else:
            frontend = self._frontend_per_packet
        samples_rows, reports, payloads, true_starts = frontend(
            ebn0_db, num_packets, payload_bits_per_packet, rng,
            make_channel, make_interferer, lead_in_s)

        receive_results, acquisition, estimates = \
            self._receive_samples_batch(samples_rows, reports)

        errors_per_packet = np.zeros(num_packets, dtype=np.int64)
        packet_results = []
        bit_errors = 0
        total_bits = 0
        packets_failed = 0
        for index, rx in enumerate(receive_results):
            result = rx.to_packet_result(payloads[index], true_starts[index])
            packet_results.append(result)
            errors_per_packet[index] = result.payload_bit_errors
            bit_errors += result.payload_bit_errors
            total_bits += result.num_payload_bits
            if not result.packet_success:
                packets_failed += 1
        return FullStackBatchResult(
            ebn0_db=float(ebn0_db) if ebn0_db is not None else float("inf"),
            bit_errors=int(bit_errors), total_bits=int(total_bits),
            packets_sent=num_packets, packets_failed=int(packets_failed),
            errors_per_packet=errors_per_packet,
            acquisition=acquisition,
            channel_estimates=estimates,
            packet_results=tuple(packet_results),
            receive_results=tuple(receive_results))
