"""Shared-memory transport for chunk-granular process-pool sweeps.

The historical process-pool fan-out returned every grid point's
measurement by pickling it through the executor's result pipe.  That is
fine for five scalar counts — and hopeless once a result carries its
per-packet error vector (a million-packet point is an 8 MB array *per
point*).  This module gives the sweep engine a zero-copy transport in
both directions:

* the parent packs every chunk task's *inputs* into one
  :class:`ChunkTaskBlock` — the per-point prototypes (scenario, config,
  backend names) pickled once, plus a flat ``int64`` table of
  ``(prototype index, num_packets, packet_offset)`` rows, one per chunk
  — so submitting a chunk to the pool pickles only a block name and a
  slot index, never the task tuple itself;
* the parent allocates one :class:`ChunkResultBlock` sized for every
  chunk's result record plus (optionally) its per-packet error vector;
* each worker attaches by name, reads its chunk row, simulates, writes
  the result record in place — *payload first, status word last* — and
  detaches;
* the parent harvests by **slot status**, not by future success: every
  chunk whose status word says complete is read back even when another
  chunk's worker raised or was killed mid-run, and the segments are torn
  down deterministically (``close`` + ``unlink`` in a ``finally``), so
  no segment outlives the sweep even on error paths.

Records are fixed-width ``int64`` rows — ``[status, ebn0 bit-pattern,
bit_errors, total_bits, packets_sent, packets_failed, errors_len,
errors...]`` — so a block is pure flat memory: no pickling, no
serialization, bit-identical round trips.  The status word makes chunk
failure isolation possible: a slot still at :data:`SLOT_EMPTY` after the
pool drained marks a chunk whose worker died or raised, and its record
is reported as ``None`` — never garbage — while every completed sibling
is harvested.  Used by :meth:`repro.sim.SweepEngine.run`,
:meth:`repro.sim.SweepEngine.measure_points` and
:class:`repro.runs.RunDriver` whenever ``max_workers`` fans chunks out
over processes; disable with ``SweepEngine(shared_memory=False)`` to
fall back to the pickling pool (the comparison
``benchmarks/test_bench_backends.py`` measures).
"""

from __future__ import annotations

import pickle
from multiprocessing import shared_memory

import numpy as np

from repro.core.metrics import BERPoint
from repro.obs.recorder import active
from repro.utils.validation import require_int

__all__ = [
    "BLOCK_HEADER_WORDS",
    "RECORD_WORDS",
    "SLOT_EMPTY",
    "SLOT_OK",
    "ChunkResultBlock",
    "ChunkTaskBlock",
    "chunk_slices",
]

#: int64 words of block header (``num_slots``, ``max_packets``) written at
#: allocation time so workers can :meth:`ChunkResultBlock.attach` by name
#: alone.
BLOCK_HEADER_WORDS = 2

#: int64 words of fixed header per result slot (before the error vector):
#: status, ebn0 bit-pattern, bit_errors, total_bits, packets_sent,
#: packets_failed, errors_len.
RECORD_WORDS = 7

#: Slot status: never written (worker still running, crashed, or raised).
SLOT_EMPTY = 0
#: Slot status: record complete (written payload-first, status last).
SLOT_OK = 1

_WORD_BYTES = 8
_TASK_ROW_WORDS = 3


def _float_to_word(value: float) -> int:
    """The IEEE-754 bit pattern of ``value`` as an ``int64`` (lossless)."""
    return int(np.asarray(float(value), dtype=np.float64).view(np.int64))


def _word_to_float(word: int) -> float:
    """Inverse of :func:`_float_to_word`."""
    return float(np.asarray(int(word), dtype=np.int64).view(np.float64))


def chunk_slices(num_items: int, num_chunks: int) -> tuple[tuple[int, ...], ...]:
    """Round-robin assignment of ``num_items`` work indices to chunks.

    Chunk ``c`` owns indices ``c, c + num_chunks, c + 2 num_chunks, ...``
    — the same interleaving :meth:`repro.runs.RunManifest.points_for_shard`
    uses, so consecutive Eb/N0 points of one curve (cheap high-SNR next to
    expensive low-SNR) spread evenly over workers.  Empty chunks are
    dropped, so ``num_chunks > num_items`` yields ``num_items`` singleton
    chunks and ``num_items == 0`` yields no chunks at all.
    """
    require_int(num_items, "num_items", minimum=0)
    require_int(num_chunks, "num_chunks", minimum=1)
    chunks = tuple(tuple(range(start, num_items, num_chunks))
                   for start in range(min(num_chunks, num_items)))
    return tuple(chunk for chunk in chunks if chunk)


class _SharedBlock:
    """Lifecycle shared by the task-input and result blocks."""

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name workers attach with."""
        return self._shm.name

    @property
    def size_bytes(self) -> int:
        """Allocated segment size (the OS may round up to a page)."""
        return self._shm.size

    def close(self) -> None:
        """Drop this process's mapping (idempotent; data stays shared)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every reader closed)."""
        if not self._owner:
            raise RuntimeError("only the allocating process may unlink a "
                               f"{type(self).__name__}")
        self._shm.unlink()

    def __enter__(self):
        """Context-manager entry: the block itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministic teardown: close, and unlink when owner."""
        self.close()
        if self._owner:
            self.unlink()

    def _words(self, count: int, offset_words: int = 0) -> np.ndarray:
        """A transient ``int64`` view of ``count`` words of the segment.

        Views are created per call and must not be retained by callers —
        a live view keeps the mapping referenced and would turn
        :meth:`close` into a ``BufferError``.
        """
        if self._closed:
            raise ValueError("block is closed")
        return np.frombuffer(self._shm.buf, dtype=np.int64, count=count,
                             offset=offset_words * _WORD_BYTES)


class ChunkTaskBlock(_SharedBlock):
    """A shared-memory segment streaming chunk-task *inputs* to workers.

    One block holds the whole work list of a fan-out: the deduplicated
    per-point task prototypes (scenario, config, backend names — the
    expensive-to-pickle part) serialized **once**, plus one flat ``int64``
    row per chunk task referencing its prototype by index::

        [num_rows, proto_nbytes]                    header
        [proto_index, num_packets, packet_offset]   x num_rows
        <pickled tuple of prototypes>               proto_nbytes bytes

    Submitting a chunk to the process pool then pickles only the block
    name and a slot index — constant-size whatever the grid — and every
    worker reconstructs its task from shared memory.  The parent
    :meth:`pack`\\ s the block and is the only party that may
    :meth:`unlink`; workers :meth:`attach` by name and :meth:`close`.
    """

    _HEADER_WORDS = 2

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        super().__init__(shm, owner)
        header = self._words(self._HEADER_WORDS)
        self.num_rows = int(header[0])
        self._proto_nbytes = int(header[1])
        del header

    @classmethod
    def pack(cls, prototypes, rows) -> "ChunkTaskBlock":
        """Serialize ``prototypes`` plus per-chunk ``rows`` into a new block.

        ``rows`` are ``(prototype_index, num_packets, packet_offset)``
        triples, one per chunk task, in schedule order.
        """
        prototypes = tuple(prototypes)
        table = np.asarray([[int(index), int(packets), int(offset)]
                            for index, packets, offset in rows],
                           dtype=np.int64).reshape(len(tuple(rows)),
                                                   _TASK_ROW_WORDS)
        if table.shape[0] == 0:
            raise ValueError("cannot pack a ChunkTaskBlock with zero tasks")
        bad = [int(index) for index in table[:, 0]
               if not 0 <= index < len(prototypes)]
        if bad:
            raise ValueError(f"task row references prototype {bad[0]} but "
                             f"only {len(prototypes)} prototype(s) packed")
        payload = pickle.dumps(prototypes,
                               protocol=pickle.HIGHEST_PROTOCOL)
        header_words = cls._HEADER_WORDS + table.size
        size = header_words * _WORD_BYTES + len(payload)
        shm = shared_memory.SharedMemory(create=True, size=size)
        words = np.frombuffer(shm.buf, dtype=np.int64, count=header_words)
        words[0] = table.shape[0]
        words[1] = len(payload)
        words[cls._HEADER_WORDS:] = table.ravel()
        del words
        start = header_words * _WORD_BYTES
        shm.buf[start:start + len(payload)] = payload
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ChunkTaskBlock":
        """Map an existing block by name (worker side; never unlinks)."""
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    def row(self, index: int) -> tuple[int, int, int]:
        """Chunk task ``index`` as ``(proto_index, num_packets, packet_offset)``."""
        require_int(index, "index", minimum=0)
        if index >= self.num_rows:
            raise ValueError(f"task row {index} out of range for "
                             f"{self.num_rows} task(s)")
        table = self._words(_TASK_ROW_WORDS,
                            self._HEADER_WORDS + index * _TASK_ROW_WORDS)
        row = (int(table[0]), int(table[1]), int(table[2]))
        del table
        return row

    def prototypes(self) -> tuple:
        """Unpickle and return the packed prototype tuple."""
        if self._closed:
            raise ValueError("block is closed")
        start = (self._HEADER_WORDS
                 + self.num_rows * _TASK_ROW_WORDS) * _WORD_BYTES
        active().counter("shm.proto_bytes_read", self._proto_nbytes)
        return pickle.loads(bytes(
            self._shm.buf[start:start + self._proto_nbytes]))


class ChunkResultBlock(_SharedBlock):
    """A shared-memory segment holding a fan-out's chunk result records.

    One block carries ``num_slots`` fixed-width rows of ``RECORD_WORDS +
    max_packets`` ``int64`` words behind a two-word header, so workers
    can attach by name alone.  The parent :meth:`allocate`\\ s it and is
    the only party that may :meth:`unlink`; workers :meth:`attach`,
    :meth:`write_result` into their slots, and :meth:`close`.  Each
    record's status word is written *last*, so :meth:`slot_status` ==
    :data:`SLOT_OK` guarantees a complete record even when the writer
    was killed mid-run.  Usable as a context manager (owner context
    unlinks on exit).
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        super().__init__(shm, owner)
        header = self._words(BLOCK_HEADER_WORDS)
        self.num_slots = int(header[0])
        self.max_packets = int(header[1])
        del header

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def allocate(cls, num_slots: int, max_packets: int) -> "ChunkResultBlock":
        """Create a block sized for ``num_slots`` results of up to
        ``max_packets`` packets each (parent side; owns the segment)."""
        require_int(num_slots, "num_slots", minimum=1)
        require_int(max_packets, "max_packets", minimum=0)
        size = (BLOCK_HEADER_WORDS
                + num_slots * (RECORD_WORDS + max_packets)) * _WORD_BYTES
        shm = shared_memory.SharedMemory(create=True, size=size)
        header = np.frombuffer(shm.buf, dtype=np.int64,
                               count=BLOCK_HEADER_WORDS)
        header[0] = num_slots
        header[1] = max_packets
        del header
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ChunkResultBlock":
        """Map an existing block by name (worker side; never unlinks).

        Slot count and packet capacity are read from the block header, so
        a worker needs nothing beyond the name.
        """
        return cls(shared_memory.SharedMemory(name=name), owner=False)

    # -- record access --------------------------------------------------
    def _rows(self) -> np.ndarray:
        """A transient ``(num_slots, RECORD_WORDS + max_packets)`` view.

        Views are created per call and must not be retained by callers —
        a live view keeps the mapping referenced and would turn
        :meth:`close` into a ``BufferError``.
        """
        count = self.num_slots * (RECORD_WORDS + self.max_packets)
        return self._words(count, BLOCK_HEADER_WORDS).reshape(
            self.num_slots, RECORD_WORDS + self.max_packets)

    def _check_slot(self, slot: int) -> None:
        require_int(slot, "slot", minimum=0)
        if slot >= self.num_slots:
            raise ValueError(f"slot {slot} out of range for "
                             f"{self.num_slots} slot(s)")

    def slot_status(self, slot: int) -> int:
        """``SLOT_OK`` when the slot holds a complete record, else
        ``SLOT_EMPTY`` (never written: its worker is still running, raised,
        or died)."""
        self._check_slot(slot)
        rows = self._rows()
        status = int(rows[slot, 0])
        del rows
        return status

    def write_result(self, slot: int, measurement: BERPoint,
                     errors_per_packet=None) -> None:
        """Serialize one measurement (and its per-packet error vector)
        into ``slot``'s record row, flipping the status word last."""
        self._check_slot(slot)
        if errors_per_packet is None:
            errors = np.zeros(0, dtype=np.int64)
        else:
            errors = np.asarray(errors_per_packet, dtype=np.int64).ravel()
        if errors.size > self.max_packets:
            raise ValueError(
                f"errors_per_packet has {errors.size} entries but the "
                f"block was sized for {self.max_packets} packet(s)")
        rows = self._rows()
        rows[slot, 1] = _float_to_word(measurement.ebn0_db)
        rows[slot, 2] = int(measurement.bit_errors)
        rows[slot, 3] = int(measurement.total_bits)
        rows[slot, 4] = int(measurement.packets_sent)
        rows[slot, 5] = int(measurement.packets_failed)
        rows[slot, 6] = errors.size
        rows[slot, RECORD_WORDS:RECORD_WORDS + errors.size] = errors
        # Status is written last: a reader seeing SLOT_OK is guaranteed a
        # complete payload even if this writer is killed mid-record.
        rows[slot, 0] = SLOT_OK
        del rows
        active().counter("shm.result_bytes_written",
                         (RECORD_WORDS + errors.size) * _WORD_BYTES)

    def read_result(self, slot: int) -> tuple[BERPoint, np.ndarray]:
        """Deserialize ``slot``'s record: ``(measurement, errors_per_packet)``.

        Raises ``ValueError`` when the slot holds no completed record
        (status still :data:`SLOT_EMPTY`) — callers harvesting after a
        worker failure should gate on :meth:`slot_status` instead of
        reading blind.  The error vector is a copy, safe to keep after
        the block is torn down; it is empty when the writer recorded no
        per-packet detail.
        """
        self._check_slot(slot)
        rows = self._rows()
        try:
            header = rows[slot, :RECORD_WORDS]
            if int(header[0]) != SLOT_OK:
                raise ValueError(f"slot {slot} holds no completed record "
                                 "(its worker raised, died, or never ran)")
            measurement = BERPoint(
                ebn0_db=_word_to_float(header[1]),
                bit_errors=int(header[2]),
                total_bits=int(header[3]),
                packets_sent=int(header[4]),
                packets_failed=int(header[5]))
            errors_len = int(header[6])
            if errors_len > self.max_packets:
                raise ValueError(
                    f"corrupt record in slot {slot}: errors_len "
                    f"{errors_len} exceeds {self.max_packets}")
            errors = np.array(
                rows[slot, RECORD_WORDS:RECORD_WORDS + errors_len],
                dtype=np.int64)
        finally:
            del rows
        active().counter("shm.result_bytes_read",
                         (RECORD_WORDS + errors.size) * _WORD_BYTES)
        return measurement, errors
