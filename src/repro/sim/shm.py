"""Shared-memory result transport for process-pool sweeps.

The historical process-pool fan-out returned every grid point's
measurement by pickling it through the executor's result pipe.  That is
fine for five scalar counts — and hopeless once a result carries its
per-packet error vector (a million-packet point is an 8 MB array *per
point*).  This module gives the sweep engine a zero-copy return path:

* the parent allocates one :class:`ChunkResultBlock` per worker chunk —
  a single ``multiprocessing.shared_memory`` segment sized for the
  chunk's result records plus their per-packet error vectors;
* each worker attaches to its chunk's block once, writes one record
  view per grid point as it finishes, and detaches;
* the parent reads every record back through array views and then tears
  the segment down deterministically (``close`` + ``unlink`` in a
  ``finally``), so no segments outlive the sweep even on error paths.

Records are fixed-width ``int64`` rows — ``[ebn0 bit-pattern,
bit_errors, total_bits, packets_sent, packets_failed, errors_len,
errors...]`` — so a block is pure flat memory: no pickling, no
serialization, bit-identical round trips.  Used by
:meth:`repro.sim.SweepEngine.run` and :class:`repro.runs.RunDriver`
whenever ``max_workers`` fans simulation out over processes; disable
with ``SweepEngine(shared_memory=False)`` to fall back to the pickling
pool (the comparison ``benchmarks/test_bench_backends.py`` measures).
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

from repro.core.metrics import BERPoint
from repro.utils.validation import require_int

__all__ = ["RECORD_WORDS", "ChunkResultBlock", "chunk_slices"]

#: int64 words of fixed header per result slot (before the error vector):
#: ebn0 bit-pattern, bit_errors, total_bits, packets_sent, packets_failed,
#: errors_len.
RECORD_WORDS = 6

_WORD_BYTES = 8


def _float_to_word(value: float) -> int:
    """The IEEE-754 bit pattern of ``value`` as an ``int64`` (lossless)."""
    return int(np.asarray(float(value), dtype=np.float64).view(np.int64))


def _word_to_float(word: int) -> float:
    """Inverse of :func:`_float_to_word`."""
    return float(np.asarray(int(word), dtype=np.int64).view(np.float64))


def chunk_slices(num_items: int, num_chunks: int) -> tuple[tuple[int, ...], ...]:
    """Round-robin assignment of ``num_items`` work indices to chunks.

    Chunk ``c`` owns indices ``c, c + num_chunks, c + 2 num_chunks, ...``
    — the same interleaving :meth:`repro.runs.RunManifest.points_for_shard`
    uses, so consecutive Eb/N0 points of one curve (cheap high-SNR next to
    expensive low-SNR) spread evenly over workers.  Empty chunks are
    dropped.
    """
    require_int(num_items, "num_items", minimum=1)
    require_int(num_chunks, "num_chunks", minimum=1)
    chunks = tuple(tuple(range(start, num_items, num_chunks))
                   for start in range(min(num_chunks, num_items)))
    return tuple(chunk for chunk in chunks if chunk)


class ChunkResultBlock:
    """A shared-memory segment holding one worker chunk's result records.

    One block carries ``num_slots`` fixed-width rows of ``RECORD_WORDS +
    max_packets`` ``int64`` words.  The parent :meth:`allocate`\\ s it and
    is the only party that may :meth:`unlink`; workers :meth:`attach` by
    name, :meth:`write_result` into their slots, and :meth:`close`.
    Usable as a context manager (owner context unlinks on exit).
    """

    def __init__(self, shm: shared_memory.SharedMemory, num_slots: int,
                 max_packets: int, owner: bool) -> None:
        self._shm = shm
        self.num_slots = num_slots
        self.max_packets = max_packets
        self._owner = owner
        self._closed = False

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def allocate(cls, num_slots: int, max_packets: int) -> "ChunkResultBlock":
        """Create a block sized for ``num_slots`` results of up to
        ``max_packets`` packets each (parent side; owns the segment)."""
        require_int(num_slots, "num_slots", minimum=1)
        require_int(max_packets, "max_packets", minimum=0)
        size = num_slots * (RECORD_WORDS + max_packets) * _WORD_BYTES
        shm = shared_memory.SharedMemory(create=True, size=size)
        return cls(shm, num_slots, max_packets, owner=True)

    @classmethod
    def attach(cls, name: str, num_slots: int,
               max_packets: int) -> "ChunkResultBlock":
        """Map an existing block by name (worker side; never unlinks)."""
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, num_slots, max_packets, owner=False)

    @property
    def name(self) -> str:
        """The segment name workers attach with."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (idempotent; data stays shared)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every reader closed)."""
        if not self._owner:
            raise RuntimeError("only the allocating process may unlink a "
                               "ChunkResultBlock")
        self._shm.unlink()

    def __enter__(self) -> "ChunkResultBlock":
        """Context-manager entry: the block itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministic teardown: close, and unlink when owner."""
        self.close()
        if self._owner:
            self.unlink()

    # -- record access --------------------------------------------------
    def _rows(self) -> np.ndarray:
        """A transient ``(num_slots, RECORD_WORDS + max_packets)`` view.

        Views are created per call and must not be retained by callers —
        a live view keeps the mapping referenced and would turn
        :meth:`close` into a ``BufferError``.
        """
        if self._closed:
            raise ValueError("block is closed")
        count = self.num_slots * (RECORD_WORDS + self.max_packets)
        return np.frombuffer(self._shm.buf, dtype=np.int64,
                             count=count).reshape(
                                 self.num_slots,
                                 RECORD_WORDS + self.max_packets)

    def write_result(self, slot: int, measurement: BERPoint,
                     errors_per_packet=None) -> None:
        """Serialize one measurement (and its per-packet error vector)
        into ``slot``'s record row."""
        require_int(slot, "slot", minimum=0)
        if slot >= self.num_slots:
            raise ValueError(f"slot {slot} out of range for "
                             f"{self.num_slots} slot(s)")
        if errors_per_packet is None:
            errors = np.zeros(0, dtype=np.int64)
        else:
            errors = np.asarray(errors_per_packet, dtype=np.int64).ravel()
        if errors.size > self.max_packets:
            raise ValueError(
                f"errors_per_packet has {errors.size} entries but the "
                f"block was sized for {self.max_packets} packet(s)")
        rows = self._rows()
        rows[slot, 0] = _float_to_word(measurement.ebn0_db)
        rows[slot, 1] = int(measurement.bit_errors)
        rows[slot, 2] = int(measurement.total_bits)
        rows[slot, 3] = int(measurement.packets_sent)
        rows[slot, 4] = int(measurement.packets_failed)
        rows[slot, 5] = errors.size
        rows[slot, RECORD_WORDS:RECORD_WORDS + errors.size] = errors
        del rows

    def read_result(self, slot: int) -> tuple[BERPoint, np.ndarray]:
        """Deserialize ``slot``'s record: ``(measurement, errors_per_packet)``.

        The error vector is a copy, safe to keep after the block is torn
        down; it is empty when the writer recorded no per-packet detail.
        """
        require_int(slot, "slot", minimum=0)
        if slot >= self.num_slots:
            raise ValueError(f"slot {slot} out of range for "
                             f"{self.num_slots} slot(s)")
        rows = self._rows()
        header = rows[slot, :RECORD_WORDS]
        measurement = BERPoint(
            ebn0_db=_word_to_float(header[0]),
            bit_errors=int(header[1]),
            total_bits=int(header[2]),
            packets_sent=int(header[3]),
            packets_failed=int(header[4]))
        errors_len = int(header[5])
        if errors_len > self.max_packets:
            raise ValueError(f"corrupt record in slot {slot}: errors_len "
                             f"{errors_len} exceeds {self.max_packets}")
        errors = np.array(rows[slot, RECORD_WORDS:RECORD_WORDS + errors_len],
                          dtype=np.int64)
        del rows
        return measurement, errors
