"""Declarative channel/interference scenarios for sweep engines.

Benchmarks and examples used to hand-wire channel and interferer factories
at every call site.  A :class:`Scenario` bundles those choices under a name
(``"awgn"``, ``"cm3"``, ``"narrowband"`` ...) and a
:class:`ScenarioRegistry` resolves names to scenarios, so a sweep over many
environments is just a list of strings.

All built-in factories are module-level functions (not closures), so
scenarios stay picklable and can be shipped to worker processes by the
parallel sweep engine.  Register custom scenarios with::

    from repro.sim import SCENARIOS, Scenario

    SCENARIOS.register(Scenario(
        name="office_nlos",
        description="CM3 drawn fresh per point",
        channel=my_channel_factory))          # callable(rng) -> channel
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable

import numpy as np

from repro.channel.interference import MultiToneInterferer, ToneInterferer
from repro.channel.multipath import (
    MultipathChannel,
    exponential_decay_channel,
    two_ray_channel,
)
from repro.channel.saleh_valenzuela import generate_channel

__all__ = ["Scenario", "ScenarioRegistry", "SCENARIOS", "default_registry"]


@dataclass(frozen=True)
class Scenario:
    """A named link environment: channel plus (optional) interference.

    Attributes
    ----------
    name:
        Registry key.
    description:
        One-line human summary (shown by benchmark tables).
    channel:
        ``callable(rng) -> MultipathChannel | None`` drawing a channel
        realization, or ``None`` for a clean (AWGN-only) link.
    interferer:
        ``callable(rng) -> interferer | None`` building an interference
        generator from :mod:`repro.channel.interference`, or ``None``.
    notch_frequency_hz:
        Centre frequency the digital notch should sit at when the receiver
        configuration enables interferer mitigation
        (``enable_digital_notch``); ``None`` when a notch makes no sense.
    generation:
        Preferred transceiver generation (``"gen1"``/``"gen2"``) for
        presets tied to one chip; ``None`` means caller's choice.
    """

    name: str
    description: str = ""
    channel: Callable[[np.random.Generator], MultipathChannel | None] | None = None
    interferer: Callable[[np.random.Generator], object | None] | None = None
    notch_frequency_hz: float | None = None
    generation: str | None = None

    def make_channel(self, rng: np.random.Generator):
        """Draw this scenario's channel realization (``None`` for AWGN)."""
        if self.channel is None:
            return None
        return self.channel(rng)

    def make_interferer(self, rng: np.random.Generator):
        """Build this scenario's interference generator (``None`` if clean)."""
        if self.interferer is None:
            return None
        return self.interferer(rng)


class ScenarioRegistry:
    """Name -> :class:`Scenario` lookup with helpful failure messages."""

    def __init__(self) -> None:
        self._scenarios: dict[str, Scenario] = {}

    def register(self, scenario: Scenario, overwrite: bool = False) -> Scenario:
        """Add a scenario; refuses to clobber unless ``overwrite``."""
        if not isinstance(scenario, Scenario):
            raise TypeError("register() expects a Scenario")
        if scenario.name in self._scenarios and not overwrite:
            raise ValueError(f"scenario {scenario.name!r} is already "
                             "registered (pass overwrite=True to replace)")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Resolve a scenario by name."""
        try:
            return self._scenarios[name]
        except KeyError:
            known = ", ".join(sorted(self._scenarios)) or "(none)"
            raise KeyError(f"unknown scenario {name!r}; registered "
                           f"scenarios: {known}") from None

    def names(self) -> tuple[str, ...]:
        """All registered scenario names, sorted."""
        return tuple(sorted(self._scenarios))

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._scenarios)


# ----------------------------------------------------------------------
# Built-in factories (module-level so scenarios pickle across processes)
# ----------------------------------------------------------------------
def _two_ray_channel(rng: np.random.Generator) -> MultipathChannel:
    return two_ray_channel(delay_s=10e-9, relative_gain_db=-3.0)


def _exp_decay_channel(rng: np.random.Generator) -> MultipathChannel:
    return exponential_decay_channel(rms_delay_spread_s=20e-9,
                                     ray_spacing_s=2e-9,
                                     rng=rng, complex_gains=False)


def _sv_channel(model: str, rng: np.random.Generator) -> MultipathChannel:
    # Complex ray gains: these scenarios model the complex-baseband
    # equivalent channel the gen-2 direct-conversion receiver sees (the
    # same ensemble the multipath example always used).  Carrier-free gen-1
    # sweeps should use the real-gain scenarios (two_ray, exp_decay).
    return generate_channel(model, rng=rng, complex_gains=True)


_NARROWBAND_FREQUENCY_HZ = 130e6  # offset from the receiver's sub-band centre


def _tone_interferer(rng: np.random.Generator) -> ToneInterferer:
    return ToneInterferer(frequency_hz=_NARROWBAND_FREQUENCY_HZ,
                          amplitude=2.0)


def _partial_band_interferer(rng: np.random.Generator) -> MultiToneInterferer:
    tones = tuple(ToneInterferer(frequency_hz=frequency, amplitude=1.0)
                  for frequency in (90e6, 130e6, 170e6))
    return MultiToneInterferer(tones)


def default_registry() -> ScenarioRegistry:
    """A fresh registry pre-populated with the paper's environments."""
    registry = ScenarioRegistry()
    registry.register(Scenario(
        name="awgn",
        description="clean AWGN link, no multipath or interference"))
    registry.register(Scenario(
        name="two_ray",
        description="line-of-sight plus one -3 dB echo at 10 ns",
        channel=_two_ray_channel))
    registry.register(Scenario(
        name="exp_decay",
        description="exponential power-delay profile, 20 ns RMS spread",
        channel=_exp_decay_channel))
    for model in ("CM1", "CM2", "CM3", "CM4"):
        registry.register(Scenario(
            name=model.lower(),
            description=f"IEEE 802.15.3a Saleh-Valenzuela {model} realization",
            channel=partial(_sv_channel, model)))
    registry.register(Scenario(
        name="narrowband",
        description="strong in-band CW interferer at +130 MHz",
        interferer=_tone_interferer,
        notch_frequency_hz=_NARROWBAND_FREQUENCY_HZ))
    registry.register(Scenario(
        name="partial_band",
        description="three-tone partial-band jammer (90/130/170 MHz)",
        interferer=_partial_band_interferer,
        notch_frequency_hz=_NARROWBAND_FREQUENCY_HZ))
    registry.register(Scenario(
        name="gen1_baseline",
        description="gen-1 baseband chip over a clean AWGN link",
        generation="gen1"))
    registry.register(Scenario(
        name="gen2_baseline",
        description="gen-2 direct-conversion chip over a clean AWGN link",
        generation="gen2"))
    registry.register(Scenario(
        name="gen2_nlos",
        description="gen-2 chip over a CM3 office NLOS channel",
        channel=partial(_sv_channel, "CM3"),
        generation="gen2"))
    return registry


SCENARIOS = default_registry()
"""The process-wide default registry used by :class:`repro.sim.SweepEngine`."""
