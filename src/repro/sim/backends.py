"""Pluggable array backends for the batched Monte-Carlo kernel.

The vectorized kernel (:class:`repro.sim.batch.BatchedLinkModel`) is a
pipeline of plain ``ndarray`` operations — array creation, broadcasting,
FFT convolution, ``einsum``, random draws.  An :class:`ArrayBackend`
bundles exactly that surface behind one object, so the same kernel code
runs on

* :class:`NumpyBackend` — the reference implementation.  Delegates
  straight to ``numpy``/``scipy`` and is **bit-identical** to the
  historical module-level ``np`` code path (golden-fixture guarded).
* :class:`CupyBackend` — CUDA GPUs via `CuPy <https://cupy.dev>`_, when
  ``cupy`` is importable.  Waveform-scale operations stay on the device;
  the IIR notch falls back to the host when ``cupyx.scipy.signal`` does
  not provide ``lfilter``.
* :class:`JaxBackend` — CPU/GPU/TPU via `JAX <https://jax.dev>`_, when
  ``jax`` is importable.  Enables 64-bit mode for parity with the NumPy
  reference; the IIR notch and the uniform quantizer reference run on
  the host.

Accelerator backends are *import-gated*: constructing one on a machine
without the library raises a clear ``ImportError``, and resolving a
backend from the ``REPRO_ARRAY_BACKEND`` environment variable falls back
to NumPy with a warning instead of failing, so the same script runs
everywhere.  Accelerator random streams are seeded from the caller's
NumPy generator but draw natively on the device, so their Monte-Carlo
results agree with NumPy statistically (BER within binomial tolerance),
not bit-for-bit.

Select a backend explicitly::

    from repro.sim import SweepEngine
    engine = SweepEngine(array_backend="cupy")      # raises if no cupy

or ambiently::

    REPRO_ARRAY_BACKEND=jax python -m repro sweep --ebn0 0:12:1 ...

Custom backends: subclass :class:`ArrayBackend`, then
:func:`register_backend` it so worker processes can resolve it by name.
"""

from __future__ import annotations

import os
import threading
import warnings

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import signal as sp_signal

from repro.adc.quantizer import UniformQuantizer

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "CupyBackend",
    "JaxBackend",
    "available_backends",
    "get_backend",
    "reference_backend",
    "register_backend",
    "BACKEND_ENV_VAR",
]

BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"


class ArrayBackend:
    """The array namespace and helper operations the batched kernel uses.

    Subclasses set :attr:`xp` to an array-API-style module (``numpy``,
    ``cupy``, ``jax.numpy``) and override the helpers whose accelerated
    form differs from the generic implementation.  The generic
    implementations below are written against ``self.xp`` only, so a
    minimal subclass just provides ``xp`` plus host transfer.

    Attributes
    ----------
    name:
        Registry name (``"numpy"``, ``"cupy"``, ``"jax"``), also what
        :class:`repro.sim.SweepEngine` records in config digests.
    xp:
        The backend's array namespace module.
    """

    name = "abstract"
    xp: object = None

    # -- availability ---------------------------------------------------
    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend's array library is importable here."""
        return False

    # -- transfers ------------------------------------------------------
    def asarray(self, array, dtype=None):
        """Put ``array`` on this backend's device (no copy when already there)."""
        if dtype is None:
            return self.xp.asarray(array)
        return self.xp.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        """Fetch ``array`` back to host memory as a ``numpy.ndarray``."""
        return np.asarray(array)

    # -- signal processing ----------------------------------------------
    def fftconvolve_full(self, signals, kernel):
        """Full linear convolution along the last axis (FFT based).

        ``signals`` is ``(..., n)``; ``kernel`` broadcasts against the
        leading axes (typically shape ``(1, ..., taps)``).  The generic
        implementation multiplies in the frequency domain with
        ``self.xp.fft``; subclasses may substitute a tuned library call.
        """
        xp = self.xp
        n = int(signals.shape[-1]) + int(kernel.shape[-1]) - 1
        if xp.iscomplexobj(signals) or xp.iscomplexobj(kernel):
            spectrum = (xp.fft.fft(signals, n=n, axis=-1)
                        * xp.fft.fft(kernel, n=n, axis=-1))
            return xp.fft.ifft(spectrum, n=n, axis=-1)
        spectrum = (xp.fft.rfft(signals, n=n, axis=-1)
                    * xp.fft.rfft(kernel, n=n, axis=-1))
        return xp.fft.irfft(spectrum, n=n, axis=-1)

    def lfilter(self, b, a, samples):
        """IIR filter along the last axis (the batched notch).

        The generic implementation round-trips through the host and
        ``scipy.signal.lfilter`` — recursive filters are a poor fit for
        accelerator vectorization, and the notch runs once per batch.
        """
        host = sp_signal.lfilter(b, a, self.to_numpy(samples), axis=-1)
        return self.asarray(host)

    def symbol_windows(self, samples, positions, length: int):
        """Gather per-symbol windows: ``(..., n) -> (..., len(positions), length)``.

        ``positions`` is a host integer array of window start indices
        along the last axis.  The generic implementation materializes the
        windows with advanced indexing, which every array library
        supports; NumPy overrides it with a zero-copy strided view.
        """
        xp = self.xp
        index = (self.asarray(np.asarray(positions, dtype=np.int64))[:, None]
                 + self.asarray(np.arange(length, dtype=np.int64))[None, :])
        return samples[..., index]

    def gather_windows(self, samples, starts, length: int):
        """Gather per-row windows: ``(..., n)`` x ``(..., k)`` -> ``(..., k, length)``.

        Unlike :meth:`symbol_windows` (one shared position list for the
        whole batch), every batch row brings its own window start indices
        — what the batched full-stack receiver needs, where each packet's
        acquisition timing shifts its channel-estimation and RAKE windows.
        ``starts`` is a host integer array broadcastable against the
        leading axes of ``samples``; every ``start + length`` must fit in
        ``n`` (callers pad the sample batch).
        """
        xp = self.xp
        starts_dev = self.asarray(np.asarray(starts, dtype=np.int64))
        index = (starts_dev[..., None]
                 + self.asarray(np.arange(length, dtype=np.int64)))
        return xp.take_along_axis(samples[..., None, :], index, axis=-1)

    def interleave_streams(self, parts, width: int):
        """Round-robin merge of per-slice streams along the last axis.

        The inverse of the strided de-interleave ``samples[..., k::N]``:
        given ``N`` arrays ``parts`` (slice ``k`` holding the samples at
        positions ``k, k + N, k + 2N, ...``), produce the ``(..., width)``
        aggregate stream with ``out[..., k::N] == parts[k]``.  Slice
        lengths may differ by one when ``width`` is not a multiple of
        ``N`` (exactly the ``range(k, width, N)`` counts).  This is the
        primitive the batched time-interleaved ADC uses to reassemble its
        converted slice streams.  The generic implementation stacks and
        reshapes (pure array ops, so it runs on any backend); NumPy
        overrides it with a strided in-place scatter.
        """
        xp = self.xp
        num_slices = len(parts)
        if num_slices == 0:
            raise ValueError("interleave_streams needs at least one stream")
        if num_slices == 1:
            return parts[0][..., :width]
        full = -(-width // num_slices)
        padded = []
        for part in parts:
            short = full - int(part.shape[-1])
            if short:
                pad = xp.zeros(part.shape[:-1] + (short,), dtype=part.dtype)
                part = xp.concatenate((part, pad), axis=-1)
            padded.append(part)
        stacked = xp.stack(padded, axis=-1)
        merged = stacked.reshape(stacked.shape[:-2] + (full * num_slices,))
        return merged[..., :width]

    def quantize_uniform(self, samples, bits: int, full_scale: float):
        """Mid-rise uniform quantization with saturation (the batch ADC).

        Mirrors :class:`repro.adc.quantizer.UniformQuantizer` — complex
        input is quantized component-wise.  NumPy overrides this to call
        the quantizer class itself, keeping the reference path
        bit-identical by construction.
        """
        xp = self.xp
        num_levels = 1 << int(bits)
        step = 2.0 * float(full_scale) / num_levels

        def _component(x):
            codes = xp.clip(xp.floor((x + full_scale) / step),
                            0, num_levels - 1)
            return (codes + 0.5) * step - full_scale

        if xp.iscomplexobj(samples):
            return _component(samples.real) + 1j * _component(samples.imag)
        return _component(samples)

    # -- randomness -----------------------------------------------------
    def random_source(self, rng: np.random.Generator | None):
        """A draw source (``integers`` / ``standard_normal``) for this device.

        ``rng`` is the caller's host :class:`numpy.random.Generator`; the
        NumPy backend returns it unchanged (bit-identical streams), while
        accelerator backends seed a device generator from it.
        """
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """Reference backend: plain ``numpy`` + ``scipy``, bit-identical to
    the pre-backend-abstraction kernel (guarded by golden fixtures)."""

    name = "numpy"
    xp = np

    @classmethod
    def is_available(cls) -> bool:
        """Always true — NumPy is a hard dependency."""
        return True

    def asarray(self, array, dtype=None):
        """Identity-preserving ``numpy.asarray``."""
        return np.asarray(array) if dtype is None else np.asarray(array,
                                                                  dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        """Already host memory; returns the array itself."""
        return np.asarray(array)

    def fftconvolve_full(self, signals, kernel):
        """``scipy.signal.fftconvolve(..., mode="full", axes=-1)``."""
        return sp_signal.fftconvolve(signals, kernel, mode="full", axes=-1)

    def lfilter(self, b, a, samples):
        """``scipy.signal.lfilter`` along the last axis, in place on host."""
        return sp_signal.lfilter(b, a, samples, axis=-1)

    def symbol_windows(self, samples, positions, length: int):
        """Zero-copy strided windows via ``sliding_window_view``."""
        windows = sliding_window_view(samples, length, axis=-1)
        return windows[..., np.asarray(positions, dtype=np.int64), :]

    def gather_windows(self, samples, starts, length: int):
        """Strided-view gather (~4x faster than ``take_along_axis``).

        The win matters for the batched channel estimator's large
        window gathers; ``samples`` must carry a leading batch axis
        matching ``starts``' first axis.
        """
        samples = np.asarray(samples)
        starts = np.asarray(starts, dtype=np.int64)
        view = sliding_window_view(samples, length, axis=-1)
        batch_index = np.arange(samples.shape[0])
        batch_index = batch_index.reshape((-1,) + (1,) * (starts.ndim - 1))
        return view[batch_index, starts]

    def interleave_streams(self, parts, width: int):
        """Strided scatter into a preallocated output (no stacked temp)."""
        parts = [np.asarray(part) for part in parts]
        num_slices = len(parts)
        if num_slices == 0:
            raise ValueError("interleave_streams needs at least one stream")
        if num_slices == 1:
            return parts[0][..., :width]
        out = np.empty(parts[0].shape[:-1] + (width,),
                       dtype=np.result_type(*parts))
        for index, part in enumerate(parts):
            out[..., index::num_slices] = part[
                ..., :len(range(index, width, num_slices))]
        return out

    def quantize_uniform(self, samples, bits: int, full_scale: float):
        """Delegate to the reference :class:`UniformQuantizer`."""
        return UniformQuantizer(bits=bits,
                                full_scale=full_scale).quantize(samples)

    def random_source(self, rng: np.random.Generator | None):
        """The caller's generator itself (or a fresh default one)."""
        return rng if rng is not None else np.random.default_rng()


class _SeededDeviceSource:
    """Adapter exposing ``integers``/``standard_normal`` on a device RNG,
    falling back to host draws + transfer when the device generator lacks
    a method (keeps older accelerator releases working)."""

    def __init__(self, backend: ArrayBackend, device_rng,
                 host_rng: np.random.Generator) -> None:
        self._backend = backend
        self._device_rng = device_rng
        self._host_rng = host_rng

    def integers(self, low, high=None, size=None, dtype=np.int64):
        """Uniform integers in ``[low, high)`` as a device array."""
        try:
            draw = self._device_rng.integers(low, high, size=size)
        except (AttributeError, TypeError):
            return self._backend.asarray(
                self._host_rng.integers(low, high, size=size, dtype=dtype))
        return self._backend.asarray(draw, dtype=dtype)

    def standard_normal(self, size=None):
        """Standard normal draws as a device array."""
        try:
            return self._device_rng.standard_normal(size=size)
        except (AttributeError, TypeError):
            return self._backend.asarray(
                self._host_rng.standard_normal(size=size))


class CupyBackend(ArrayBackend):
    """CUDA backend backed by ``cupy`` (import-gated).

    Waveform-scale operations (synthesis, convolution, noise, matched
    filtering, quantization) run on the GPU; ray bookkeeping and the
    modulator symbol maps stay on the host where they are O(packets), not
    O(samples).  Random streams are device-native, seeded from the host
    generator, so results agree with NumPy statistically rather than
    bit-for-bit.
    """

    name = "cupy"

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as error:
            raise ImportError(
                "the 'cupy' array backend needs CuPy (pip install "
                "cupy-cuda12x for CUDA 12); use array_backend='numpy' or "
                "unset REPRO_ARRAY_BACKEND") from error
        # CuPy importing is not enough — without a usable CUDA device the
        # first kernel launch would die deep in the sweep.  Raise the same
        # ImportError the registry's fallback path understands.
        try:
            device_count = cupy.cuda.runtime.getDeviceCount()
        except Exception as error:
            raise ImportError(
                "cupy imports but CUDA is unusable "
                f"({type(error).__name__}: {error}); use "
                "array_backend='numpy' or unset "
                "REPRO_ARRAY_BACKEND") from error
        if device_count < 1:
            raise ImportError(
                "cupy imports but no CUDA device is visible; use "
                "array_backend='numpy' or unset REPRO_ARRAY_BACKEND")
        self.xp = cupy
        self._cupy = cupy
        try:
            from cupyx.scipy import signal as cupyx_signal
        except ImportError:
            cupyx_signal = None
        self._signal = cupyx_signal

    @classmethod
    def is_available(cls) -> bool:
        """True when ``cupy`` imports and sees at least one CUDA device."""
        try:
            import cupy
            return cupy.cuda.runtime.getDeviceCount() > 0
        except Exception:
            return False

    def to_numpy(self, array) -> np.ndarray:
        """Device-to-host copy via ``cupy.asnumpy``."""
        return self._cupy.asnumpy(array)

    def fftconvolve_full(self, signals, kernel):
        """``cupyx.scipy.signal.fftconvolve`` when present, else generic FFT."""
        if self._signal is not None and hasattr(self._signal, "fftconvolve"):
            return self._signal.fftconvolve(signals, kernel, mode="full",
                                            axes=-1)
        return super().fftconvolve_full(signals, kernel)

    def lfilter(self, b, a, samples):
        """``cupyx.scipy.signal.lfilter`` when present, else host fallback."""
        if self._signal is not None and hasattr(self._signal, "lfilter"):
            return self._signal.lfilter(
                self.asarray(np.asarray(b)), self.asarray(np.asarray(a)),
                samples, axis=-1)
        return super().lfilter(b, a, samples)

    def random_source(self, rng: np.random.Generator | None):
        """A device generator seeded from the host generator's stream."""
        host = rng if rng is not None else np.random.default_rng()
        seed = int(host.integers(0, 2 ** 63 - 1))
        return _SeededDeviceSource(self, self._cupy.random.default_rng(seed),
                                   np.random.default_rng(seed))


class _JaxRandomSource:
    """Functional JAX PRNG behind the imperative draw interface the
    kernel expects (one key split per draw)."""

    def __init__(self, jax_module, xp, seed: int) -> None:
        self._jax = jax_module
        self._xp = xp
        self._key = jax_module.random.PRNGKey(seed)

    def _next_key(self):
        self._key, sub = self._jax.random.split(self._key)
        return sub

    def integers(self, low, high=None, size=None, dtype=np.int64):
        """Uniform integers in ``[low, high)`` as a device array."""
        shape = () if size is None else tuple(np.atleast_1d(size))
        return self._jax.random.randint(self._next_key(), shape, low, high,
                                        dtype=self._xp.int64)

    def standard_normal(self, size=None):
        """Standard normal draws as a device array."""
        shape = () if size is None else tuple(np.atleast_1d(size))
        return self._jax.random.normal(self._next_key(), shape,
                                       dtype=self._xp.float64)


class JaxBackend(ArrayBackend):
    """JAX backend (CPU/GPU/TPU, import-gated).

    Runs eagerly with 64-bit mode enabled so dtypes match the NumPy
    reference.  ``jax.scipy.signal.fftconvolve`` is used when it accepts
    ``axes``; otherwise the generic frequency-domain convolution applies.
    The IIR notch and the reference quantizer round-trip through the host
    (inherited generic implementations).
    """

    name = "jax"

    def __init__(self) -> None:
        try:
            import jax
        except ImportError as error:
            raise ImportError(
                "the 'jax' array backend needs JAX (pip install jax for "
                "the CPU wheel); use array_backend='numpy' or unset "
                "REPRO_ARRAY_BACKEND") from error
        jax.config.update("jax_enable_x64", True)
        import jax.numpy as jnp
        self.xp = jnp
        self._jax = jax

    @classmethod
    def is_available(cls) -> bool:
        """True when ``jax`` is importable."""
        try:
            import jax  # noqa: F401
            return True
        except Exception:
            return False

    def to_numpy(self, array) -> np.ndarray:
        """Blocks on the device value and copies it to host memory."""
        return np.asarray(array)

    def fftconvolve_full(self, signals, kernel):
        """``jax.scipy.signal.fftconvolve`` if it supports ``axes``."""
        try:
            from jax.scipy.signal import fftconvolve
            return fftconvolve(signals, kernel, mode="full", axes=-1)
        except (ImportError, TypeError):
            return super().fftconvolve_full(signals, kernel)

    def random_source(self, rng: np.random.Generator | None):
        """A split-per-draw JAX PRNG seeded from the host generator."""
        host = rng if rng is not None else np.random.default_rng()
        return _JaxRandomSource(self._jax, self.xp,
                                int(host.integers(0, 2 ** 31 - 1)))


_REGISTRY: dict[str, type[ArrayBackend]] = {
    NumpyBackend.name: NumpyBackend,
    CupyBackend.name: CupyBackend,
    JaxBackend.name: JaxBackend,
}
_INSTANCES: dict[str, ArrayBackend] = {}
_LOCK = threading.Lock()


def register_backend(backend_class: type[ArrayBackend],
                     overwrite: bool = False) -> None:
    """Register a custom :class:`ArrayBackend` subclass by its ``name``.

    Registration makes the backend resolvable by name in worker
    processes (parallel sweeps ship the backend *name*, not the object).
    ``overwrite`` must be true to replace an existing registration.
    """
    if not (isinstance(backend_class, type)
            and issubclass(backend_class, ArrayBackend)):
        raise TypeError("register_backend expects an ArrayBackend subclass")
    name = backend_class.name
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"array backend {name!r} is already registered; "
                         "pass overwrite=True to replace it")
    with _LOCK:
        _REGISTRY[name] = backend_class
        _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """Names of the registered backends usable on this machine, in
    registration order (``"numpy"`` always first)."""
    return tuple(name for name, cls in _REGISTRY.items()
                 if cls.is_available())


def reference_backend() -> ArrayBackend:
    """The NumPy reference backend instance.

    This is what array-accepting library functions (``awgn``,
    ``MultipathChannel.apply_batch``, ...) default to when no backend is
    passed — deliberately *not* the ``REPRO_ARRAY_BACKEND`` environment
    variable, so the per-packet reference stack stays bit-reproducible
    whatever the environment says; only the batch kernel/engine layer
    opts into ambient selection via :func:`get_backend` with ``None``.
    """
    return _resolve_name("numpy", strict=True)


def _resolve_name(name: str, strict: bool) -> ArrayBackend:
    key = name.strip().lower()
    with _LOCK:
        instance = _INSTANCES.get(key)
    if instance is not None:
        return instance
    if key not in _REGISTRY:
        raise ValueError(f"unknown array backend {name!r}; registered: "
                         f"{', '.join(sorted(_REGISTRY))}")
    try:
        instance = _REGISTRY[key]()
    except ImportError:
        if strict:
            raise
        warnings.warn(
            f"array backend {key!r} is not available on this machine; "
            "falling back to the NumPy reference backend", stacklevel=3)
        return _resolve_name("numpy", strict=True)
    with _LOCK:
        _INSTANCES.setdefault(key, instance)
    return instance


def get_backend(backend=None, strict: bool = True) -> ArrayBackend:
    """Resolve an array backend specification to a live instance.

    Parameters
    ----------
    backend:
        ``None`` (consult the ``REPRO_ARRAY_BACKEND`` environment
        variable, default ``"numpy"``), a registered name, or an
        :class:`ArrayBackend` instance — returned as-is *and* cached
        under its ``name`` so later lookups by name (e.g. in forked
        worker processes) resolve to that same instance; spawn-based
        platforms should :func:`register_backend` the class instead.
    strict:
        When the backend's library is missing: ``True`` raises the
        underlying ``ImportError``; ``False`` warns and falls back to
        NumPy.  Environment-variable resolution is never strict, so an
        exported ``REPRO_ARRAY_BACKEND=cupy`` cannot break a
        CPU-only machine.
    """
    if isinstance(backend, ArrayBackend):
        with _LOCK:
            _INSTANCES.setdefault(backend.name.strip().lower(), backend)
        return backend
    if backend is None:
        name = os.environ.get(BACKEND_ENV_VAR, "").strip()
        if not name:
            return _resolve_name("numpy", strict=True)
        try:
            return _resolve_name(name, strict=False)
        except ValueError:
            warnings.warn(
                f"{BACKEND_ENV_VAR}={name!r} names no registered array "
                "backend; falling back to the NumPy reference backend",
                stacklevel=2)
            return _resolve_name("numpy", strict=True)
    if isinstance(backend, str):
        return _resolve_name(backend, strict=strict)
    raise TypeError("backend must be None, a backend name, or an "
                    f"ArrayBackend instance, not {type(backend).__name__}")
